#!/usr/bin/env bash
# Full offline CI gate: formatting, lints, tests.
#
# The workspace has no external dependencies, so everything runs with
# --offline; a network-less container must pass this script unchanged.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

echo "CI OK"
