#!/usr/bin/env bash
# Full offline CI gate: formatting, lints, tests.
#
# The workspace has no external dependencies, so everything runs with
# --offline; a network-less container must pass this script unchanged.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> corpus regression replay"
# Also part of the workspace test run above; the explicit gate makes a
# corpus regression fail loudly under its own heading.
cargo test --offline -q --test corpus

echo "==> conformance fuzz smoke (fixed seed; full exact matrix incl. DPconv)"
# The differential oracle runs every exact algorithm — DPsize, DPsub
# (+ variants), DPccp, DPconv, top-down — on each instance, so this
# smoke is also the DPconv-vs-matrix conformance gate.
cargo run --offline -q --release -p joinopt-cli --bin joinopt -- \
    fuzz --seed 42 --iters 200 --max-n 10 --minimize

echo "==> cold/warm plan-cache fuzz (warm hits must be bit-identical)"
cargo run --offline -q --release -p joinopt-cli --bin joinopt -- \
    fuzz --seed 42 --iters 200 --max-n 10 --minimize --cache

echo "==> sustained-load smoke (service + plan cache, gated hit rate)"
# Single worker, so requests execute in arrival order and every repeat
# is a guaranteed cache hit; the gate also fails on any errored request.
cargo run --offline -q --release -p joinopt-cli --bin joinopt -- \
    load --requests 60 --threads 1 --seed 7 --repeat-rate 0.5 --max-n 7 \
         --min-hit-rate 0.25

echo "==> resilience matrix with fault injection (--cfg failpoints)"
# Separate target dir: the flag changes the crate's cfg set, and sharing
# target/ would force a full rebuild on every alternation.
RUSTFLAGS="--cfg failpoints" CARGO_TARGET_DIR=target/failpoints \
    cargo test -p joinopt-core --test resilience --offline -q

echo "==> service resilience matrix: breaker trips and drain completes (--cfg failpoints)"
RUSTFLAGS="--cfg failpoints" CARGO_TARGET_DIR=target/failpoints \
    cargo test -p joinopt-service --test resilience_matrix --offline -q

echo "==> serve smoke: protocol, typed rejections, clean drain (--cfg failpoints)"
# The scripted self-check drives a live server end-to-end: health/ready,
# cold+warm optimize, typed parse/invalid/timeout rejections, an
# injected worker panic the server survives, a cache-poison collision
# that can only miss, then a graceful drain with a non-empty Prometheus
# flush.
RUSTFLAGS="--cfg failpoints" CARGO_TARGET_DIR=target/failpoints \
    cargo run --offline -q -p joinopt-cli --bin joinopt -- \
    serve --smoke --prom /tmp/joinopt-serve-smoke.prom
grep -q joinopt_serve_accepted_total /tmp/joinopt-serve-smoke.prom \
    || { echo "serve smoke flush missing serve counters"; exit 1; }
grep -q joinopt_serve_stage_ /tmp/joinopt-serve-smoke.prom \
    || { echo "serve smoke flush missing windowed stage metrics"; exit 1; }
rm -f /tmp/joinopt-serve-smoke.prom

echo "==> span-timeline golden: traced requests under a manual clock (--cfg failpoints)"
# Replays three requests (cold, warm, retry-after-injected-panic) through
# the traced dispatch path on a manual clock and diffs the resulting
# span-timeline JSON byte-for-byte against the committed golden. The
# retry leg arms failpoints, so this gate only exists in the failpoints
# build. Re-generate with the same command after an intended change.
RUSTFLAGS="--cfg failpoints" CARGO_TARGET_DIR=target/failpoints \
    cargo run --offline -q -p joinopt-cli --bin joinopt -- \
    serve --span-timeline /tmp/joinopt-serve-span.json
diff -u tests/goldens/serve-span-timeline.json /tmp/joinopt-serve-span.json \
    || { echo "span-timeline drifted from the committed golden"; exit 1; }
rm -f /tmp/joinopt-serve-span.json

echo "==> chaos gate: seeded fault burst, zero wrong plans (--cfg failpoints)"
# Warmup / panic burst / recovery against the hardened gateway; gates on
# bounded errors, breaker open+reclose, recovery, and a differential
# re-check of sampled answers against a fresh cache-less service.
RUSTFLAGS="--cfg failpoints" CARGO_TARGET_DIR=target/failpoints \
    cargo run --offline -q -p joinopt-cli --bin joinopt -- \
    load --chaos --requests 200 --seed 7

echo "==> injected tie-break inversion is caught and minimized (--cfg failpoints)"
# --lib additionally runs the provenance acceptance test: the inverted
# tie-break must produce a rendered explained diff naming the first
# divergent DP decision.
RUSTFLAGS="--cfg failpoints" CARGO_TARGET_DIR=target/failpoints \
    cargo test -p joinopt-conformance --lib --test tiebreak --offline -q

echo "==> injected DPconv rank skip is caught and minimized (--cfg failpoints)"
# Arms dpconv-rank-skip (DPconv drops its balanced top-level splits) and
# requires the differential oracle to flag the wrong optimal cost and
# shrink the repro to <= 5 relations.
RUSTFLAGS="--cfg failpoints" CARGO_TARGET_DIR=target/failpoints \
    cargo test -p joinopt-conformance --test rank_skip --offline -q

echo "==> determinism matrix (parallel engine, release)"
cargo test -p joinopt-core --test determinism --release --offline -q

echo "==> performance baseline check (counters-only, hardware-independent)"
# Replays the matrix pinned in BENCH_joinopt.json and fails on any
# counter, table-size or cost-bit drift. Wall time and arena bytes are
# deliberately not gated here (--counters-only), so the gate passes on
# any hardware; re-pin with `joinopt perf` after an intended change.
cargo run --offline -q --release -p joinopt-cli --bin joinopt -- \
    perf --check BENCH_joinopt.json --counters-only

echo "==> explain golden files (text + JSON, byte-deterministic)"
# `joinopt explain` output is fully deterministic (no clocks, sorted
# sets, hand-built JSON), so it is diffed byte-for-byte against the
# committed goldens in tests/goldens/. Re-generate with the commands
# below after an intended rendering change. The JSON form is
# additionally rendered twice and compared, pinning run-to-run
# determinism independently of the committed files.
JOINOPT="cargo run --offline -q --release -p joinopt-cli --bin joinopt --"
for q in star-5 tie-rich-chain-8; do
    $JOINOPT explain "tests/corpus/$q.query" \
        | diff -u "tests/goldens/explain-$q.txt" - \
        || { echo "explain text drifted for $q"; exit 1; }
    $JOINOPT explain "tests/corpus/$q.query" --format json > /tmp/explain-$q.1.json
    $JOINOPT explain "tests/corpus/$q.query" --format json > /tmp/explain-$q.2.json
    cmp /tmp/explain-$q.1.json /tmp/explain-$q.2.json \
        || { echo "explain JSON nondeterministic for $q"; exit 1; }
    diff -u "tests/goldens/explain-$q.json" /tmp/explain-$q.1.json \
        || { echo "explain JSON drifted for $q"; exit 1; }
    rm -f /tmp/explain-$q.1.json /tmp/explain-$q.2.json
done
$JOINOPT explain tests/corpus/tie-rich-chain-8.query --compare dpsize,goo \
    | diff -u tests/goldens/explain-compare-tie-rich-chain-8.txt - \
    || { echo "explain --compare output drifted"; exit 1; }

echo "==> examples (release)"
cargo build --offline --release --examples
for example in examples/*.rs; do
    name="$(basename "$example" .rs)"
    echo "--> example: $name"
    cargo run --offline -q --release --example "$name" > /dev/null
done

echo "CI OK"
