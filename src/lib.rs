//! # joinopt — optimal bushy join trees without cross products
//!
//! A from-scratch Rust implementation of the three dynamic-programming
//! join-ordering algorithms analyzed in Moerkotte & Neumann, *"Analysis
//! of Two Existing and One New Dynamic Programming Algorithm for the
//! Generation of Optimal Bushy Join Trees without Cross Products"*
//! (VLDB 2006): **DPsize**, **DPsub** and the paper's new **DPccp** —
//! plus the full substrate a plan generator needs (query graphs,
//! statistics, cardinality estimation, cost models, plan trees) and the
//! paper's analytical counter apparatus.
//!
//! This crate is a façade that re-exports the workspace members:
//!
//! | crate | contents |
//! |---|---|
//! | [`relset`] | bitset relation sets, Vance/Maier subset enumeration |
//! | [`qgraph`] | query graphs, generators, BFS numbering, `EnumerateCsg`/`EnumerateCmp`, `#csg`/`#ccp` formulas |
//! | [`cost`] | catalog, cardinality estimator, cost models, workloads |
//! | [`plan`] | plan arena and join trees |
//! | [`core`] | DPsize / DPsub / DPccp / DPhyp, counters, counter formulas, oracle, GOO, the [`Optimizer`](crate::prelude::Optimizer) façade, the [`OptimizeRequest`](crate::prelude::OptimizeRequest) session API and the parallel level-synchronous DPsub engine |
//! | [`query`] | textual query-description format and SQL frontend |
//! | [`exec`] | toy execution engine: synthesize data, run plans, measure |
//! | [`telemetry`] | zero-overhead observer API, run metrics, JSONL tracing |
//! | [`service`] | optimizer-as-a-service: owned [`QuerySpec`](crate::prelude::QuerySpec)s, canonical query fingerprints, the sharded plan cache and batched admission |
//!
//! # Quickstart
//!
//! ```
//! use joinopt::prelude::*;
//!
//! // A 5-relation star query (fact table R0, four dimensions).
//! let graph = qgraph::generators::star(5).unwrap();
//! let mut catalog = Catalog::new(&graph);
//! catalog.set_cardinality(0, 1_000_000.0).unwrap();
//! for dim in 1..5 {
//!     catalog.set_cardinality(dim, 100.0).unwrap();
//!     catalog.set_selectivity(dim - 1, 0.01).unwrap();
//! }
//!
//! let result = Optimizer::new().optimize(&graph, &catalog).unwrap();
//! println!("{}", result.tree.explain());
//! assert_eq!(result.tree.num_relations(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use joinopt_core as core;
pub use joinopt_cost as cost;
pub use joinopt_exec as exec;
pub use joinopt_plan as plan;
pub use joinopt_qgraph as qgraph;
pub use joinopt_query as query;
pub use joinopt_relset as relset;
pub use joinopt_service as service;
pub use joinopt_telemetry as telemetry;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use joinopt_core::{
        Algorithm, Counters, DpCcp, DpHyp, DpResult, DpSize, DpSizeLeftDeep, DpSub, JoinOrderer,
        OptimizeError, OptimizeOutcome, OptimizeRequest, Optimizer, Session,
    };
    pub use joinopt_cost::{
        CardinalityEstimator, Catalog, CostModel, Cout, HashJoin, MinOverPhysical, NestedLoopJoin,
        PlanStats, SortMergeJoin,
    };
    pub use joinopt_plan::JoinTree;
    pub use joinopt_qgraph::{self as qgraph, GraphKind, QueryGraph};
    pub use joinopt_relset::{RelIdx, RelSet};
    pub use joinopt_service::{
        CacheConfig, CostModelId, OptimizerService, Priority, QuerySpec, ServiceConfig,
        ServiceRequest,
    };
    pub use joinopt_telemetry::{
        MetricsCollector, MetricsRegistry, NoopObserver, Observer, RegistryObserver, RunReport,
        TraceWriter,
    };
}
