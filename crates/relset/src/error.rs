//! Error type for fallible [`RelSet`](crate::RelSet) construction.

use core::fmt;

/// Errors produced by fallible `RelSet` constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelSetError {
    /// A relation index was `>= MAX_RELATIONS` (64).
    IndexOutOfRange {
        /// The offending index.
        index: usize,
    },
    /// A universe size was requested that exceeds `MAX_RELATIONS`.
    UniverseTooLarge {
        /// The requested number of relations.
        n: usize,
    },
}

impl fmt::Display for RelSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RelSetError::IndexOutOfRange { index } => {
                write!(
                    f,
                    "relation index {index} out of range (max {})",
                    crate::MAX_RELATIONS - 1
                )
            }
            RelSetError::UniverseTooLarge { n } => {
                write!(
                    f,
                    "universe of {n} relations exceeds the supported maximum of {}",
                    crate::MAX_RELATIONS
                )
            }
        }
    }
}

impl std::error::Error for RelSetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_index() {
        let e = RelSetError::IndexOutOfRange { index: 99 };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("63"));
    }

    #[test]
    fn display_mentions_universe() {
        let e = RelSetError::UniverseTooLarge { n: 100 };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("64"));
    }
}
