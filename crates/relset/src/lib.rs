//! Bitset relation sets for join ordering.
//!
//! Every dynamic-programming join-ordering algorithm in this workspace
//! manipulates *sets of relations*. Following the paper (Moerkotte &
//! Neumann, VLDB 2006, Section 2.2) these sets are represented as machine
//! words: relation `R_j` corresponds to bit `j`, so an `u64` covers up to
//! [`MAX_RELATIONS`] relations — far beyond the reach of exact dynamic
//! programming, which is limited by time/space to roughly 25 relations on
//! dense graphs.
//!
//! The crate provides:
//!
//! * [`RelSet`] — a copyable, hashable set of relation indices with the
//!   full set algebra (union, intersection, difference, subset tests) and
//!   the bit-level helpers the algorithms need (lowest element, `B_i`
//!   prefix masks, element iteration in both directions);
//! * [`SubsetIter`] and friends — Vance/Maier fast subset enumeration
//!   (`sub' = (sub − set) & set`), which visits the subsets of a set in an
//!   order where every subset appears after all of its own subsets, the
//!   property DPsub relies on;
//! * [`RelSetError`] — fallible constructors for user-facing input paths.
//!
//! # Example
//!
//! ```
//! use joinopt_relset::RelSet;
//!
//! let s1 = RelSet::from_indices([0, 2]);
//! let s2 = RelSet::from_indices([1, 3]);
//! assert!(s1.is_disjoint(s2));
//! let s = s1 | s2;
//! assert_eq!(s.len(), 4);
//! // Enumerate all non-empty proper subsets of s (DPsub's inner loop):
//! let n = s.non_empty_proper_subsets().count();
//! assert_eq!(n, (1 << 4) - 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod relset;
pub mod rng;
mod subsets;

pub use error::RelSetError;
pub use relset::{RelIdx, RelSet, MAX_RELATIONS};
pub use rng::XorShift64;
pub use subsets::{NonEmptyProperSubsets, NonEmptySubsets, SubsetIter};
