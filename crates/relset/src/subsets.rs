//! Fast subset enumeration (Vance & Maier, SIGMOD 1996).
//!
//! The key code snippet the paper refers to steps through the subsets of a
//! bitset `set` with
//!
//! ```text
//! sub = (sub - set) & set
//! ```
//!
//! starting from `sub = 0`. Interpreted as binary counting restricted to
//! the bit positions of `set`, this visits all `2^|set|` subsets, and the
//! visit order is *valid for dynamic programming*: every subset is visited
//! only after all of its own subsets have been visited (numerically the
//! masked counter only ever grows, and `A ⊆ B ⇒ mask-rank(A) ≤
//! mask-rank(B)` restricted to the same mask).
//!
//! Three iterator flavours are provided, matching the loop domains of the
//! algorithms in the paper:
//!
//! * [`SubsetIter`] — all subsets including `∅` and the set itself;
//! * [`NonEmptySubsets`] — all subsets except `∅`;
//! * [`NonEmptyProperSubsets`] — all subsets except `∅` and the set
//!   itself; this is exactly the `S_1` domain of DPsub's inner loop.

use crate::relset::RelSet;

/// Iterator over **all** subsets of a set (including `∅` and the full set),
/// in Vance/Maier order.
#[derive(Debug, Clone)]
pub struct SubsetIter {
    set: u64,
    /// Next subset to yield; `None` once exhausted.
    next: Option<u64>,
}

impl SubsetIter {
    #[inline]
    pub(crate) fn new(set: RelSet) -> Self {
        SubsetIter {
            set: set.bits(),
            next: Some(0),
        }
    }
}

impl Iterator for SubsetIter {
    type Item = RelSet;

    #[inline]
    fn next(&mut self) -> Option<RelSet> {
        let cur = self.next?;
        // Advance: masked increment. When we wrap to 0 we are done.
        let nxt = cur.wrapping_sub(self.set) & self.set;
        self.next = if nxt == 0 { None } else { Some(nxt) };
        Some(RelSet::from_bits(cur))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.next {
            None => (0, Some(0)),
            Some(_) => {
                // Exact remaining count is expensive to compute in general;
                // give the standard bound.
                let total = 1usize
                    .checked_shl(self.set.count_ones())
                    .unwrap_or(usize::MAX);
                (1, Some(total))
            }
        }
    }
}

/// Iterator over the non-empty subsets of a set (including the set itself).
#[derive(Debug, Clone)]
pub struct NonEmptySubsets(SubsetIter);

impl NonEmptySubsets {
    #[inline]
    pub(crate) fn new(set: RelSet) -> Self {
        let mut inner = SubsetIter::new(set);
        // Skip the empty set (always yielded first).
        let _ = inner.next();
        NonEmptySubsets(inner)
    }
}

impl Iterator for NonEmptySubsets {
    type Item = RelSet;

    #[inline]
    fn next(&mut self) -> Option<RelSet> {
        self.0.next()
    }
}

/// Iterator over the non-empty **proper** subsets of a set — DPsub's inner
/// loop domain (`S_1 ⊂ S, S_1 ≠ ∅, S_1 ≠ S`).
#[derive(Debug, Clone)]
pub struct NonEmptyProperSubsets {
    set: u64,
    inner: NonEmptySubsets,
}

impl NonEmptyProperSubsets {
    #[inline]
    pub(crate) fn new(set: RelSet) -> Self {
        NonEmptyProperSubsets {
            set: set.bits(),
            inner: NonEmptySubsets::new(set),
        }
    }
}

impl Iterator for NonEmptyProperSubsets {
    type Item = RelSet;

    #[inline]
    fn next(&mut self) -> Option<RelSet> {
        let s = self.inner.next()?;
        if s.bits() == self.set {
            // The full set is always yielded last; stop.
            None
        } else {
            Some(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::RelSet;
    use std::collections::HashSet;

    #[test]
    fn all_subsets_of_empty() {
        let subs: Vec<_> = RelSet::EMPTY.subsets().collect();
        assert_eq!(subs, vec![RelSet::EMPTY]);
    }

    #[test]
    fn all_subsets_count_and_uniqueness() {
        let set = RelSet::from_indices([1, 3, 4, 7]);
        let subs: Vec<_> = set.subsets().collect();
        assert_eq!(subs.len(), 16);
        let uniq: HashSet<_> = subs.iter().copied().collect();
        assert_eq!(uniq.len(), 16);
        for s in &subs {
            assert!(s.is_subset(set));
        }
        assert_eq!(subs[0], RelSet::EMPTY);
        assert_eq!(*subs.last().unwrap(), set);
    }

    #[test]
    fn dp_valid_order() {
        // Every subset must appear after all of its own subsets.
        let set = RelSet::from_indices([0, 2, 3, 5, 6]);
        let subs: Vec<_> = set.subsets().collect();
        for (i, a) in subs.iter().enumerate() {
            for b in &subs[i + 1..] {
                assert!(
                    !b.is_strict_subset(*a),
                    "{b} appears after its superset {a}"
                );
            }
        }
    }

    #[test]
    fn non_empty_subsets_skips_empty() {
        let set = RelSet::from_indices([2, 9]);
        let subs: Vec<_> = set.non_empty_subsets().collect();
        assert_eq!(subs.len(), 3);
        assert!(!subs.contains(&RelSet::EMPTY));
        assert!(subs.contains(&set));
    }

    #[test]
    fn non_empty_proper_subsets_domain() {
        let set = RelSet::from_indices([0, 1, 4]);
        let subs: Vec<_> = set.non_empty_proper_subsets().collect();
        assert_eq!(subs.len(), (1 << 3) - 2);
        assert!(!subs.contains(&RelSet::EMPTY));
        assert!(!subs.contains(&set));
    }

    #[test]
    fn proper_subsets_of_singleton_is_empty() {
        assert_eq!(RelSet::single(3).non_empty_proper_subsets().count(), 0);
    }

    #[test]
    fn proper_subsets_of_empty_is_empty() {
        assert_eq!(RelSet::EMPTY.non_empty_proper_subsets().count(), 0);
    }

    #[test]
    fn subset_complement_pairing() {
        // For each proper subset S1, S2 = S \ S1 is also a proper subset,
        // and the pairing is an involution.
        let set = RelSet::from_indices([1, 2, 5, 8]);
        for s1 in set.non_empty_proper_subsets() {
            let s2 = set - s1;
            assert!(!s2.is_empty());
            assert!(s2.is_strict_subset(set));
            assert_eq!(s1 | s2, set);
            assert!(s1.is_disjoint(s2));
        }
    }

    #[test]
    fn full_64_bit_set_subsets_terminate() {
        // Don't enumerate 2^64 subsets; just verify the iterator advances
        // correctly near the top of the range with a high-bit mask.
        let set = RelSet::from_indices([62, 63]);
        let subs: Vec<_> = set.subsets().collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(*subs.last().unwrap(), set);
    }
}
