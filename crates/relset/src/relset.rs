//! The [`RelSet`] type: a set of relation indices packed into a `u64`.

use core::fmt;
use core::iter::FromIterator;
use core::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Sub, SubAssign};

use crate::error::RelSetError;
use crate::subsets::{NonEmptyProperSubsets, NonEmptySubsets, SubsetIter};

/// Index of a relation within a query (`R_j` in the paper).
pub type RelIdx = usize;

/// Maximum number of relations representable (bits in the backing word).
pub const MAX_RELATIONS: usize = 64;

/// A set of relation indices, represented as a 64-bit bitvector.
///
/// Bit `j` set means relation `R_j` is a member. `RelSet` is `Copy` and
/// two words wide nowhere — it *is* the word — so it can be used freely as
/// a hash-table key and passed by value through hot loops.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RelSet(u64);

impl RelSet {
    /// The empty set.
    pub const EMPTY: RelSet = RelSet(0);

    /// Creates an empty set.
    #[inline]
    pub const fn empty() -> Self {
        RelSet(0)
    }

    /// Creates a singleton set `{R_i}`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= MAX_RELATIONS`.
    #[inline]
    pub const fn single(i: RelIdx) -> Self {
        assert!(i < MAX_RELATIONS, "relation index out of range");
        RelSet(1u64 << i)
    }

    /// Fallible version of [`RelSet::single`].
    #[inline]
    pub const fn try_single(i: RelIdx) -> Result<Self, RelSetError> {
        if i < MAX_RELATIONS {
            Ok(RelSet(1u64 << i))
        } else {
            Err(RelSetError::IndexOutOfRange { index: i })
        }
    }

    /// Creates the full universe `{R_0, …, R_{n-1}}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_RELATIONS`.
    #[inline]
    pub const fn full(n: usize) -> Self {
        assert!(n <= MAX_RELATIONS, "universe too large");
        if n == MAX_RELATIONS {
            RelSet(u64::MAX)
        } else {
            RelSet((1u64 << n) - 1)
        }
    }

    /// Fallible version of [`RelSet::full`].
    #[inline]
    pub const fn try_full(n: usize) -> Result<Self, RelSetError> {
        if n <= MAX_RELATIONS {
            Ok(Self::full(n))
        } else {
            Err(RelSetError::UniverseTooLarge { n })
        }
    }

    /// Builds a set from an iterator of indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= MAX_RELATIONS`.
    #[inline]
    pub fn from_indices<I: IntoIterator<Item = RelIdx>>(indices: I) -> Self {
        indices
            .into_iter()
            .map(RelSet::single)
            .fold(RelSet::EMPTY, RelSet::union)
    }

    /// Constructs a set directly from its bit representation.
    ///
    /// This is the inverse of [`RelSet::bits`] and mirrors the paper's
    /// DPsub loop, where the loop counter `i` *is* the subset.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        RelSet(bits)
    }

    /// Returns the raw bit representation.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Number of relations in the set.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` iff the set contains no relation.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` iff exactly one relation is contained.
    #[inline]
    pub const fn is_singleton(self) -> bool {
        self.0 != 0 && (self.0 & (self.0 - 1)) == 0
    }

    /// Membership test for relation `i`.
    #[inline]
    pub const fn contains(self, i: RelIdx) -> bool {
        i < MAX_RELATIONS && (self.0 >> i) & 1 == 1
    }

    /// Set union `self ∪ other`.
    #[inline]
    pub const fn union(self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    /// Set intersection `self ∩ other`.
    #[inline]
    pub const fn intersect(self, other: RelSet) -> RelSet {
        RelSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub const fn difference(self, other: RelSet) -> RelSet {
        RelSet(self.0 & !other.0)
    }

    /// `true` iff the two sets share no relation.
    #[inline]
    pub const fn is_disjoint(self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    /// `true` iff the two sets share at least one relation.
    #[inline]
    pub const fn overlaps(self, other: RelSet) -> bool {
        self.0 & other.0 != 0
    }

    /// `true` iff `self ⊆ other`.
    #[inline]
    pub const fn is_subset(self, other: RelSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// `true` iff `self ⊂ other` (strict).
    #[inline]
    pub const fn is_strict_subset(self, other: RelSet) -> bool {
        self.0 != other.0 && self.is_subset(other)
    }

    /// `true` iff `self ⊇ other`.
    #[inline]
    pub const fn is_superset(self, other: RelSet) -> bool {
        other.is_subset(self)
    }

    /// Adds relation `i` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= MAX_RELATIONS`.
    #[inline]
    pub fn insert(&mut self, i: RelIdx) {
        assert!(i < MAX_RELATIONS, "relation index out of range");
        self.0 |= 1u64 << i;
    }

    /// Removes relation `i` from the set (no-op if absent).
    #[inline]
    pub fn remove(&mut self, i: RelIdx) {
        if i < MAX_RELATIONS {
            self.0 &= !(1u64 << i);
        }
    }

    /// Returns `self ∪ {i}` without mutating.
    #[inline]
    pub const fn with(self, i: RelIdx) -> RelSet {
        assert!(i < MAX_RELATIONS, "relation index out of range");
        RelSet(self.0 | (1u64 << i))
    }

    /// Returns `self \ {i}` without mutating.
    #[inline]
    pub const fn without(self, i: RelIdx) -> RelSet {
        if i < MAX_RELATIONS {
            RelSet(self.0 & !(1u64 << i))
        } else {
            self
        }
    }

    /// The smallest relation index in the set (`min(S)` in the paper).
    ///
    /// Returns `None` for the empty set.
    #[inline]
    pub const fn min_index(self) -> Option<RelIdx> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// The largest relation index in the set.
    #[inline]
    pub const fn max_index(self) -> Option<RelIdx> {
        if self.0 == 0 {
            None
        } else {
            Some(63 - self.0.leading_zeros() as usize)
        }
    }

    /// The singleton set containing only the smallest member.
    ///
    /// Returns the empty set when `self` is empty.
    #[inline]
    pub const fn lowest(self) -> RelSet {
        RelSet(self.0 & self.0.wrapping_neg())
    }

    /// The prefix mask `B_i = {v_j | j ≤ i}` used by `EnumerateCsg`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= MAX_RELATIONS`.
    #[inline]
    pub const fn prefix_through(i: RelIdx) -> RelSet {
        assert!(i < MAX_RELATIONS, "relation index out of range");
        if i == MAX_RELATIONS - 1 {
            RelSet(u64::MAX)
        } else {
            RelSet((1u64 << (i + 1)) - 1)
        }
    }

    /// The complement of `self` within the universe of `n` relations.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_RELATIONS`.
    #[inline]
    pub const fn complement_in(self, n: usize) -> RelSet {
        RelSet(!self.0 & Self::full(n).0)
    }

    /// Iterates over the member indices in ascending order.
    #[inline]
    pub fn iter(self) -> RelIter {
        RelIter(self.0)
    }

    /// Iterates over the member indices in descending order.
    #[inline]
    pub fn iter_descending(self) -> RelIterDesc {
        RelIterDesc(self.0)
    }

    /// Enumerates **all** subsets of `self`, including the empty set and
    /// `self` itself, in Vance/Maier order (every subset appears after all
    /// of its own subsets).
    #[inline]
    pub fn subsets(self) -> SubsetIter {
        SubsetIter::new(self)
    }

    /// Enumerates the non-empty subsets of `self` (including `self`).
    #[inline]
    pub fn non_empty_subsets(self) -> NonEmptySubsets {
        NonEmptySubsets::new(self)
    }

    /// Enumerates the non-empty *proper* subsets of `self` — the inner
    /// loop domain of DPsub.
    #[inline]
    pub fn non_empty_proper_subsets(self) -> NonEmptyProperSubsets {
        NonEmptyProperSubsets::new(self)
    }
}

/// Ascending iterator over the members of a [`RelSet`].
#[derive(Debug, Clone)]
pub struct RelIter(u64);

impl Iterator for RelIter {
    type Item = RelIdx;

    #[inline]
    fn next(&mut self) -> Option<RelIdx> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RelIter {}

/// Descending iterator over the members of a [`RelSet`].
#[derive(Debug, Clone)]
pub struct RelIterDesc(u64);

impl Iterator for RelIterDesc {
    type Item = RelIdx;

    #[inline]
    fn next(&mut self) -> Option<RelIdx> {
        if self.0 == 0 {
            None
        } else {
            let i = 63 - self.0.leading_zeros() as usize;
            self.0 &= !(1u64 << i);
            Some(i)
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RelIterDesc {}

impl IntoIterator for RelSet {
    type Item = RelIdx;
    type IntoIter = RelIter;

    #[inline]
    fn into_iter(self) -> RelIter {
        self.iter()
    }
}

impl FromIterator<RelIdx> for RelSet {
    fn from_iter<I: IntoIterator<Item = RelIdx>>(iter: I) -> Self {
        RelSet::from_indices(iter)
    }
}

impl BitOr for RelSet {
    type Output = RelSet;
    #[inline]
    fn bitor(self, rhs: RelSet) -> RelSet {
        self.union(rhs)
    }
}

impl BitOrAssign for RelSet {
    #[inline]
    fn bitor_assign(&mut self, rhs: RelSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for RelSet {
    type Output = RelSet;
    #[inline]
    fn bitand(self, rhs: RelSet) -> RelSet {
        self.intersect(rhs)
    }
}

impl BitAndAssign for RelSet {
    #[inline]
    fn bitand_assign(&mut self, rhs: RelSet) {
        self.0 &= rhs.0;
    }
}

impl BitXor for RelSet {
    type Output = RelSet;
    #[inline]
    fn bitxor(self, rhs: RelSet) -> RelSet {
        RelSet(self.0 ^ rhs.0)
    }
}

impl BitXorAssign for RelSet {
    #[inline]
    fn bitxor_assign(&mut self, rhs: RelSet) {
        self.0 ^= rhs.0;
    }
}

impl Sub for RelSet {
    type Output = RelSet;
    #[inline]
    fn sub(self, rhs: RelSet) -> RelSet {
        self.difference(rhs)
    }
}

impl SubAssign for RelSet {
    #[inline]
    fn sub_assign(&mut self, rhs: RelSet) {
        self.0 &= !rhs.0;
    }
}

impl fmt::Debug for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "R{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_properties() {
        let e = RelSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.min_index(), None);
        assert_eq!(e.max_index(), None);
        assert_eq!(e.iter().count(), 0);
        assert!(!e.is_singleton());
    }

    #[test]
    fn singleton_properties() {
        let s = RelSet::single(5);
        assert!(s.is_singleton());
        assert_eq!(s.len(), 1);
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert_eq!(s.min_index(), Some(5));
        assert_eq!(s.max_index(), Some(5));
    }

    #[test]
    fn single_bit63_works() {
        let s = RelSet::single(63);
        assert!(s.contains(63));
        assert_eq!(s.max_index(), Some(63));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_out_of_range_panics() {
        let _ = RelSet::single(64);
    }

    #[test]
    fn try_single_errors() {
        assert!(RelSet::try_single(63).is_ok());
        assert_eq!(
            RelSet::try_single(64),
            Err(RelSetError::IndexOutOfRange { index: 64 })
        );
    }

    #[test]
    fn full_universe() {
        assert_eq!(RelSet::full(0), RelSet::empty());
        assert_eq!(RelSet::full(3).len(), 3);
        assert_eq!(RelSet::full(64).len(), 64);
        assert_eq!(
            RelSet::try_full(65),
            Err(RelSetError::UniverseTooLarge { n: 65 })
        );
    }

    #[test]
    fn set_algebra() {
        let a = RelSet::from_indices([0, 1, 2]);
        let b = RelSet::from_indices([2, 3]);
        assert_eq!(a.union(b), RelSet::from_indices([0, 1, 2, 3]));
        assert_eq!(a.intersect(b), RelSet::single(2));
        assert_eq!(a.difference(b), RelSet::from_indices([0, 1]));
        assert!(a.overlaps(b));
        assert!(!a.is_disjoint(b));
        assert!(RelSet::from_indices([0, 1]).is_disjoint(b));
    }

    #[test]
    fn subset_relations() {
        let a = RelSet::from_indices([1, 2]);
        let b = RelSet::from_indices([0, 1, 2]);
        assert!(a.is_subset(b));
        assert!(a.is_strict_subset(b));
        assert!(b.is_superset(a));
        assert!(a.is_subset(a));
        assert!(!a.is_strict_subset(a));
        assert!(RelSet::EMPTY.is_subset(a));
    }

    #[test]
    fn insert_remove_with_without() {
        let mut s = RelSet::empty();
        s.insert(3);
        s.insert(7);
        assert_eq!(s, RelSet::from_indices([3, 7]));
        s.remove(3);
        assert_eq!(s, RelSet::single(7));
        s.remove(40); // absent: no-op
        assert_eq!(s, RelSet::single(7));
        assert_eq!(s.with(1), RelSet::from_indices([1, 7]));
        assert_eq!(s.without(7), RelSet::EMPTY);
        // original unchanged by with/without
        assert_eq!(s, RelSet::single(7));
    }

    #[test]
    fn min_max_lowest() {
        let s = RelSet::from_indices([3, 9, 17]);
        assert_eq!(s.min_index(), Some(3));
        assert_eq!(s.max_index(), Some(17));
        assert_eq!(s.lowest(), RelSet::single(3));
        assert_eq!(RelSet::EMPTY.lowest(), RelSet::EMPTY);
    }

    #[test]
    fn prefix_through_masks() {
        assert_eq!(RelSet::prefix_through(0), RelSet::single(0));
        assert_eq!(RelSet::prefix_through(2), RelSet::from_indices([0, 1, 2]));
        assert_eq!(RelSet::prefix_through(63).len(), 64);
    }

    #[test]
    fn complement() {
        let s = RelSet::from_indices([0, 2]);
        assert_eq!(s.complement_in(4), RelSet::from_indices([1, 3]));
        assert_eq!(RelSet::EMPTY.complement_in(3), RelSet::full(3));
        assert_eq!(RelSet::full(64).complement_in(64), RelSet::EMPTY);
    }

    #[test]
    fn iteration_orders() {
        let s = RelSet::from_indices([5, 1, 9]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
        assert_eq!(s.iter_descending().collect::<Vec<_>>(), vec![9, 5, 1]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn operators_match_methods() {
        let a = RelSet::from_indices([0, 1]);
        let b = RelSet::from_indices([1, 2]);
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersect(b));
        assert_eq!(a - b, a.difference(b));
        assert_eq!(a ^ b, RelSet::from_indices([0, 2]));
        let mut c = a;
        c |= b;
        assert_eq!(c, a | b);
        let mut d = a;
        d &= b;
        assert_eq!(d, a & b);
        let mut e = a;
        e -= b;
        assert_eq!(e, a - b);
        let mut f = a;
        f ^= b;
        assert_eq!(f, a ^ b);
    }

    #[test]
    fn display_format() {
        assert_eq!(RelSet::EMPTY.to_string(), "{}");
        assert_eq!(RelSet::from_indices([0, 4]).to_string(), "{R0, R4}");
    }

    #[test]
    fn from_iterator_and_bits_roundtrip() {
        let s: RelSet = [2usize, 4, 6].into_iter().collect();
        assert_eq!(s, RelSet::from_bits(0b1010100));
        assert_eq!(RelSet::from_bits(s.bits()), s);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        assert!(!RelSet::full(64).contains(64));
        assert!(!RelSet::full(64).contains(usize::MAX));
    }
}
