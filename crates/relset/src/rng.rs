//! A minimal deterministic PRNG for workload generation and tests.
//!
//! The workspace deliberately has **no external dependencies**, so the
//! seeded randomness used by the workload generators, the annealing
//! baseline and the randomized tests lives here instead of in the `rand`
//! crate. The generator is xorshift64* (Marsaglia; Vigna's `*` output
//! scrambler) seeded through one round of SplitMix64 — tiny, fast, and
//! more than good enough for generating test inputs. It is **not**
//! cryptographically secure.
//!
//! Streams are stable: for a given seed the sequence of draws is fixed
//! forever, which is what makes `workload::family_workload(kind, n, seed)`
//! and friends reproducible across runs and machines.

/// A seeded xorshift64* generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. Any seed is valid; the seed is
    /// passed through SplitMix64 so `0` and small integers still produce
    /// well-mixed streams.
    pub fn seed_from_u64(seed: u64) -> XorShift64 {
        // One SplitMix64 round; the result is never 0 for any input
        // because the final xor-shift of a bijective mix only maps 0 to 0
        // for one specific input, which the added constant avoids.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64 {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `range` (half-open, like `rand`'s `gen_range`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: core::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        // Modulo bias is ≤ span/2^64 — irrelevant for test-input sizes.
        range.start + (self.next_u64() % span) as usize
    }

    /// A uniform `u32` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_range_u32(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "gen_range_u32 with zero bound");
        (self.next_u64() % u64::from(bound)) as u32
    }

    /// A uniform `f64` in `[lo, hi)` (returns `lo` when `lo == hi`).
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::seed_from_u64(42);
        let mut b = XorShift64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::seed_from_u64(0);
        let draws: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = XorShift64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut r = XorShift64::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..5 should appear");
        assert_eq!(r.gen_range(3..4), 3);
        assert_eq!(r.gen_range_f64(2.5, 2.5), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = XorShift64::seed_from_u64(1);
        let _ = r.gen_range(4..4);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = XorShift64::seed_from_u64(9);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = XorShift64::seed_from_u64(5);
        let mut xs: Vec<usize> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        // With overwhelming probability the order changed.
        assert_ne!(xs, (0..20).collect::<Vec<_>>());
    }
}
