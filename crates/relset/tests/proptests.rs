//! Randomized property tests for `RelSet` laws and subset enumeration.
//!
//! Deterministic: cases are drawn from the in-repo [`XorShift64`] with
//! fixed seeds, so failures reproduce exactly (no external property-test
//! framework, which would not be available offline).

use joinopt_relset::{RelSet, XorShift64};

const CASES: usize = 256;

fn arb_relset(rng: &mut XorShift64) -> RelSet {
    RelSet::from_bits(rng.next_u64())
}

/// Small sets (≤ 10 members out of 0..16) so subset enumeration stays
/// cheap even for the quadratic ordering checks.
fn arb_small_relset(rng: &mut XorShift64) -> RelSet {
    let k = rng.gen_range(0..11);
    let mut s = RelSet::EMPTY;
    for _ in 0..k {
        s = s.with(rng.gen_range(0..16));
    }
    s
}

#[test]
fn union_commutative() {
    let mut rng = XorShift64::seed_from_u64(1);
    for _ in 0..CASES {
        let (a, b) = (arb_relset(&mut rng), arb_relset(&mut rng));
        assert_eq!(a | b, b | a);
    }
}

#[test]
fn intersection_commutative() {
    let mut rng = XorShift64::seed_from_u64(2);
    for _ in 0..CASES {
        let (a, b) = (arb_relset(&mut rng), arb_relset(&mut rng));
        assert_eq!(a & b, b & a);
    }
}

#[test]
fn union_associative() {
    let mut rng = XorShift64::seed_from_u64(3);
    for _ in 0..CASES {
        let (a, b, c) = (
            arb_relset(&mut rng),
            arb_relset(&mut rng),
            arb_relset(&mut rng),
        );
        assert_eq!((a | b) | c, a | (b | c));
    }
}

#[test]
fn de_morgan_within_universe() {
    let mut rng = XorShift64::seed_from_u64(4);
    for _ in 0..CASES {
        let a = arb_relset(&mut rng) & RelSet::full(32);
        let b = arb_relset(&mut rng) & RelSet::full(32);
        assert_eq!(
            (a | b).complement_in(32),
            a.complement_in(32) & b.complement_in(32)
        );
    }
}

#[test]
fn difference_disjoint_from_subtrahend() {
    let mut rng = XorShift64::seed_from_u64(5);
    for _ in 0..CASES {
        let (a, b) = (arb_relset(&mut rng), arb_relset(&mut rng));
        assert!((a - b).is_disjoint(b));
        assert_eq!((a - b) | (a & b), a);
    }
}

#[test]
fn len_is_cardinality() {
    let mut rng = XorShift64::seed_from_u64(6);
    for _ in 0..CASES {
        let a = arb_relset(&mut rng);
        assert_eq!(a.len(), a.iter().count());
    }
}

#[test]
fn iter_ascending_sorted() {
    let mut rng = XorShift64::seed_from_u64(7);
    for _ in 0..CASES {
        let a = arb_relset(&mut rng);
        let v: Vec<_> = a.iter().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(v, sorted);
    }
}

#[test]
fn descending_is_reverse_of_ascending() {
    let mut rng = XorShift64::seed_from_u64(8);
    for _ in 0..CASES {
        let a = arb_relset(&mut rng);
        let mut up: Vec<_> = a.iter().collect();
        up.reverse();
        let down: Vec<_> = a.iter_descending().collect();
        assert_eq!(up, down);
    }
}

#[test]
fn min_max_consistent() {
    let mut rng = XorShift64::seed_from_u64(9);
    for _ in 0..CASES {
        let a = arb_relset(&mut rng);
        assert_eq!(a.min_index(), a.iter().next());
        assert_eq!(a.max_index(), a.iter_descending().next());
    }
}

#[test]
fn subset_count_is_power_of_two() {
    let mut rng = XorShift64::seed_from_u64(10);
    for _ in 0..CASES {
        let a = arb_small_relset(&mut rng);
        assert_eq!(a.subsets().count(), 1usize << a.len());
    }
}

#[test]
fn subsets_all_distinct_and_contained() {
    let mut rng = XorShift64::seed_from_u64(11);
    for _ in 0..CASES {
        let a = arb_small_relset(&mut rng);
        let subs: Vec<_> = a.subsets().collect();
        let uniq: std::collections::HashSet<_> = subs.iter().copied().collect();
        assert_eq!(uniq.len(), subs.len());
        for s in subs {
            assert!(s.is_subset(a));
        }
    }
}

#[test]
fn subsets_dp_order() {
    // A set never appears before one of its subsets.
    let mut rng = XorShift64::seed_from_u64(12);
    for _ in 0..64 {
        let a = arb_small_relset(&mut rng);
        let subs: Vec<_> = a.subsets().collect();
        for (i, s) in subs.iter().enumerate() {
            for t in &subs[i + 1..] {
                assert!(!t.is_strict_subset(*s), "{} after superset {}", t, s);
            }
        }
    }
}

#[test]
fn proper_subsets_pair_with_complement() {
    let mut rng = XorShift64::seed_from_u64(13);
    let mut checked = 0;
    while checked < 64 {
        let a = arb_small_relset(&mut rng);
        if a.len() < 2 {
            continue;
        }
        checked += 1;
        for s1 in a.non_empty_proper_subsets() {
            let s2 = a - s1;
            assert!(!s2.is_empty());
            assert!(s1.is_disjoint(s2));
            assert_eq!(s1 | s2, a);
        }
    }
}

#[test]
fn with_without_roundtrip() {
    let mut rng = XorShift64::seed_from_u64(14);
    for _ in 0..CASES {
        let a = arb_relset(&mut rng);
        let i = rng.gen_range(0..64);
        assert!(a.with(i).contains(i));
        assert!(!a.without(i).contains(i));
        if !a.contains(i) {
            assert_eq!(a.with(i).without(i), a);
        }
    }
}
