//! Property-based tests for `RelSet` laws and subset enumeration.

use joinopt_relset::RelSet;
use proptest::prelude::*;

fn arb_relset() -> impl Strategy<Value = RelSet> {
    any::<u64>().prop_map(RelSet::from_bits)
}

/// Small sets (≤ 12 members) so subset enumeration stays cheap.
fn arb_small_relset() -> impl Strategy<Value = RelSet> {
    proptest::collection::btree_set(0usize..16, 0..=12).prop_map(RelSet::from_indices)
}

proptest! {
    #[test]
    fn union_commutative(a in arb_relset(), b in arb_relset()) {
        prop_assert_eq!(a | b, b | a);
    }

    #[test]
    fn intersection_commutative(a in arb_relset(), b in arb_relset()) {
        prop_assert_eq!(a & b, b & a);
    }

    #[test]
    fn union_associative(a in arb_relset(), b in arb_relset(), c in arb_relset()) {
        prop_assert_eq!((a | b) | c, a | (b | c));
    }

    #[test]
    fn de_morgan_within_universe(a in arb_relset(), b in arb_relset()) {
        let a = a & RelSet::full(32);
        let b = b & RelSet::full(32);
        prop_assert_eq!(
            (a | b).complement_in(32),
            a.complement_in(32) & b.complement_in(32)
        );
    }

    #[test]
    fn difference_disjoint_from_subtrahend(a in arb_relset(), b in arb_relset()) {
        prop_assert!((a - b).is_disjoint(b));
        prop_assert_eq!((a - b) | (a & b), a);
    }

    #[test]
    fn len_is_cardinality(a in arb_relset()) {
        prop_assert_eq!(a.len(), a.iter().count());
    }

    #[test]
    fn iter_ascending_sorted(a in arb_relset()) {
        let v: Vec<_> = a.iter().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(v, sorted);
    }

    #[test]
    fn descending_is_reverse_of_ascending(a in arb_relset()) {
        let mut up: Vec<_> = a.iter().collect();
        up.reverse();
        let down: Vec<_> = a.iter_descending().collect();
        prop_assert_eq!(up, down);
    }

    #[test]
    fn min_max_consistent(a in arb_relset()) {
        prop_assert_eq!(a.min_index(), a.iter().next());
        prop_assert_eq!(a.max_index(), a.iter_descending().next());
    }

    #[test]
    fn subset_count_is_power_of_two(a in arb_small_relset()) {
        prop_assert_eq!(a.subsets().count(), 1usize << a.len());
    }

    #[test]
    fn subsets_all_distinct_and_contained(a in arb_small_relset()) {
        let subs: Vec<_> = a.subsets().collect();
        let uniq: std::collections::HashSet<_> = subs.iter().copied().collect();
        prop_assert_eq!(uniq.len(), subs.len());
        for s in subs {
            prop_assert!(s.is_subset(a));
        }
    }

    #[test]
    fn subsets_dp_order(a in arb_small_relset()) {
        // A set never appears before one of its subsets.
        let subs: Vec<_> = a.subsets().collect();
        for (i, s) in subs.iter().enumerate() {
            for t in &subs[i + 1..] {
                prop_assert!(!t.is_strict_subset(*s), "{} after superset {}", t, s);
            }
        }
    }

    #[test]
    fn proper_subsets_pair_with_complement(a in arb_small_relset()) {
        prop_assume!(a.len() >= 2);
        for s1 in a.non_empty_proper_subsets() {
            let s2 = a - s1;
            prop_assert!(!s2.is_empty());
            prop_assert!(s1.is_disjoint(s2));
            prop_assert_eq!(s1 | s2, a);
        }
    }

    #[test]
    fn with_without_roundtrip(a in arb_relset(), i in 0usize..64) {
        prop_assert!(a.with(i).contains(i));
        prop_assert!(!a.without(i).contains(i));
        if !a.contains(i) {
            prop_assert_eq!(a.with(i).without(i), a);
        }
    }
}
