//! Metamorphic properties: transformations of an instance with a known
//! effect on the optimum, checked without any reference oracle.
//!
//! * **Renumbering invariance** — relabeling the relations by any
//!   permutation must not change the optimal cost (within rounding:
//!   the estimator multiplies the same factors in a different order).
//! * **Scaling invariance** — multiplying every join cost by a power
//!   of two scales the optimum *exactly* (power-of-two scaling only
//!   shifts f64 exponents) and must not change the chosen plan shape:
//!   all comparisons are preserved.
//! * **Selectivity tightening** — lowering one selectivity shrinks
//!   every intermediate result that predicate touches, so under
//!   `C_out` no plan gets more expensive and the optimum is monotone
//!   non-increasing.

use joinopt_cost::{Catalog, CostModel, Cout, PlanStats};
use joinopt_plan::JoinTree;
use joinopt_qgraph::bfs;
use joinopt_relset::XorShift64;

use crate::generator::Instance;
use crate::oracle::Divergence;

/// `C_out` with every join's *increment* (the emitted-tuple term)
/// multiplied by a constant factor. The model returns total plan cost
/// (subplan costs included), so only the `out_card` term is scaled —
/// by induction every plan's total is exactly `factor ×` its `C_out`
/// total. With a power-of-two factor the scaling is bit-exact
/// (multiplication by a power of two commutes with f64 rounding), so
/// optimal costs must scale bit-exactly too.
struct ScaledCout {
    factor: f64,
}

impl CostModel for ScaledCout {
    fn join_cost(&self, left: &PlanStats, right: &PlanStats, out_card: f64) -> f64 {
        self.factor * out_card + left.cost + right.cost
    }

    fn name(&self) -> &'static str {
        "scaled-cout"
    }

    fn is_symmetric(&self) -> bool {
        Cout.is_symmetric()
    }
}

/// The power-of-two factor the scaling property uses.
const SCALE: f64 = 4.0;

fn diverge(check: &'static str, detail: String) -> Divergence {
    Divergence { check, detail }
}

fn optimal(
    graph: &joinopt_qgraph::QueryGraph,
    catalog: &Catalog,
    model: &dyn CostModel,
) -> Result<joinopt_core::DpResult, joinopt_core::OptimizeError> {
    use joinopt_core::{DpCcp, JoinOrderer};
    DpCcp.optimize(graph, catalog, model)
}

fn shape(t: &JoinTree) -> String {
    match t {
        JoinTree::Scan { relation, .. } => format!("R{relation}"),
        JoinTree::Join { left, right, .. } => format!("({} {})", shape(left), shape(right)),
    }
}

/// Runs all three metamorphic properties on a connected instance with
/// at least two relations (smaller or disconnected instances have
/// nothing to transform and pass vacuously).
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_metamorphic(inst: &Instance) -> Result<(), Divergence> {
    if inst.graph.num_relations() < 2 || !inst.graph.is_connected() {
        return Ok(());
    }
    let base = optimal(&inst.graph, &inst.catalog, &Cout).map_err(|e| {
        diverge(
            "metamorphic",
            format!("{}: base optimization failed: {e}", inst.name),
        )
    })?;
    check_renumbering(inst, base.cost)?;
    check_scaling(inst, &base)?;
    check_tightening(inst, base.cost)
}

/// Permutation of the relation labels: same query, same optimum.
fn check_renumbering(inst: &Instance, base_cost: f64) -> Result<(), Divergence> {
    let n = inst.graph.num_relations();
    let mut rng = XorShift64::seed_from_u64(inst.seed ^ 0x5265_6e75_6d62_6572); // "Renumber"
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    // `renumber` preserves edge order, so selectivities keep their edge
    // ids; only the cardinalities move with their relations.
    let graph = bfs::renumber(&inst.graph, &order);
    let mut catalog = Catalog::with_shape(n, inst.graph.num_edges());
    for (new, &old) in order.iter().enumerate() {
        catalog
            .set_cardinality(new, inst.catalog.cardinality(old))
            .map_err(|e| {
                diverge(
                    "metamorphic-renumber",
                    format!("{}: permuted catalog rejected: {e}", inst.name),
                )
            })?;
    }
    for e in 0..inst.graph.num_edges() {
        catalog
            .set_selectivity(e, inst.catalog.selectivity(e))
            .map_err(|e| {
                diverge(
                    "metamorphic-renumber",
                    format!("{}: permuted catalog rejected: {e}", inst.name),
                )
            })?;
    }
    let renamed = optimal(&graph, &catalog, &Cout).map_err(|e| {
        diverge(
            "metamorphic-renumber",
            format!("{}: renumbered instance failed to optimize: {e}", inst.name),
        )
    })?;
    let tol = crate::oracle::COST_TOLERANCE * base_cost.abs().max(1.0);
    if (renamed.cost - base_cost).abs() > tol {
        return Err(diverge(
            "metamorphic-renumber",
            format!(
                "{}: optimal cost changed under relabeling {order:?}: {:e} vs {:e}",
                inst.name, renamed.cost, base_cost
            ),
        ));
    }
    Ok(())
}

/// Power-of-two cost scaling: bit-exact cost scaling, identical shape.
fn check_scaling(inst: &Instance, base: &joinopt_core::DpResult) -> Result<(), Divergence> {
    let scaled =
        optimal(&inst.graph, &inst.catalog, &ScaledCout { factor: SCALE }).map_err(|e| {
            diverge(
                "metamorphic-scale",
                format!("{}: scaled instance failed to optimize: {e}", inst.name),
            )
        })?;
    if scaled.cost.to_bits() != (SCALE * base.cost).to_bits() {
        return Err(diverge(
            "metamorphic-scale",
            format!(
                "{}: {SCALE}×-scaled optimum is {:e}, expected exactly {:e}",
                inst.name,
                scaled.cost,
                SCALE * base.cost
            ),
        ));
    }
    if shape(&scaled.tree) != shape(&base.tree) {
        return Err(diverge(
            "metamorphic-scale",
            format!(
                "{}: cost scaling changed the chosen plan: {} vs {}",
                inst.name,
                shape(&scaled.tree),
                shape(&base.tree)
            ),
        ));
    }
    Ok(())
}

/// Tightening one selectivity: the optimum never increases.
fn check_tightening(inst: &Instance, base_cost: f64) -> Result<(), Divergence> {
    let m = inst.graph.num_edges();
    if m == 0 {
        return Ok(());
    }
    let mut rng = XorShift64::seed_from_u64(inst.seed ^ 0x5469_6768_7465_6e21); // "Tighten!"
    let edge = rng.gen_range(0..m);
    let mut catalog = inst.catalog.clone();
    catalog
        .set_selectivity(edge, inst.catalog.selectivity(edge) * 0.25)
        .map_err(|e| {
            diverge(
                "metamorphic-tighten",
                format!("{}: tightened catalog rejected: {e}", inst.name),
            )
        })?;
    let tightened = optimal(&inst.graph, &catalog, &Cout).map_err(|e| {
        diverge(
            "metamorphic-tighten",
            format!("{}: tightened instance failed to optimize: {e}", inst.name),
        )
    })?;
    if tightened.cost > base_cost * (1.0 + crate::oracle::COST_TOLERANCE) {
        return Err(diverge(
            "metamorphic-tighten",
            format!(
                "{}: tightening edge {edge} *raised* the optimum: {:e} from {:e}",
                inst.name, tightened.cost, base_cost
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{self, generate_instance};

    #[test]
    fn clean_instances_satisfy_all_properties() {
        for index in 0..15 {
            let inst = generate_instance(99, index, 8);
            check_metamorphic(&inst).unwrap_or_else(|d| panic!("{}: {d}", inst.name));
        }
    }

    #[test]
    fn tiny_and_tie_rich_instances_pass() {
        check_metamorphic(&generator::tie_rich_chain(2)).unwrap();
        check_metamorphic(&generator::tie_rich_chain(6)).unwrap();
    }

    #[test]
    fn scaled_cout_reports_itself() {
        let m = ScaledCout { factor: 4.0 };
        assert_eq!(m.name(), "scaled-cout");
        assert_eq!(m.is_symmetric(), Cout.is_symmetric());
    }
}
