//! Service-layer properties: canonical-fingerprint invariance and
//! cold/warm plan-cache replay.
//!
//! The plan cache in `joinopt-service` is only sound if the canonical
//! fingerprint really is invariant under the transformations it claims
//! (relation renumbering and join-edge reordering) and if a cache hit
//! really reproduces the cold run bit for bit. Both claims are pure
//! properties of one instance, so they slot into the fuzz harness next
//! to the metamorphic checks:
//!
//! * [`check_fingerprint`] — relabels the relations by a random
//!   permutation and rebuilds the graph with its edge list reversed;
//!   both variants must produce the *identical* 128-bit fingerprint
//!   **and** the identical canonical encoding (the encoding is what the
//!   cache verifies on lookup, so encoding equality — not just hash
//!   equality — is the load-bearing property).
//! * [`check_cache_replay`] — optimizes the instance twice through one
//!   [`OptimizerService`]: the second answer must come from the cache
//!   and carry bit-identical cost bits and an identical plan tree.

use joinopt_core::Algorithm;
use joinopt_cost::Catalog;
use joinopt_qgraph::bfs;
use joinopt_relset::XorShift64;
use joinopt_service::{canonicalize, OptimizerService, QuerySpec, ServiceRequest};

use crate::generator::Instance;
use crate::oracle::Divergence;

fn diverge(check: &'static str, detail: String) -> Divergence {
    Divergence { check, detail }
}

fn capture(inst: &Instance, check: &'static str) -> Result<QuerySpec, Divergence> {
    QuerySpec::capture(&inst.graph, &inst.catalog)
        .map_err(|e| diverge(check, format!("{}: capture failed: {e}", inst.name)))
}

/// Renumbering + edge-reordering invariance of the canonical
/// fingerprint, checked on every instance (connected or not — the
/// fingerprint must be total).
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_fingerprint(inst: &Instance) -> Result<(), Divergence> {
    let base = canonicalize(&capture(inst, "fingerprint-renumber")?);
    check_fingerprint_renumber(inst, &base)?;
    check_fingerprint_reorder(inst, &base)
}

fn check_fingerprint_renumber(
    inst: &Instance,
    base: &joinopt_service::CanonicalForm,
) -> Result<(), Divergence> {
    let n = inst.graph.num_relations();
    // A different salt from the metamorphic renumbering check, so the
    // two properties exercise different permutations of each instance.
    let mut rng = XorShift64::seed_from_u64(inst.seed ^ 0x466e_6772_7072_6e74); // "Fngrprnt"
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    // `renumber` preserves edge order, so selectivities keep their edge
    // ids; only the cardinalities move with their relations.
    let graph = bfs::renumber(&inst.graph, &order);
    let mut catalog = Catalog::with_shape(n, inst.graph.num_edges());
    for (new, &old) in order.iter().enumerate() {
        catalog
            .set_cardinality(new, inst.catalog.cardinality(old))
            .map_err(|e| {
                diverge(
                    "fingerprint-renumber",
                    format!("{}: permuted catalog rejected: {e}", inst.name),
                )
            })?;
    }
    for e in 0..inst.graph.num_edges() {
        catalog
            .set_selectivity(e, inst.catalog.selectivity(e))
            .map_err(|e| {
                diverge(
                    "fingerprint-renumber",
                    format!("{}: permuted catalog rejected: {e}", inst.name),
                )
            })?;
    }
    let renamed = QuerySpec::capture(&graph, &catalog).map_err(|e| {
        diverge(
            "fingerprint-renumber",
            format!("{}: renumbered capture failed: {e}", inst.name),
        )
    })?;
    let renamed = canonicalize(&renamed);
    if renamed.fingerprint != base.fingerprint || renamed.encoding != base.encoding {
        return Err(diverge(
            "fingerprint-renumber",
            format!(
                "{}: canonical form changed under relabeling {order:?}: {} vs {}",
                inst.name, renamed.fingerprint, base.fingerprint
            ),
        ));
    }
    Ok(())
}

fn check_fingerprint_reorder(
    inst: &Instance,
    base: &joinopt_service::CanonicalForm,
) -> Result<(), Divergence> {
    let n = inst.graph.num_relations();
    let m = inst.graph.num_edges();
    let edges: Vec<_> = inst.graph.edges().iter().map(|e| (e.u, e.v)).collect();
    let graph =
        joinopt_qgraph::QueryGraph::from_edges(n, edges.iter().rev().copied()).map_err(|e| {
            diverge(
                "fingerprint-reorder",
                format!("{}: reversed edge list rejected: {e}", inst.name),
            )
        })?;
    let mut catalog = Catalog::with_shape(n, m);
    for r in 0..n {
        catalog
            .set_cardinality(r, inst.catalog.cardinality(r))
            .map_err(|e| {
                diverge(
                    "fingerprint-reorder",
                    format!("{}: reordered catalog rejected: {e}", inst.name),
                )
            })?;
    }
    // Edge id `e` in the reversed graph is edge `m - 1 - e` of the
    // original, and must carry that edge's selectivity.
    for e in 0..m {
        catalog
            .set_selectivity(e, inst.catalog.selectivity(m - 1 - e))
            .map_err(|e| {
                diverge(
                    "fingerprint-reorder",
                    format!("{}: reordered catalog rejected: {e}", inst.name),
                )
            })?;
    }
    let reordered = QuerySpec::capture(&graph, &catalog).map_err(|e| {
        diverge(
            "fingerprint-reorder",
            format!("{}: reordered capture failed: {e}", inst.name),
        )
    })?;
    let reordered = canonicalize(&reordered);
    if reordered.fingerprint != base.fingerprint || reordered.encoding != base.encoding {
        return Err(diverge(
            "fingerprint-reorder",
            format!(
                "{}: canonical form changed under edge reordering: {} vs {}",
                inst.name, reordered.fingerprint, base.fingerprint
            ),
        ));
    }
    Ok(())
}

/// Cold/warm cache replay: the second optimization of an instance
/// through one [`OptimizerService`] must hit the cache and return
/// bit-identical cost bits and an identical plan tree. Skipped for
/// instances the optimizer rejects outright (disconnected or
/// single-relation graphs).
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_cache_replay(inst: &Instance) -> Result<(), Divergence> {
    if inst.graph.num_relations() < 2 || !inst.graph.is_connected() {
        return Ok(());
    }
    let spec = capture(inst, "cache-replay")?;
    let service = OptimizerService::default();
    let request = ServiceRequest::new(spec).with_algorithm(Algorithm::DpCcp);
    let cold = service
        .submit_batch(std::slice::from_ref(&request))
        .pop()
        .unwrap_or_else(|| {
            Err(joinopt_core::OptimizeError::Internal(
                "empty batch result".into(),
            ))
        })
        .map_err(|e| {
            diverge(
                "cache-replay",
                format!("{}: cold run failed: {e}", inst.name),
            )
        })?;
    if cold.cache_hit {
        return Err(diverge(
            "cache-replay",
            format!("{}: first run of a fresh service hit the cache", inst.name),
        ));
    }
    let warm = service
        .submit_batch(std::slice::from_ref(&request))
        .pop()
        .unwrap_or_else(|| {
            Err(joinopt_core::OptimizeError::Internal(
                "empty batch result".into(),
            ))
        })
        .map_err(|e| {
            diverge(
                "cache-replay",
                format!("{}: warm run failed: {e}", inst.name),
            )
        })?;
    if !warm.cache_hit {
        return Err(diverge(
            "cache-replay",
            format!("{}: second identical request missed the cache", inst.name),
        ));
    }
    if warm.result.cost.to_bits() != cold.result.cost.to_bits() {
        return Err(diverge(
            "cache-replay",
            format!(
                "{}: warm cost bits differ from cold: {:016x} vs {:016x}",
                inst.name,
                warm.result.cost.to_bits(),
                cold.result.cost.to_bits()
            ),
        ));
    }
    if warm.result.tree != cold.result.tree {
        return Err(diverge(
            "cache-replay",
            format!("{}: warm plan tree differs from cold", inst.name),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{self, generate_instance};

    #[test]
    fn clean_instances_satisfy_both_properties() {
        for index in 0..15 {
            let inst = generate_instance(77, index, 8);
            check_fingerprint(&inst).unwrap_or_else(|d| panic!("{}: {d}", inst.name));
            check_cache_replay(&inst).unwrap_or_else(|d| panic!("{}: {d}", inst.name));
        }
    }

    #[test]
    fn tie_rich_instances_pass() {
        for n in [2, 6] {
            let inst = generator::tie_rich_chain(n);
            check_fingerprint(&inst).unwrap();
            check_cache_replay(&inst).unwrap();
        }
    }
}
