//! The differential oracle: every registered optimizer against every
//! other one, plus plan validation and counter cross-checks.
//!
//! Comparison policy (what "agree" means, and why):
//!
//! * **Across algorithm families** (DPsize vs DPsub vs DPccp vs DPconv
//!   vs top-down vs DPhyp vs the exhaustive oracle) the optimal *cost*
//!   must agree within a `1e-9` relative tolerance. The algorithms sum
//!   the same per-plan terms in different orders, so the last few bits
//!   may legitimately differ; anything beyond rounding noise is a bug.
//! * **Within the DPsub family** the parallel level-synchronous engine
//!   guarantees results *bit-identical* to the sequential
//!   implementation at any thread count — cost bits, plan tree,
//!   counters and table size (see `joinopt_core::parallel`). The
//!   oracle asserts exactly that, which is also what catches an
//!   injected tie-break inversion: a flipped tie keeps the cost equal
//!   but changes the plan.
//! * **Counters** are deterministic properties of the graph, not the
//!   statistics: they must *equal* the paper's Section 2.3.2 closed
//!   forms (for the four closed-form families) and the csg-profile
//!   predictions (for every connected graph).

use joinopt_core::formulas::{
    dpsize_inner_from_profile, dpsize_naive_inner_from_profile, dpsub_inner_from_profile,
    dpsub_unfiltered_inner,
};
use joinopt_core::{exhaustive, Algorithm, DpHyp, DpResult, OptimizeError, OptimizeRequest};
use joinopt_cost::Cout;
use joinopt_plan::JoinTree;
use joinopt_qgraph::hypergraph::Hypergraph;
use joinopt_qgraph::profile::CsgProfile;
use joinopt_qgraph::{csg, formulas as qformulas, QueryGraph};
use joinopt_relset::RelSet;

use crate::generator::Instance;

/// One conformance failure: which check tripped and a human-readable
/// account of the disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Stable label of the failed check (the shrinking minimizer keeps
    /// only candidates that reproduce the *same* label).
    pub check: &'static str,
    /// What disagreed with what.
    pub detail: String,
}

impl core::fmt::Display for Divergence {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

impl std::error::Error for Divergence {}

/// Thread counts the parallel engine is exercised at.
pub const ENGINE_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Largest instance the brute-force exhaustive oracle runs on.
pub const EXHAUSTIVE_MAX_N: usize = 9;

/// Relative tolerance for cost agreement across algorithm *families*.
pub const COST_TOLERANCE: f64 = 1e-9;

fn diverge(check: &'static str, detail: String) -> Divergence {
    Divergence { check, detail }
}

fn costs_agree(a: f64, b: f64) -> bool {
    (a - b).abs() <= COST_TOLERANCE * a.abs().max(b.abs()).max(1.0)
}

/// Serializes a join tree to a canonical string so shape differences
/// cannot hide behind equal costs.
fn shape(t: &JoinTree) -> String {
    match t {
        JoinTree::Scan { relation, .. } => format!("R{relation}"),
        JoinTree::Join { left, right, .. } => format!("({} {})", shape(left), shape(right)),
    }
}

/// The exact cross-product-free algorithms the oracle differentials,
/// with their report names.
const EXACT: [(Algorithm, &str); 7] = [
    (Algorithm::DpSize, "DPsize"),
    (Algorithm::DpSizeNaive, "DPsize-naive"),
    (Algorithm::DpSub, "DPsub"),
    (Algorithm::DpSubUnfiltered, "DPsub-nofilter"),
    (Algorithm::DpCcp, "DPccp"),
    (Algorithm::DpConv, "DPconv"),
    (Algorithm::TopDown, "top-down"),
];

/// Largest instance the `O(2^n · n²)` ranked-subset-convolution counter
/// cross-check runs on (the transform allocates `(n+1) · 2^n` words).
pub const RANKED_CHECK_MAX_N: usize = 16;

/// Runs the full differential matrix on one instance.
///
/// Connected instances get the complete treatment; single-relation and
/// disconnected instances check the edge-case contracts instead (every
/// algorithm produces the lone scan, resp. every cross-product-free
/// algorithm refuses while the cross-product variant still plans).
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_instance(inst: &Instance) -> Result<(), Divergence> {
    check_instance_observed(inst, &joinopt_telemetry::NoopObserver)
}

/// [`check_instance`] with telemetry: the reference DPccp run on each
/// connected instance reports its events to `obs`, so a fuzz campaign's
/// enumeration work is visible to metrics and traces (the other matrix
/// runs stay unobserved — they re-derive the same answer and would only
/// multiply every counter).
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_instance_observed(
    inst: &Instance,
    obs: &dyn joinopt_telemetry::Observer,
) -> Result<(), Divergence> {
    let g = &inst.graph;
    let n = g.num_relations();
    if n == 1 {
        return check_singleton(inst);
    }
    if !g.is_connected() {
        return check_disconnected(inst);
    }

    let run = |alg: Algorithm, label: &str| -> Result<DpResult, Divergence> {
        alg.orderer(g)
            .optimize(g, &inst.catalog, &Cout)
            .map_err(|e| {
                diverge(
                    "optimizer-error",
                    format!("{}: {label} failed on a connected instance: {e}", inst.name),
                )
            })
    };

    // 1. Every exact algorithm agrees on the optimal cost and returns a
    //    valid, cross-product-free plan of that cost.
    let reference = Algorithm::DpCcp
        .orderer(g)
        .optimize_observed(g, &inst.catalog, &Cout, obs)
        .map_err(|e| {
            diverge(
                "optimizer-error",
                format!("{}: DPccp failed on a connected instance: {e}", inst.name),
            )
        })?;
    validate_tree(inst, &reference.tree, "DPccp", true)?;
    let mut results: Vec<(&str, DpResult)> = Vec::new();
    for (alg, label) in EXACT {
        let r = if alg == Algorithm::DpCcp {
            reference.clone()
        } else {
            let r = run(alg, label)?;
            validate_tree(inst, &r.tree, label, true)?;
            if !costs_agree(r.cost, reference.cost) {
                return Err(diverge(
                    "optimal-cost",
                    format!(
                        "{}: {label} found cost {:e} but DPccp found {:e}",
                        inst.name, r.cost, reference.cost
                    ),
                ));
            }
            r
        };
        results.push((label, r));
    }

    // 2. The cross-product variant may only improve on the constrained
    //    optimum, and its plan must still cover every relation.
    let cp = run(Algorithm::DpSubCrossProducts, "DPsub-cp")?;
    validate_tree(inst, &cp.tree, "DPsub-cp", false)?;
    if cp.cost > reference.cost * (1.0 + COST_TOLERANCE) {
        return Err(diverge(
            "optimal-cost",
            format!(
                "{}: DPsub-cp (larger search space) found cost {:e} above DPccp's {:e}",
                inst.name, cp.cost, reference.cost
            ),
        ));
    }

    // 3. GOO is heuristic: valid and never better than optimal.
    let goo = run(Algorithm::Goo, "GOO")?;
    validate_tree(inst, &goo.tree, "GOO", true)?;
    if goo.cost < reference.cost * (1.0 - COST_TOLERANCE) {
        return Err(diverge(
            "optimal-cost",
            format!(
                "{}: GOO (heuristic) found cost {:e} below the optimum {:e}",
                inst.name, goo.cost, reference.cost
            ),
        ));
    }

    // 4. DPhyp on the equivalent singleton-edge hypergraph.
    let hyper = singleton_hypergraph(g).map_err(|e| {
        diverge(
            "dphyp",
            format!("{}: hypergraph conversion failed: {e}", inst.name),
        )
    })?;
    let hyp = DpHyp
        .optimize(&hyper, &inst.catalog, &Cout)
        .map_err(|e| diverge("dphyp", format!("{}: DPhyp failed: {e}", inst.name)))?;
    if !costs_agree(hyp.cost, reference.cost) {
        return Err(diverge(
            "dphyp",
            format!(
                "{}: DPhyp found cost {:e} but DPccp found {:e}",
                inst.name, hyp.cost, reference.cost
            ),
        ));
    }

    // 5. The parallel engine is bit-identical to sequential DPsub at
    //    every thread count (and for the sibling variants at 4).
    check_engine(inst, &results)?;
    let cp_engine = engine_result(inst, Algorithm::DpSubCrossProducts, 4)?;
    compare_bit_identical(inst, "DPsub-cp", 4, &cp, &cp_engine)?;

    // 6. The structurally independent exhaustive oracle, for small n.
    if n <= EXHAUSTIVE_MAX_N {
        let exact = exhaustive::optimal_cost(g, &inst.catalog, &Cout).map_err(|e| {
            diverge(
                "exhaustive",
                format!("{}: exhaustive oracle failed: {e}", inst.name),
            )
        })?;
        if !costs_agree(exact, reference.cost) {
            return Err(diverge(
                "exhaustive",
                format!(
                    "{}: exhaustive oracle found cost {:e} but DPccp found {:e}",
                    inst.name, exact, reference.cost
                ),
            ));
        }
        let exact_cp = exhaustive::optimal_cost_with_cross_products(g, &inst.catalog, &Cout)
            .map_err(|e| {
                diverge(
                    "exhaustive",
                    format!("{}: exhaustive cross-product oracle failed: {e}", inst.name),
                )
            })?;
        if !costs_agree(exact_cp, cp.cost) {
            return Err(diverge(
                "exhaustive",
                format!(
                    "{}: exhaustive cross-product optimum {:e} but DPsub-cp found {:e}",
                    inst.name, exact_cp, cp.cost
                ),
            ));
        }
    }

    // 7. Counter cross-validation against the Section 2.3.2 analysis.
    check_counters(inst, &results)
}

/// n = 1: every algorithm returns the lone scan at zero cost.
fn check_singleton(inst: &Instance) -> Result<(), Divergence> {
    let g = &inst.graph;
    let card = inst.catalog.cardinality(0);
    for (alg, label) in EXACT {
        let r = alg
            .orderer(g)
            .optimize(g, &inst.catalog, &Cout)
            .map_err(|e| {
                diverge(
                    "singleton",
                    format!("{}: {label} failed on a single relation: {e}", inst.name),
                )
            })?;
        let ok = matches!(
            r.tree,
            JoinTree::Scan { relation: 0, cardinality } if cardinality.to_bits() == card.to_bits()
        );
        if !ok || r.cost != 0.0 {
            return Err(diverge(
                "singleton",
                format!(
                    "{}: {label} returned {} at cost {:e} instead of the lone scan at 0",
                    inst.name,
                    shape(&r.tree),
                    r.cost
                ),
            ));
        }
    }
    let engine = engine_result(inst, Algorithm::DpSub, 8)?;
    if !matches!(engine.tree, JoinTree::Scan { relation: 0, .. }) || engine.cost != 0.0 {
        return Err(diverge(
            "singleton",
            format!(
                "{}: engine at 8 threads returned {} at cost {:e}",
                inst.name,
                shape(&engine.tree),
                engine.cost
            ),
        ));
    }
    Ok(())
}

/// Disconnected: the cross-product-free algorithms must refuse with the
/// typed error; the cross-product variant must still produce a plan
/// covering every relation.
fn check_disconnected(inst: &Instance) -> Result<(), Divergence> {
    let g = &inst.graph;
    for (alg, label) in EXACT {
        match alg.orderer(g).optimize(g, &inst.catalog, &Cout) {
            Err(OptimizeError::NoPlanWithoutCrossProducts | OptimizeError::Graph(_)) => {}
            Err(e) => {
                return Err(diverge(
                    "disconnected",
                    format!(
                        "{}: {label} failed with `{e}` instead of the disconnected error",
                        inst.name
                    ),
                ))
            }
            Ok(r) => {
                return Err(diverge(
                    "disconnected",
                    format!(
                        "{}: {label} produced {} for a disconnected graph",
                        inst.name,
                        shape(&r.tree)
                    ),
                ))
            }
        }
    }
    let cp = Algorithm::DpSubCrossProducts
        .orderer(g)
        .optimize(g, &inst.catalog, &Cout)
        .map_err(|e| {
            diverge(
                "disconnected",
                format!(
                    "{}: DPsub-cp must plan disconnected graphs but failed: {e}",
                    inst.name
                ),
            )
        })?;
    validate_tree(inst, &cp.tree, "DPsub-cp", false)
}

/// Asserts the engine's bit-identical-determinism contract for the
/// whole DPsub family.
fn check_engine(inst: &Instance, sequential: &[(&str, DpResult)]) -> Result<(), Divergence> {
    let seq_dpsub = sequential
        .iter()
        .find(|(label, _)| *label == "DPsub")
        .map(|(_, r)| r)
        .unwrap_or_else(|| unreachable!("DPsub is always in the exact set"));
    for threads in ENGINE_THREADS {
        let par = engine_result(inst, Algorithm::DpSub, threads)?;
        compare_bit_identical(inst, "DPsub", threads, seq_dpsub, &par)?;
    }
    let seq_unf = sequential
        .iter()
        .find(|(label, _)| *label == "DPsub-nofilter")
        .map(|(_, r)| r)
        .unwrap_or_else(|| unreachable!("DPsub-nofilter is always in the exact set"));
    let par_unf = engine_result(inst, Algorithm::DpSubUnfiltered, 4)?;
    compare_bit_identical(inst, "DPsub-nofilter", 4, seq_unf, &par_unf)
}

/// One engine run through the session API.
fn engine_result(inst: &Instance, alg: Algorithm, threads: usize) -> Result<DpResult, Divergence> {
    OptimizeRequest::new(&inst.graph, &inst.catalog)
        .with_algorithm(alg)
        .with_threads(threads)
        .run()
        .map(|outcome| outcome.result)
        .map_err(|e| {
            diverge(
                "engine-vs-sequential",
                format!(
                    "{}: engine run ({alg:?}, {threads} threads) failed: {e}",
                    inst.name
                ),
            )
        })
}

/// Bit-identity between a sequential result and an engine result:
/// cost bits, plan tree, counters and table size. (`plans_built` is
/// excluded by contract — the engine materializes one node per DP
/// entry, the sequential driver one per improvement.)
fn compare_bit_identical(
    inst: &Instance,
    label: &str,
    threads: usize,
    seq: &DpResult,
    par: &DpResult,
) -> Result<(), Divergence> {
    let ctx = format!("{}: {label} at {threads} threads", inst.name);
    if par.cost.to_bits() != seq.cost.to_bits() {
        return Err(diverge(
            "engine-vs-sequential",
            format!(
                "{ctx}: engine cost {:e} != sequential {:e} (bitwise)",
                par.cost, seq.cost
            ),
        ));
    }
    if par.cardinality.to_bits() != seq.cardinality.to_bits() {
        return Err(diverge(
            "engine-vs-sequential",
            format!(
                "{ctx}: engine cardinality {:e} != sequential {:e} (bitwise)",
                par.cardinality, seq.cardinality
            ),
        ));
    }
    if par.tree != seq.tree {
        return Err(diverge(
            "engine-vs-sequential",
            format!(
                "{ctx}: engine plan {} != sequential plan {}",
                shape(&par.tree),
                shape(&seq.tree)
            ),
        ));
    }
    if par.counters != seq.counters {
        return Err(diverge(
            "engine-vs-sequential",
            format!(
                "{ctx}: engine counters {} != sequential {}",
                par.counters, seq.counters
            ),
        ));
    }
    if par.table_size != seq.table_size {
        return Err(diverge(
            "engine-vs-sequential",
            format!(
                "{ctx}: engine table size {} != sequential {}",
                par.table_size, seq.table_size
            ),
        ));
    }
    Ok(())
}

/// Counter cross-validation: instrumented runs ⇔ csg-profile
/// predictions ⇔ (for the four closed-form families) the paper's
/// Section 2.3.2 formulas.
fn check_counters(inst: &Instance, results: &[(&str, DpResult)]) -> Result<(), Divergence> {
    let g = &inst.graph;
    let n = g.num_relations() as u64;
    let profile = CsgProfile::compute(g);
    let csgs = csg::count_csg(g);
    let ccps = csg::count_ccp_distinct(g);

    let expect = |label: &str, what: &str, got: u128, want: u128| -> Result<(), Divergence> {
        if got != want {
            return Err(diverge(
                "counters",
                format!(
                    "{}: {label} {what} = {got}, analysis says {want}",
                    inst.name
                ),
            ));
        }
        Ok(())
    };

    for (label, r) in results {
        // Top-down is branch-and-bound: pruning legitimately skips
        // pairs and table entries, so only its cost and plan validity
        // are checked (done by the differential pass above).
        if *label == "top-down" {
            continue;
        }
        // #ccp is a property of the graph: identical for every exact
        // bottom-up algorithm, twice the unordered Ono/Lohman count.
        expect(
            label,
            "csgCmpPairs",
            r.counters.csg_cmp_pairs.into(),
            (2 * ccps).into(),
        )?;
        expect(
            label,
            "onoLohman",
            r.counters.ono_lohman.into(),
            ccps.into(),
        )?;
        // Every exact no-cross-product bottom-up algorithm materializes
        // plans for exactly the connected subsets.
        expect(label, "table size", r.table_size as u128, csgs.into())?;
        let inner = u128::from(r.counters.inner);
        match *label {
            "DPsize" => expect(label, "inner", inner, dpsize_inner_from_profile(&profile))?,
            "DPsize-naive" => expect(
                label,
                "inner",
                inner,
                dpsize_naive_inner_from_profile(&profile),
            )?,
            "DPsub" => expect(label, "inner", inner, dpsub_inner_from_profile(&profile))?,
            "DPsub-nofilter" => expect(label, "inner", inner, dpsub_unfiltered_inner(n))?,
            "DPccp" => expect(label, "inner", inner, ccps.into())?,
            _ => {}
        }
    }

    // An algorithm-independent re-derivation of #ccp through DPconv's
    // own algebra: convolve the connectivity indicator with itself via
    // the exact O(2^n · n²) ranked zeta/Möbius transform. For each
    // connected S, h[S] counts the ordered pairs of disjoint non-empty
    // connected sets covering S — each of which has a cross edge
    // (otherwise S would be disconnected), i.e. exactly the ordered
    // csg-cmp-pairs. Every enumeration algorithm above and the ranked
    // transform must therefore land on the same total.
    if g.num_relations() <= RANKED_CHECK_MAX_N {
        let size = 1usize << g.num_relations();
        let indicator: Vec<i64> = (0..size)
            .map(|s| {
                let set = RelSet::from_bits(s as u64);
                i64::from(!set.is_empty() && g.is_connected_set(set))
            })
            .collect();
        let h = joinopt_core::transform::ranked_subset_convolution(&indicator, &indicator);
        let ordered: i64 = (0..size).filter(|&s| indicator[s] == 1).map(|s| h[s]).sum();
        expect(
            "ranked transform",
            "ordered ccp total",
            ordered as u128,
            (2 * ccps).into(),
        )?;
    }

    // The four paper families additionally have closed forms in n.
    if let Some(kind) = inst.kind {
        expect(
            "closed form",
            "#csg",
            csgs.into(),
            qformulas::csg_count(kind, n),
        )?;
        expect(
            "closed form",
            "#ccp",
            ccps.into(),
            qformulas::ccp_distinct(kind, n),
        )?;
    }
    Ok(())
}

/// Validates plan structure: full coverage, n−1 joins, finite stats,
/// scan cardinalities straight from the catalog, and (for
/// `require_connected`) cross-product freedom — both operands of every
/// join connect through an edge of the graph.
fn validate_tree(
    inst: &Instance,
    tree: &JoinTree,
    label: &str,
    require_connected: bool,
) -> Result<(), Divergence> {
    let g = &inst.graph;
    if tree.relations() != g.all_relations() {
        return Err(diverge(
            "plan-validity",
            format!(
                "{}: {label} plan covers {:?}, query has {:?}",
                inst.name,
                tree.relations(),
                g.all_relations()
            ),
        ));
    }
    if tree.num_joins() != g.num_relations() - 1 {
        return Err(diverge(
            "plan-validity",
            format!(
                "{}: {label} plan has {} joins for {} relations",
                inst.name,
                tree.num_joins(),
                g.num_relations()
            ),
        ));
    }
    if !tree.cost().is_finite() || !tree.cardinality().is_finite() {
        return Err(diverge(
            "plan-validity",
            format!("{}: {label} plan has non-finite statistics", inst.name),
        ));
    }
    walk(inst, g, tree, label, require_connected).map(|_| ())
}

/// Recursive walk: returns the subtree's relation set after checking it.
fn walk(
    inst: &Instance,
    g: &QueryGraph,
    tree: &JoinTree,
    label: &str,
    require_connected: bool,
) -> Result<RelSet, Divergence> {
    match tree {
        JoinTree::Scan {
            relation,
            cardinality,
        } => {
            let want = inst.catalog.cardinality(*relation);
            if cardinality.to_bits() != want.to_bits() {
                return Err(diverge(
                    "plan-validity",
                    format!(
                        "{}: {label} scan of R{relation} claims cardinality {:e}, catalog says {:e}",
                        inst.name, cardinality, want
                    ),
                ));
            }
            Ok(RelSet::single(*relation))
        }
        JoinTree::Join { left, right, .. } => {
            let ls = walk(inst, g, left, label, require_connected)?;
            let rs = walk(inst, g, right, label, require_connected)?;
            if ls.overlaps(rs) {
                return Err(diverge(
                    "plan-validity",
                    format!(
                        "{}: {label} join reuses relations ({:?} ∩ {:?})",
                        inst.name, ls, rs
                    ),
                ));
            }
            if require_connected && !g.sets_connected(ls, rs) {
                return Err(diverge(
                    "cross-product-free",
                    format!(
                        "{}: {label} joins {:?} with {:?} without a connecting edge",
                        inst.name, ls, rs
                    ),
                ));
            }
            Ok(ls.union(rs))
        }
    }
}

/// Converts a simple graph to the equivalent hypergraph (one
/// singleton-set edge per graph edge, same edge ids so the catalog's
/// selectivities line up).
fn singleton_hypergraph(g: &QueryGraph) -> Result<Hypergraph, String> {
    let mut h = Hypergraph::new(g.num_relations()).map_err(|e| e.to_string())?;
    for e in g.edges() {
        h.add_edge(RelSet::single(e.u), RelSet::single(e.v))
            .map_err(|e| e.to_string())?;
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{self, generate_instance};

    #[test]
    fn clean_instances_pass() {
        for index in 0..12 {
            let inst = generate_instance(2006, index, 8);
            check_instance(&inst).unwrap_or_else(|d| panic!("{}: {d}", inst.name));
        }
    }

    #[test]
    fn tie_rich_instances_pass_without_injection() {
        for n in [3, 5, 8] {
            let inst = generator::tie_rich_chain(n);
            check_instance(&inst).unwrap_or_else(|d| panic!("{}: {d}", inst.name));
        }
    }

    #[test]
    fn corrupt_catalog_statistics_are_caught() {
        // A scan cardinality that doesn't match the catalog is the kind
        // of divergence the plan-validity check exists for; simulate it
        // by validating a plan against a different catalog.
        let inst = generator::tie_rich_chain(4);
        let r = Algorithm::DpCcp
            .orderer(&inst.graph)
            .optimize(&inst.graph, &inst.catalog, &Cout)
            .expect("chain-4 optimizes");
        let mut other = inst.clone();
        other
            .catalog
            .set_cardinality(0, 999.0)
            .expect("valid cardinality");
        let d = validate_tree(&other, &r.tree, "DPccp", true).unwrap_err();
        assert_eq!(d.check, "plan-validity");
        assert!(d.detail.contains("catalog says"), "{d}");
    }

    #[test]
    fn disconnected_contract_is_enforced() {
        let mut g = QueryGraph::new(3).expect("size ok");
        g.add_edge(0, 1).expect("edge ok");
        let catalog = generator::uniform_catalog(&g);
        let inst = Instance {
            name: "disconnected-3".into(),
            seed: 0,
            kind: None,
            graph: g,
            catalog,
        };
        check_instance(&inst).unwrap_or_else(|d| panic!("{d}"));
    }

    #[test]
    fn singleton_contract_is_enforced() {
        let g = QueryGraph::new(1).expect("size ok");
        let catalog = generator::uniform_catalog(&g);
        let inst = Instance {
            name: "single-1".into(),
            seed: 0,
            kind: None,
            graph: g,
            catalog,
        };
        check_instance(&inst).unwrap_or_else(|d| panic!("{d}"));
    }
}
