//! Differential conformance harness for the optimizer family.
//!
//! The paper's central claim is that DPsize, DPsub and DPccp are
//! *equivalent* plan generators differing only in enumeration order and
//! counter behavior. This crate turns that claim into machinery:
//!
//! * [`generator`] — a deterministic SplitMix64-seeded generator of
//!   random query instances over all six graph families (chain, cycle,
//!   star, clique, grid, tree) plus random-topology graphs, with random
//!   or deliberately tie-rich uniform catalogs;
//! * [`oracle`] — a differential oracle that runs every registered
//!   optimizer (the DP family, top-down, DPhyp, the parallel engine at
//!   1–8 threads, and the brute-force exhaustive oracle for small `n`)
//!   on one instance and cross-checks optimal cost, bit-identical
//!   engine determinism, cross-product freedom, plan validity and the
//!   paper's Section 2.3.2 counter formulas;
//! * [`metamorphic`] — properties that need no oracle at all:
//!   relation-renumbering invariance, exact cost-model scaling
//!   invariance and monotonicity under selectivity tightening;
//! * [`fingerprint`] — service-layer properties: the canonical query
//!   fingerprint of `joinopt-service` is invariant under relation
//!   renumbering and join-edge reordering, and a warm plan-cache hit
//!   replays the cold run bit for bit (`joinopt fuzz --cache`);
//! * [`shrink`] — a greedy minimizer that deletes relations and edges
//!   while a divergence still reproduces, yielding a minimal repro that
//!   serializes to the query DSL for the `tests/corpus/` directory;
//! * [`fuzz`] — the driver tying them together, exposed as the
//!   `joinopt fuzz` CLI subcommand and a bounded smoke pass in `ci.sh`.
//!
//! The crate is dependency-free like the rest of the workspace and is
//! meant to be inherited by every future perf or robustness PR: change
//! a hot loop, run `joinopt fuzz`, commit any minimized repro.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explain;
pub mod fingerprint;
pub mod fuzz;
pub mod generator;
pub mod metamorphic;
pub mod oracle;
pub mod shrink;

pub use explain::explain_failure;
pub use fingerprint::{check_cache_replay, check_fingerprint};
pub use fuzz::run_fuzz_observed;
pub use fuzz::{run_fuzz, Failure, FuzzConfig, FuzzReport};
pub use generator::{generate_instance, Family, Instance, SplitMix64};
pub use oracle::{check_instance, check_instance_observed, Divergence};
pub use shrink::minimize;

/// Runs every check the harness knows — the differential [`oracle`]
/// first, then the [`metamorphic`] properties, then the service
/// [`fingerprint`] invariance — on one instance. (The optional
/// cold/warm cache replay is driven separately by
/// [`FuzzConfig::cache`].)
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_full(inst: &Instance) -> Result<(), Divergence> {
    check_full_observed(inst, &joinopt_telemetry::NoopObserver)
}

/// [`check_full`] with telemetry: the instance's reference DPccp run
/// reports to `obs` (see [`oracle::check_instance_observed`]).
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_full_observed(
    inst: &Instance,
    obs: &dyn joinopt_telemetry::Observer,
) -> Result<(), Divergence> {
    oracle::check_instance_observed(inst, obs)?;
    metamorphic::check_metamorphic(inst)?;
    fingerprint::check_fingerprint(inst)
}

/// Replays a committed repro: parses the query DSL text, rebuilds an
/// [`Instance`] and runs [`check_full`] on it. Used by the
/// `tests/corpus/` regression gate.
///
/// # Errors
///
/// Returns a [`Divergence`] when the text does not parse, describes a
/// non-simple (hypergraph) query, or fails any conformance check.
pub fn check_dsl(text: &str) -> Result<(), Divergence> {
    let inst = Instance::from_dsl(text).map_err(|detail| Divergence {
        check: "dsl-parse",
        detail,
    })?;
    check_full(&inst)
}
