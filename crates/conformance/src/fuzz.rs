//! The fuzzing driver: generate → check → (on failure) minimize.

use crate::generator::{generate_instance, Instance};
use crate::oracle::Divergence;
use crate::{check_full, check_full_observed, shrink};

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Number of instances to generate and check.
    pub iters: u64,
    /// Largest relation count to generate (inclusive).
    pub max_n: usize,
    /// Whether failures are shrunk to minimal repros.
    pub minimize: bool,
    /// Whether each instance is additionally replayed cold/warm through
    /// an [`OptimizerService`](joinopt_service::OptimizerService) plan
    /// cache, asserting bit-identical cost bits and plan shape on the
    /// hit path (`joinopt fuzz --cache`).
    pub cache: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            iters: 200,
            max_n: 10,
            minimize: true,
            cache: false,
        }
    }
}

/// One divergent instance, with its minimized repro when shrinking was
/// requested.
#[derive(Debug)]
pub struct Failure {
    /// The instance as generated.
    pub instance: Instance,
    /// The divergence it produced.
    pub divergence: Divergence,
    /// The shrunk repro (same divergence label), when minimization ran.
    pub minimized: Option<Instance>,
}

/// Summary of a fuzz run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Instances generated and checked.
    pub checked: u64,
    /// Every divergence found, in generation order.
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    /// `true` when no instance diverged.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the configured fuzz campaign. Deterministic: the same config
/// always generates and checks the same instances in the same order
/// (failures do not stop the run — every configured iteration is
/// checked so one regression cannot mask another).
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    run_fuzz_observed(config, &joinopt_telemetry::NoopObserver)
}

/// [`run_fuzz`] with telemetry: each instance's reference DPccp run
/// reports to `obs`, making campaign-scale enumeration work visible to
/// a metrics registry or trace. Minimization replays stay unobserved
/// (shrinking repeats the checks hundreds of times and would swamp the
/// campaign's own signal). The checked instances — and therefore the
/// report — are identical to [`run_fuzz`]'s.
pub fn run_fuzz_observed(config: &FuzzConfig, obs: &dyn joinopt_telemetry::Observer) -> FuzzReport {
    let mut failures = Vec::new();
    for index in 0..config.iters {
        let instance = generate_instance(config.seed, index, config.max_n);
        let checked = check_full_observed(&instance, obs).and_then(|()| {
            if config.cache {
                crate::fingerprint::check_cache_replay(&instance)
            } else {
                Ok(())
            }
        });
        if let Err(divergence) = checked {
            let minimized = config.minimize.then(|| {
                let label = divergence.check;
                shrink::minimize(&instance, |candidate| {
                    let replay = check_full(candidate).and_then(|()| {
                        if config.cache {
                            crate::fingerprint::check_cache_replay(candidate)
                        } else {
                            Ok(())
                        }
                    });
                    matches!(replay, Err(d) if d.check == label)
                })
            });
            failures.push(Failure {
                instance,
                divergence,
                minimized,
            });
        }
    }
    FuzzReport {
        checked: config.iters,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_the_ci_smoke_shape() {
        let c = FuzzConfig::default();
        assert_eq!((c.seed, c.iters, c.max_n, c.minimize), (42, 200, 10, true));
        assert!(!c.cache, "cache replay is opt-in");
    }

    #[test]
    fn observed_run_reports_reference_work_without_changing_results() {
        use joinopt_telemetry::MetricsRegistry;
        use joinopt_telemetry::RegistryObserver;
        let config = FuzzConfig {
            seed: 42,
            iters: 6,
            max_n: 7,
            minimize: false,
            ..FuzzConfig::default()
        };
        let registry = MetricsRegistry::new();
        let obs = RegistryObserver::new(&registry);
        let report = run_fuzz_observed(&config, &obs);
        assert_eq!(report.checked, 6);
        assert!(report.is_clean());
        let snap = registry.snapshot();
        // One reference DPccp run per connected multi-relation instance;
        // singletons and disconnected instances skip the matrix.
        let runs = snap
            .counter("joinopt_runs_total", &[("algorithm", "DPccp")])
            .unwrap_or(0);
        assert!((1..=6).contains(&runs), "runs={runs}");
        assert!(
            snap.counter("joinopt_csg_cmp_pairs_total", &[("algorithm", "DPccp")])
                .unwrap_or(0)
                > 0
        );
    }

    #[test]
    fn short_run_is_clean_and_deterministic() {
        let config = FuzzConfig {
            seed: 42,
            iters: 12,
            max_n: 8,
            minimize: true,
            cache: true,
        };
        let report = run_fuzz(&config);
        assert_eq!(report.checked, 12);
        assert!(
            report.is_clean(),
            "divergences: {:?}",
            report
                .failures
                .iter()
                .map(|f| format!("{}: {}", f.instance.name, f.divergence))
                .collect::<Vec<_>>()
        );
    }
}
