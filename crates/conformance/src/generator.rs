//! Deterministic SplitMix64-seeded instance generation.
//!
//! One `(master seed, index)` pair maps to exactly one [`Instance`]:
//! the index is mixed through SplitMix64 into a per-instance seed, and
//! everything else (family, size, topology, statistics) is drawn from a
//! [`XorShift64`] stream on that seed. Two runs with the same master
//! seed therefore see the same instances in the same order, and any
//! single instance can be regenerated from its recorded seed alone.

use joinopt_cost::workload::{self, StatsRanges};
use joinopt_cost::Catalog;
use joinopt_qgraph::{generators, GraphKind, QueryGraph};
use joinopt_relset::XorShift64;

/// Weyl-sequence increment of SplitMix64 (Steele, Lea & Flood 2014).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 stream: `state` advances by the golden-ratio gamma
/// and each output is the standard avalanche mix of the new state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream starting from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }

    /// The `index`-th output of the stream seeded with `seed`, in O(1)
    /// (SplitMix64's state is a Weyl sequence, so it can be jumped to).
    pub fn at(seed: u64, index: u64) -> u64 {
        mix(seed.wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)))
    }
}

/// SplitMix64's output mix (a Stafford variant 13 finalizer).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The graph families the generator draws from: the paper's four
/// closed-form families, the two structured extras, and fully random
/// connected topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Path graph (`chain` in the paper).
    Chain,
    /// Cycle graph.
    Cycle,
    /// Star graph (relation 0 is the hub).
    Star,
    /// Complete graph.
    Clique,
    /// 2×⌈n/2⌉ grid.
    Grid,
    /// Uniform random spanning tree.
    Tree,
    /// Random connected graph (spanning tree plus random chords).
    Random,
}

impl Family {
    /// Every family, in generation order.
    pub const ALL: [Family; 7] = [
        Family::Chain,
        Family::Cycle,
        Family::Star,
        Family::Clique,
        Family::Grid,
        Family::Tree,
        Family::Random,
    ];

    /// Lower-case family name (used in instance names and file names).
    pub fn name(self) -> &'static str {
        match self {
            Family::Chain => "chain",
            Family::Cycle => "cycle",
            Family::Star => "star",
            Family::Clique => "clique",
            Family::Grid => "grid",
            Family::Tree => "tree",
            Family::Random => "random",
        }
    }

    /// The closed-form [`GraphKind`] this family corresponds to, when
    /// the paper's Section 2.3.2 formulas apply to it.
    pub fn closed_form_kind(self) -> Option<GraphKind> {
        match self {
            Family::Chain => Some(GraphKind::Chain),
            Family::Cycle => Some(GraphKind::Cycle),
            Family::Star => Some(GraphKind::Star),
            Family::Clique => Some(GraphKind::Clique),
            _ => None,
        }
    }

    /// Builds a graph of this family with `n` relations, consuming
    /// randomness only for the randomized families.
    pub fn build(self, n: usize, rng: &mut XorShift64) -> QueryGraph {
        let fallback = || generators::generate(GraphKind::Chain, n);
        match self {
            Family::Chain => generators::generate(GraphKind::Chain, n),
            Family::Cycle => generators::generate(GraphKind::Cycle, n),
            Family::Star => generators::generate(GraphKind::Star, n),
            Family::Clique => generators::generate(GraphKind::Clique, n),
            // A 2-row grid needs an even n ≥ 4; degenerate sizes fall
            // back to the chain (a 1×n grid).
            Family::Grid => {
                if n >= 4 && n.is_multiple_of(2) {
                    generators::grid(2, n / 2).unwrap_or_else(|_| fallback())
                } else {
                    fallback()
                }
            }
            Family::Tree => generators::random_tree(n, rng).unwrap_or_else(|_| fallback()),
            Family::Random => {
                let p = rng.gen_range_f64(0.1, 0.8);
                generators::random_connected(n, p, rng).unwrap_or_else(|_| fallback())
            }
        }
    }
}

/// One self-contained conformance instance: a connected (unless loaded
/// from a deliberately disconnected repro) query graph plus statistics.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Human-readable identity (`family-nN-seedHEX-catalog`), used in
    /// divergence reports and corpus file headers.
    pub name: String,
    /// The per-instance seed everything was drawn from (0 for repros
    /// loaded from DSL text).
    pub seed: u64,
    /// The family this instance was generated from, when its topology
    /// has a closed-form counter formula.
    pub kind: Option<GraphKind>,
    /// The query graph.
    pub graph: QueryGraph,
    /// Statistics for `graph`.
    pub catalog: Catalog,
}

impl Instance {
    /// Serializes the instance to the query DSL (`relation R<i>` /
    /// `join R<u> R<v> <sel>` lines), the format the `tests/corpus/`
    /// regression directory stores minimized repros in. The output
    /// parses back to the same graph shape and statistics (f64 `{}`
    /// formatting is shortest-round-trip).
    pub fn to_dsl(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.name);
        for i in 0..self.graph.num_relations() {
            let _ = writeln!(out, "relation R{i} {}", self.catalog.cardinality(i));
        }
        for (edge_id, e) in self.graph.edges().iter().enumerate() {
            let _ = writeln!(
                out,
                "join R{} R{} {}",
                e.u,
                e.v,
                self.catalog.selectivity(edge_id)
            );
        }
        out
    }

    /// Rebuilds an instance from DSL text (the inverse of
    /// [`Instance::to_dsl`], modulo relation names).
    ///
    /// # Errors
    ///
    /// Returns a message when the text does not parse or contains
    /// complex (multi-relation) predicates.
    pub fn from_dsl(text: &str) -> Result<Instance, String> {
        let q = joinopt_query::parse(text).map_err(|e| e.to_string())?;
        let graph = q
            .graph()
            .cloned()
            .ok_or_else(|| "instance has complex (hypergraph) predicates".to_string())?;
        let name = text
            .lines()
            .find_map(|l| l.trim().strip_prefix('#'))
            .map(|c| c.trim().to_string())
            .filter(|c| !c.is_empty())
            .unwrap_or_else(|| format!("dsl-n{}", graph.num_relations()));
        Ok(Instance {
            name,
            seed: 0,
            kind: None,
            graph,
            catalog: q.catalog,
        })
    }
}

/// Generates the `index`-th instance of the stream with master seed
/// `master_seed`. Sizes are drawn uniformly from `2..=max_n`; every
/// third instance (on average) gets a tie-rich *uniform* catalog —
/// equal cardinalities and selectivities make distinct plans cost
/// bit-identically, which is what exposes tie-breaking drift between
/// engines.
///
/// # Panics
///
/// Panics if `max_n < 2`.
pub fn generate_instance(master_seed: u64, index: u64, max_n: usize) -> Instance {
    assert!(max_n >= 2, "instances need at least two relations");
    let seed = SplitMix64::at(master_seed, index);
    instance_from_seed(seed, max_n)
}

/// Builds the instance a bare per-instance seed encodes (the
/// regenerate-from-report path).
pub fn instance_from_seed(seed: u64, max_n: usize) -> Instance {
    let mut rng = XorShift64::seed_from_u64(seed);
    let family = Family::ALL[rng.gen_range(0..Family::ALL.len())];
    let n = rng.gen_range(2..max_n + 1);
    let graph = family.build(n, &mut rng);
    let uniform = rng.gen_bool(1.0 / 3.0);
    let catalog = if uniform {
        uniform_catalog(&graph)
    } else {
        workload::random_catalog(&graph, StatsRanges::default(), &mut rng)
    };
    let n = graph.num_relations();
    Instance {
        name: format!(
            "{}-n{}-seed{:#018x}-{}",
            family.name(),
            n,
            seed,
            if uniform { "uniform" } else { "random" }
        ),
        seed,
        kind: family.closed_form_kind().filter(|_| {
            // Grid/Tree fallbacks never claim a closed form; the four
            // paper families always match their GraphKind by
            // construction (cycle n ≤ 2 degenerates to chain inside
            // the qgraph generator and its formulas agree).
            n >= 2
        }),
        graph,
        catalog,
    }
}

/// A deliberately tie-rich catalog: every cardinality 1000, every
/// selectivity 0.1. On symmetric topologies many distinct plans then
/// cost *bit-identically*, so any tie-breaking difference between two
/// engines surfaces as a plan mismatch.
pub fn uniform_catalog(g: &QueryGraph) -> Catalog {
    let mut cat = Catalog::new(g);
    for i in 0..g.num_relations() {
        cat.set_cardinality(i, 1000.0)
            .unwrap_or_else(|e| unreachable!("uniform cardinality is valid: {e}"));
    }
    for e in 0..g.num_edges() {
        cat.set_selectivity(e, 0.1)
            .unwrap_or_else(|e| unreachable!("uniform selectivity is valid: {e}"));
    }
    cat
}

/// A ready-made tie-rich instance: a chain of `n` relations with the
/// uniform catalog. The smallest graphs with cost ties — used by the
/// tie-break injection test and handy for corpus seeds.
pub fn tie_rich_chain(n: usize) -> Instance {
    let graph = generators::generate(GraphKind::Chain, n);
    let catalog = uniform_catalog(&graph);
    Instance {
        name: format!("chain-n{n}-uniform"),
        seed: 0,
        kind: Some(GraphKind::Chain),
        graph,
        catalog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the published
        // SplitMix64 algorithm.
        let mut s = SplitMix64::new(1234567);
        let first = s.next_u64();
        assert_eq!(first, SplitMix64::at(1234567, 0));
        let second = s.next_u64();
        assert_eq!(second, SplitMix64::at(1234567, 1));
        assert_ne!(first, second);
    }

    #[test]
    fn generation_is_deterministic() {
        for index in 0..20 {
            let a = generate_instance(42, index, 10);
            let b = generate_instance(42, index, 10);
            assert_eq!(a.name, b.name);
            assert_eq!(a.graph, b.graph);
            assert_eq!(a.catalog, b.catalog);
        }
        let c = generate_instance(43, 0, 10);
        let d = generate_instance(42, 0, 10);
        assert_ne!(c.seed, d.seed);
    }

    #[test]
    fn all_families_appear_connected_and_bounded() {
        let mut seen = [false; 7];
        for index in 0..200 {
            let inst = generate_instance(7, index, 10);
            assert!(inst.graph.is_connected(), "{}", inst.name);
            let n = inst.graph.num_relations();
            assert!((2..=10).contains(&n), "{}", inst.name);
            let family = Family::ALL
                .iter()
                .position(|f| inst.name.starts_with(f.name()))
                .expect("name starts with the family");
            seen[family] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 draws cover all 7 families");
    }

    #[test]
    fn dsl_round_trip_preserves_shape_and_stats() {
        for index in 0..30 {
            let inst = generate_instance(11, index, 9);
            let back = Instance::from_dsl(&inst.to_dsl()).expect("to_dsl parses");
            assert_eq!(back.name, inst.name, "name survives via the comment");
            assert_eq!(back.graph, inst.graph);
            assert_eq!(back.catalog, inst.catalog);
        }
    }

    #[test]
    fn tie_rich_chain_is_uniform() {
        let inst = tie_rich_chain(5);
        assert_eq!(inst.graph.num_relations(), 5);
        assert!(inst.catalog.cardinalities().iter().all(|&c| c == 1000.0));
        assert!(inst.catalog.selectivities().iter().all(|&s| s == 0.1));
    }
}
