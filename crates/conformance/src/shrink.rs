//! Greedy shrinking: delete relations and edges while the divergence
//! still reproduces.
//!
//! The minimizer is deliberately simple — delta debugging at
//! granularity one. Each accepted step removes a single relation (with
//! every incident edge, remapping indices) or a single edge; a step is
//! accepted only when the caller's predicate still fails on the
//! candidate, so the final instance reproduces the *same* divergence
//! with nothing left to remove. Minimal repros serialize to the DSL
//! via [`Instance::to_dsl`] for the `tests/corpus/` directory.

use joinopt_cost::Catalog;
use joinopt_qgraph::QueryGraph;

use crate::generator::Instance;

/// Shrinks `inst` while `still_fails` keeps returning `true` for the
/// candidate. The predicate sees structurally valid instances only
/// (never empty; edges always reference live relations) but may see
/// disconnected ones — deleting a cut vertex disconnects the graph,
/// and whether that still reproduces the failure is the predicate's
/// call (the fuzz driver requires the same divergence label).
pub fn minimize<F: Fn(&Instance) -> bool>(inst: &Instance, still_fails: F) -> Instance {
    let mut current = inst.clone();
    loop {
        let mut improved = false;
        // Pass 1: drop one relation at a time.
        let mut i = 0;
        while current.graph.num_relations() > 1 && i < current.graph.num_relations() {
            let candidate = remove_relation(&current, i);
            if still_fails(&candidate) {
                current = candidate;
                improved = true;
                // Indices shifted; restart the scan over the smaller graph.
                i = 0;
            } else {
                i += 1;
            }
        }
        // Pass 2: drop one edge at a time.
        let mut e = 0;
        while e < current.graph.num_edges() {
            let candidate = remove_edge(&current, e);
            if still_fails(&candidate) {
                current = candidate;
                improved = true;
                e = 0;
            } else {
                e += 1;
            }
        }
        if !improved {
            break;
        }
    }
    current.name = format!("{}-min{}", current.name, current.graph.num_relations());
    current
}

/// A copy of `inst` without relation `victim`: incident edges are
/// dropped, surviving relations are renumbered contiguously and the
/// catalog follows.
fn remove_relation(inst: &Instance, victim: usize) -> Instance {
    let n = inst.graph.num_relations();
    debug_assert!(n > 1 && victim < n);
    let remap = |r: usize| if r > victim { r - 1 } else { r };
    let mut graph =
        QueryGraph::new(n - 1).unwrap_or_else(|e| unreachable!("shrunk size is valid: {e}"));
    let mut kept_edges = Vec::new();
    for (edge_id, e) in inst.graph.edges().iter().enumerate() {
        if e.u == victim || e.v == victim {
            continue;
        }
        graph
            .add_edge(remap(e.u), remap(e.v))
            .unwrap_or_else(|e| unreachable!("remapped edge is valid: {e}"));
        kept_edges.push(edge_id);
    }
    let mut catalog = Catalog::with_shape(n - 1, kept_edges.len());
    for old in (0..n).filter(|&r| r != victim) {
        catalog
            .set_cardinality(remap(old), inst.catalog.cardinality(old))
            .unwrap_or_else(|e| unreachable!("cardinality was already valid: {e}"));
    }
    for (new_id, &old_id) in kept_edges.iter().enumerate() {
        catalog
            .set_selectivity(new_id, inst.catalog.selectivity(old_id))
            .unwrap_or_else(|e| unreachable!("selectivity was already valid: {e}"));
    }
    Instance {
        name: inst.name.clone(),
        seed: inst.seed,
        kind: None, // the shrunk topology no longer matches the family
        graph,
        catalog,
    }
}

/// A copy of `inst` without edge `victim` (relations untouched).
fn remove_edge(inst: &Instance, victim: usize) -> Instance {
    let n = inst.graph.num_relations();
    let mut graph = QueryGraph::new(n).unwrap_or_else(|e| unreachable!("same size is valid: {e}"));
    let mut catalog = Catalog::with_shape(n, inst.graph.num_edges() - 1);
    for i in 0..n {
        catalog
            .set_cardinality(i, inst.catalog.cardinality(i))
            .unwrap_or_else(|e| unreachable!("cardinality was already valid: {e}"));
    }
    let mut new_id = 0;
    for (edge_id, e) in inst.graph.edges().iter().enumerate() {
        if edge_id == victim {
            continue;
        }
        graph
            .add_edge(e.u, e.v)
            .unwrap_or_else(|e| unreachable!("surviving edge is valid: {e}"));
        catalog
            .set_selectivity(new_id, inst.catalog.selectivity(edge_id))
            .unwrap_or_else(|e| unreachable!("selectivity was already valid: {e}"));
        new_id += 1;
    }
    Instance {
        name: inst.name.clone(),
        seed: inst.seed,
        kind: None,
        graph,
        catalog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_instance, tie_rich_chain};

    #[test]
    fn minimizes_a_relation_count_predicate() {
        // "Fails whenever ≥ 3 relations remain" must shrink to exactly 3.
        let inst = tie_rich_chain(9);
        let min = minimize(&inst, |c| c.graph.num_relations() >= 3);
        assert_eq!(min.graph.num_relations(), 3);
        assert!(min.name.contains("-min3"), "{}", min.name);
    }

    #[test]
    fn minimizes_an_edge_predicate() {
        // "Fails while relation 0 keeps degree ≥ 1" leaves one covering
        // edge at most (plus whatever relations survive pass 1).
        let inst = generate_instance(5, 3, 8);
        let min = minimize(&inst, |c| c.graph.degree(0) >= 1);
        assert!(min.graph.degree(0) >= 1);
        assert!(min.graph.num_relations() <= inst.graph.num_relations());
        assert!(
            min.graph.num_edges() <= 2,
            "greedy leaves a minimal edge set"
        );
    }

    #[test]
    fn never_fails_predicate_returns_input_unchanged_but_tagged() {
        let inst = tie_rich_chain(4);
        let min = minimize(&inst, |_| false);
        assert_eq!(min.graph, inst.graph);
        assert_eq!(min.catalog, inst.catalog);
    }

    #[test]
    fn removal_keeps_catalog_aligned() {
        let inst = generate_instance(1, 1, 8);
        let smaller = remove_relation(&inst, 0);
        assert_eq!(
            smaller.graph.num_relations(),
            inst.graph.num_relations() - 1
        );
        assert!(smaller.catalog.check_shape(&smaller.graph).is_ok());
        if inst.graph.num_edges() > 0 {
            let fewer = remove_edge(&inst, 0);
            assert_eq!(fewer.graph.num_edges(), inst.graph.num_edges() - 1);
            assert!(fewer.catalog.check_shape(&fewer.graph).is_ok());
        }
    }
}
