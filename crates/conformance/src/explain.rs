//! Explained diffs for fuzz divergences.
//!
//! When the differential [`oracle`](crate::oracle) catches two
//! optimizers disagreeing, the divergence detail says *that* they
//! disagree; the provenance subsystem can additionally say *where* —
//! which DP decision the two runs first committed differently. This
//! module re-runs the two sides of a failed comparison with
//! provenance collection attached and renders the decision-level diff
//! (see [`joinopt_core::explain`]), so a minimized fuzz repro arrives
//! with its root-cause attribution already printed.

use joinopt_core::explain::{compare, Explanation};
use joinopt_core::Algorithm;
use joinopt_cost::Cout;

use crate::fuzz::Failure;
use crate::generator::Instance;
use crate::oracle::ENGINE_THREADS;

/// Report labels the oracle uses, mapped to their algorithms. Longest
/// labels first so substring scans of a divergence detail cannot match
/// a prefix (`DPsize` inside `DPsize-naive`).
const LABELS: [(&str, Algorithm); 7] = [
    ("DPsize-naive", Algorithm::DpSizeNaive),
    ("DPsub-nofilter", Algorithm::DpSubUnfiltered),
    ("DPsub-cp", Algorithm::DpSubCrossProducts),
    ("DPsize", Algorithm::DpSize),
    ("DPsub", Algorithm::DpSub),
    ("DPccp", Algorithm::DpCcp),
    ("top-down", Algorithm::TopDown),
];

/// Renders an explained diff for a fuzz failure, preferring the
/// minimized repro when shrinking produced one.
///
/// Returns `None` for divergences that are not a comparison of two
/// plan-producing runs (counter formula mismatches, plan-validity
/// violations, parse errors, …) or when the re-run no longer
/// reproduces a decision-level difference.
pub fn explain_failure(failure: &Failure) -> Option<String> {
    let inst = failure.minimized.as_ref().unwrap_or(&failure.instance);
    match failure.divergence.check {
        "engine-vs-sequential" => explain_engine_divergence(inst),
        "optimal-cost" | "exhaustive" => explain_vs_reference(inst, &failure.divergence.detail),
        _ => None,
    }
}

/// Engine-vs-sequential: replay sequential DPsub against the parallel
/// engine at each contract thread count and render the first
/// decision-level diff found.
pub fn explain_engine_divergence(inst: &Instance) -> Option<String> {
    let seq = Explanation::capture_sequential(&inst.graph, &inst.catalog, &Cout, Algorithm::DpSub)
        .ok()?;
    for threads in ENGINE_THREADS {
        let eng =
            Explanation::capture(&inst.graph, &inst.catalog, &Cout, Algorithm::DpSub, threads)
                .ok()?;
        let diff = compare(&seq, &eng);
        if !diff.same_plan || !diff.divergences.is_empty() {
            return Some(format!(
                "explained diff ({}: sequential DPsub vs engine at {threads} threads):\n{}",
                inst.name,
                diff.render_text()
            ));
        }
    }
    None
}

/// Optimal-cost / exhaustive divergences: re-run the algorithm the
/// detail names against the DPccp reference, both sequentially.
fn explain_vs_reference(inst: &Instance, detail: &str) -> Option<String> {
    let (label, alg) = LABELS
        .into_iter()
        .find(|(label, _)| detail.contains(label))?;
    if alg == Algorithm::DpCcp {
        return None;
    }
    let suspect = Explanation::capture_sequential(&inst.graph, &inst.catalog, &Cout, alg).ok()?;
    let reference =
        Explanation::capture_sequential(&inst.graph, &inst.catalog, &Cout, Algorithm::DpCcp)
            .ok()?;
    let diff = compare(&suspect, &reference);
    if diff.same_plan && diff.divergences.is_empty() {
        return None;
    }
    Some(format!(
        "explained diff ({}: {label} vs DPccp reference):\n{}",
        inst.name,
        diff.render_text()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator;

    #[test]
    fn clean_instances_have_nothing_to_explain() {
        let inst = generator::tie_rich_chain(6);
        assert!(explain_engine_divergence(&inst).is_none());
    }

    /// The acceptance path: arming the engine tie-break inversion makes
    /// the fuzz harness produce a failure whose explained diff
    /// pinpoints the first inverted tie (failpoints builds only — the
    /// flag compiles to `false` otherwise).
    #[cfg(failpoints)]
    #[test]
    fn inverted_tiebreak_divergence_renders_an_explained_diff() {
        use crate::oracle::check_instance;
        use joinopt_core::failpoint::{self, FailAction};

        failpoint::configure("engine-tiebreak-invert", FailAction::Error);
        let inst = generator::tie_rich_chain(8);
        let divergence = check_instance(&inst).expect_err("inverted tie-break diverges");
        assert_eq!(divergence.check, "engine-vs-sequential");
        let failure = Failure {
            instance: inst,
            divergence,
            minimized: Some(crate::minimize(
                &generator::tie_rich_chain(8),
                |c| matches!(check_instance(c), Err(d) if d.check == "engine-vs-sequential"),
            )),
        };
        let text = explain_failure(&failure).expect("engine divergence explains");
        failpoint::clear("engine-tiebreak-invert");

        assert!(text.contains("explained diff"), "{text}");
        assert!(text.contains("first divergent decision"), "{text}");
        assert!(text.contains("tie broken by enumeration order"), "{text}");
    }
}
