//! Acceptance test for the injected DPconv convolution-layer drop
//! (`--cfg failpoints` builds only — see ci.sh).
//!
//! Arming the `dpconv-rank-skip` failpoint makes DPconv skip the
//! balanced splits of its final rank layer (`n ≥ 4`) — the canonical
//! silent off-by-one-layer bug in a ranked subset-convolution DP. On a
//! uniform chain the balanced top-level split is *strictly* optimal
//! (intermediate sizes grow geometrically, so `dp(n/2) + dp(n/2)` beats
//! every lopsided alternative), which turns the dropped layer into a
//! wrong optimal cost that only the differential matrix can see: the
//! plan DPconv returns is still valid, connected and internally
//! consistent. The oracle must catch it as an `optimal-cost` divergence
//! and the delta-debugger must shrink the repro to ≤ 5 relations.
#![cfg(failpoints)]

use joinopt_conformance::{check_instance, generator, minimize};
use joinopt_core::failpoint::{self, FailAction};

#[test]
fn injected_rank_skip_is_caught_and_minimized() {
    // Behavioral flag: arming the site is what drops the layer; the
    // action is irrelevant.
    failpoint::configure("dpconv-rank-skip", FailAction::Error);

    let inst = generator::tie_rich_chain(6);
    let divergence = check_instance(&inst)
        .expect_err("dropping DPconv's balanced layer must change its optimal cost");
    assert_eq!(divergence.check, "optimal-cost", "{divergence}");
    assert!(divergence.detail.contains("DPconv"), "{divergence}");

    // Shrink to a minimal repro reproducing the same divergence label.
    // The skip only fires for n ≥ 4, so 4 relations is the true floor.
    let minimal = minimize(
        &inst,
        |candidate| matches!(check_instance(candidate), Err(d) if d.check == "optimal-cost"),
    );
    assert!(
        minimal.graph.num_relations() <= 5,
        "repro should shrink to <= 5 relations, got {} ({})",
        minimal.graph.num_relations(),
        minimal.name
    );
    // The minimal repro serializes to the DSL and still parses back.
    let dsl = minimal.to_dsl();
    let reparsed = generator::Instance::from_dsl(&dsl).expect("minimal repro round-trips");
    assert_eq!(reparsed.graph, minimal.graph);

    // Disarming restores full conformance — on the original instance
    // and on the minimized repro.
    failpoint::clear("dpconv-rank-skip");
    check_instance(&inst).expect("clean once the failpoint is cleared");
    check_instance(&minimal).expect("minimal repro is clean without the injection");
}
