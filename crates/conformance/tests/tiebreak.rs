//! Acceptance test for the injected tie-break inversion
//! (`--cfg failpoints` builds only — see ci.sh).
//!
//! Arming the `engine-tiebreak-invert` failpoint makes the parallel
//! engine keep the *last* split on exact cost ties instead of the
//! first canonical one. The cost is unchanged, so only the oracle's
//! bit-identity comparison between the engine and the sequential
//! driver can catch it — and the shrinking minimizer must reduce the
//! divergent instance to a handful of relations.
#![cfg(failpoints)]

use joinopt_conformance::{check_instance, generator, minimize};
use joinopt_core::failpoint::{self, FailAction};

#[test]
fn injected_tiebreak_inversion_is_caught_and_minimized() {
    // The action is irrelevant for behavioral flags; arming the site is
    // what flips the comparison.
    failpoint::configure("engine-tiebreak-invert", FailAction::Error);

    // A uniform-catalog chain is tie-rich: from n = 3 on, symmetric
    // splits of the full set cost bit-identically, so the inverted
    // tie-break picks a different plan tree.
    let inst = generator::tie_rich_chain(8);
    let divergence =
        check_instance(&inst).expect_err("the inverted tie-break must change the engine's plan");
    assert_eq!(divergence.check, "engine-vs-sequential", "{divergence}");

    // Shrink to a minimal repro reproducing the same divergence label.
    let minimal = minimize(
        &inst,
        |candidate| matches!(check_instance(candidate), Err(d) if d.check == "engine-vs-sequential"),
    );
    assert!(
        minimal.graph.num_relations() <= 5,
        "repro should shrink to <= 5 relations, got {} ({})",
        minimal.graph.num_relations(),
        minimal.name
    );
    // The minimal repro serializes to the DSL and still parses back.
    let dsl = minimal.to_dsl();
    let reparsed = generator::Instance::from_dsl(&dsl).expect("minimal repro round-trips");
    assert_eq!(reparsed.graph, minimal.graph);

    // Disarming restores full conformance.
    failpoint::clear("engine-tiebreak-invert");
    check_instance(&inst).expect("clean once the failpoint is cleared");
}
