//! Rolling time-window aggregation: a ring of fixed-width buckets over
//! the log-linear [`Histogram`], answering "what were p50/p99 and the
//! request rate *over the last N seconds*" rather than "since the
//! process started".
//!
//! The registry's cumulative histograms never forget; a live `joinopt
//! top` needs recency. [`TimeWindow`] keeps `buckets` fixed-width
//! sub-histograms in a ring indexed by `now_ns / bucket_width_ns`;
//! recording into a slot whose epoch has moved on resets it first, and a
//! snapshot merges only the slots still inside the window. Nothing here
//! reads a clock: every call takes `now_ns` from the caller (the service
//! layer's injectable `Clock`), so the whole aggregator is byte-for-byte
//! deterministic under a manual clock.
//!
//! [`WindowedMetrics`] keys one [`TimeWindow`] per (tenant, verb, stage)
//! and renders sorted snapshots as JSON or Prometheus text
//! (`joinopt_serve_stage_*` series).

use std::collections::BTreeMap;

use crate::json::write_escaped;
use crate::registry::Histogram;

/// Sizing of a rolling window: `buckets` ring slots of
/// `bucket_width_ns` each; the window covers their product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one ring bucket in nanoseconds.
    pub bucket_width_ns: u64,
    /// Number of ring buckets; the window spans
    /// `buckets * bucket_width_ns`.
    pub buckets: usize,
}

impl Default for WindowConfig {
    /// Ten one-second buckets: a ten-second window.
    fn default() -> Self {
        WindowConfig {
            bucket_width_ns: 1_000_000_000,
            buckets: 10,
        }
    }
}

impl WindowConfig {
    /// Total window span in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.bucket_width_ns.saturating_mul(self.buckets as u64)
    }
}

/// One ring slot: the histogram of samples recorded during bucket
/// `epoch` (i.e. while `now_ns / width == epoch`).
#[derive(Debug, Clone, Default)]
struct Bucket {
    epoch: u64,
    hist: Histogram,
}

/// A rolling window over one sample stream. All methods take `now_ns`
/// explicitly; time only moves when the caller says so.
#[derive(Debug, Clone)]
pub struct TimeWindow {
    config: WindowConfig,
    ring: Vec<Bucket>,
}

impl TimeWindow {
    /// An empty window.
    pub fn new(config: WindowConfig) -> TimeWindow {
        TimeWindow {
            config,
            ring: vec![Bucket::default(); config.buckets.max(1)],
        }
    }

    fn epoch(&self, now_ns: u64) -> u64 {
        now_ns / self.config.bucket_width_ns.max(1)
    }

    /// Records one sample at `now_ns`. A slot left over from an older
    /// epoch is reset before the sample lands — this is how buckets
    /// expire, including all at once when the clock jumps far forward.
    pub fn record(&mut self, now_ns: u64, value: u64) {
        let epoch = self.epoch(now_ns);
        let len = self.ring.len() as u64;
        let slot = &mut self.ring[(epoch % len) as usize];
        if slot.epoch != epoch {
            slot.hist = Histogram::default();
            slot.epoch = epoch;
        }
        slot.hist.record(value);
    }

    /// Merges the live buckets — epochs within the window ending at
    /// `now_ns` — into one [`Histogram`]. Buckets the ring has not
    /// rotated over yet but whose epoch already fell out of the window
    /// are skipped, so an idle stream decays to empty without writes.
    pub fn merged(&self, now_ns: u64) -> Histogram {
        let current = self.epoch(now_ns);
        let oldest = current.saturating_sub(self.ring.len() as u64 - 1);
        let mut merged = Histogram::default();
        for slot in &self.ring {
            if slot.epoch >= oldest && slot.epoch <= current && slot.hist.count() > 0 {
                merged.merge(&slot.hist);
            }
        }
        merged
    }
}

/// A point-in-time reading of one windowed series.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowEntry {
    /// Tenant label.
    pub tenant: String,
    /// Protocol verb label.
    pub verb: String,
    /// Lifecycle stage label.
    pub stage: String,
    /// Samples inside the window.
    pub count: u64,
    /// Samples per second over the full window span.
    pub rate_per_sec: f64,
    /// Windowed median, in the histogram's bucket resolution.
    pub p50_ns: u64,
    /// Windowed 99th percentile.
    pub p99_ns: u64,
    /// Largest sample in the window (exact).
    pub max_ns: u64,
}

/// All windowed series at one instant, sorted by (tenant, verb, stage).
#[derive(Debug, Clone, Default)]
pub struct WindowSnapshot {
    /// The window span the entries cover, in nanoseconds.
    pub window_ns: u64,
    /// One entry per (tenant, verb, stage) with samples in the window.
    pub entries: Vec<WindowEntry>,
}

impl WindowSnapshot {
    /// Renders the snapshot as one JSON object (deterministic order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"window_ns\":");
        s.push_str(&self.window_ns.to_string());
        s.push_str(",\"stages\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"tenant\":");
            write_escaped(&mut s, &e.tenant);
            s.push_str(",\"verb\":");
            write_escaped(&mut s, &e.verb);
            s.push_str(",\"stage\":");
            write_escaped(&mut s, &e.stage);
            s.push_str(&format!(
                ",\"count\":{},\"rate_per_sec\":{:.3},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                e.count, e.rate_per_sec, e.p50_ns, e.p99_ns, e.max_ns
            ));
        }
        s.push_str("]}");
        s
    }

    /// Renders the snapshot as Prometheus text exposition: the
    /// `joinopt_serve_stage_*` windowed series.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        for (name, pick) in [
            (
                "joinopt_serve_stage_window_count",
                &(|e: &WindowEntry| e.count.to_string()) as &dyn Fn(&WindowEntry) -> String,
            ),
            ("joinopt_serve_stage_p50_ns", &|e: &WindowEntry| {
                e.p50_ns.to_string()
            }),
            ("joinopt_serve_stage_p99_ns", &|e: &WindowEntry| {
                e.p99_ns.to_string()
            }),
            ("joinopt_serve_stage_rate_per_sec", &|e: &WindowEntry| {
                format!("{:.3}", e.rate_per_sec)
            }),
        ] {
            for e in &self.entries {
                s.push_str(&format!(
                    "{name}{{tenant=\"{}\",verb=\"{}\",stage=\"{}\"}} {}\n",
                    e.tenant,
                    e.verb,
                    e.stage,
                    pick(e)
                ));
            }
        }
        s
    }
}

/// Rolling windows keyed by (tenant, verb, stage): the serve path's
/// per-stage latency series behind the `metrics` verb and `joinopt top`.
#[derive(Debug)]
pub struct WindowedMetrics {
    config: WindowConfig,
    series: BTreeMap<(String, String, String), TimeWindow>,
}

impl WindowedMetrics {
    /// An empty set of windows, all sized by `config`.
    pub fn new(config: WindowConfig) -> WindowedMetrics {
        WindowedMetrics {
            config,
            series: BTreeMap::new(),
        }
    }

    /// The shared window sizing.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// Records one stage duration observed at `now_ns`.
    pub fn record(&mut self, tenant: &str, verb: &str, stage: &str, now_ns: u64, duration_ns: u64) {
        let key = (tenant.to_string(), verb.to_string(), stage.to_string());
        self.series
            .entry(key)
            .or_insert_with(|| TimeWindow::new(self.config))
            .record(now_ns, duration_ns);
    }

    /// Snapshots every series at `now_ns`, dropping series whose window
    /// is empty. Entries come out sorted by (tenant, verb, stage).
    pub fn snapshot(&self, now_ns: u64) -> WindowSnapshot {
        let window_ns = self.config.window_ns();
        let mut entries = Vec::new();
        for ((tenant, verb, stage), window) in &self.series {
            let merged = window.merged(now_ns);
            if merged.count() == 0 {
                continue;
            }
            let window_secs = window_ns as f64 / 1e9;
            entries.push(WindowEntry {
                tenant: tenant.clone(),
                verb: verb.clone(),
                stage: stage.clone(),
                count: merged.count(),
                rate_per_sec: if window_secs > 0.0 {
                    merged.count() as f64 / window_secs
                } else {
                    0.0
                },
                p50_ns: merged.quantile(0.5),
                p99_ns: merged.quantile(0.99),
                max_ns: merged.max(),
            });
        }
        WindowSnapshot { window_ns, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn small() -> WindowConfig {
        WindowConfig {
            bucket_width_ns: SEC,
            buckets: 4,
        }
    }

    #[test]
    fn window_counts_only_recent_samples() {
        let mut w = TimeWindow::new(small());
        w.record(0, 100);
        w.record(SEC, 200);
        assert_eq!(w.merged(SEC).count(), 2);
        // Four seconds later the epoch-0 sample has left the window.
        assert_eq!(w.merged(4 * SEC).count(), 1);
        // Another bucket later everything is gone.
        assert_eq!(w.merged(5 * SEC).count(), 0);
    }

    #[test]
    fn rotation_at_exact_window_edges() {
        let mut w = TimeWindow::new(small());
        // A sample on the very last nanosecond of bucket 0 and the very
        // first of bucket 1 land in different buckets.
        w.record(SEC - 1, 10);
        w.record(SEC, 20);
        assert_eq!(w.merged(SEC).count(), 2);
        // At exactly now = 4s the window is epochs [1, 4]: the epoch-0
        // sample is out, the epoch-1 sample is the last one standing.
        let m = w.merged(4 * SEC);
        assert_eq!(m.count(), 1);
        assert_eq!(m.max(), 20);
        // One bucket later (epochs [2, 5]) it expires too.
        assert_eq!(w.merged(5 * SEC).count(), 0);
    }

    #[test]
    fn empty_window_snapshots_cleanly() {
        let w = TimeWindow::new(small());
        let m = w.merged(123 * SEC);
        assert_eq!(m.count(), 0);
        assert_eq!(m.quantile(0.5), 0);
        let metrics = WindowedMetrics::new(small());
        let snap = metrics.snapshot(123 * SEC);
        assert!(snap.entries.is_empty());
        assert_eq!(
            snap.to_json(),
            format!("{{\"window_ns\":{},\"stages\":[]}}", 4 * SEC)
        );
    }

    #[test]
    fn far_forward_jump_expires_all_buckets_at_once() {
        let mut w = TimeWindow::new(small());
        for i in 0..4 {
            w.record(i * SEC, 50 + i);
        }
        assert_eq!(w.merged(3 * SEC).count(), 4);
        // The clock leaps an hour: every bucket's epoch is stale. No
        // writes needed — the snapshot skips them all.
        assert_eq!(w.merged(3600 * SEC).count(), 0);
        // And the ring is immediately reusable at the new epoch.
        w.record(3600 * SEC, 77);
        let m = w.merged(3600 * SEC);
        assert_eq!((m.count(), m.max()), (1, 77));
    }

    #[test]
    fn stale_slot_resets_when_rewritten() {
        let mut w = TimeWindow::new(small());
        w.record(0, 100);
        // Epoch 4 maps onto the same ring slot as epoch 0; the stale
        // histogram must not leak into the new bucket.
        w.record(4 * SEC, 7);
        let m = w.merged(4 * SEC);
        assert_eq!((m.count(), m.max()), (1, 7));
    }

    #[test]
    fn keyed_snapshot_sorts_and_rates() {
        let mut m = WindowedMetrics::new(small());
        m.record("tb", "optimize", "optimize", 0, 1000);
        m.record("ta", "optimize", "breaker", 0, 10);
        m.record("ta", "optimize", "breaker", SEC / 2, 30);
        let snap = m.snapshot(SEC / 2);
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].tenant, "ta");
        assert_eq!(snap.entries[0].count, 2);
        assert!((snap.entries[0].rate_per_sec - 0.5).abs() < 1e-9);
        assert_eq!(snap.entries[1].tenant, "tb");
        let prom = snap.to_prometheus();
        assert!(prom.contains(
            "joinopt_serve_stage_window_count{tenant=\"ta\",verb=\"optimize\",stage=\"breaker\"} 2"
        ));
        assert!(prom.contains("joinopt_serve_stage_p99_ns{tenant=\"tb\""));
        let json = snap.to_json();
        assert!(json.contains("\"stage\":\"breaker\""));
    }
}
