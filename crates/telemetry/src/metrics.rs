//! [`MetricsCollector`] — aggregates one run's events into a
//! [`RunReport`] with human, JSON-line and CSV serializations.

use core::fmt;
use std::cell::RefCell;
use std::time::Instant;

use crate::json::{write_escaped, write_f64};
use crate::observer::{Event, Observer};

/// One completed phase span, stamped against the collector's monotonic
/// clock (nanoseconds since the collector was created).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name (`"init"`, `"enumerate"`, `"extract"`, …).
    pub name: &'static str,
    /// Start of the phase.
    pub start_ns: u64,
    /// End of the phase (`>= start_ns`; the clock is monotonic).
    pub end_ns: u64,
}

impl PhaseSpan {
    /// Wall-clock duration of the span in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Entries materialized at one DP level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelCount {
    /// Relation-set size.
    pub size: usize,
    /// Distinct sets of that size entered into the DP table.
    pub new_entries: u64,
}

/// Per-level rollup of the parallel engine's worker activity, built
/// from one `level_sync` event (levels where the engine ran inline
/// without spawning report `workers == 1` with zero merge/idle time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerLevel {
    /// Relation-set size of the level.
    pub level: usize,
    /// Workers that processed chunks of this level.
    pub workers: usize,
    /// Wall time of the deterministic ascending merge at the barrier.
    pub merge_ns: u64,
    /// Slowest worker's chunk service time (the level's critical path).
    pub max_service_ns: u64,
    /// Sum of every worker's chunk service time.
    pub total_service_ns: u64,
    /// Aggregate barrier wait: `workers × max_service_ns −
    /// total_service_ns`.
    pub idle_ns: u64,
}

impl WorkerLevel {
    /// Worker utilization in `[0, 1]`: total service time over the
    /// level's `workers × max_service_ns` span (1.0 when perfectly
    /// balanced, or when no time was measured).
    pub fn utilization(&self) -> f64 {
        let span = self.workers as u64 * self.max_service_ns;
        if span == 0 {
            1.0
        } else {
            self.total_service_ns as f64 / span as f64
        }
    }
}

/// Aggregated metrics of one optimizer run.
///
/// Produced by [`MetricsCollector::report`]. Fields not reported by an
/// algorithm (e.g. table stats for heuristics without a DP table) stay
/// at their zero defaults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Algorithm name from the `run_start` event.
    pub algorithm: &'static str,
    /// Number of relations in the query.
    pub relations: usize,
    /// Completed phase spans, in completion order.
    pub phases: Vec<PhaseSpan>,
    /// Per-size DP-table entry counts, smallest size first.
    pub levels: Vec<LevelCount>,
    /// Parallel-engine worker rollups, one per synchronized level
    /// (empty for sequential runs).
    pub worker_levels: Vec<WorkerLevel>,
    /// Sets with a registered plan (final DP-table size).
    pub table_entries: usize,
    /// Allocated table capacity (0 when not reported).
    pub table_capacity: usize,
    /// `BestPlan` lookups performed.
    pub table_probes: u64,
    /// Lookups that found an existing entry.
    pub table_hits: u64,
    /// Plan nodes materialized.
    pub arena_nodes: usize,
    /// Bytes of plan-node storage.
    pub arena_bytes: usize,
    /// `InnerCounter`.
    pub counter_inner: u64,
    /// `CsgCmpPairCounter`.
    pub counter_csg_cmp_pairs: u64,
    /// `OnoLohmanCounter`.
    pub counter_ono_lohman: u64,
    /// Which budget tripped (`"time"`, `"memory"`, `"cost"`,
    /// `"internal"`), if a `budget_exceeded` event was seen.
    pub budget_exceeded: Option<&'static str>,
    /// The degradation-ladder rung that produced the plan, if a
    /// `degraded` event was seen.
    pub degraded_rung: Option<&'static str>,
    /// Nanoseconds from collector creation to the `run_end` event.
    pub total_ns: u64,
}

impl RunReport {
    /// The span for `name`, if that phase completed.
    pub fn phase(&self, name: &str) -> Option<&PhaseSpan> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Sum of all per-level entry counts (equals the DP-table size when
    /// the algorithm reports levels).
    pub fn level_total(&self) -> u64 {
        self.levels.iter().map(|l| l.new_entries).sum()
    }

    /// Run-wide worker utilization in `[0, 1]`: total service time over
    /// total `workers × max_service_ns` span across all synchronized
    /// levels. `None` for sequential runs that reported no
    /// `level_sync` events at all — utilization is then simply not a
    /// property of the run, not a perfect `1.0`. Parallel levels whose
    /// measured span is zero report `Some(1.0)` (nothing waited).
    pub fn worker_utilization(&self) -> Option<f64> {
        if self.worker_levels.is_empty() {
            return None;
        }
        let span: u64 = self
            .worker_levels
            .iter()
            .map(|w| w.workers as u64 * w.max_service_ns)
            .sum();
        if span == 0 {
            Some(1.0)
        } else {
            let service: u64 = self.worker_levels.iter().map(|w| w.total_service_ns).sum();
            Some(service as f64 / span as f64)
        }
    }

    /// Table occupancy in `[0, 1]` (0 when capacity was not reported).
    pub fn occupancy(&self) -> f64 {
        if self.table_capacity == 0 {
            0.0
        } else {
            self.table_entries as f64 / self.table_capacity as f64
        }
    }

    /// The report as a single JSON line (no trailing newline).
    ///
    /// Parses back with [`crate::json::JsonValue::parse`]; see
    /// `docs/observability.md` for the schema.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"algorithm\":");
        write_escaped(&mut s, self.algorithm);
        s.push_str(&format!(",\"relations\":{}", self.relations));
        s.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            write_escaped(&mut s, p.name);
            s.push_str(&format!(
                ",\"start_ns\":{},\"end_ns\":{},\"duration_ns\":{}}}",
                p.start_ns,
                p.end_ns,
                p.duration_ns()
            ));
        }
        s.push_str("],\"levels\":[");
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"size\":{},\"new_entries\":{}}}",
                l.size, l.new_entries
            ));
        }
        s.push(']');
        if !self.worker_levels.is_empty() {
            s.push_str(",\"worker_levels\":[");
            for (i, w) in self.worker_levels.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"level\":{},\"workers\":{},\"merge_ns\":{},\"max_service_ns\":{},\
                     \"total_service_ns\":{},\"idle_ns\":{},\"utilization\":",
                    w.level, w.workers, w.merge_ns, w.max_service_ns, w.total_service_ns, w.idle_ns
                ));
                write_f64(&mut s, w.utilization());
                s.push('}');
            }
            s.push(']');
        }
        s.push_str(&format!(
            ",\"table\":{{\"entries\":{},\"capacity\":{},\"probes\":{},\"hits\":{},\"occupancy\":",
            self.table_entries, self.table_capacity, self.table_probes, self.table_hits
        ));
        write_f64(&mut s, self.occupancy());
        s.push_str(&format!(
            "}},\"arena\":{{\"nodes\":{},\"bytes\":{}}}",
            self.arena_nodes, self.arena_bytes
        ));
        s.push_str(&format!(
            ",\"counters\":{{\"inner\":{},\"csg_cmp_pairs\":{},\"ono_lohman\":{}}}",
            self.counter_inner, self.counter_csg_cmp_pairs, self.counter_ono_lohman
        ));
        if let Some(budget) = self.budget_exceeded {
            s.push_str(",\"budget_exceeded\":");
            write_escaped(&mut s, budget);
        }
        if let Some(rung) = self.degraded_rung {
            s.push_str(",\"degraded_rung\":");
            write_escaped(&mut s, rung);
        }
        s.push_str(&format!(",\"total_ns\":{}}}", self.total_ns));
        s
    }

    /// The fixed CSV column set matching [`RunReport::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "algorithm,relations,total_ns,phases,table_entries,table_capacity,\
         table_probes,table_hits,arena_nodes,arena_bytes,\
         counter_inner,counter_csg_cmp_pairs,counter_ono_lohman"
    }

    /// One CSV row. Phase spans are packed into a single
    /// `name:duration_ns;…` cell so the column set stays fixed across
    /// algorithms with different phase structures.
    pub fn to_csv_row(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| format!("{}:{}", p.name, p.duration_ns()))
            .collect();
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.algorithm,
            self.relations,
            self.total_ns,
            phases.join(";"),
            self.table_entries,
            self.table_capacity,
            self.table_probes,
            self.table_hits,
            self.arena_nodes,
            self.arena_bytes,
            self.counter_inner,
            self.counter_csg_cmp_pairs,
            self.counter_ono_lohman,
        )
    }

    /// Header plus this report's row, newline-terminated.
    pub fn to_csv(&self) -> String {
        format!("{}\n{}\n", Self::csv_header(), self.to_csv_row())
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run:        {} on {} relations",
            self.algorithm, self.relations
        )?;
        writeln!(f, "total:      {:.3} ms", self.total_ns as f64 / 1e6)?;
        for p in &self.phases {
            writeln!(
                f,
                "  phase {:<10} {:>12.3} ms",
                p.name,
                p.duration_ns() as f64 / 1e6
            )?;
        }
        if !self.levels.is_empty() {
            write!(f, "dp levels: ")?;
            for l in &self.levels {
                write!(f, " {}:{}", l.size, l.new_entries)?;
            }
            writeln!(f, "  (total {})", self.level_total())?;
        }
        if !self.worker_levels.is_empty() {
            let max_workers = self
                .worker_levels
                .iter()
                .map(|w| w.workers)
                .max()
                .unwrap_or(1);
            writeln!(
                f,
                "workers:    {} levels synchronized, up to {} workers, {:.1}% utilized",
                self.worker_levels.len(),
                max_workers,
                100.0 * self.worker_utilization().unwrap_or(1.0)
            )?;
        }
        writeln!(
            f,
            "table:      {} entries / {} capacity ({:.1}% occupied), {} probes, {} hits",
            self.table_entries,
            self.table_capacity,
            100.0 * self.occupancy(),
            self.table_probes,
            self.table_hits
        )?;
        writeln!(
            f,
            "arena:      {} nodes, {} bytes",
            self.arena_nodes, self.arena_bytes
        )?;
        writeln!(
            f,
            "counters:   inner={} csgCmpPairs={} onoLohman={}",
            self.counter_inner, self.counter_csg_cmp_pairs, self.counter_ono_lohman
        )?;
        if let (Some(budget), Some(rung)) = (self.budget_exceeded, self.degraded_rung) {
            writeln!(f, "degraded:   {rung} plan after {budget} budget trip")?;
        } else if let Some(budget) = self.budget_exceeded {
            writeln!(f, "budget:     {budget} budget exceeded")?;
        }
        Ok(())
    }
}

/// An [`Observer`] that aggregates a run's events into a [`RunReport`].
///
/// Timestamps are taken on event receipt against a clock started at
/// construction, so create the collector immediately before the run.
/// Reusable: a new `run_start` event resets the aggregate state, and
/// [`MetricsCollector::report`] can be called after each run.
pub struct MetricsCollector {
    start: Instant,
    state: RefCell<RunReport>,
    open_phase: RefCell<Option<(&'static str, u64)>>,
}

impl MetricsCollector {
    /// Creates a collector; its clock starts now.
    pub fn new() -> MetricsCollector {
        MetricsCollector {
            start: Instant::now(),
            state: RefCell::new(RunReport::default()),
            open_phase: RefCell::new(None),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The aggregated report for the most recent run.
    pub fn report(&self) -> RunReport {
        self.state.borrow().clone()
    }
}

impl Default for MetricsCollector {
    fn default() -> MetricsCollector {
        MetricsCollector::new()
    }
}

impl Observer for MetricsCollector {
    fn on_event(&self, event: Event) {
        let now = self.now_ns();
        let mut r = self.state.borrow_mut();
        match event {
            Event::RunStart {
                algorithm,
                relations,
            } => {
                *r = RunReport {
                    algorithm,
                    relations,
                    ..RunReport::default()
                };
                *self.open_phase.borrow_mut() = None;
            }
            Event::PhaseStart { phase } => {
                *self.open_phase.borrow_mut() = Some((phase, now));
            }
            Event::PhaseEnd { phase } => {
                let open = self.open_phase.borrow_mut().take();
                // Tolerate unmatched ends (start before the collector
                // attached): fall back to a zero-length span at `now`.
                let start_ns = match open {
                    Some((name, t)) if name == phase => t,
                    _ => now,
                };
                r.phases.push(PhaseSpan {
                    name: phase,
                    start_ns,
                    end_ns: now,
                });
            }
            Event::DpLevel { size, new_entries } => {
                r.levels.push(LevelCount { size, new_entries });
            }
            Event::TableStats {
                entries,
                capacity,
                probes,
                hits,
            } => {
                r.table_entries = entries;
                r.table_capacity = capacity;
                r.table_probes = probes;
                r.table_hits = hits;
            }
            Event::ArenaStats { nodes, bytes } => {
                r.arena_nodes = nodes;
                r.arena_bytes = bytes;
            }
            Event::FinalCounters {
                inner,
                csg_cmp_pairs,
                ono_lohman,
            } => {
                r.counter_inner = inner;
                r.counter_csg_cmp_pairs = csg_cmp_pairs;
                r.counter_ono_lohman = ono_lohman;
            }
            Event::BudgetExceeded { budget } => {
                r.budget_exceeded = Some(budget);
            }
            Event::Degraded { rung } => {
                r.degraded_rung = Some(rung);
            }
            // Per-chunk and per-candidate detail is for traces, the
            // registry and the provenance collector; cache and serve
            // events are cross-run by nature. The per-run report keeps
            // rollups only.
            Event::WorkerChunk { .. }
            | Event::PlanCandidate { .. }
            | Event::SearchPruned { .. }
            | Event::CacheLookup { .. }
            | Event::CacheStore { .. }
            | Event::CacheEvict { .. }
            | Event::ServeAccepted { .. }
            | Event::ServeShed { .. }
            | Event::ServeRetried { .. }
            | Event::ServeBreakerOpen
            | Event::ServeDrained { .. } => {}
            Event::LevelSync {
                level,
                workers,
                merge_ns,
                max_service_ns,
                total_service_ns,
                idle_ns,
            } => {
                r.worker_levels.push(WorkerLevel {
                    level,
                    workers,
                    merge_ns,
                    max_service_ns,
                    total_service_ns,
                    idle_ns,
                });
            }
            Event::RunEnd => {
                r.total_ns = now;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn sample_events(obs: &dyn Observer) {
        obs.on_event(Event::RunStart {
            algorithm: "DPccp",
            relations: 4,
        });
        obs.on_event(Event::PhaseStart { phase: "init" });
        obs.on_event(Event::PhaseEnd { phase: "init" });
        obs.on_event(Event::PhaseStart { phase: "enumerate" });
        obs.on_event(Event::PhaseEnd { phase: "enumerate" });
        obs.on_event(Event::PhaseStart { phase: "extract" });
        obs.on_event(Event::PhaseEnd { phase: "extract" });
        obs.on_event(Event::DpLevel {
            size: 1,
            new_entries: 4,
        });
        obs.on_event(Event::DpLevel {
            size: 2,
            new_entries: 3,
        });
        obs.on_event(Event::DpLevel {
            size: 3,
            new_entries: 2,
        });
        obs.on_event(Event::DpLevel {
            size: 4,
            new_entries: 1,
        });
        obs.on_event(Event::TableStats {
            entries: 10,
            capacity: 16,
            probes: 30,
            hits: 20,
        });
        obs.on_event(Event::ArenaStats {
            nodes: 12,
            bytes: 12 * 40,
        });
        obs.on_event(Event::FinalCounters {
            inner: 9,
            csg_cmp_pairs: 18,
            ono_lohman: 9,
        });
        obs.on_event(Event::RunEnd);
    }

    #[test]
    fn aggregates_a_full_run() {
        let mc = MetricsCollector::new();
        sample_events(&mc);
        let r = mc.report();
        assert_eq!(r.algorithm, "DPccp");
        assert_eq!(r.relations, 4);
        assert_eq!(r.phases.len(), 3);
        assert!(r.phase("init").is_some());
        assert!(r.phase("enumerate").is_some());
        assert!(r.phase("extract").is_some());
        assert!(r.phase("nonexistent").is_none());
        assert_eq!(r.level_total(), 10);
        assert_eq!(r.level_total(), r.table_entries as u64);
        assert_eq!(r.table_probes, 30);
        assert_eq!(r.table_hits, 20);
        assert!((r.occupancy() - 10.0 / 16.0).abs() < 1e-12);
        assert_eq!(r.arena_nodes, 12);
        assert_eq!(r.counter_inner, 9);
        // Monotonic spans ordered by completion.
        let mut last_end = 0;
        for p in &r.phases {
            assert!(p.start_ns <= p.end_ns);
            assert!(p.end_ns >= last_end);
            last_end = p.end_ns;
        }
        assert!(r.total_ns >= last_end);
    }

    #[test]
    fn run_start_resets_state() {
        let mc = MetricsCollector::new();
        sample_events(&mc);
        mc.on_event(Event::RunStart {
            algorithm: "DPsize",
            relations: 2,
        });
        mc.on_event(Event::RunEnd);
        let r = mc.report();
        assert_eq!(r.algorithm, "DPsize");
        assert!(r.phases.is_empty());
        assert!(r.levels.is_empty());
        assert_eq!(r.table_entries, 0);
    }

    #[test]
    fn unmatched_phase_end_is_tolerated() {
        let mc = MetricsCollector::new();
        mc.on_event(Event::RunStart {
            algorithm: "X",
            relations: 1,
        });
        mc.on_event(Event::PhaseEnd { phase: "orphan" });
        let r = mc.report();
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0].duration_ns(), 0);
    }

    #[test]
    fn json_line_round_trips() {
        let mc = MetricsCollector::new();
        sample_events(&mc);
        let line = mc.report().to_json_line();
        assert!(!line.contains('\n'));
        let v = JsonValue::parse(&line).unwrap();
        assert_eq!(v.get("algorithm").unwrap().as_str(), Some("DPccp"));
        assert_eq!(v.get("relations").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("phases").unwrap().as_array().unwrap().len(), 3);
        let levels = v.get("levels").unwrap().as_array().unwrap();
        assert_eq!(levels.len(), 4);
        assert_eq!(levels[0].get("size").unwrap().as_u64(), Some(1));
        let table = v.get("table").unwrap();
        assert_eq!(table.get("entries").unwrap().as_u64(), Some(10));
        assert_eq!(table.get("probes").unwrap().as_u64(), Some(30));
        let counters = v.get("counters").unwrap();
        assert_eq!(counters.get("ono_lohman").unwrap().as_u64(), Some(9));
        assert!(v.get("total_ns").unwrap().as_u64().is_some());
    }

    #[test]
    fn worker_levels_roll_up_and_serialize() {
        let mc = MetricsCollector::new();
        mc.on_event(Event::RunStart {
            algorithm: "DPsub",
            relations: 6,
        });
        mc.on_event(Event::WorkerChunk {
            level: 3,
            worker: 0,
            thread_id: 7,
            sets: 10,
            service_ns: 600,
            inner: 40,
            pairs: 12,
        });
        mc.on_event(Event::LevelSync {
            level: 3,
            workers: 2,
            merge_ns: 100,
            max_service_ns: 600,
            total_service_ns: 1000,
            idle_ns: 200,
        });
        mc.on_event(Event::LevelSync {
            level: 4,
            workers: 2,
            merge_ns: 50,
            max_service_ns: 400,
            total_service_ns: 800,
            idle_ns: 0,
        });
        mc.on_event(Event::RunEnd);
        let r = mc.report();
        assert_eq!(r.worker_levels.len(), 2);
        assert!((r.worker_levels[0].utilization() - 1000.0 / 1200.0).abs() < 1e-12);
        assert!((r.worker_levels[1].utilization() - 1.0).abs() < 1e-12);
        assert!((r.worker_utilization().unwrap() - 1800.0 / 2000.0).abs() < 1e-12);
        let text = r.to_string();
        assert!(text.contains("2 levels synchronized"));
        let v = JsonValue::parse(&r.to_json_line()).unwrap();
        let wl = v.get("worker_levels").unwrap().as_array().unwrap();
        assert_eq!(wl.len(), 2);
        assert_eq!(wl[0].get("level").unwrap().as_u64(), Some(3));
        assert_eq!(wl[0].get("workers").unwrap().as_u64(), Some(2));
        assert_eq!(wl[0].get("idle_ns").unwrap().as_u64(), Some(200));
        // Sequential runs omit the array entirely.
        let empty = RunReport::default().to_json_line();
        assert!(!empty.contains("worker_levels"));
        assert_eq!(RunReport::default().worker_utilization(), None);
    }

    #[test]
    fn sequential_runs_report_no_worker_rollup_at_all() {
        // Regression: a run without worker_chunk/level_sync events must
        // yield an *absent* rollup — no zeroed stub levels, no
        // fabricated utilization figure, no "worker_levels" JSON key.
        let mc = MetricsCollector::new();
        sample_events(&mc); // a full sequential DPccp run
        let r = mc.report();
        assert!(r.worker_levels.is_empty());
        assert_eq!(r.worker_utilization(), None);
        assert!(!r.to_json_line().contains("worker_levels"));
        assert!(!r.to_string().contains("workers:"));
        // A parallel level whose timing measured zero still reports a
        // (perfect) utilization: the rollup exists, it just saw no wait.
        let mc = MetricsCollector::new();
        mc.on_event(Event::RunStart {
            algorithm: "DPsub",
            relations: 3,
        });
        mc.on_event(Event::LevelSync {
            level: 2,
            workers: 1,
            merge_ns: 0,
            max_service_ns: 0,
            total_service_ns: 0,
            idle_ns: 0,
        });
        mc.on_event(Event::RunEnd);
        assert_eq!(mc.report().worker_utilization(), Some(1.0));
    }

    #[test]
    fn csv_has_matching_columns() {
        let mc = MetricsCollector::new();
        sample_events(&mc);
        let r = mc.report();
        let header_cols = RunReport::csv_header().split(',').count();
        let row_cols = r.to_csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("DPccp"));
        assert!(csv.contains("init:"));
    }

    #[test]
    fn display_mentions_key_figures() {
        let mc = MetricsCollector::new();
        sample_events(&mc);
        let text = mc.report().to_string();
        assert!(text.contains("DPccp"));
        assert!(text.contains("phase init"));
        assert!(text.contains("phase enumerate"));
        assert!(text.contains("phase extract"));
        assert!(text.contains("10 entries"));
        assert!(text.contains("12 nodes"));
        assert!(text.contains("onoLohman=9"));
    }
}
