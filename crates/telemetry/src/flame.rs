//! Collapsed-stack export: turns a JSONL trace (as written by
//! [`TraceWriter`](crate::TraceWriter)) into the `stack;frames value`
//! format consumed by flamegraph tooling (`flamegraph.pl`, inferno,
//! speedscope).
//!
//! Frames are semantic rather than call frames:
//!
//! * completed phase spans become `algorithm;<phase>` weighted by the
//!   span's wall time,
//! * parallel-engine chunks become
//!   `algorithm;enumerate;level<k>;worker<w>` weighted by chunk service
//!   time (self time — the parent `enumerate` frame also covers it, so
//!   chunk frames are charged against the enumerate span),
//! * level merges become `algorithm;enumerate;level<k>;merge` weighted
//!   by merge time.
//!
//! Events are grouped by the trace's `thread_id` field, so interleaved
//! lines from a batch run fold into per-run stacks. Identical stacks
//! are summed and the output is sorted, making the rendering a pure
//! deterministic function of the trace.

use std::collections::BTreeMap;

use crate::json::JsonValue;

/// A failure to fold a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlameError {
    /// A line was not a JSON object (1-based line number, message).
    Parse(usize, String),
    /// A line was missing a required field (1-based line number, field).
    MissingField(usize, &'static str),
}

impl core::fmt::Display for FlameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FlameError::Parse(line, msg) => write!(f, "trace line {line}: {msg}"),
            FlameError::MissingField(line, field) => {
                write!(f, "trace line {line}: missing field {field:?}")
            }
        }
    }
}

impl std::error::Error for FlameError {}

/// Per-thread folding state.
#[derive(Default)]
struct ThreadState {
    algorithm: String,
    open_phase: Option<(String, u64)>,
}

fn field_u64(v: &JsonValue, line: usize, name: &'static str) -> Result<u64, FlameError> {
    v.get(name)
        .and_then(JsonValue::as_u64)
        .ok_or(FlameError::MissingField(line, name))
}

/// Folds a JSONL trace into collapsed stacks.
///
/// Returns newline-terminated `frame;frame;frame value` lines, sorted
/// by stack. Blank trace lines are skipped; unknown event kinds are
/// ignored (forward compatibility), malformed lines are errors.
pub fn collapse_trace(trace: &str) -> Result<String, FlameError> {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    let mut threads: BTreeMap<u64, ThreadState> = BTreeMap::new();
    for (i, line) in trace.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| FlameError::Parse(lineno, e.to_string()))?;
        let event = v
            .get("event")
            .and_then(JsonValue::as_str)
            .ok_or(FlameError::MissingField(lineno, "event"))?;
        // Traces written before thread ids existed fold as one thread.
        let tid = v.get("thread_id").and_then(JsonValue::as_u64).unwrap_or(0);
        let state = threads.entry(tid).or_default();
        match event {
            "run_start" => {
                let algorithm = v
                    .get("algorithm")
                    .and_then(JsonValue::as_str)
                    .ok_or(FlameError::MissingField(lineno, "algorithm"))?;
                state.algorithm = algorithm.to_string();
                state.open_phase = None;
            }
            "phase_start" => {
                let now = field_u64(&v, lineno, "elapsed_ns")?;
                let phase = v
                    .get("phase")
                    .and_then(JsonValue::as_str)
                    .ok_or(FlameError::MissingField(lineno, "phase"))?;
                state.open_phase = Some((phase.to_string(), now));
            }
            "phase_end" => {
                let now = field_u64(&v, lineno, "elapsed_ns")?;
                if let Some((phase, start)) = state.open_phase.take() {
                    let algorithm = if state.algorithm.is_empty() {
                        "unknown"
                    } else {
                        &state.algorithm
                    };
                    *stacks.entry(format!("{algorithm};{phase}")).or_insert(0) +=
                        now.saturating_sub(start);
                }
            }
            "worker_chunk" => {
                let level = field_u64(&v, lineno, "level")?;
                let worker = field_u64(&v, lineno, "worker")?;
                let service = field_u64(&v, lineno, "service_ns")?;
                let algorithm = if state.algorithm.is_empty() {
                    "unknown"
                } else {
                    &state.algorithm
                };
                *stacks
                    .entry(format!("{algorithm};enumerate;level{level};worker{worker}"))
                    .or_insert(0) += service;
            }
            "level_sync" => {
                let level = field_u64(&v, lineno, "level")?;
                let merge = field_u64(&v, lineno, "merge_ns")?;
                let algorithm = if state.algorithm.is_empty() {
                    "unknown"
                } else {
                    &state.algorithm
                };
                *stacks
                    .entry(format!("{algorithm};enumerate;level{level};merge"))
                    .or_insert(0) += merge;
            }
            _ => {}
        }
    }
    let mut out = String::new();
    for (stack, value) in &stacks {
        out.push_str(&format!("{stack} {value}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{Event, Observer};
    use crate::TraceWriter;

    #[test]
    fn folds_phase_spans_and_worker_frames() {
        let trace = "\
{\"event\":\"run_start\",\"phase\":\"run\",\"elapsed_ns\":0,\"thread_id\":1,\"algorithm\":\"DPsub\",\"relations\":6}
{\"event\":\"phase_start\",\"phase\":\"enumerate\",\"elapsed_ns\":100,\"thread_id\":1}
{\"event\":\"worker_chunk\",\"phase\":\"enumerate\",\"elapsed_ns\":400,\"thread_id\":1,\"level\":2,\"worker\":0,\"worker_thread_id\":2,\"sets\":8,\"service_ns\":120,\"inner\":30,\"pairs\":6}
{\"event\":\"worker_chunk\",\"phase\":\"enumerate\",\"elapsed_ns\":410,\"thread_id\":1,\"level\":2,\"worker\":1,\"worker_thread_id\":3,\"sets\":7,\"service_ns\":110,\"inner\":28,\"pairs\":5}
{\"event\":\"level_sync\",\"phase\":\"enumerate\",\"elapsed_ns\":420,\"thread_id\":1,\"level\":2,\"workers\":2,\"merge_ns\":40,\"max_service_ns\":120,\"total_service_ns\":230,\"idle_ns\":10}
{\"event\":\"phase_end\",\"phase\":\"enumerate\",\"elapsed_ns\":600,\"thread_id\":1}
{\"event\":\"run_end\",\"phase\":\"run\",\"elapsed_ns\":700,\"thread_id\":1}
";
        let folded = collapse_trace(trace).unwrap();
        let expected = "\
DPsub;enumerate 500
DPsub;enumerate;level2;merge 40
DPsub;enumerate;level2;worker0 120
DPsub;enumerate;level2;worker1 110
";
        assert_eq!(folded, expected);
    }

    #[test]
    fn interleaved_threads_fold_independently() {
        // Two batch workers interleave; each thread's phases must pair
        // against its own run context.
        let trace = "\
{\"event\":\"run_start\",\"phase\":\"run\",\"elapsed_ns\":0,\"thread_id\":1,\"algorithm\":\"DPccp\",\"relations\":4}
{\"event\":\"run_start\",\"phase\":\"run\",\"elapsed_ns\":5,\"thread_id\":2,\"algorithm\":\"DPsize\",\"relations\":4}
{\"event\":\"phase_start\",\"phase\":\"enumerate\",\"elapsed_ns\":10,\"thread_id\":1}
{\"event\":\"phase_start\",\"phase\":\"enumerate\",\"elapsed_ns\":20,\"thread_id\":2}
{\"event\":\"phase_end\",\"phase\":\"enumerate\",\"elapsed_ns\":110,\"thread_id\":1}
{\"event\":\"phase_end\",\"phase\":\"enumerate\",\"elapsed_ns\":220,\"thread_id\":2}
";
        let folded = collapse_trace(trace).unwrap();
        assert_eq!(folded, "DPccp;enumerate 100\nDPsize;enumerate 200\n");
    }

    #[test]
    fn accepts_real_tracewriter_output() {
        let tw = TraceWriter::new(Vec::new());
        tw.on_event(Event::RunStart {
            algorithm: "DPccp",
            relations: 3,
        });
        tw.on_event(Event::PhaseStart { phase: "init" });
        tw.on_event(Event::PhaseEnd { phase: "init" });
        tw.on_event(Event::RunEnd);
        let text = String::from_utf8(tw.finish().unwrap()).unwrap();
        let folded = collapse_trace(&text).unwrap();
        for line in folded.lines() {
            assert!(line.starts_with("DPccp;init "), "unexpected: {line}");
        }
    }

    #[test]
    fn malformed_lines_are_errors_with_line_numbers() {
        let err = collapse_trace("{\"event\":\"phase_end\",\"phase\":\"x\"}").unwrap_err();
        assert_eq!(err, FlameError::MissingField(1, "elapsed_ns"));
        let err = collapse_trace("not json").unwrap_err();
        assert!(matches!(err, FlameError::Parse(1, _)));
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn unknown_events_and_blank_lines_are_ignored() {
        let trace = "\n{\"event\":\"future_thing\",\"phase\":\"run\",\"elapsed_ns\":1}\n\n";
        assert_eq!(collapse_trace(trace).unwrap(), "");
    }
}
