//! Dependency-free JSON support: a string-escaping writer helper and a
//! small recursive-descent parser.
//!
//! The workspace has no serde; telemetry output is hand-written JSON
//! (objects of strings and numbers — the writer side lives in
//! [`crate::metrics`] and [`crate::trace`]), and this module provides the
//! matching reader so traces and reports can be *round-tripped* by tests
//! and tooling rather than grepped.

use core::fmt;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes an `f64` the way JSON expects: no `NaN`/`inf` literals
/// (mapped to `null`), integers without a trailing `.0`.
pub fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

/// A chainable single-object JSON writer: keys land in call order,
/// commas and escaping are handled, and `finish` yields the closed
/// document. This replaces hand-concatenated `format!` response
/// building (where a forgotten comma or an unescaped tenant name is a
/// protocol bug) with one audited code path.
///
/// ```
/// use joinopt_telemetry::json::JsonObject;
/// let line = JsonObject::new()
///     .str("verb", "health")
///     .str("status", "ok")
///     .u64("uptime_s", 42)
///     .finish();
/// assert_eq!(line, "{\"verb\":\"health\",\"status\":\"ok\",\"uptime_s\":42}");
/// ```
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
    empty: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> JsonObject {
        JsonObject {
            buf: String::from("{"),
            empty: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        write_escaped(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        self.key(key);
        write_escaped(&mut self.buf, value);
        self
    }

    /// Adds a string field only when `value` is `Some`.
    pub fn opt_str(self, key: &str, value: Option<&str>) -> JsonObject {
        match value {
            Some(v) => self.str(key, v),
            None => self,
        }
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> JsonObject {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field ([`write_f64`] conventions: no `NaN`/`inf`).
    pub fn f64(mut self, key: &str, value: f64) -> JsonObject {
        self.key(key);
        write_f64(&mut self.buf, value);
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> JsonObject {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Splices a pre-serialized JSON value (object, array, …) under
    /// `key`. The caller vouches that `value` is valid JSON.
    pub fn raw(mut self, key: &str, value: &str) -> JsonObject {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Closes the object and returns the document.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (keys are not deduplicated).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup (first occurrence); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(x) if *x >= 0.0 && *x == x.trunc() => Some(*x as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(xs) => Some(xs),
            _ => None,
        }
    }
}

/// A JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output (we never escape above U+001F), but
                            // reject rather than mangle them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape unsupported"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the maximal run of ordinary bytes in one go.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError {
                pos: start,
                message: format!("bad number '{text}'"),
            })
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_hostile_strings() {
        let tenant = "acme \"west\"\\2\n\tmünchen\u{1}";
        let message = "line1\r\nline2 with \"quotes\" and \\slashes\\";
        let doc = JsonObject::new()
            .str("verb", "optimize")
            .str("tenant", tenant)
            .str("message", message)
            .u64("retry_after_ms", 50)
            .f64("cost", 1.25)
            .f64("nan", f64::NAN)
            .bool("cache_hit", false)
            .opt_str("id", None)
            .opt_str("trace_id", Some("t-1"))
            .raw("spans", "[1,2,3]")
            .finish();
        let parsed = JsonValue::parse(&doc).unwrap();
        assert_eq!(parsed.get("tenant").unwrap().as_str(), Some(tenant));
        assert_eq!(parsed.get("message").unwrap().as_str(), Some(message));
        assert_eq!(parsed.get("retry_after_ms").unwrap().as_u64(), Some(50));
        assert_eq!(parsed.get("cost").unwrap().as_f64(), Some(1.25));
        assert_eq!(parsed.get("nan").unwrap(), &JsonValue::Null);
        assert_eq!(parsed.get("cache_hit").unwrap().as_bool(), Some(false));
        assert!(parsed.get("id").is_none());
        assert_eq!(parsed.get("trace_id").unwrap().as_str(), Some("t-1"));
        assert_eq!(parsed.get("spans").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(JsonValue::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(JsonValue::parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escape_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let mut out = String::new();
        write_escaped(&mut out, nasty);
        let back = JsonValue::parse(&out).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn f64_formatting() {
        let mut out = String::new();
        write_f64(&mut out, 3.0);
        assert_eq!(out, "3");
        out.clear();
        write_f64(&mut out, 3.25);
        assert_eq!(out, "3.25");
        out.clear();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(
            JsonValue::parse("1 2").is_err(),
            "trailing garbage must be rejected"
        );
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn error_reports_position() {
        let e = JsonValue::parse("[1, x]").unwrap_err();
        assert_eq!(e.pos, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn whitespace_tolerated() {
        let v = JsonValue::parse("  { \"a\" :\t[ ] , \"b\" : { } }\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 0);
        assert!(matches!(v.get("b"), Some(JsonValue::Object(f)) if f.is_empty()));
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(JsonValue::parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
        assert!(JsonValue::parse(r#""\ud800""#).is_err());
    }
}
