//! Telemetry for the joinopt optimizers: a zero-overhead [`Observer`]
//! API, run metrics, and JSONL tracing.
//!
//! The paper this workspace reproduces (Moerkotte & Neumann, VLDB 2006)
//! is fundamentally a *measurement* paper — its contribution is counters
//! and runtime comparisons across DPsize, DPsub and DPccp. This crate is
//! the standing measurement substrate those comparisons (and every
//! future performance PR) report against:
//!
//! * [`Observer`] — the sink trait optimizers emit [`Event`]s into.
//!   The default [`NoopObserver`] reports itself disabled, so
//!   instrumented code reduces to one branch per run: no events are
//!   constructed, no clocks read, nothing allocated.
//! * [`Event`] — the vocabulary: run/phase spans (`init`, `enumerate`,
//!   `extract`), per-size DP-level progress, DP-table statistics
//!   (entries/capacity/probes/hits), plan-arena accounting, and the
//!   paper's counters.
//! * [`MetricsCollector`] — aggregates a run into a [`RunReport`] with
//!   `Display`, JSON-line and CSV serializations (no external deps).
//! * [`TraceWriter`] — streams every event as a JSON line (with
//!   monotonic `elapsed_ns`) to any `io::Write`.
//! * [`ProvenanceCollector`] — folds the opt-in per-candidate
//!   provenance events ([`Observer::wants_provenance`]) into per-subset
//!   [`DecisionRecord`]s: winning split, runner-up, cost delta,
//!   candidates considered, pruning reason.
//! * [`Tee`] — fans events out to two observers; [`Fanout`] /
//!   [`SyncFanout`] to any number.
//! * [`MetricsRegistry`] — fleet-grade aggregation: Counter / Gauge /
//!   log-linear Histogram (p50/p90/p99/max) metrics fed across runs,
//!   sessions and batches by a [`RegistryObserver`], exported as
//!   Prometheus text exposition or a JSON [`Snapshot`].
//! * [`RequestTrace`] / [`TraceLog`] — request-scoped flight recording
//!   for the serve path: ordered stage spans (shed-check, breaker,
//!   cache-lookup, per-attempt optimize, …) with the resolved
//!   algorithm, cache hit and error kind, retained bounded (recent ring
//!   + worst-K slowest) behind the server's `trace`/`slow` verbs.
//! * [`WindowedMetrics`] — rolling time-window aggregation: a ring of
//!   fixed-width [`Histogram`] buckets giving windowed p50/p99 and
//!   rates per (tenant, verb, stage), deterministic under a manual
//!   clock (timestamps are caller-supplied, never read here).
//! * [`collapse_trace`] — folds a JSONL trace into collapsed-stack
//!   (flamegraph-compatible) lines.
//! * [`json`] — the dependency-free JSON writer/parser the above use,
//!   public so tools and tests can round-trip telemetry output.
//!
//! # Example
//!
//! ```
//! use joinopt_telemetry::{Event, MetricsCollector, Observer};
//!
//! let metrics = MetricsCollector::new();
//! // An optimizer run emits events (normally done by joinopt-core):
//! metrics.on_event(Event::RunStart { algorithm: "DPccp", relations: 3 });
//! metrics.on_event(Event::PhaseStart { phase: "enumerate" });
//! metrics.on_event(Event::PhaseEnd { phase: "enumerate" });
//! metrics.on_event(Event::RunEnd);
//!
//! let report = metrics.report();
//! assert_eq!(report.algorithm, "DPccp");
//! assert!(report.phase("enumerate").is_some());
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flame;
pub mod json;
mod metrics;
mod observer;
mod provenance;
mod registry;
pub mod span;
mod trace;
pub mod window;

pub use flame::{collapse_trace, FlameError};
pub use metrics::{LevelCount, MetricsCollector, PhaseSpan, RunReport, WorkerLevel};
pub use observer::{current_thread_id, Event, Fanout, NoopObserver, Observer, SyncFanout, Tee};
pub use provenance::{DecisionRecord, ProvenanceCollector, SplitChoice};
pub use registry::{
    Histogram, MetricValue, MetricsRegistry, RegistryObserver, Snapshot, SnapshotEntry,
};
pub use span::{RequestTrace, StageSpan, TraceIdMinter, TraceLog};
pub use trace::TraceWriter;
pub use window::{TimeWindow, WindowConfig, WindowEntry, WindowSnapshot, WindowedMetrics};
