//! The [`Observer`] trait and the event vocabulary optimizers emit.

use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// A small, portable thread identifier: dense `u64`s handed out in
/// first-use order (the std `ThreadId` has no stable integer form).
/// Used to attribute telemetry emitted from parallel-engine workers and
/// batch threads — ids are process-unique but *assignment* depends on
/// scheduling, so treat them as labels, not stable keys.
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// One telemetry event emitted by an optimizer run.
///
/// Events are plain `Copy` data with `&'static str` labels: constructing
/// one never allocates, so the *only* cost of an instrumentation point is
/// the branch on [`Observer::enabled`] guarding it. Timing is the
/// observer's job — collectors stamp events against their own monotonic
/// clock on receipt — which keeps `Instant::now()` calls off the
/// optimizer's hot path entirely.
///
/// The expected sequence for a DP run is:
///
/// ```text
/// RunStart
///   PhaseStart("init")    … singleton plans …    PhaseEnd("init")
///   PhaseStart("enumerate") … DP loops …         PhaseEnd("enumerate")
///   PhaseStart("extract") … tree extraction …    PhaseEnd("extract")
/// DpLevel*  TableStats  ArenaStats  FinalCounters
/// RunEnd
/// ```
///
/// Heuristics without a DP table emit the same span skeleton (with their
/// own phase names where appropriate) and whichever summary events apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// An optimizer run begins.
    RunStart {
        /// Algorithm name as reported by `JoinOrderer::name`.
        algorithm: &'static str,
        /// Number of relations in the query graph.
        relations: usize,
    },
    /// A named phase begins. Phases do not nest.
    PhaseStart {
        /// Phase name (`"init"`, `"enumerate"`, `"extract"`, …).
        phase: &'static str,
    },
    /// The matching phase ends.
    PhaseEnd {
        /// Phase name.
        phase: &'static str,
    },
    /// Plans materialized at one DP level: `new_entries` table entries
    /// whose relation sets have exactly `size` elements. Emitted once
    /// per non-empty level after enumeration, smallest size first,
    /// mirroring the paper's size-driven vs. subset-driven structure.
    DpLevel {
        /// Relation-set size (1 = singletons).
        size: usize,
        /// Number of distinct sets of that size entered into the table.
        new_entries: u64,
    },
    /// Final DP-table statistics.
    TableStats {
        /// Sets with a registered plan.
        entries: usize,
        /// Allocated capacity (slots for the dense table, bucket
        /// capacity for the sparse one) — `entries / capacity` is the
        /// occupancy.
        capacity: usize,
        /// `BestPlan` lookups performed by the enumerator.
        probes: u64,
        /// Probes that found an existing entry.
        hits: u64,
    },
    /// Final plan-arena accounting.
    ArenaStats {
        /// Plan nodes materialized (scans + accepted joins).
        nodes: usize,
        /// Bytes of node storage backing them.
        bytes: usize,
    },
    /// The paper's instrumentation counters, reported at the end of the
    /// run so observers need not understand per-algorithm conventions.
    FinalCounters {
        /// Innermost-loop iterations (`InnerCounter`).
        inner: u64,
        /// Oriented csg-cmp-pairs (`CsgCmpPairCounter`).
        csg_cmp_pairs: u64,
        /// Unordered csg-cmp-pairs (`OnoLohmanCounter`).
        ono_lohman: u64,
    },
    /// A resource budget tripped mid-run. Whether the run then fails or
    /// falls back to a cheaper algorithm is the caller's policy; a
    /// `Degraded` event follows when a fallback produced a plan.
    BudgetExceeded {
        /// Which budget tripped: `"time"`, `"memory"`, `"cost"` or
        /// `"internal"` (an isolated internal failure).
        budget: &'static str,
    },
    /// A degradation-ladder rung produced the plan after a budget trip.
    Degraded {
        /// The rung that succeeded: `"idp"`, `"greedy"` or `"exact"`
        /// (the exact plan was kept despite a post-run cost trip).
        rung: &'static str,
    },
    /// One worker's service summary for one level of the parallel
    /// engine: the chunk of subsets it owned and what processing them
    /// cost. Emitted at the level barrier (from the merge thread, in
    /// worker order), one event per worker per level.
    WorkerChunk {
        /// DP level (relation-set size) the chunk belongs to.
        level: usize,
        /// Worker slot index within the level (`0..workers`).
        worker: usize,
        /// Portable id ([`current_thread_id`]) of the OS thread that
        /// serviced the chunk — ties trace lines to real threads.
        thread_id: u64,
        /// Subsets the worker owned.
        sets: usize,
        /// Wall-clock nanoseconds the worker spent inside its chunk.
        service_ns: u64,
        /// Inner-loop iterations performed in this chunk.
        inner: u64,
        /// Csg-cmp-pairs counted in this chunk.
        pairs: u64,
    },
    /// Per-level rollup emitted after the merge barrier: how well the
    /// level's workers were utilized and what the merge cost.
    LevelSync {
        /// DP level (relation-set size).
        level: usize,
        /// Workers the level ran on (1 when it ran inline).
        workers: usize,
        /// Nanoseconds the merge (materializing winners) took.
        merge_ns: u64,
        /// Slowest worker's service time — the level's critical path.
        max_service_ns: u64,
        /// Sum of all workers' service times.
        total_service_ns: u64,
        /// Barrier wait: `workers × max_service_ns − total_service_ns`.
        idle_ns: u64,
    },
    /// One candidate split considered for a relation set during DP or
    /// memo enumeration — the plan-provenance vocabulary. Relation sets
    /// travel as raw bitmasks so the event stays `Copy` and
    /// allocation-free. Candidates are orders of magnitude more
    /// frequent than the summary events, so emitters additionally gate
    /// them on [`Observer::wants_provenance`]; a metrics-only run never
    /// sees them.
    PlanCandidate {
        /// Bitmask of the joined relation set (`left | right`).
        set: u64,
        /// Bitmask of the left (outer) operand's relation set.
        left: u64,
        /// Bitmask of the right (inner) operand's relation set.
        right: u64,
        /// Total plan cost of the candidate under the run's cost model.
        cost: f64,
        /// Whether the candidate beat the incumbent and was kept.
        accepted: bool,
    },
    /// A search branch was abandoned without evaluating its remaining
    /// splits (top-down branch-and-bound). Gated on
    /// [`Observer::wants_provenance`] like [`Event::PlanCandidate`].
    SearchPruned {
        /// Bitmask of the relation set whose remaining splits were cut.
        set: u64,
        /// Why: `"bound"` (lower bound reached the incumbent's cost).
        reason: &'static str,
    },
    /// A plan-cache lookup completed (service layer, outside any run).
    CacheLookup {
        /// Whether a cached plan was found and served.
        hit: bool,
    },
    /// A plan was stored in the plan cache.
    CacheStore {
        /// Size charged to the cache for this entry.
        entry_bytes: usize,
        /// Total bytes resident in the cache after the store.
        total_bytes: usize,
    },
    /// A plan was evicted from the plan cache to honor its byte budget.
    CacheEvict {
        /// Size the evicted entry had been charged.
        entry_bytes: usize,
        /// Total bytes resident in the cache after the eviction.
        total_bytes: usize,
    },
    /// The server gateway admitted a request past shedding and breaker
    /// checks (service layer, outside any run).
    ServeAccepted {
        /// Request priority (`"low"`, `"normal"`, `"high"`).
        priority: &'static str,
    },
    /// The server gateway shed a request at a load watermark before any
    /// optimizer work happened; the client received a typed rejection
    /// with a `Retry-After` hint.
    ServeShed {
        /// Priority of the shed request.
        priority: &'static str,
    },
    /// The server gateway is retrying a transiently failed request
    /// after a jittered backoff sleep.
    ServeRetried {
        /// 1-based retry attempt (1 = first retry after the initial
        /// attempt failed).
        attempt: u32,
    },
    /// A per-tenant circuit breaker transitioned to open: subsequent
    /// requests from that tenant fail fast until the cooldown elapses
    /// and a half-open probe succeeds.
    ServeBreakerOpen,
    /// A graceful drain completed: the server stopped accepting work,
    /// every in-flight request ran to completion, and final metrics
    /// were flushed.
    ServeDrained {
        /// Requests that were in flight when the drain began and ran to
        /// completion during it.
        in_flight: usize,
    },
    /// The run is complete (successfully or not — emitted on the success
    /// path only, so its absence in a trace indicates an error).
    RunEnd,
}

impl Event {
    /// The event's wire name, as used in JSONL traces.
    pub fn name(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::PhaseStart { .. } => "phase_start",
            Event::PhaseEnd { .. } => "phase_end",
            Event::DpLevel { .. } => "dp_level",
            Event::TableStats { .. } => "table_stats",
            Event::ArenaStats { .. } => "arena_stats",
            Event::FinalCounters { .. } => "final_counters",
            Event::BudgetExceeded { .. } => "budget_exceeded",
            Event::Degraded { .. } => "degraded",
            Event::WorkerChunk { .. } => "worker_chunk",
            Event::LevelSync { .. } => "level_sync",
            Event::PlanCandidate { .. } => "plan_candidate",
            Event::SearchPruned { .. } => "search_pruned",
            Event::CacheLookup { .. } => "cache_lookup",
            Event::CacheStore { .. } => "cache_store",
            Event::CacheEvict { .. } => "cache_evict",
            Event::ServeAccepted { .. } => "serve_accepted",
            Event::ServeShed { .. } => "serve_shed",
            Event::ServeRetried { .. } => "serve_retried",
            Event::ServeBreakerOpen => "serve_breaker_open",
            Event::ServeDrained { .. } => "serve_drained",
            Event::RunEnd => "run_end",
        }
    }

    /// The phase this event belongs to: the named phase for span events,
    /// `"enumerate"` for the parallel engine's worker events (they are
    /// emitted between that phase's start and end), `"cache"` for the
    /// plan-cache events (emitted by the service layer outside any
    /// optimizer run), `"serve"` for the server-gateway lifecycle
    /// events, `"run"` for everything else.
    pub fn phase(&self) -> &'static str {
        match self {
            Event::PhaseStart { phase } | Event::PhaseEnd { phase } => phase,
            Event::WorkerChunk { .. }
            | Event::LevelSync { .. }
            | Event::PlanCandidate { .. }
            | Event::SearchPruned { .. } => "enumerate",
            Event::CacheLookup { .. } | Event::CacheStore { .. } | Event::CacheEvict { .. } => {
                "cache"
            }
            Event::ServeAccepted { .. }
            | Event::ServeShed { .. }
            | Event::ServeRetried { .. }
            | Event::ServeBreakerOpen
            | Event::ServeDrained { .. } => "serve",
            _ => "run",
        }
    }
}

/// A sink for optimizer telemetry.
///
/// Implementations receive events through a shared reference (optimizers
/// hold `&dyn Observer`), so stateful observers use interior mutability.
/// Optimizers guard every instrumentation point on [`Observer::enabled`];
/// when it returns `false` — the [`NoopObserver`] default — the entire
/// observer path reduces to one well-predicted branch per run and no
/// events are constructed, no clocks read, and nothing allocated.
pub trait Observer {
    /// Whether this observer wants events at all. Optimizers read this
    /// once per run and skip all bookkeeping when it is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Whether this observer also wants the per-candidate provenance
    /// events ([`Event::PlanCandidate`], [`Event::SearchPruned`]).
    /// These fire once per considered split — orders of magnitude more
    /// often than the summary events — so emitters read this once per
    /// run (alongside [`Observer::enabled`]) and skip candidate
    /// bookkeeping entirely when it is `false`, the default. Sinks that
    /// record full search-space provenance (e.g.
    /// [`crate::TraceWriter`], [`crate::ProvenanceCollector`]) override
    /// it to `true`.
    fn wants_provenance(&self) -> bool {
        false
    }

    /// Receives one event. Called in emission order from a single thread.
    fn on_event(&self, event: Event);
}

/// The default observer: discards everything and reports itself
/// disabled, so instrumented code skips its bookkeeping entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn on_event(&self, _event: Event) {}
}

/// Fans events out to two observers (compose for more), e.g. a
/// [`crate::MetricsCollector`] and a [`crate::TraceWriter`] on the same
/// run.
pub struct Tee<'a> {
    first: &'a dyn Observer,
    second: &'a dyn Observer,
}

impl<'a> Tee<'a> {
    /// Observes with both `first` and `second`, in that order.
    pub fn new(first: &'a dyn Observer, second: &'a dyn Observer) -> Tee<'a> {
        Tee { first, second }
    }
}

impl Observer for Tee<'_> {
    fn enabled(&self) -> bool {
        self.first.enabled() || self.second.enabled()
    }

    fn wants_provenance(&self) -> bool {
        (self.first.enabled() && self.first.wants_provenance())
            || (self.second.enabled() && self.second.wants_provenance())
    }

    fn on_event(&self, event: Event) {
        if self.first.enabled() {
            self.first.on_event(event);
        }
        if self.second.enabled() {
            self.second.on_event(event);
        }
    }
}

/// Fans events out to any number of observers, in push order — the
/// n-ary generalization of [`Tee`] for callers that assemble their sink
/// set at runtime (e.g. metrics + trace + registry from CLI flags).
#[derive(Default)]
pub struct Fanout<'a> {
    sinks: Vec<&'a dyn Observer>,
}

impl<'a> Fanout<'a> {
    /// An observer forwarding to every sink in `sinks`.
    pub fn new(sinks: Vec<&'a dyn Observer>) -> Fanout<'a> {
        Fanout { sinks }
    }
}

impl Observer for Fanout<'_> {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn wants_provenance(&self) -> bool {
        self.sinks
            .iter()
            .any(|s| s.enabled() && s.wants_provenance())
    }

    fn on_event(&self, event: Event) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.on_event(event);
            }
        }
    }
}

/// [`Fanout`] over thread-safe observers: usable where a shared
/// `&(dyn Observer + Sync)` is required (batch optimization spreads one
/// observer across worker threads).
#[derive(Default)]
pub struct SyncFanout<'a> {
    sinks: Vec<&'a (dyn Observer + Sync)>,
}

impl<'a> SyncFanout<'a> {
    /// An observer forwarding to every sink in `sinks`.
    pub fn new(sinks: Vec<&'a (dyn Observer + Sync)>) -> SyncFanout<'a> {
        SyncFanout { sinks }
    }
}

impl Observer for SyncFanout<'_> {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn wants_provenance(&self) -> bool {
        self.sinks
            .iter()
            .any(|s| s.enabled() && s.wants_provenance())
    }

    fn on_event(&self, event: Event) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.on_event(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    struct CountingObserver {
        seen: Cell<usize>,
    }

    impl Observer for CountingObserver {
        fn on_event(&self, _event: Event) {
            self.seen.set(self.seen.get() + 1);
        }
    }

    #[test]
    fn noop_is_disabled() {
        let obs = NoopObserver;
        assert!(!obs.enabled());
        obs.on_event(Event::RunEnd); // must not panic
    }

    #[test]
    fn custom_observers_default_to_enabled() {
        let obs = CountingObserver { seen: Cell::new(0) };
        assert!(obs.enabled());
    }

    #[test]
    fn tee_forwards_to_both() {
        let a = CountingObserver { seen: Cell::new(0) };
        let b = CountingObserver { seen: Cell::new(0) };
        let tee = Tee::new(&a, &b);
        assert!(tee.enabled());
        tee.on_event(Event::RunEnd);
        tee.on_event(Event::PhaseStart { phase: "init" });
        assert_eq!(a.seen.get(), 2);
        assert_eq!(b.seen.get(), 2);
    }

    #[test]
    fn tee_of_noops_is_disabled() {
        let tee = Tee::new(&NoopObserver, &NoopObserver);
        assert!(!tee.enabled());
    }

    #[test]
    fn tee_skips_disabled_side() {
        let a = CountingObserver { seen: Cell::new(0) };
        let tee = Tee::new(&a, &NoopObserver);
        assert!(tee.enabled());
        tee.on_event(Event::RunEnd);
        assert_eq!(a.seen.get(), 1);
    }

    #[test]
    fn event_names_and_phases() {
        assert_eq!(
            Event::RunStart {
                algorithm: "DPccp",
                relations: 3
            }
            .name(),
            "run_start"
        );
        assert_eq!(
            Event::PhaseStart { phase: "enumerate" }.phase(),
            "enumerate"
        );
        assert_eq!(Event::PhaseEnd { phase: "extract" }.phase(), "extract");
        assert_eq!(
            Event::DpLevel {
                size: 2,
                new_entries: 4
            }
            .phase(),
            "run"
        );
        assert_eq!(
            Event::TableStats {
                entries: 1,
                capacity: 2,
                probes: 3,
                hits: 4
            }
            .name(),
            "table_stats"
        );
        assert_eq!(
            Event::ArenaStats {
                nodes: 1,
                bytes: 64
            }
            .name(),
            "arena_stats"
        );
        assert_eq!(
            Event::FinalCounters {
                inner: 1,
                csg_cmp_pairs: 2,
                ono_lohman: 1
            }
            .name(),
            "final_counters"
        );
        assert_eq!(
            Event::BudgetExceeded { budget: "time" }.name(),
            "budget_exceeded"
        );
        assert_eq!(Event::BudgetExceeded { budget: "memory" }.phase(), "run");
        assert_eq!(Event::Degraded { rung: "greedy" }.name(), "degraded");
        let chunk = Event::WorkerChunk {
            level: 3,
            worker: 1,
            thread_id: 7,
            sets: 20,
            service_ns: 1000,
            inner: 40,
            pairs: 12,
        };
        assert_eq!(chunk.name(), "worker_chunk");
        assert_eq!(chunk.phase(), "enumerate");
        let sync = Event::LevelSync {
            level: 3,
            workers: 2,
            merge_ns: 10,
            max_service_ns: 1000,
            total_service_ns: 1700,
            idle_ns: 300,
        };
        assert_eq!(sync.name(), "level_sync");
        assert_eq!(sync.phase(), "enumerate");
        let cand = Event::PlanCandidate {
            set: 0b111,
            left: 0b011,
            right: 0b100,
            cost: 42.0,
            accepted: true,
        };
        assert_eq!(cand.name(), "plan_candidate");
        assert_eq!(cand.phase(), "enumerate");
        let pruned = Event::SearchPruned {
            set: 0b111,
            reason: "bound",
        };
        assert_eq!(pruned.name(), "search_pruned");
        assert_eq!(pruned.phase(), "enumerate");
        let lookup = Event::CacheLookup { hit: true };
        assert_eq!(lookup.name(), "cache_lookup");
        assert_eq!(lookup.phase(), "cache");
        let store = Event::CacheStore {
            entry_bytes: 128,
            total_bytes: 256,
        };
        assert_eq!(store.name(), "cache_store");
        assert_eq!(store.phase(), "cache");
        let evict = Event::CacheEvict {
            entry_bytes: 128,
            total_bytes: 128,
        };
        assert_eq!(evict.name(), "cache_evict");
        assert_eq!(evict.phase(), "cache");
        let accepted = Event::ServeAccepted { priority: "normal" };
        assert_eq!(accepted.name(), "serve_accepted");
        assert_eq!(accepted.phase(), "serve");
        let shed = Event::ServeShed { priority: "low" };
        assert_eq!(shed.name(), "serve_shed");
        assert_eq!(shed.phase(), "serve");
        let retried = Event::ServeRetried { attempt: 1 };
        assert_eq!(retried.name(), "serve_retried");
        assert_eq!(retried.phase(), "serve");
        assert_eq!(Event::ServeBreakerOpen.name(), "serve_breaker_open");
        assert_eq!(Event::ServeBreakerOpen.phase(), "serve");
        let drained = Event::ServeDrained { in_flight: 2 };
        assert_eq!(drained.name(), "serve_drained");
        assert_eq!(drained.phase(), "serve");
        assert_eq!(Event::RunEnd.name(), "run_end");
    }

    struct ProvenanceWanting;

    impl Observer for ProvenanceWanting {
        fn wants_provenance(&self) -> bool {
            true
        }

        fn on_event(&self, _event: Event) {}
    }

    struct DisabledButWanting;

    impl Observer for DisabledButWanting {
        fn enabled(&self) -> bool {
            false
        }

        fn wants_provenance(&self) -> bool {
            true
        }

        fn on_event(&self, _event: Event) {}
    }

    #[test]
    fn provenance_is_opt_in_and_combinators_require_an_enabled_sink() {
        let plain = CountingObserver { seen: Cell::new(0) };
        assert!(!plain.wants_provenance(), "default is off");
        assert!(!NoopObserver.wants_provenance());
        assert!(Tee::new(&plain, &ProvenanceWanting).wants_provenance());
        assert!(!Tee::new(&plain, &NoopObserver).wants_provenance());
        // A disabled sink never receives events, so its provenance wish
        // must not switch the emitters on.
        assert!(!Tee::new(&plain, &DisabledButWanting).wants_provenance());
        assert!(Fanout::new(vec![&NoopObserver, &ProvenanceWanting]).wants_provenance());
        assert!(!Fanout::new(vec![&plain, &DisabledButWanting]).wants_provenance());
        assert!(!Fanout::new(Vec::new()).wants_provenance());
    }

    #[test]
    fn fanout_forwards_to_all_enabled_sinks() {
        let a = CountingObserver { seen: Cell::new(0) };
        let b = CountingObserver { seen: Cell::new(0) };
        let fan = Fanout::new(vec![&a, &NoopObserver, &b]);
        assert!(fan.enabled());
        fan.on_event(Event::RunEnd);
        assert_eq!((a.seen.get(), b.seen.get()), (1, 1));
        assert!(!Fanout::new(vec![&NoopObserver]).enabled());
        assert!(!Fanout::new(Vec::new()).enabled());
    }

    #[test]
    fn thread_ids_are_nonzero_stable_and_distinct_across_threads() {
        let here = current_thread_id();
        assert!(here > 0);
        assert_eq!(here, current_thread_id(), "stable within a thread");
        let there = std::thread::spawn(current_thread_id).join().unwrap();
        assert_ne!(here, there);
    }
}
