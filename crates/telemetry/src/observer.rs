//! The [`Observer`] trait and the event vocabulary optimizers emit.

/// One telemetry event emitted by an optimizer run.
///
/// Events are plain `Copy` data with `&'static str` labels: constructing
/// one never allocates, so the *only* cost of an instrumentation point is
/// the branch on [`Observer::enabled`] guarding it. Timing is the
/// observer's job — collectors stamp events against their own monotonic
/// clock on receipt — which keeps `Instant::now()` calls off the
/// optimizer's hot path entirely.
///
/// The expected sequence for a DP run is:
///
/// ```text
/// RunStart
///   PhaseStart("init")    … singleton plans …    PhaseEnd("init")
///   PhaseStart("enumerate") … DP loops …         PhaseEnd("enumerate")
///   PhaseStart("extract") … tree extraction …    PhaseEnd("extract")
/// DpLevel*  TableStats  ArenaStats  FinalCounters
/// RunEnd
/// ```
///
/// Heuristics without a DP table emit the same span skeleton (with their
/// own phase names where appropriate) and whichever summary events apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// An optimizer run begins.
    RunStart {
        /// Algorithm name as reported by `JoinOrderer::name`.
        algorithm: &'static str,
        /// Number of relations in the query graph.
        relations: usize,
    },
    /// A named phase begins. Phases do not nest.
    PhaseStart {
        /// Phase name (`"init"`, `"enumerate"`, `"extract"`, …).
        phase: &'static str,
    },
    /// The matching phase ends.
    PhaseEnd {
        /// Phase name.
        phase: &'static str,
    },
    /// Plans materialized at one DP level: `new_entries` table entries
    /// whose relation sets have exactly `size` elements. Emitted once
    /// per non-empty level after enumeration, smallest size first,
    /// mirroring the paper's size-driven vs. subset-driven structure.
    DpLevel {
        /// Relation-set size (1 = singletons).
        size: usize,
        /// Number of distinct sets of that size entered into the table.
        new_entries: u64,
    },
    /// Final DP-table statistics.
    TableStats {
        /// Sets with a registered plan.
        entries: usize,
        /// Allocated capacity (slots for the dense table, bucket
        /// capacity for the sparse one) — `entries / capacity` is the
        /// occupancy.
        capacity: usize,
        /// `BestPlan` lookups performed by the enumerator.
        probes: u64,
        /// Probes that found an existing entry.
        hits: u64,
    },
    /// Final plan-arena accounting.
    ArenaStats {
        /// Plan nodes materialized (scans + accepted joins).
        nodes: usize,
        /// Bytes of node storage backing them.
        bytes: usize,
    },
    /// The paper's instrumentation counters, reported at the end of the
    /// run so observers need not understand per-algorithm conventions.
    FinalCounters {
        /// Innermost-loop iterations (`InnerCounter`).
        inner: u64,
        /// Oriented csg-cmp-pairs (`CsgCmpPairCounter`).
        csg_cmp_pairs: u64,
        /// Unordered csg-cmp-pairs (`OnoLohmanCounter`).
        ono_lohman: u64,
    },
    /// A resource budget tripped mid-run. Whether the run then fails or
    /// falls back to a cheaper algorithm is the caller's policy; a
    /// `Degraded` event follows when a fallback produced a plan.
    BudgetExceeded {
        /// Which budget tripped: `"time"`, `"memory"`, `"cost"` or
        /// `"internal"` (an isolated internal failure).
        budget: &'static str,
    },
    /// A degradation-ladder rung produced the plan after a budget trip.
    Degraded {
        /// The rung that succeeded: `"idp"`, `"greedy"` or `"exact"`
        /// (the exact plan was kept despite a post-run cost trip).
        rung: &'static str,
    },
    /// The run is complete (successfully or not — emitted on the success
    /// path only, so its absence in a trace indicates an error).
    RunEnd,
}

impl Event {
    /// The event's wire name, as used in JSONL traces.
    pub fn name(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::PhaseStart { .. } => "phase_start",
            Event::PhaseEnd { .. } => "phase_end",
            Event::DpLevel { .. } => "dp_level",
            Event::TableStats { .. } => "table_stats",
            Event::ArenaStats { .. } => "arena_stats",
            Event::FinalCounters { .. } => "final_counters",
            Event::BudgetExceeded { .. } => "budget_exceeded",
            Event::Degraded { .. } => "degraded",
            Event::RunEnd => "run_end",
        }
    }

    /// The phase this event belongs to: the named phase for span events,
    /// `"run"` for everything else.
    pub fn phase(&self) -> &'static str {
        match self {
            Event::PhaseStart { phase } | Event::PhaseEnd { phase } => phase,
            _ => "run",
        }
    }
}

/// A sink for optimizer telemetry.
///
/// Implementations receive events through a shared reference (optimizers
/// hold `&dyn Observer`), so stateful observers use interior mutability.
/// Optimizers guard every instrumentation point on [`Observer::enabled`];
/// when it returns `false` — the [`NoopObserver`] default — the entire
/// observer path reduces to one well-predicted branch per run and no
/// events are constructed, no clocks read, and nothing allocated.
pub trait Observer {
    /// Whether this observer wants events at all. Optimizers read this
    /// once per run and skip all bookkeeping when it is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event. Called in emission order from a single thread.
    fn on_event(&self, event: Event);
}

/// The default observer: discards everything and reports itself
/// disabled, so instrumented code skips its bookkeeping entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn on_event(&self, _event: Event) {}
}

/// Fans events out to two observers (compose for more), e.g. a
/// [`crate::MetricsCollector`] and a [`crate::TraceWriter`] on the same
/// run.
pub struct Tee<'a> {
    first: &'a dyn Observer,
    second: &'a dyn Observer,
}

impl<'a> Tee<'a> {
    /// Observes with both `first` and `second`, in that order.
    pub fn new(first: &'a dyn Observer, second: &'a dyn Observer) -> Tee<'a> {
        Tee { first, second }
    }
}

impl Observer for Tee<'_> {
    fn enabled(&self) -> bool {
        self.first.enabled() || self.second.enabled()
    }

    fn on_event(&self, event: Event) {
        if self.first.enabled() {
            self.first.on_event(event);
        }
        if self.second.enabled() {
            self.second.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    struct CountingObserver {
        seen: Cell<usize>,
    }

    impl Observer for CountingObserver {
        fn on_event(&self, _event: Event) {
            self.seen.set(self.seen.get() + 1);
        }
    }

    #[test]
    fn noop_is_disabled() {
        let obs = NoopObserver;
        assert!(!obs.enabled());
        obs.on_event(Event::RunEnd); // must not panic
    }

    #[test]
    fn custom_observers_default_to_enabled() {
        let obs = CountingObserver { seen: Cell::new(0) };
        assert!(obs.enabled());
    }

    #[test]
    fn tee_forwards_to_both() {
        let a = CountingObserver { seen: Cell::new(0) };
        let b = CountingObserver { seen: Cell::new(0) };
        let tee = Tee::new(&a, &b);
        assert!(tee.enabled());
        tee.on_event(Event::RunEnd);
        tee.on_event(Event::PhaseStart { phase: "init" });
        assert_eq!(a.seen.get(), 2);
        assert_eq!(b.seen.get(), 2);
    }

    #[test]
    fn tee_of_noops_is_disabled() {
        let tee = Tee::new(&NoopObserver, &NoopObserver);
        assert!(!tee.enabled());
    }

    #[test]
    fn tee_skips_disabled_side() {
        let a = CountingObserver { seen: Cell::new(0) };
        let tee = Tee::new(&a, &NoopObserver);
        assert!(tee.enabled());
        tee.on_event(Event::RunEnd);
        assert_eq!(a.seen.get(), 1);
    }

    #[test]
    fn event_names_and_phases() {
        assert_eq!(
            Event::RunStart {
                algorithm: "DPccp",
                relations: 3
            }
            .name(),
            "run_start"
        );
        assert_eq!(
            Event::PhaseStart { phase: "enumerate" }.phase(),
            "enumerate"
        );
        assert_eq!(Event::PhaseEnd { phase: "extract" }.phase(), "extract");
        assert_eq!(
            Event::DpLevel {
                size: 2,
                new_entries: 4
            }
            .phase(),
            "run"
        );
        assert_eq!(
            Event::TableStats {
                entries: 1,
                capacity: 2,
                probes: 3,
                hits: 4
            }
            .name(),
            "table_stats"
        );
        assert_eq!(
            Event::ArenaStats {
                nodes: 1,
                bytes: 64
            }
            .name(),
            "arena_stats"
        );
        assert_eq!(
            Event::FinalCounters {
                inner: 1,
                csg_cmp_pairs: 2,
                ono_lohman: 1
            }
            .name(),
            "final_counters"
        );
        assert_eq!(
            Event::BudgetExceeded { budget: "time" }.name(),
            "budget_exceeded"
        );
        assert_eq!(Event::BudgetExceeded { budget: "memory" }.phase(), "run");
        assert_eq!(Event::Degraded { rung: "greedy" }.name(), "degraded");
        assert_eq!(Event::RunEnd.name(), "run_end");
    }
}
