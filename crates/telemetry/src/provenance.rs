//! [`ProvenanceCollector`] — folds the per-candidate provenance event
//! stream into per-subset [`DecisionRecord`]s.
//!
//! DP join ordering makes one decision per connected relation set: which
//! split (and hence which join tree) to keep. The collector reconstructs
//! exactly that decision table from [`Event::PlanCandidate`] /
//! [`Event::SearchPruned`] events — winning split, best runner-up,
//! candidate count and pruning reason per set — keyed by the set's
//! bitmask in a `BTreeMap`, so iteration (and every serialization built
//! on it) is deterministic.
//!
//! ```
//! use joinopt_telemetry::{Event, Observer, ProvenanceCollector};
//!
//! let prov = ProvenanceCollector::new();
//! assert!(prov.wants_provenance());
//! prov.on_event(Event::PlanCandidate {
//!     set: 0b011, left: 0b001, right: 0b010, cost: 10.0, accepted: true,
//! });
//! prov.on_event(Event::PlanCandidate {
//!     set: 0b011, left: 0b010, right: 0b001, cost: 14.0, accepted: false,
//! });
//! let rec = prov.record(0b011).unwrap();
//! assert_eq!(rec.winner.unwrap().cost, 10.0);
//! assert_eq!(rec.cost_delta(), Some(4.0));
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::observer::{Event, Observer};

/// One candidate split of a relation set: operand bitmasks plus the
/// candidate plan's total cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitChoice {
    /// Bitmask of the left (outer) operand's relation set.
    pub left: u64,
    /// Bitmask of the right (inner) operand's relation set.
    pub right: u64,
    /// Total plan cost of the candidate.
    pub cost: f64,
}

/// The provenance of one DP decision: everything recorded about how the
/// best plan for one relation set was chosen.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DecisionRecord {
    /// The winning split (the last accepted candidate). `None` only
    /// when every candidate was rejected — which cannot happen for a
    /// set that made it into the DP table.
    pub winner: Option<SplitChoice>,
    /// The cheapest losing candidate — the split the winner beat.
    /// `None` when only one candidate was ever considered.
    pub runner_up: Option<SplitChoice>,
    /// Total candidates considered for this set.
    pub candidates: u64,
    /// Why enumeration for this set stopped early, if it did
    /// (`"bound"` for top-down branch-and-bound).
    pub pruned: Option<&'static str>,
}

impl DecisionRecord {
    /// How much worse the runner-up was than the winner (`runner_up.cost
    /// − winner.cost`, `>= 0`); `None` without both. A zero delta marks
    /// a tie decided purely by enumeration order — the interesting case
    /// for cross-algorithm divergence.
    pub fn cost_delta(&self) -> Option<f64> {
        Some(self.runner_up?.cost - self.winner?.cost)
    }

    fn observe(&mut self, left: u64, right: u64, cost: f64, accepted: bool) {
        self.candidates += 1;
        let candidate = SplitChoice { left, right, cost };
        if accepted {
            // The dethroned incumbent is now the best loser so far.
            let loser = self.winner.replace(candidate);
            if let Some(loser) = loser {
                if self.runner_up.is_none_or(|r| loser.cost < r.cost) {
                    self.runner_up = Some(loser);
                }
            }
        } else if self.runner_up.is_none_or(|r| cost < r.cost) {
            self.runner_up = Some(candidate);
        }
    }
}

/// An [`Observer`] that aggregates provenance events into per-set
/// [`DecisionRecord`]s.
///
/// It opts into candidate events ([`Observer::wants_provenance`] returns
/// `true`) and resets on `run_start`, so one collector can watch
/// consecutive runs. Like [`crate::MetricsCollector`] it is single-run
/// single-threaded (interior mutability via `RefCell`); the parallel
/// engine replays its workers' candidates from the emitting thread at
/// the merge barrier, so one run's events always arrive from one thread.
pub struct ProvenanceCollector {
    state: RefCell<State>,
}

#[derive(Default)]
struct State {
    algorithm: &'static str,
    relations: usize,
    records: BTreeMap<u64, DecisionRecord>,
}

impl ProvenanceCollector {
    /// An empty collector.
    pub fn new() -> ProvenanceCollector {
        ProvenanceCollector {
            state: RefCell::new(State::default()),
        }
    }

    /// Algorithm name from the last `run_start` seen (`""` before any).
    pub fn algorithm(&self) -> &'static str {
        self.state.borrow().algorithm
    }

    /// Relation count from the last `run_start` seen.
    pub fn relations(&self) -> usize {
        self.state.borrow().relations
    }

    /// The decision record for one relation set (bitmask), if any
    /// candidate was recorded for it.
    pub fn record(&self, set: u64) -> Option<DecisionRecord> {
        self.state.borrow().records.get(&set).copied()
    }

    /// All decision records, keyed by relation-set bitmask. The map is
    /// ordered (ascending bitmask), so smaller sets — whose decisions
    /// feed larger ones — come first for same-size prefixes and
    /// iteration order is deterministic.
    pub fn records(&self) -> BTreeMap<u64, DecisionRecord> {
        self.state.borrow().records.clone()
    }

    /// Total candidates recorded across all sets.
    pub fn total_candidates(&self) -> u64 {
        self.state
            .borrow()
            .records
            .values()
            .map(|r| r.candidates)
            .sum()
    }
}

impl Default for ProvenanceCollector {
    fn default() -> ProvenanceCollector {
        ProvenanceCollector::new()
    }
}

impl Observer for ProvenanceCollector {
    fn wants_provenance(&self) -> bool {
        true
    }

    fn on_event(&self, event: Event) {
        let mut s = self.state.borrow_mut();
        match event {
            Event::RunStart {
                algorithm,
                relations,
            } => {
                *s = State {
                    algorithm,
                    relations,
                    records: BTreeMap::new(),
                };
            }
            Event::PlanCandidate {
                set,
                left,
                right,
                cost,
                accepted,
            } => {
                s.records
                    .entry(set)
                    .or_default()
                    .observe(left, right, cost, accepted);
            }
            Event::SearchPruned { set, reason } => {
                s.records.entry(set).or_default().pruned = Some(reason);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_winner_runner_up_and_counts() {
        let prov = ProvenanceCollector::new();
        prov.on_event(Event::RunStart {
            algorithm: "DPsize",
            relations: 3,
        });
        // Accept 10, accept 5 (10 becomes runner-up), reject 7 (closer
        // runner-up), reject 20 (ignored).
        for (cost, accepted) in [(10.0, true), (5.0, true), (7.0, false), (20.0, false)] {
            prov.on_event(Event::PlanCandidate {
                set: 0b011,
                left: 0b001,
                right: 0b010,
                cost,
                accepted,
            });
        }
        let rec = prov.record(0b011).unwrap();
        assert_eq!(rec.candidates, 4);
        assert_eq!(rec.winner.unwrap().cost, 5.0);
        assert_eq!(rec.runner_up.unwrap().cost, 7.0);
        assert_eq!(rec.cost_delta(), Some(2.0));
        assert_eq!(rec.pruned, None);
        assert_eq!(prov.algorithm(), "DPsize");
        assert_eq!(prov.relations(), 3);
        assert_eq!(prov.total_candidates(), 4);
        assert_eq!(prov.record(0b111), None);
    }

    #[test]
    fn single_candidate_has_no_runner_up_and_pruning_is_recorded() {
        let prov = ProvenanceCollector::new();
        prov.on_event(Event::PlanCandidate {
            set: 0b011,
            left: 0b010,
            right: 0b001,
            cost: 3.0,
            accepted: true,
        });
        prov.on_event(Event::SearchPruned {
            set: 0b011,
            reason: "bound",
        });
        let rec = prov.record(0b011).unwrap();
        assert_eq!(rec.runner_up, None);
        assert_eq!(rec.cost_delta(), None);
        assert_eq!(rec.pruned, Some("bound"));
    }

    #[test]
    fn run_start_resets_and_records_iterate_in_set_order() {
        let prov = ProvenanceCollector::new();
        for set in [0b110u64, 0b011, 0b101] {
            prov.on_event(Event::PlanCandidate {
                set,
                left: set & (set - 1),
                right: set & set.wrapping_neg(),
                cost: 1.0,
                accepted: true,
            });
        }
        let keys: Vec<u64> = prov.records().keys().copied().collect();
        assert_eq!(keys, [0b011, 0b101, 0b110]);
        prov.on_event(Event::RunStart {
            algorithm: "DPccp",
            relations: 2,
        });
        assert!(prov.records().is_empty());
        assert_eq!(prov.algorithm(), "DPccp");
    }
}
