//! The metrics registry: fleet-grade aggregation across runs, sessions
//! and batches.
//!
//! [`MetricsCollector`](crate::MetricsCollector) answers "what did this
//! one run do"; the [`MetricsRegistry`] answers "what has this *process*
//! done" — counters, gauges and log-linear histograms keyed by metric
//! name plus a label set, fed by any number of concurrent
//! [`RegistryObserver`]s and exported as Prometheus text exposition or a
//! JSON snapshot (both dependency-free and deterministic for
//! deterministic inputs).
//!
//! ```
//! use joinopt_telemetry::{Event, MetricsRegistry, Observer, RegistryObserver};
//!
//! let registry = MetricsRegistry::new();
//! let obs = RegistryObserver::new(&registry);
//! for _ in 0..3 {
//!     obs.on_event(Event::RunStart { algorithm: "DPccp", relations: 4 });
//!     obs.on_event(Event::FinalCounters { inner: 9, csg_cmp_pairs: 18, ono_lohman: 9 });
//!     obs.on_event(Event::RunEnd);
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("joinopt_runs_total", &[("algorithm", "DPccp")]), Some(3));
//! assert_eq!(snap.counter("joinopt_inner_loop_total", &[("algorithm", "DPccp")]), Some(27));
//! assert!(snap.to_prometheus().contains("joinopt_runs_total{algorithm=\"DPccp\"} 3"));
//! ```

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::write_escaped;
use crate::observer::{current_thread_id, Event, Observer};

/// Number of linear sub-buckets per power-of-two range (and the count
/// of the leading exact buckets): the histogram's relative error bound
/// is `1/16 ≈ 6.25%`.
const SUBBUCKETS: u64 = 16;

/// Maps a sample to its log-linear bucket index: values below 16 get an
/// exact bucket each; above that, each power-of-two range is split into
/// 16 linear sub-buckets.
fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        ((msb - 4) << 4) + ((v >> (msb - 4)) & 15) as usize + 16
    }
}

/// The smallest value mapping to bucket `i` — the inverse of
/// [`bucket_index`], used to report quantiles deterministically.
fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUBBUCKETS as usize {
        i as u64
    } else {
        let i = i - 16;
        let exp = i >> 4;
        let sub = (i & 15) as u64;
        (16 + sub) << exp
    }
}

/// A log-linear histogram over `u64` samples with ≤ 6.25% relative
/// bucket error: the workhorse for durations (ns), per-level entry
/// counts and utilization permilles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample, exact (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds another histogram into this one, bucket by bucket — the
    /// building block of rolling-window aggregation (merging the live
    /// ring buckets into one windowed distribution).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst = dst.saturating_add(src);
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The `q`-quantile (`0 < q <= 1`) as the lower bound of the bucket
    /// holding the `ceil(q·count)`-th smallest sample — deterministic
    /// for deterministic inputs, within the bucket error of the true
    /// value. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                // The top bucket's lower bound can undershoot max;
                // never report a quantile above the observed maximum.
                return bucket_lower_bound(i).min(self.max).max(self.min);
            }
        }
        self.max
    }
}

/// The value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-set value.
    Gauge(i64),
    /// Sample distribution.
    Histogram(Histogram),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// Metric identity: name plus sorted label pairs.
type MetricKey = (String, Vec<(String, String)>);

fn make_key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

/// A thread-safe, dependency-free metrics registry.
///
/// Metrics are created on first touch; the same name must keep the same
/// kind (a counter never becomes a gauge — mismatched touches are
/// ignored rather than panicking, since metrics code must never take an
/// optimizer down). Iteration order is `(name, labels)`-sorted, so both
/// exporters are deterministic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<MetricKey, MetricValue>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut BTreeMap<MetricKey, MetricValue>) -> R) -> R {
        // A poisoned lock only means another thread panicked mid-update;
        // the map itself is always structurally valid.
        let mut guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// Adds `delta` to the counter `name{labels}` (created at 0).
    pub fn inc(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.with_inner(|m| {
            // Kind mismatches are ignored, never a panic: metrics code
            // must not take an optimizer down.
            if let MetricValue::Counter(v) = m
                .entry(make_key(name, labels))
                .or_insert(MetricValue::Counter(0))
            {
                *v = v.saturating_add(delta);
            }
        });
    }

    /// Sets the gauge `name{labels}` to `value`.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.with_inner(|m| {
            if let MetricValue::Gauge(v) = m
                .entry(make_key(name, labels))
                .or_insert(MetricValue::Gauge(0))
            {
                *v = value;
            }
        });
    }

    /// Records `value` into the histogram `name{labels}`.
    pub fn record(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.with_inner(|m| {
            if let MetricValue::Histogram(h) = m
                .entry(make_key(name, labels))
                .or_insert_with(|| MetricValue::Histogram(Histogram::default()))
            {
                h.record(value);
            }
        });
    }

    /// A point-in-time copy of every metric, sorted by `(name, labels)`.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            metrics: self.with_inner(|m| {
                m.iter()
                    .map(|((name, labels), value)| SnapshotEntry {
                        name: name.clone(),
                        labels: labels.clone(),
                        value: value.clone(),
                    })
                    .collect()
            }),
        }
    }
}

/// One metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Metric name (`joinopt_runs_total`, …).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

impl SnapshotEntry {
    fn render_labels(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let mut s = String::from("{");
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(k);
            s.push('=');
            write_escaped(&mut s, v);
        }
        s.push('}');
        s
    }

    fn render_labels_with(&self, extra_key: &str, extra_value: &str) -> String {
        let mut s = String::from("{");
        for (k, v) in &self.labels {
            s.push_str(k);
            s.push('=');
            write_escaped(&mut s, v);
            s.push(',');
        }
        s.push_str(extra_key);
        s.push('=');
        write_escaped(&mut s, extra_value);
        s.push('}');
        s
    }
}

/// A deterministic, immutable view of a [`MetricsRegistry`], with the
/// two exporters ([`Snapshot::to_prometheus`], [`Snapshot::to_json`])
/// and typed lookups for tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// All metrics, sorted by `(name, labels)`.
    pub metrics: Vec<SnapshotEntry>,
}

impl Snapshot {
    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SnapshotEntry> {
        let (name, labels) = make_key(name, labels);
        self.metrics
            .iter()
            .find(|e| e.name == name && e.labels == labels)
    }

    /// The counter's value, if `name{labels}` is a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The gauge's value, if `name{labels}` is a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.find(name, labels)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// The histogram, if `name{labels}` is one.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match &self.find(name, labels)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Prometheus text exposition format, version 0.0.4.
    ///
    /// Counters and gauges render one sample line each; histograms
    /// render as summaries (`quantile` labels for p50/p90/p99 and max,
    /// plus `_sum` and `_count`). One `# TYPE` comment precedes each
    /// distinct metric name. Output is fully deterministic for a given
    /// snapshot.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for e in &self.metrics {
            if last_name != Some(e.name.as_str()) {
                let prom_type = match e.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "summary",
                };
                out.push_str(&format!("# TYPE {} {prom_type}\n", e.name));
                last_name = Some(e.name.as_str());
            }
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{}{} {v}\n", e.name, e.render_labels()));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{}{} {v}\n", e.name, e.render_labels()));
                }
                MetricValue::Histogram(h) => {
                    for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            e.name,
                            e.render_labels_with("quantile", label),
                            h.quantile(q)
                        ));
                    }
                    out.push_str(&format!(
                        "{}{} {}\n",
                        e.name,
                        e.render_labels_with("quantile", "1"),
                        h.max()
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        e.name,
                        e.render_labels(),
                        h.sum()
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        e.name,
                        e.render_labels(),
                        h.count()
                    ));
                }
            }
        }
        out
    }

    /// The snapshot as one JSON document:
    /// `{"metrics":[{"name","labels","type",…value fields}]}`.
    /// Round-trips through [`crate::json::JsonValue::parse`].
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"metrics\":[");
        for (i, e) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            write_escaped(&mut s, &e.name);
            s.push_str(",\"labels\":{");
            for (j, (k, v)) in e.labels.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                write_escaped(&mut s, k);
                s.push(':');
                write_escaped(&mut s, v);
            }
            s.push_str("},\"type\":");
            write_escaped(&mut s, e.value.type_name());
            match &e.value {
                MetricValue::Counter(v) => s.push_str(&format!(",\"value\":{v}")),
                MetricValue::Gauge(v) => s.push_str(&format!(",\"value\":{v}")),
                MetricValue::Histogram(h) => {
                    s.push_str(&format!(
                        ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.quantile(0.5),
                        h.quantile(0.9),
                        h.quantile(0.99)
                    ));
                }
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// A compact human-readable rendering, one line per metric.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.metrics {
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("counter   {}{} {v}\n", e.name, e.render_labels()));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("gauge     {}{} {v}\n", e.name, e.render_labels()));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "histogram {}{} count={} p50={} p90={} p99={} max={}\n",
                        e.name,
                        e.render_labels(),
                        h.count(),
                        h.quantile(0.5),
                        h.quantile(0.9),
                        h.quantile(0.99),
                        h.max()
                    ));
                }
            }
        }
        out
    }
}

/// Per-thread state of a run in flight (all of a run's events are
/// emitted from one thread, but a registry observer may watch many
/// concurrent runs — e.g. a batch spread over workers).
#[derive(Debug, Clone, Copy)]
struct RunState {
    algorithm: &'static str,
    run_start_ns: u64,
    open_phase: Option<(&'static str, u64)>,
}

/// An [`Observer`] that aggregates events into a [`MetricsRegistry`],
/// across any number of runs — and, because it is `Sync` and keys its
/// in-flight state by thread, across concurrently interleaved runs from
/// batch workers.
///
/// Metrics produced (all prefixed `joinopt_`):
///
/// | metric | kind | labels |
/// |---|---|---|
/// | `runs_started_total`, `runs_total` | counter | `algorithm` |
/// | `run_duration_ns`, `phase_ns` | histogram | `algorithm` (+ `phase`) |
/// | `dp_level_entries` | histogram | `algorithm` |
/// | `table_probes_total`, `table_hits_total` | counter | `algorithm` |
/// | `table_entries`, `arena_bytes` | gauge (last run) | `algorithm` |
/// | `inner_loop_total`, `csg_cmp_pairs_total`, `ono_lohman_total` | counter | `algorithm` |
/// | `budget_exceeded_total` | counter | `budget` |
/// | `degraded_total` | counter | `rung` |
/// | `worker_chunk_service_ns` | histogram | `algorithm` |
/// | `worker_sets_total`, `worker_inner_total`, `worker_pairs_total` | counter | `worker` |
/// | `level_merge_ns`, `level_idle_ns` | histogram | `algorithm` |
/// | `worker_utilization_permille` | histogram | `algorithm` |
/// | `plan_candidates_total`, `plan_candidates_accepted_total` | counter | `algorithm` |
/// | `search_pruned_total` | counter | `reason` |
/// | `cache_hits_total`, `cache_misses_total` | counter | — |
/// | `cache_stores_total`, `cache_evictions_total` | counter | — |
/// | `cache_bytes` | gauge | — |
///
/// The provenance counters only move when some sink in the run's
/// observer chain opted into candidate events via
/// [`Observer::wants_provenance`]; this observer does not request them
/// itself.
pub struct RegistryObserver<'a> {
    registry: &'a MetricsRegistry,
    start: Instant,
    runs: Mutex<HashMap<u64, RunState>>,
}

impl<'a> RegistryObserver<'a> {
    /// An observer feeding `registry`; its duration clock starts now.
    pub fn new(registry: &'a MetricsRegistry) -> RegistryObserver<'a> {
        RegistryObserver {
            registry,
            start: Instant::now(),
            runs: Mutex::new(HashMap::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn with_runs<R>(&self, f: impl FnOnce(&mut HashMap<u64, RunState>) -> R) -> R {
        let mut guard = match self.runs.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// The algorithm label of this thread's in-flight run.
    fn algorithm(&self) -> &'static str {
        let tid = current_thread_id();
        self.with_runs(|r| r.get(&tid).map(|s| s.algorithm))
            .unwrap_or("unknown")
    }
}

impl Observer for RegistryObserver<'_> {
    fn on_event(&self, event: Event) {
        let now = self.now_ns();
        let tid = current_thread_id();
        let reg = self.registry;
        match event {
            Event::RunStart { algorithm, .. } => {
                self.with_runs(|r| {
                    r.insert(
                        tid,
                        RunState {
                            algorithm,
                            run_start_ns: now,
                            open_phase: None,
                        },
                    )
                });
                reg.inc("joinopt_runs_started_total", &[("algorithm", algorithm)], 1);
            }
            Event::PhaseStart { phase } => {
                self.with_runs(|r| {
                    if let Some(s) = r.get_mut(&tid) {
                        s.open_phase = Some((phase, now));
                    }
                });
            }
            Event::PhaseEnd { phase } => {
                let span = self.with_runs(|r| {
                    let s = r.get_mut(&tid)?;
                    match s.open_phase.take() {
                        Some((name, t)) if name == phase => Some((s.algorithm, now - t)),
                        _ => None,
                    }
                });
                if let Some((algorithm, duration)) = span {
                    reg.record(
                        "joinopt_phase_ns",
                        &[("algorithm", algorithm), ("phase", phase)],
                        duration,
                    );
                }
            }
            Event::DpLevel { new_entries, .. } => {
                reg.record(
                    "joinopt_dp_level_entries",
                    &[("algorithm", self.algorithm())],
                    new_entries,
                );
            }
            Event::TableStats {
                entries,
                probes,
                hits,
                ..
            } => {
                let algorithm = self.algorithm();
                let labels = [("algorithm", algorithm)];
                reg.inc("joinopt_table_probes_total", &labels, probes);
                reg.inc("joinopt_table_hits_total", &labels, hits);
                reg.set_gauge("joinopt_table_entries", &labels, entries as i64);
            }
            Event::ArenaStats { bytes, .. } => {
                reg.set_gauge(
                    "joinopt_arena_bytes",
                    &[("algorithm", self.algorithm())],
                    bytes as i64,
                );
            }
            Event::FinalCounters {
                inner,
                csg_cmp_pairs,
                ono_lohman,
            } => {
                let algorithm = self.algorithm();
                let labels = [("algorithm", algorithm)];
                reg.inc("joinopt_inner_loop_total", &labels, inner);
                reg.inc("joinopt_csg_cmp_pairs_total", &labels, csg_cmp_pairs);
                reg.inc("joinopt_ono_lohman_total", &labels, ono_lohman);
            }
            Event::BudgetExceeded { budget } => {
                reg.inc("joinopt_budget_exceeded_total", &[("budget", budget)], 1);
            }
            Event::Degraded { rung } => {
                reg.inc("joinopt_degraded_total", &[("rung", rung)], 1);
            }
            Event::WorkerChunk {
                worker,
                sets,
                service_ns,
                inner,
                pairs,
                ..
            } => {
                reg.record(
                    "joinopt_worker_chunk_service_ns",
                    &[("algorithm", self.algorithm())],
                    service_ns,
                );
                let w = worker.to_string();
                let labels = [("worker", w.as_str())];
                reg.inc("joinopt_worker_sets_total", &labels, sets as u64);
                reg.inc("joinopt_worker_inner_total", &labels, inner);
                reg.inc("joinopt_worker_pairs_total", &labels, pairs);
            }
            Event::LevelSync {
                workers,
                merge_ns,
                max_service_ns,
                total_service_ns,
                idle_ns,
                ..
            } => {
                let algorithm = self.algorithm();
                let labels = [("algorithm", algorithm)];
                reg.record("joinopt_level_merge_ns", &labels, merge_ns);
                reg.record("joinopt_level_idle_ns", &labels, idle_ns);
                let denominator = workers as u64 * max_service_ns;
                if let Some(permille) = (total_service_ns * 1000).checked_div(denominator) {
                    reg.record("joinopt_worker_utilization_permille", &labels, permille);
                }
            }
            Event::PlanCandidate { accepted, .. } => {
                let labels = [("algorithm", self.algorithm())];
                reg.inc("joinopt_plan_candidates_total", &labels, 1);
                if accepted {
                    reg.inc("joinopt_plan_candidates_accepted_total", &labels, 1);
                }
            }
            Event::SearchPruned { reason, .. } => {
                reg.inc("joinopt_search_pruned_total", &[("reason", reason)], 1);
            }
            Event::CacheLookup { hit } => {
                let name = if hit {
                    "joinopt_cache_hits_total"
                } else {
                    "joinopt_cache_misses_total"
                };
                reg.inc(name, &[], 1);
            }
            Event::CacheStore { total_bytes, .. } => {
                reg.inc("joinopt_cache_stores_total", &[], 1);
                reg.set_gauge("joinopt_cache_bytes", &[], total_bytes as i64);
            }
            Event::CacheEvict { total_bytes, .. } => {
                reg.inc("joinopt_cache_evictions_total", &[], 1);
                reg.set_gauge("joinopt_cache_bytes", &[], total_bytes as i64);
            }
            Event::ServeAccepted { priority } => {
                reg.inc("joinopt_serve_accepted_total", &[("priority", priority)], 1);
            }
            Event::ServeShed { priority } => {
                reg.inc("joinopt_serve_shed_total", &[("priority", priority)], 1);
            }
            Event::ServeRetried { .. } => {
                reg.inc("joinopt_serve_retried_total", &[], 1);
            }
            Event::ServeBreakerOpen => {
                reg.inc("joinopt_serve_breaker_open_total", &[], 1);
            }
            Event::ServeDrained { .. } => {
                reg.inc("joinopt_serve_drained_total", &[], 1);
            }
            Event::RunEnd => {
                let state = self.with_runs(|r| r.remove(&tid));
                if let Some(s) = state {
                    let labels = [("algorithm", s.algorithm)];
                    reg.inc("joinopt_runs_total", &labels, 1);
                    reg.record("joinopt_run_duration_ns", &labels, now - s.run_start_ns);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn bucket_index_and_bound_are_consistent() {
        // Exact region.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
        // Every bucket's lower bound maps back to that bucket, and the
        // index is monotone in the value.
        let mut last = 0;
        for v in [16u64, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX / 2] {
            let i = bucket_index(v);
            assert!(i >= last, "index must be monotone at {v}");
            last = i;
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i, "lower bound of {v}'s bucket");
            assert!(lb <= v);
            // Relative error bound: the bucket spans < 1/16 of the value.
            assert!((v - lb) as f64 <= v as f64 / 16.0 + 1.0);
        }
    }

    #[test]
    fn histogram_quantiles_are_deterministic() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // Log-linear: quantiles land within 6.25% below the true value.
        let p50 = h.quantile(0.5);
        assert!((469..=500).contains(&p50), "p50={p50}");
        let p90 = h.quantile(0.9);
        assert!((844..=900).contains(&p90), "p90={p90}");
        let p99 = h.quantile(0.99);
        assert!((929..=990).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 1000);
        // Same inputs, same outputs: rebuild and compare.
        let mut again = Histogram::default();
        for v in 1..=1000u64 {
            again.record(v);
        }
        assert_eq!(h, again);
    }

    #[test]
    fn empty_and_single_sample_histograms() {
        let h = Histogram::default();
        assert_eq!((h.count(), h.quantile(0.5), h.max()), (0, 0, 0));
        let mut h = Histogram::default();
        h.record(42);
        assert_eq!(h.quantile(0.5), 42);
        assert_eq!(h.quantile(0.99), 42);
        assert_eq!((h.min(), h.max()), (42, 42));
    }

    #[test]
    fn registry_is_deterministic_and_kind_safe() {
        let reg = MetricsRegistry::new();
        reg.inc("b_counter", &[("x", "1")], 2);
        reg.inc("b_counter", &[("x", "1")], 3);
        reg.set_gauge("a_gauge", &[], -7);
        reg.record("c_hist", &[], 10);
        reg.record("c_hist", &[], 20);
        // Kind mismatch is ignored, not a panic.
        reg.set_gauge("b_counter", &[("x", "1")], 0);
        reg.inc("a_gauge", &[], 1);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("b_counter", &[("x", "1")]), Some(5));
        assert_eq!(snap.gauge("a_gauge", &[]), Some(-7));
        assert_eq!(snap.histogram("c_hist", &[]).unwrap().count(), 2);
        // Sorted by name: a_gauge, b_counter, c_hist.
        let names: Vec<&str> = snap.metrics.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a_gauge", "b_counter", "c_hist"]);
    }

    #[test]
    fn prometheus_exposition_is_exact() {
        let reg = MetricsRegistry::new();
        reg.inc("joinopt_runs_total", &[("algorithm", "DPccp")], 3);
        reg.inc("joinopt_runs_total", &[("algorithm", "DPsub")], 1);
        reg.set_gauge("joinopt_table_entries", &[("algorithm", "DPccp")], 10);
        reg.record("joinopt_run_duration_ns", &[("algorithm", "DPccp")], 100);
        reg.record("joinopt_run_duration_ns", &[("algorithm", "DPccp")], 200);

        let text = reg.snapshot().to_prometheus();
        let expected = "\
# TYPE joinopt_run_duration_ns summary
joinopt_run_duration_ns{algorithm=\"DPccp\",quantile=\"0.5\"} 100
joinopt_run_duration_ns{algorithm=\"DPccp\",quantile=\"0.9\"} 200
joinopt_run_duration_ns{algorithm=\"DPccp\",quantile=\"0.99\"} 200
joinopt_run_duration_ns{algorithm=\"DPccp\",quantile=\"1\"} 200
joinopt_run_duration_ns_sum{algorithm=\"DPccp\"} 300
joinopt_run_duration_ns_count{algorithm=\"DPccp\"} 2
# TYPE joinopt_runs_total counter
joinopt_runs_total{algorithm=\"DPccp\"} 3
joinopt_runs_total{algorithm=\"DPsub\"} 1
# TYPE joinopt_table_entries gauge
joinopt_table_entries{algorithm=\"DPccp\"} 10
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_snapshot_parses_and_matches() {
        let reg = MetricsRegistry::new();
        reg.inc("joinopt_runs_total", &[("algorithm", "DPccp")], 2);
        reg.record("joinopt_run_duration_ns", &[], 500);
        let snap = reg.snapshot();
        let v = JsonValue::parse(&snap.to_json()).unwrap();
        let metrics = v.get("metrics").unwrap().as_array().unwrap();
        assert_eq!(metrics.len(), 2);
        let hist = &metrics[0];
        assert_eq!(
            hist.get("name").unwrap().as_str(),
            Some("joinopt_run_duration_ns")
        );
        assert_eq!(hist.get("type").unwrap().as_str(), Some("histogram"));
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(hist.get("max").unwrap().as_u64(), Some(500));
        let counter = &metrics[1];
        assert_eq!(counter.get("value").unwrap().as_u64(), Some(2));
        assert_eq!(
            counter
                .get("labels")
                .unwrap()
                .get("algorithm")
                .unwrap()
                .as_str(),
            Some("DPccp")
        );
    }

    #[test]
    fn registry_observer_aggregates_across_runs() {
        let reg = MetricsRegistry::new();
        let obs = RegistryObserver::new(&reg);
        for _ in 0..2 {
            obs.on_event(Event::RunStart {
                algorithm: "DPsub",
                relations: 5,
            });
            obs.on_event(Event::PhaseStart { phase: "enumerate" });
            obs.on_event(Event::PhaseEnd { phase: "enumerate" });
            obs.on_event(Event::DpLevel {
                size: 2,
                new_entries: 4,
            });
            obs.on_event(Event::TableStats {
                entries: 9,
                capacity: 32,
                probes: 40,
                hits: 30,
            });
            obs.on_event(Event::ArenaStats {
                nodes: 11,
                bytes: 440,
            });
            obs.on_event(Event::FinalCounters {
                inner: 84,
                csg_cmp_pairs: 14,
                ono_lohman: 7,
            });
            obs.on_event(Event::WorkerChunk {
                level: 2,
                worker: 0,
                thread_id: current_thread_id(),
                sets: 10,
                service_ns: 800,
                inner: 42,
                pairs: 7,
            });
            obs.on_event(Event::LevelSync {
                level: 2,
                workers: 2,
                merge_ns: 50,
                max_service_ns: 800,
                total_service_ns: 1200,
                idle_ns: 400,
            });
            obs.on_event(Event::BudgetExceeded { budget: "time" });
            obs.on_event(Event::Degraded { rung: "idp" });
            obs.on_event(Event::RunEnd);
        }
        let snap = reg.snapshot();
        let alg = [("algorithm", "DPsub")];
        assert_eq!(snap.counter("joinopt_runs_started_total", &alg), Some(2));
        assert_eq!(snap.counter("joinopt_runs_total", &alg), Some(2));
        assert_eq!(snap.counter("joinopt_inner_loop_total", &alg), Some(168));
        assert_eq!(snap.counter("joinopt_csg_cmp_pairs_total", &alg), Some(28));
        assert_eq!(snap.counter("joinopt_table_probes_total", &alg), Some(80));
        assert_eq!(snap.gauge("joinopt_table_entries", &alg), Some(9));
        assert_eq!(snap.gauge("joinopt_arena_bytes", &alg), Some(440));
        assert_eq!(
            snap.counter("joinopt_budget_exceeded_total", &[("budget", "time")]),
            Some(2)
        );
        assert_eq!(
            snap.counter("joinopt_degraded_total", &[("rung", "idp")]),
            Some(2)
        );
        assert_eq!(
            snap.counter("joinopt_worker_inner_total", &[("worker", "0")]),
            Some(84)
        );
        assert_eq!(
            snap.counter("joinopt_worker_sets_total", &[("worker", "0")]),
            Some(20)
        );
        let util = snap
            .histogram("joinopt_worker_utilization_permille", &alg)
            .unwrap();
        assert_eq!(util.count(), 2);
        assert_eq!(util.max(), 750); // 1200 / (2 × 800) = 0.75
        assert_eq!(
            snap.histogram("joinopt_run_duration_ns", &alg)
                .unwrap()
                .count(),
            2
        );
        assert_eq!(
            snap.histogram(
                "joinopt_phase_ns",
                &[("algorithm", "DPsub"), ("phase", "enumerate")]
            )
            .unwrap()
            .count(),
            2
        );
        assert_eq!(
            snap.histogram("joinopt_dp_level_entries", &alg)
                .unwrap()
                .max(),
            4
        );
    }

    #[test]
    fn registry_observer_tracks_concurrent_runs_by_thread() {
        let reg = MetricsRegistry::new();
        let obs = RegistryObserver::new(&reg);
        std::thread::scope(|scope| {
            for algorithm in ["DPsub", "DPccp"] {
                let obs = &obs;
                scope.spawn(move || {
                    for _ in 0..3 {
                        obs.on_event(Event::RunStart {
                            algorithm,
                            relations: 4,
                        });
                        obs.on_event(Event::FinalCounters {
                            inner: 10,
                            csg_cmp_pairs: 4,
                            ono_lohman: 2,
                        });
                        obs.on_event(Event::RunEnd);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        for algorithm in ["DPsub", "DPccp"] {
            let labels = [("algorithm", algorithm)];
            assert_eq!(snap.counter("joinopt_runs_total", &labels), Some(3));
            assert_eq!(snap.counter("joinopt_inner_loop_total", &labels), Some(30));
        }
    }
}
