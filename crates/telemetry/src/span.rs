//! Request-scoped tracing for the serve path: a flight recorder that
//! remembers, per request, which lifecycle stage ate the latency.
//!
//! A [`RequestTrace`] is an ordered list of [`StageSpan`]s — accept,
//! shed-check, breaker, cache-lookup, one optimize span per retry
//! attempt, respond — plus the facts a postmortem needs: the resolved
//! algorithm, cache hit/miss, degradation rung and error kind. Like
//! [`crate::window`], nothing here reads a clock: every timestamp is a
//! `now_ns` handed in by the caller (the service layer's injectable
//! `Clock`), so traces are byte-deterministic under a manual clock.
//!
//! `trace_id`s are accepted from the client protocol or minted by a
//! seeded per-server [`TraceIdMinter`]; either way the id is echoed in
//! every response so clients can correlate. A bounded [`TraceLog`]
//! keeps the most recent traces (for the `trace` verb) and the worst-K
//! slowest (for the `slow` verb) without ever growing unbounded.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::write_escaped;

/// One timed lifecycle stage inside a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpan {
    /// Stage name (`accept`, `shed-check`, `breaker`, `cache-lookup`,
    /// `optimize`, `retry-backoff`, `respond`).
    pub stage: &'static str,
    /// Retry attempt this span belongs to (0 for the first attempt and
    /// for stages outside the retry loop).
    pub attempt: u32,
    /// Stage start, in the clock's nanoseconds.
    pub start_ns: u64,
    /// Stage end; `end_ns - start_ns` is the duration.
    pub end_ns: u64,
}

impl StageSpan {
    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The flight record of one request: ordered stage spans plus resolved
/// outcome facts.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Client-supplied or minted correlation id.
    pub trace_id: String,
    /// Tenant the request ran under.
    pub tenant: String,
    /// Protocol verb (`optimize` for the gateway lifecycle).
    pub verb: &'static str,
    /// When the request entered the lifecycle.
    pub started_ns: u64,
    /// When it finished (equals `started_ns` until [`finish`] is
    /// called).
    ///
    /// [`finish`]: RequestTrace::finish
    pub finished_ns: u64,
    /// Terminal status: `ok`, `rejected` or `error`.
    pub status: &'static str,
    /// Wire name of the algorithm that actually ran (after `auto`
    /// resolution), when the request got that far.
    pub algorithm: Option<&'static str>,
    /// Whether the plan came from the cache.
    pub cache_hit: Option<bool>,
    /// Degradation rung, when the plan was degraded under budget.
    pub degraded: Option<&'static str>,
    /// Error or rejection kind, when the request did not return a plan.
    pub error_kind: Option<&'static str>,
    spans: Vec<StageSpan>,
    open: Vec<usize>,
}

impl RequestTrace {
    /// Starts a trace at `now_ns`.
    pub fn new(trace_id: String, tenant: &str, verb: &'static str, now_ns: u64) -> RequestTrace {
        RequestTrace {
            trace_id,
            tenant: tenant.to_string(),
            verb,
            started_ns: now_ns,
            finished_ns: now_ns,
            status: "ok",
            algorithm: None,
            cache_hit: None,
            degraded: None,
            error_kind: None,
            spans: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Opens a stage span at `now_ns` (attempt 0).
    pub fn begin(&mut self, stage: &'static str, now_ns: u64) {
        self.begin_attempt(stage, 0, now_ns);
    }

    /// Opens a stage span tagged with a retry attempt.
    pub fn begin_attempt(&mut self, stage: &'static str, attempt: u32, now_ns: u64) {
        self.open.push(self.spans.len());
        self.spans.push(StageSpan {
            stage,
            attempt,
            start_ns: now_ns,
            end_ns: now_ns,
        });
    }

    /// Closes the most recently opened span at `now_ns`. A close with
    /// nothing open is ignored — a trace must never panic a server.
    pub fn end(&mut self, now_ns: u64) {
        if let Some(i) = self.open.pop() {
            self.spans[i].end_ns = now_ns;
        }
    }

    /// Number of spans currently open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Closes every open span at `now_ns` — for error and panic paths
    /// that skipped the stage-by-stage closes.
    pub fn close_open(&mut self, now_ns: u64) {
        while !self.open.is_empty() {
            self.end(now_ns);
        }
    }

    /// Records an already-delimited span (attempt 0).
    pub fn span(&mut self, stage: &'static str, start_ns: u64, end_ns: u64) {
        self.spans.push(StageSpan {
            stage,
            attempt: 0,
            start_ns,
            end_ns,
        });
    }

    /// Seals the trace: closes any spans left open and stamps the end.
    pub fn finish(&mut self, status: &'static str, now_ns: u64) {
        self.close_open(now_ns);
        self.status = status;
        self.finished_ns = now_ns.max(self.started_ns);
    }

    /// End-to-end duration in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.finished_ns.saturating_sub(self.started_ns)
    }

    /// The recorded spans, in open order.
    pub fn spans(&self) -> &[StageSpan] {
        &self.spans
    }

    /// Renders the trace as one JSON object. Field order is fixed and
    /// every value is integral or escaped text, so identical traces
    /// render to identical bytes — the property the span-timeline
    /// golden in CI pins.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"trace_id\":");
        write_escaped(&mut s, &self.trace_id);
        s.push_str(",\"tenant\":");
        write_escaped(&mut s, &self.tenant);
        s.push_str(&format!(
            ",\"verb\":\"{}\",\"status\":\"{}\",\"started_ns\":{},\"total_ns\":{}",
            self.verb,
            self.status,
            self.started_ns,
            self.total_ns()
        ));
        if let Some(a) = self.algorithm {
            s.push_str(&format!(",\"algorithm\":\"{a}\""));
        }
        if let Some(h) = self.cache_hit {
            s.push_str(&format!(",\"cache_hit\":{h}"));
        }
        if let Some(d) = self.degraded {
            s.push_str(&format!(",\"degraded\":\"{d}\""));
        }
        if let Some(e) = self.error_kind {
            s.push_str(&format!(",\"error_type\":\"{e}\""));
        }
        s.push_str(",\"spans\":[");
        for (i, sp) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"stage\":\"{}\",\"attempt\":{},\"start_ns\":{},\"duration_ns\":{}}}",
                sp.stage,
                sp.attempt,
                sp.start_ns,
                sp.duration_ns()
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Mints `trace_id`s from a seeded per-server counter: an 8-hex-digit
/// server prefix (a splitmix64 hash of the seed, so distinct servers
/// rarely collide) and a sequential suffix. Fully deterministic for a
/// fixed seed — the property the `ManualClock` smoke golden relies on.
#[derive(Debug)]
pub struct TraceIdMinter {
    prefix: u32,
    counter: AtomicU64,
}

impl TraceIdMinter {
    /// A minter for the given server seed.
    pub fn new(seed: u64) -> TraceIdMinter {
        TraceIdMinter {
            prefix: (splitmix64(seed) >> 32) as u32,
            counter: AtomicU64::new(0),
        }
    }

    /// The next id: `xxxxxxxx-NNNNNN`.
    pub fn mint(&self) -> String {
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        format!("{:08x}-{:06}", self.prefix, n)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Bounded storage for finished traces: a ring of the most recent
/// (served by the `trace` verb) and the worst-K slowest by total
/// duration (served by the `slow` verb). Both bounds are hard — a busy
/// server's memory never grows with traffic.
#[derive(Debug)]
pub struct TraceLog {
    recent_capacity: usize,
    slow_capacity: usize,
    recent: VecDeque<RequestTrace>,
    slow: Vec<RequestTrace>,
}

impl TraceLog {
    /// A log keeping up to `recent_capacity` recent traces and the
    /// `slow_capacity` slowest.
    pub fn new(recent_capacity: usize, slow_capacity: usize) -> TraceLog {
        TraceLog {
            recent_capacity: recent_capacity.max(1),
            slow_capacity: slow_capacity.max(1),
            recent: VecDeque::new(),
            slow: Vec::new(),
        }
    }

    /// Files a finished trace in both the recent ring and, if it ranks,
    /// the slow list.
    pub fn record(&mut self, trace: RequestTrace) {
        if self.recent.len() == self.recent_capacity {
            self.recent.pop_front();
        }
        // Worst-first, stable on ties (earlier trace keeps its rank), so
        // identical runs produce identical `slow` listings.
        let total = trace.total_ns();
        let pos = self
            .slow
            .iter()
            .position(|t| t.total_ns() < total)
            .unwrap_or(self.slow.len());
        if pos < self.slow_capacity {
            self.slow.insert(pos, trace.clone());
            self.slow.truncate(self.slow_capacity);
        }
        self.recent.push_back(trace);
    }

    /// Looks a recent trace up by id (most recent match wins).
    pub fn find(&self, trace_id: &str) -> Option<&RequestTrace> {
        self.recent.iter().rev().find(|t| t.trace_id == trace_id)
    }

    /// The slowest recorded traces, worst first.
    pub fn slowest(&self) -> &[RequestTrace] {
        &self.slow
    }

    /// Number of traces currently in the recent ring.
    pub fn recent_len(&self) -> usize {
        self.recent.len()
    }

    /// The ids of every trace in the recent ring, oldest first.
    pub fn recent_ids(&self) -> Vec<&str> {
        self.recent.iter().map(|t| t.trace_id.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: &str, start: u64, end: u64) -> RequestTrace {
        let mut t = RequestTrace::new(id.to_string(), "acme", "optimize", start);
        t.begin("shed-check", start);
        t.end(start + 5);
        t.finish("ok", end);
        t
    }

    #[test]
    fn spans_nest_and_render_deterministically() {
        let mut t = RequestTrace::new("t-1".into(), "acme", "optimize", 100);
        t.begin("shed-check", 100);
        t.end(110);
        t.begin_attempt("optimize", 0, 110);
        t.end(150);
        t.begin_attempt("retry-backoff", 1, 150);
        t.end(170);
        t.algorithm = Some("dpccp");
        t.cache_hit = Some(false);
        t.finish("ok", 180);
        assert_eq!(t.total_ns(), 80);
        assert_eq!(t.spans().len(), 3);
        assert_eq!(t.spans()[1].duration_ns(), 40);
        let json = t.to_json();
        assert_eq!(json, t.clone().to_json(), "rendering is pure");
        assert!(json.starts_with("{\"trace_id\":\"t-1\""));
        assert!(json.contains("\"algorithm\":\"dpccp\""));
        assert!(json.contains("\"cache_hit\":false"));
        assert!(json.contains(
            "{\"stage\":\"retry-backoff\",\"attempt\":1,\"start_ns\":150,\"duration_ns\":20}"
        ));
    }

    #[test]
    fn finish_closes_dangling_spans_and_clamps() {
        let mut t = RequestTrace::new("t-2".into(), "", "optimize", 50);
        t.begin("breaker", 60);
        t.finish("error", 40); // a clock that "went backwards"
        assert_eq!(t.finished_ns, 50, "never ends before it starts");
        assert_eq!(t.spans()[0].end_ns, 40);
        t.end(99); // extra end is a no-op
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn minter_is_seed_deterministic_and_sequential() {
        let a = TraceIdMinter::new(2006);
        let b = TraceIdMinter::new(2006);
        let first = a.mint();
        assert_eq!(first, b.mint());
        assert_ne!(first, a.mint());
        assert!(first.len() == 15 && first.contains('-'), "{first}");
        assert_ne!(
            TraceIdMinter::new(7).mint(),
            TraceIdMinter::new(8).mint(),
            "different seeds, different prefixes"
        );
    }

    #[test]
    fn trace_log_bounds_recent_and_ranks_slowest() {
        let mut log = TraceLog::new(3, 2);
        log.record(trace("a", 0, 100));
        log.record(trace("b", 0, 500));
        log.record(trace("c", 0, 50));
        log.record(trace("d", 0, 300));
        assert_eq!(log.recent_len(), 3, "oldest recent trace evicted");
        assert!(log.find("a").is_none(), "evicted from the ring");
        assert_eq!(log.find("c").map(|t| t.total_ns()), Some(50));
        let slow: Vec<_> = log.slowest().iter().map(|t| t.trace_id.as_str()).collect();
        assert_eq!(slow, ["b", "d"], "worst-K by total duration");
    }

    #[test]
    fn duplicate_ids_resolve_to_the_most_recent() {
        let mut log = TraceLog::new(4, 1);
        log.record(trace("x", 0, 10));
        log.record(trace("x", 0, 20));
        assert_eq!(log.find("x").map(|t| t.total_ns()), Some(20));
    }
}
