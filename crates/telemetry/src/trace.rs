//! [`TraceWriter`] — streams events as JSON lines to any `io::Write`.

use std::io::{self, Write};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::{write_escaped, write_f64};
use crate::observer::{current_thread_id, Event, Observer};

/// An [`Observer`] that writes one JSON object per event.
///
/// Every line carries four common fields —
///
/// * `"event"` — the event's wire name ([`Event::name`]),
/// * `"phase"` — the phase the event belongs to ([`Event::phase`]),
/// * `"elapsed_ns"` — nanoseconds since the writer was created, taken
///   from a monotonic clock, so values never decrease down the file,
/// * `"thread_id"` — the emitting thread
///   ([`current_thread_id`](crate::current_thread_id)), so interleaved
///   lines from batch workers stay attributable —
///
/// plus the event's own payload fields (e.g. `"size"`/`"new_entries"`
/// for `dp_level`). Lines parse with [`crate::json::JsonValue::parse`].
///
/// The writer is `Sync` (serialized behind a mutex), so one trace file
/// can collect events from every worker of an `optimize_batch` run.
///
/// I/O errors are sticky: the first failure stops further writing and is
/// surfaced by [`TraceWriter::finish`].
pub struct TraceWriter<W: Write> {
    start: Instant,
    inner: Mutex<Inner<W>>,
}

struct Inner<W> {
    out: W,
    error: Option<io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `out`; the `elapsed_ns` clock starts now.
    pub fn new(out: W) -> TraceWriter<W> {
        TraceWriter {
            start: Instant::now(),
            inner: Mutex::new(Inner { out, error: None }),
        }
    }

    /// Flushes and returns the underlying writer, or the first write
    /// error encountered while tracing.
    pub fn finish(self) -> io::Result<W> {
        let Inner { mut out, error } = match self.inner.into_inner() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        match error {
            Some(e) => Err(e),
            None => {
                out.flush()?;
                Ok(out)
            }
        }
    }

    fn render(&self, event: Event) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"event\":");
        write_escaped(&mut s, event.name());
        s.push_str(",\"phase\":");
        write_escaped(&mut s, event.phase());
        s.push_str(&format!(
            ",\"elapsed_ns\":{},\"thread_id\":{}",
            u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            current_thread_id()
        ));
        match event {
            Event::RunStart {
                algorithm,
                relations,
            } => {
                s.push_str(",\"algorithm\":");
                write_escaped(&mut s, algorithm);
                s.push_str(&format!(",\"relations\":{relations}"));
            }
            Event::PhaseStart { .. } | Event::PhaseEnd { .. } | Event::RunEnd => {}
            Event::DpLevel { size, new_entries } => {
                s.push_str(&format!(",\"size\":{size},\"new_entries\":{new_entries}"));
            }
            Event::TableStats {
                entries,
                capacity,
                probes,
                hits,
            } => {
                s.push_str(&format!(
                    ",\"entries\":{entries},\"capacity\":{capacity},\"probes\":{probes},\"hits\":{hits}"
                ));
            }
            Event::ArenaStats { nodes, bytes } => {
                s.push_str(&format!(",\"nodes\":{nodes},\"bytes\":{bytes}"));
            }
            Event::FinalCounters {
                inner,
                csg_cmp_pairs,
                ono_lohman,
            } => {
                s.push_str(&format!(
                    ",\"inner\":{inner},\"csg_cmp_pairs\":{csg_cmp_pairs},\"ono_lohman\":{ono_lohman}"
                ));
            }
            Event::BudgetExceeded { budget } => {
                s.push_str(",\"budget\":");
                write_escaped(&mut s, budget);
            }
            Event::Degraded { rung } => {
                s.push_str(",\"rung\":");
                write_escaped(&mut s, rung);
            }
            Event::WorkerChunk {
                level,
                worker,
                thread_id,
                sets,
                service_ns,
                inner,
                pairs,
            } => {
                // `worker_thread_id` is the *worker's* thread; the
                // common `thread_id` field is the merge thread that
                // emitted the event at the barrier.
                s.push_str(&format!(
                    ",\"level\":{level},\"worker\":{worker},\"worker_thread_id\":{thread_id},\
                     \"sets\":{sets},\"service_ns\":{service_ns},\"inner\":{inner},\"pairs\":{pairs}"
                ));
            }
            Event::LevelSync {
                level,
                workers,
                merge_ns,
                max_service_ns,
                total_service_ns,
                idle_ns,
            } => {
                s.push_str(&format!(
                    ",\"level\":{level},\"workers\":{workers},\"merge_ns\":{merge_ns},\
                     \"max_service_ns\":{max_service_ns},\"total_service_ns\":{total_service_ns},\
                     \"idle_ns\":{idle_ns}"
                ));
            }
            Event::PlanCandidate {
                set,
                left,
                right,
                cost,
                accepted,
            } => {
                s.push_str(&format!(
                    ",\"set\":{set},\"left\":{left},\"right\":{right},\"cost\":"
                ));
                write_f64(&mut s, cost);
                s.push_str(&format!(",\"accepted\":{accepted}"));
            }
            Event::SearchPruned { set, reason } => {
                s.push_str(&format!(",\"set\":{set},\"reason\":"));
                write_escaped(&mut s, reason);
            }
            Event::CacheLookup { hit } => {
                s.push_str(&format!(",\"hit\":{hit}"));
            }
            Event::CacheStore {
                entry_bytes,
                total_bytes,
            }
            | Event::CacheEvict {
                entry_bytes,
                total_bytes,
            } => {
                s.push_str(&format!(
                    ",\"entry_bytes\":{entry_bytes},\"total_bytes\":{total_bytes}"
                ));
            }
            Event::ServeAccepted { priority } | Event::ServeShed { priority } => {
                s.push_str(",\"priority\":");
                write_escaped(&mut s, priority);
            }
            Event::ServeRetried { attempt } => {
                s.push_str(&format!(",\"attempt\":{attempt}"));
            }
            Event::ServeBreakerOpen => {}
            Event::ServeDrained { in_flight } => {
                s.push_str(&format!(",\"in_flight\":{in_flight}"));
            }
        }
        s.push_str("}\n");
        s
    }
}

impl<W: Write> Observer for TraceWriter<W> {
    // A trace is the full event record; candidate-level provenance
    // belongs in it.
    fn wants_provenance(&self) -> bool {
        true
    }

    fn on_event(&self, event: Event) {
        let line = self.render(event);
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if inner.error.is_some() {
            return;
        }
        if let Err(e) = inner.out.write_all(line.as_bytes()) {
            inner.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn lines_are_valid_json_with_common_fields() {
        let tw = TraceWriter::new(Vec::new());
        tw.on_event(Event::RunStart {
            algorithm: "DPsub",
            relations: 6,
        });
        tw.on_event(Event::PhaseStart { phase: "enumerate" });
        tw.on_event(Event::DpLevel {
            size: 2,
            new_entries: 5,
        });
        tw.on_event(Event::TableStats {
            entries: 9,
            capacity: 64,
            probes: 40,
            hits: 31,
        });
        tw.on_event(Event::ArenaStats {
            nodes: 11,
            bytes: 440,
        });
        tw.on_event(Event::FinalCounters {
            inner: 100,
            csg_cmp_pairs: 10,
            ono_lohman: 5,
        });
        tw.on_event(Event::PhaseEnd { phase: "enumerate" });
        tw.on_event(Event::RunEnd);
        let buf = tw.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut last_elapsed = 0u64;
        let mut events = Vec::new();
        for line in text.lines() {
            let v = JsonValue::parse(line).unwrap();
            events.push(v.get("event").unwrap().as_str().unwrap().to_string());
            assert!(v.get("phase").unwrap().as_str().is_some());
            let elapsed = v.get("elapsed_ns").unwrap().as_u64().unwrap();
            assert!(elapsed >= last_elapsed, "elapsed_ns must be monotonic");
            last_elapsed = elapsed;
        }
        assert_eq!(
            events,
            vec![
                "run_start",
                "phase_start",
                "dp_level",
                "table_stats",
                "arena_stats",
                "final_counters",
                "phase_end",
                "run_end"
            ]
        );
    }

    #[test]
    fn lines_carry_a_thread_id_and_worker_events_render() {
        let tw = TraceWriter::new(Vec::new());
        tw.on_event(Event::WorkerChunk {
            level: 3,
            worker: 1,
            thread_id: 99,
            sets: 20,
            service_ns: 5000,
            inner: 80,
            pairs: 16,
        });
        tw.on_event(Event::LevelSync {
            level: 3,
            workers: 4,
            merge_ns: 700,
            max_service_ns: 5000,
            total_service_ns: 18000,
            idle_ns: 2000,
        });
        let text = String::from_utf8(tw.finish().unwrap()).unwrap();
        let lines: Vec<JsonValue> = text.lines().map(|l| JsonValue::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 2);
        let me = super::current_thread_id();
        for v in &lines {
            assert_eq!(v.get("thread_id").unwrap().as_u64(), Some(me));
            assert_eq!(v.get("phase").unwrap().as_str(), Some("enumerate"));
        }
        assert_eq!(
            lines[0].get("event").unwrap().as_str(),
            Some("worker_chunk")
        );
        assert_eq!(lines[0].get("worker_thread_id").unwrap().as_u64(), Some(99));
        assert_eq!(lines[0].get("service_ns").unwrap().as_u64(), Some(5000));
        assert_eq!(lines[1].get("event").unwrap().as_str(), Some("level_sync"));
        assert_eq!(lines[1].get("workers").unwrap().as_u64(), Some(4));
        assert_eq!(lines[1].get("idle_ns").unwrap().as_u64(), Some(2000));
    }

    #[test]
    fn writer_is_sync_and_collects_from_many_threads() {
        let tw = TraceWriter::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let tw = &tw;
                scope.spawn(move || {
                    for _ in 0..8 {
                        tw.on_event(Event::RunEnd);
                    }
                });
            }
        });
        let text = String::from_utf8(tw.finish().unwrap()).unwrap();
        let mut tids = std::collections::BTreeSet::new();
        for line in text.lines() {
            let v = JsonValue::parse(line).unwrap();
            tids.insert(v.get("thread_id").unwrap().as_u64().unwrap());
        }
        assert_eq!(text.lines().count(), 32);
        assert_eq!(tids.len(), 4, "each spawned thread has a distinct id");
    }

    #[test]
    fn payload_fields_survive_round_trip() {
        let tw = TraceWriter::new(Vec::new());
        tw.on_event(Event::DpLevel {
            size: 3,
            new_entries: 7,
        });
        let text = String::from_utf8(tw.finish().unwrap()).unwrap();
        let v = JsonValue::parse(text.trim()).unwrap();
        assert_eq!(v.get("size").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("new_entries").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("phase").unwrap().as_str(), Some("run"));
    }

    #[test]
    fn provenance_events_render_and_writer_wants_them() {
        let tw = TraceWriter::new(Vec::new());
        assert!(tw.wants_provenance());
        tw.on_event(Event::PlanCandidate {
            set: 0b0111,
            left: 0b0011,
            right: 0b0100,
            cost: 1234.5,
            accepted: true,
        });
        tw.on_event(Event::SearchPruned {
            set: 0b0111,
            reason: "bound",
        });
        let text = String::from_utf8(tw.finish().unwrap()).unwrap();
        let lines: Vec<JsonValue> = text.lines().map(|l| JsonValue::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0].get("event").unwrap().as_str(),
            Some("plan_candidate")
        );
        assert_eq!(lines[0].get("set").unwrap().as_u64(), Some(7));
        assert_eq!(lines[0].get("left").unwrap().as_u64(), Some(3));
        assert_eq!(lines[0].get("right").unwrap().as_u64(), Some(4));
        assert_eq!(lines[0].get("cost").unwrap().as_f64(), Some(1234.5));
        assert_eq!(lines[0].get("phase").unwrap().as_str(), Some("enumerate"));
        assert_eq!(
            lines[1].get("event").unwrap().as_str(),
            Some("search_pruned")
        );
        assert_eq!(lines[1].get("reason").unwrap().as_str(), Some("bound"));
    }

    #[derive(Debug)]
    struct FailingWriter;

    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk full"))
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_errors_are_sticky_and_reported() {
        let tw = TraceWriter::new(FailingWriter);
        tw.on_event(Event::RunEnd);
        tw.on_event(Event::RunEnd); // silently skipped after the failure
        let err = tw.finish().unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }
}
