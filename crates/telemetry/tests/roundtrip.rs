//! JSON round-trip acceptance: everything the telemetry layer emits as
//! JSON — the per-run [`RunReport`] line and the registry's snapshot
//! document — must parse back through the crate's own dependency-free
//! parser with every field intact.

use joinopt_telemetry::json::JsonValue;
use joinopt_telemetry::{Event, MetricsCollector, MetricsRegistry, Observer, RegistryObserver};

/// Drives one synthetic-but-complete run through `obs` — the same event
/// vocabulary a real engine run emits, including the per-worker
/// profile.
fn emit_run(obs: &dyn Observer) {
    obs.on_event(Event::RunStart {
        algorithm: "DPsub",
        relations: 8,
    });
    obs.on_event(Event::PhaseStart { phase: "init" });
    obs.on_event(Event::PhaseEnd { phase: "init" });
    obs.on_event(Event::PhaseStart { phase: "enumerate" });
    obs.on_event(Event::WorkerChunk {
        level: 2,
        worker: 0,
        thread_id: 3,
        sets: 14,
        service_ns: 700,
        inner: 21,
        pairs: 14,
    });
    obs.on_event(Event::WorkerChunk {
        level: 2,
        worker: 1,
        thread_id: 4,
        sets: 14,
        service_ns: 500,
        inner: 19,
        pairs: 12,
    });
    obs.on_event(Event::LevelSync {
        level: 2,
        workers: 2,
        merge_ns: 150,
        max_service_ns: 700,
        total_service_ns: 1200,
        idle_ns: 200,
    });
    obs.on_event(Event::PhaseEnd { phase: "enumerate" });
    obs.on_event(Event::PhaseStart { phase: "extract" });
    obs.on_event(Event::PhaseEnd { phase: "extract" });
    obs.on_event(Event::DpLevel {
        size: 2,
        new_entries: 7,
    });
    obs.on_event(Event::TableStats {
        entries: 15,
        capacity: 256,
        probes: 99,
        hits: 40,
    });
    obs.on_event(Event::ArenaStats {
        nodes: 22,
        bytes: 1056,
    });
    obs.on_event(Event::FinalCounters {
        inner: 40,
        csg_cmp_pairs: 26,
        ono_lohman: 13,
    });
    obs.on_event(Event::RunEnd);
}

#[test]
fn run_report_json_line_round_trips() {
    let metrics = MetricsCollector::new();
    emit_run(&metrics);
    let report = metrics.report();
    let line = report.to_json_line();

    let v = JsonValue::parse(&line).expect("report line parses");
    assert_eq!(
        v.get("algorithm").and_then(JsonValue::as_str),
        Some("DPsub")
    );
    assert_eq!(v.get("relations").and_then(JsonValue::as_u64), Some(8));
    let table = v.get("table").expect("table object");
    assert_eq!(table.get("entries").and_then(JsonValue::as_u64), Some(15));
    assert_eq!(table.get("probes").and_then(JsonValue::as_u64), Some(99));
    let counters = v.get("counters").expect("counters object");
    assert_eq!(counters.get("inner").and_then(JsonValue::as_u64), Some(40));

    // The per-worker rollup serializes too, with the derived utilization.
    let levels = v
        .get("worker_levels")
        .and_then(JsonValue::as_array)
        .expect("worker_levels array");
    assert_eq!(levels.len(), 1);
    assert_eq!(levels[0].get("level").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(
        levels[0].get("workers").and_then(JsonValue::as_u64),
        Some(2)
    );
    assert_eq!(
        levels[0].get("idle_ns").and_then(JsonValue::as_u64),
        Some(200)
    );
    let utilization = levels[0]
        .get("utilization")
        .and_then(JsonValue::as_f64)
        .expect("utilization");
    // 1200 busy out of 2 workers × 700 span.
    assert!(
        (utilization - 1200.0 / 1400.0).abs() < 1e-9,
        "{utilization}"
    );
}

#[test]
fn registry_snapshot_json_round_trips() {
    let registry = MetricsRegistry::new();
    let obs = RegistryObserver::new(&registry);
    emit_run(&obs);
    emit_run(&obs);
    let snap = registry.snapshot();
    let text = snap.to_json();

    let v = JsonValue::parse(&text).expect("snapshot parses");
    let metrics = v
        .get("metrics")
        .and_then(JsonValue::as_array)
        .expect("metrics array");
    assert!(!metrics.is_empty());

    let find = |name: &str| -> &JsonValue {
        metrics
            .iter()
            .find(|m| m.get("name").and_then(JsonValue::as_str) == Some(name))
            .unwrap_or_else(|| panic!("metric {name} missing from {text}"))
    };

    let runs = find("joinopt_runs_total");
    assert_eq!(
        runs.get("type").and_then(JsonValue::as_str),
        Some("counter")
    );
    assert_eq!(runs.get("value").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(
        runs.get("labels")
            .and_then(|l| l.get("algorithm"))
            .and_then(JsonValue::as_str),
        Some("DPsub")
    );

    let inner = find("joinopt_inner_loop_total");
    assert_eq!(inner.get("value").and_then(JsonValue::as_u64), Some(80));

    // Histograms serialize their full summary, parseable as numbers.
    let service = find("joinopt_worker_chunk_service_ns");
    assert_eq!(
        service.get("type").and_then(JsonValue::as_str),
        Some("histogram")
    );
    assert_eq!(service.get("count").and_then(JsonValue::as_u64), Some(4));
    assert_eq!(service.get("sum").and_then(JsonValue::as_u64), Some(2400));
    assert_eq!(service.get("max").and_then(JsonValue::as_u64), Some(700));
    assert!(service.get("p50").and_then(JsonValue::as_u64).is_some());

    // Gauges come back signed.
    let entries = find("joinopt_table_entries");
    assert_eq!(
        entries.get("type").and_then(JsonValue::as_str),
        Some("gauge")
    );
    assert_eq!(entries.get("value").and_then(JsonValue::as_u64), Some(15));
}
