//! Boundary behavior of the log-linear [`Histogram`]: the degenerate
//! inputs a registry actually sees — empty histograms, zero samples,
//! the smallest and largest representable values — must produce sane
//! counts, extrema and quantiles rather than panics or bucket overruns.

use joinopt_telemetry::{Histogram, MetricsRegistry};

#[test]
fn empty_histogram_reports_zeroes() {
    let h = Histogram::default();
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 0, "quantile({q}) of empty histogram");
    }
}

#[test]
fn zero_sample_is_a_real_observation() {
    let mut h = Histogram::default();
    h.record(0);
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.quantile(0.5), 0);
    assert_eq!(h.quantile(1.0), 0);
}

#[test]
fn one_is_exact_in_the_leading_buckets() {
    let mut h = Histogram::default();
    h.record(1);
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), 1);
    assert_eq!(h.min(), 1);
    assert_eq!(h.max(), 1);
    for q in [0.01, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 1, "quantile({q})");
    }
}

#[test]
fn u64_max_does_not_overflow_buckets_or_sum() {
    let mut h = Histogram::default();
    h.record(u64::MAX);
    assert_eq!(h.count(), 1);
    assert_eq!(h.min(), u64::MAX);
    assert_eq!(h.max(), u64::MAX, "max is tracked exactly");
    assert_eq!(h.quantile(0.5), u64::MAX);
    assert_eq!(h.quantile(1.0), u64::MAX);

    // A second MAX sample saturates the sum instead of wrapping.
    h.record(u64::MAX);
    assert_eq!(h.count(), 2);
    assert_eq!(h.sum(), u64::MAX);
}

#[test]
fn single_sample_pins_every_quantile() {
    let mut h = Histogram::default();
    h.record(1_000_003);
    for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(
            h.quantile(q),
            1_000_003,
            "with one sample every quantile is that sample (q={q})"
        );
    }
}

#[test]
fn extreme_mix_keeps_quantiles_within_observed_range() {
    let mut h = Histogram::default();
    h.record(0);
    h.record(u64::MAX);
    assert_eq!(h.count(), 2);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), u64::MAX);
    assert_eq!(h.quantile(0.5), 0, "median of {{0, MAX}} lands on 0");
    assert_eq!(h.quantile(1.0), u64::MAX);
    // Quantiles never stray outside [min, max].
    for q in [0.01, 0.3, 0.7, 0.99] {
        let v = h.quantile(q);
        assert!(v == 0 || v == u64::MAX || (h.min()..=h.max()).contains(&v));
    }
}

#[test]
fn bucketing_stays_within_relative_error_across_magnitudes() {
    // Walk powers of two from 1 to the top of the range, plus their
    // neighbors: the reported quantile of a single-sample histogram is
    // clamped to the sample, and multi-sample quantiles must stay
    // within the documented 1/16 relative error below the true value.
    for shift in 0..64 {
        let v = 1u64 << shift;
        for sample in [v.saturating_sub(1).max(1), v, v.saturating_add(1)] {
            let mut h = Histogram::default();
            h.record(sample);
            h.record(sample);
            let q = h.quantile(0.5);
            assert!(q <= sample, "quantile overshoots: {q} > {sample}");
            // Lower bound of the sample's bucket: within 6.25%.
            let floor = sample - sample / 16;
            assert!(
                q >= floor.min(sample),
                "quantile {q} undershoots 6.25% floor {floor} for sample {sample}"
            );
        }
    }
}

#[test]
fn registry_histograms_survive_boundary_samples() {
    let reg = MetricsRegistry::new();
    for v in [0, 1, u64::MAX] {
        reg.record("joinopt_boundary_ns", &[], v);
    }
    let snap = reg.snapshot();
    let h = snap
        .histogram("joinopt_boundary_ns", &[])
        .expect("histogram registered");
    assert_eq!(h.count(), 3);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), u64::MAX);
    // Prometheus rendering of the extreme histogram must not panic and
    // must carry the exact count.
    let prom = snap.to_prometheus();
    assert!(prom.contains("joinopt_boundary_ns_count 3"), "{prom}");
}
