//! The service-level resilience-matrix case: a fault burst opens the
//! tenant's circuit breaker, the breaker recloses after the cooldown,
//! and a drain started with requests still in flight completes cleanly.
//!
//! Lives in its own integration binary (own process): the burst arms
//! the process-global `serve-worker-panic` failpoint, which must not
//! leak into sibling tests running concurrently in the same process.
//! Only the failpoints build (`RUSTFLAGS="--cfg failpoints"`) can
//! inject faults, so the whole scenario is gated on that cfg.

#![cfg(failpoints)]

use std::time::Duration;

use joinopt_core::failpoint::{self, FailAction};
use joinopt_service::{
    BreakerConfig, BreakerState, Clock, Gateway, GatewayConfig, GatewayError, OptimizerService,
    QuerySpec, RetryConfig, ServiceConfig, ServiceRequest,
};
use joinopt_telemetry::NoopObserver;

fn spec(n: usize, seed: u64) -> QuerySpec {
    let w = joinopt_cost::workload::family_workload(joinopt_qgraph::GraphKind::Chain, n, seed);
    QuerySpec::capture(&w.graph, &w.catalog).expect("chain workload is connected")
}

#[test]
fn fault_burst_opens_breaker_and_drain_completes() {
    let gw = Gateway::with_clock(
        OptimizerService::new(ServiceConfig::default()),
        GatewayConfig {
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(250),
                success_threshold: 1,
            },
            // No retries: each injected panic is a terminal failure, so
            // the breaker accounting below is exact.
            retry: RetryConfig {
                max_retries: 0,
                ..RetryConfig::default()
            },
            ..GatewayConfig::default()
        },
        Clock::manual(),
    );
    let mut session = None;
    let obs = NoopObserver;

    // Healthy baseline for the tenant.
    let warm = ServiceRequest::new(spec(5, 1)).with_tenant("acme");
    gw.handle(&warm, None, &mut session, &obs)
        .expect("baseline request succeeds");
    assert_eq!(gw.breaker_state("acme"), BreakerState::Closed);

    // Fault burst: three consecutive injected worker panics trip the
    // breaker at its failure threshold.
    failpoint::configure_times("serve-worker-panic", FailAction::Panic, 3);
    for seed in 2..5 {
        let req = ServiceRequest::new(spec(5, seed)).with_tenant("acme");
        match gw.handle(&req, None, &mut session, &obs) {
            Err(GatewayError::Failed(e)) => {
                assert!(format!("{e}").contains("panic"), "unexpected failure: {e}");
            }
            other => panic!("burst request must fail: {other:?}"),
        }
    }
    failpoint::clear("serve-worker-panic");
    assert_eq!(gw.breaker_state("acme"), BreakerState::Open);
    assert!(gw.stats().breaker_opens >= 1);

    // While open, the tenant is rejected without reaching a worker —
    // and other tenants are unaffected (the breaker is per-tenant).
    let rejected = ServiceRequest::new(spec(5, 6)).with_tenant("acme");
    assert!(matches!(
        gw.handle(&rejected, None, &mut session, &obs),
        Err(GatewayError::Rejected(_))
    ));
    let other = ServiceRequest::new(spec(5, 7)).with_tenant("globex");
    gw.handle(&other, None, &mut session, &obs)
        .expect("other tenants keep flowing");

    // After the cooldown a probe succeeds and the breaker recloses.
    gw.clock().advance(Duration::from_millis(300));
    let probe = ServiceRequest::new(spec(5, 8)).with_tenant("acme");
    gw.handle(&probe, None, &mut session, &obs)
        .expect("post-cooldown probe succeeds");
    assert_eq!(gw.breaker_state("acme"), BreakerState::Closed);

    // Drain with a request still in flight: the drain must wait for it
    // and then complete cleanly.
    let gw = std::sync::Arc::new(gw);
    let bg = {
        let gw = std::sync::Arc::clone(&gw);
        std::thread::spawn(move || {
            let mut session = None;
            let req = ServiceRequest::new(spec(9, 9)).with_tenant("acme");
            gw.handle(&req, None, &mut session, &NoopObserver)
        })
    };
    // Give the background request a moment to enter, then drain.
    for _ in 0..200 {
        if gw.stats().in_flight > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    gw.begin_drain();
    let refused = ServiceRequest::new(spec(5, 10)).with_tenant("acme");
    assert!(matches!(
        gw.handle(&refused, None, &mut session, &obs),
        Err(GatewayError::Rejected(_))
    ));
    gw.await_drained(Duration::from_secs(10), &obs)
        .expect("drain completes within the timeout");
    bg.join()
        .expect("background thread exits")
        .expect("in-flight request completes during the drain");
    assert_eq!(gw.stats().in_flight, 0);
}
