//! Pinned behavior: with the cache disabled, the service never
//! canonicalizes a query — the zero-overhead promise of
//! `ServiceConfig { cache: None, .. }`.
//!
//! This lives in its own integration-test binary on purpose: it is the
//! sole user of the process-global [`fingerprints_computed`] counter,
//! so no concurrently running test can pollute the delta.

use joinopt_cost::workload;
use joinopt_qgraph::GraphKind;
use joinopt_service::{
    fingerprints_computed, OptimizerService, QuerySpec, ServiceConfig, ServiceRequest,
};

#[test]
fn disabled_cache_computes_zero_fingerprints() {
    let service = OptimizerService::new(ServiceConfig {
        cache: None,
        ..ServiceConfig::default()
    });
    assert!(service.cache().is_none());

    let before = fingerprints_computed();
    let requests: Vec<ServiceRequest> = (0..6)
        .map(|seed| {
            let w = workload::family_workload(GraphKind::Cycle, 6, seed);
            let spec = QuerySpec::capture(&w.graph, &w.catalog).expect("cycle captures");
            ServiceRequest::new(spec)
        })
        .collect();
    let results = service.submit_batch(&requests);

    for r in &results {
        let outcome = r.as_ref().expect("cycles optimize");
        assert!(!outcome.cache_hit, "no cache, so no hits");
    }
    assert_eq!(
        fingerprints_computed(),
        before,
        "a cache-less service must not canonicalize anything"
    );
}
