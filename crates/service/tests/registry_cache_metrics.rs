//! Pinned behavior: cache observer events fold into the
//! [`MetricsRegistry`] as the `joinopt_cache_*` series, and the folded
//! numbers agree with the cache's own [`CacheStats`].

use joinopt_cost::workload;
use joinopt_qgraph::GraphKind;
use joinopt_service::{OptimizerService, QuerySpec, ServiceConfig, ServiceRequest};
use joinopt_telemetry::{MetricsRegistry, RegistryObserver};

fn spec(kind: GraphKind, n: usize, seed: u64) -> QuerySpec {
    let w = workload::family_workload(kind, n, seed);
    QuerySpec::capture(&w.graph, &w.catalog).expect("family workloads capture")
}

#[test]
fn hit_and_miss_counters_fold_into_the_registry_snapshot() {
    // One worker so the identical specs execute in order: the first
    // submission misses and stores, the remaining two hit.
    let service = OptimizerService::new(ServiceConfig {
        worker_threads: 1,
        ..ServiceConfig::default()
    });
    let chain = spec(GraphKind::Chain, 6, 9);
    let requests = [
        ServiceRequest::new(chain.clone()),
        ServiceRequest::new(spec(GraphKind::Star, 6, 9)),
        ServiceRequest::new(chain.clone()),
        ServiceRequest::new(chain),
    ];

    let registry = MetricsRegistry::new();
    let observer = RegistryObserver::new(&registry);
    let results = service.submit_batch_observed(&requests, &observer);
    assert!(results.iter().all(|r| r.is_ok()));

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("joinopt_cache_hits_total", &[]), Some(2));
    assert_eq!(snapshot.counter("joinopt_cache_misses_total", &[]), Some(2));
    assert_eq!(snapshot.counter("joinopt_cache_stores_total", &[]), Some(2));
    let bytes = snapshot
        .gauge("joinopt_cache_bytes", &[])
        .expect("stores set the bytes gauge");
    assert!(bytes > 0, "two stored plans occupy bytes, got {bytes}");

    // The folded series agrees with the cache's own accounting.
    let stats = service.cache().expect("cache on by default").stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.stores, 2);
    assert_eq!(stats.bytes as i64, bytes);

    // And the exporter carries them through.
    let prom = snapshot.to_prometheus();
    assert!(prom.contains("joinopt_cache_hits_total 2"), "{prom}");
    assert!(prom.contains("joinopt_cache_misses_total 2"), "{prom}");
}
