//! Pinned behavior: with no [`RequestTrace`] attached, the gateway's
//! request path reads the clock a **fixed, minimal** number of times
//! and produces bit-identical plans — the zero-overhead promise of the
//! serve-path tracing, mirroring the core engine's
//! `engine_clock_reads()` contract for the service layer.
//!
//! This lives in its own integration-test binary on purpose: it is the
//! sole user of the process-global [`clock_reads`] counter, so no
//! concurrently running test can pollute the deltas. Everything runs
//! under a manual clock; no wall time is read outside the counter.

use std::time::Duration;

use joinopt_cost::workload;
use joinopt_qgraph::GraphKind;
use joinopt_service::{
    clock_reads, Clock, Gateway, GatewayConfig, OptimizerService, QuerySpec, ServiceConfig,
    ServiceRequest,
};
use joinopt_telemetry::{NoopObserver, RequestTrace};

fn request(seed: u64) -> ServiceRequest {
    let w = workload::family_workload(GraphKind::Chain, 6, seed);
    let spec = QuerySpec::capture(&w.graph, &w.catalog).expect("chain captures");
    ServiceRequest::new(spec)
}

fn manual_gateway() -> Gateway {
    Gateway::with_clock(
        OptimizerService::new(ServiceConfig::default()),
        GatewayConfig::default(),
        Clock::manual(),
    )
}

/// One test function on purpose: the counter is global, so the checks
/// must run sequentially even under the default parallel test runner.
#[test]
fn untraced_serve_path_is_zero_overhead() {
    let obs = NoopObserver;
    let gateway = manual_gateway();
    let mut session = None;
    let req = request(0);

    // Untraced, no deadline: admission stamp + breaker admission — two
    // reads, cold or warm. Any third read is tracing leaking into the
    // fast path.
    let before = clock_reads();
    let cold = gateway
        .handle(&req, None, &mut session, &obs)
        .expect("cold optimize");
    let cold_reads = clock_reads() - before;
    assert!(!cold.cache_hit);
    assert_eq!(
        cold_reads, 2,
        "untraced cold request must cost exactly two clock reads"
    );

    let before = clock_reads();
    let warm = gateway
        .handle(&req, None, &mut session, &obs)
        .expect("warm optimize");
    let warm_reads = clock_reads() - before;
    assert!(warm.cache_hit);
    assert_eq!(
        warm_reads, 2,
        "untraced warm request must cost exactly two clock reads"
    );

    // A lifecycle deadline adds exactly one read per attempt (the
    // remaining-allowance computation), nothing more.
    let before = clock_reads();
    gateway
        .handle(&req, Some(Duration::from_secs(10)), &mut session, &obs)
        .expect("deadlined optimize");
    assert_eq!(
        clock_reads() - before,
        3,
        "a deadline costs exactly one extra read per attempt"
    );

    // Traced, the same request pays for its span boundaries — strictly
    // more reads — while the plan's cost bits stay identical: tracing
    // observes the computation, never steers it.
    let traced_gateway = manual_gateway();
    let mut traced_session = None;
    let mut trace = RequestTrace::new(
        "t-overhead".to_string(),
        &req.tenant,
        "optimize",
        traced_gateway.clock().now_ns(),
    );
    let before = clock_reads();
    let traced = traced_gateway
        .handle_traced(&req, None, &mut traced_session, &obs, Some(&mut trace))
        .expect("traced optimize");
    let traced_reads = clock_reads() - before;
    assert!(
        traced_reads > cold_reads,
        "tracing must actually record span boundaries ({traced_reads} vs {cold_reads})"
    );
    assert_eq!(trace.open_count(), 0, "all spans closed on success");
    assert!(
        trace.spans().iter().any(|s| s.stage == "optimize"),
        "cold traced request records an optimize span"
    );
    assert_eq!(
        traced.result.cost.to_bits(),
        cold.result.cost.to_bits(),
        "traced and untraced plans must be bit-identical"
    );
    assert_eq!(
        traced.result.cardinality.to_bits(),
        cold.result.cardinality.to_bits()
    );
}
