//! Optimizer-as-a-service: the owned request API, the canonical plan
//! cache and batched admission on top of `joinopt-core`.
//!
//! The core crate's [`OptimizeRequest`](joinopt_core::OptimizeRequest)
//! is a borrowed, zero-cost builder: perfect for embedding, useless for
//! queueing — a request that borrows its graph cannot outlive the call
//! site. This crate adds the service half of the story:
//!
//! * [`spec`] — [`QuerySpec`]/[`CatalogSpec`], owned and hashable forms
//!   of a query graph plus statistics catalog, convertible back to the
//!   borrowed types in O(n + m);
//! * [`fingerprint`] — a canonical 128-bit **query fingerprint** built
//!   on the renumbering invariance proven by the conformance harness:
//!   two specs that differ only by a relabeling of their relations or a
//!   reordering of their join edges fingerprint identically;
//! * [`cache`] — a sharded in-memory [`PlanCache`] keyed by fingerprint
//!   × algorithm × cost-model id, storing detached plan trees with
//!   their cost bits under an exact LRU byte budget;
//! * [`service`] — [`ServiceRequest`] (owned spec + tenant + priority +
//!   budgets) and [`OptimizerService`], a batch executor with per-tenant
//!   admission control riding the core crate's exact → IDP → GOO
//!   degradation ladder;
//! * [`clock`] / [`retry`] / [`breaker`] — the injectable clock,
//!   jittered-backoff retry policy with per-tenant budgets, and the
//!   per-tenant circuit breaker behind the server;
//! * [`gateway`] — [`Gateway`], the hardened request lifecycle
//!   (shedding watermarks, breaker, deadline propagation, retries,
//!   graceful drain) shared by the TCP server and the chaos harness;
//! * [`server`] — `joinopt serve`: a dependency-free TCP/unix-socket
//!   server speaking newline-delimited JSON.
//!
//! Like the rest of the workspace the crate is dependency-free; cache
//! traffic reports through the zero-overhead
//! [`Observer`](joinopt_telemetry::Observer) vocabulary
//! (`CacheLookup`/`CacheStore`/`CacheEvict`) and folds into the
//! [`MetricsRegistry`](joinopt_telemetry::MetricsRegistry) as
//! `joinopt_cache_*` series. See `docs/service.md` for the design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod breaker;
pub mod cache;
pub mod clock;
pub mod fingerprint;
pub mod gateway;
pub mod retry;
pub mod server;
pub mod service;
pub mod spec;

pub use breaker::{BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker};
pub use cache::{CacheConfig, CacheStats, CachedPlan, PlanCache};
pub use clock::{clock_reads, Clock};
pub use fingerprint::{canonicalize, fingerprints_computed, CanonicalForm, Fingerprint};
pub use gateway::{
    error_kind, Gateway, GatewayConfig, GatewayError, GatewayStats, Rejection, ShedConfig,
};
pub use retry::{RetryBudget, RetryConfig, RetryPolicy};
pub use server::{ServeSummary, Server, ServerConfig, TraceConfig};
pub use service::{
    AttemptTracer, CostModelId, OptimizerService, Priority, ServiceConfig, ServiceOutcome,
    ServiceRequest,
};
pub use spec::{CatalogSpec, QuerySpec};
