//! An injectable clock for the server's retry, backoff and breaker
//! logic.
//!
//! Everything in the gateway that measures or waits for time goes
//! through a [`Clock`] handle: production code uses [`Clock::system`]
//! (monotonic [`Instant`] reads, real [`std::thread::sleep`]s), unit
//! tests use [`Clock::manual`] — a virtual clock whose `sleep` advances
//! time instantly and whose `advance` moves it explicitly. That keeps
//! every backoff schedule and breaker cooldown in `cargo test -q`
//! deterministic and free of real sleeps: a test that "waits" 300ms of
//! cooldown runs in nanoseconds and can pin exact expected timings.
//!
//! Clones share the underlying time source, so a test can hold one
//! handle to advance time while the gateway under test reads another.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Process-global count of [`Clock::now_ns`] calls, for the
/// zero-overhead pinning tests.
static CLOCK_READS: AtomicU64 = AtomicU64::new(0);

/// How many times any [`Clock`] in this process has been read — the
/// serve-path analog of `joinopt_core`'s `engine_clock_reads()`. The
/// tracing layer's contract is that, with tracing disabled, a gateway
/// request performs *exactly* the same clock reads as before tracing
/// existed; the pinned test in `tests/trace_overhead.rs` asserts the
/// delta. Like its engine counterpart, the counter is monotonic and
/// shared, so observing tests must run in their own test binary.
pub fn clock_reads() -> u64 {
    CLOCK_READS.load(Ordering::Relaxed)
}

/// A monotonic clock: either the real one or a manually advanced
/// virtual one. Cheap to clone; clones share the time source.
#[derive(Debug, Clone)]
pub struct Clock {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    /// Real time, reported as nanoseconds since the clock was created.
    System { epoch: Instant },
    /// Virtual time in nanoseconds, advanced only by `sleep`/`advance`.
    Manual { now_ns: Arc<AtomicU64> },
}

impl Default for Clock {
    fn default() -> Self {
        Clock::system()
    }
}

impl Clock {
    /// The real monotonic clock. `now_ns` is nanoseconds since this
    /// handle (or the handle it was cloned from) was created.
    pub fn system() -> Clock {
        Clock {
            inner: Inner::System {
                epoch: Instant::now(),
            },
        }
    }

    /// A virtual clock starting at zero. Time moves only through
    /// [`Clock::sleep`] and [`Clock::advance`].
    pub fn manual() -> Clock {
        Clock {
            inner: Inner::Manual {
                now_ns: Arc::new(AtomicU64::new(0)),
            },
        }
    }

    /// Whether this is a manual (virtual) clock.
    pub fn is_manual(&self) -> bool {
        matches!(self.inner, Inner::Manual { .. })
    }

    /// Nanoseconds since the clock's epoch.
    pub fn now_ns(&self) -> u64 {
        CLOCK_READS.fetch_add(1, Ordering::Relaxed);
        match &self.inner {
            Inner::System { epoch } => {
                u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            Inner::Manual { now_ns } => now_ns.load(Ordering::SeqCst),
        }
    }

    /// Time since the clock's epoch as a [`Duration`].
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.now_ns())
    }

    /// Blocks for `d` on the system clock; advances virtual time by `d`
    /// instantly on a manual clock.
    pub fn sleep(&self, d: Duration) {
        match &self.inner {
            Inner::System { .. } => std::thread::sleep(d),
            Inner::Manual { now_ns } => {
                let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
                now_ns.fetch_add(ns, Ordering::SeqCst);
            }
        }
    }

    /// Advances a manual clock by `d` without blocking anybody. On the
    /// system clock this is a no-op (real time cannot be steered).
    pub fn advance(&self, d: Duration) {
        if let Inner::Manual { now_ns } = &self.inner {
            let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
            now_ns.fetch_add(ns, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_starts_at_zero_and_sleeps_instantly() {
        let clock = Clock::manual();
        assert!(clock.is_manual());
        assert_eq!(clock.now_ns(), 0);
        let wall = Instant::now();
        clock.sleep(Duration::from_secs(3600));
        assert!(wall.elapsed() < Duration::from_secs(1), "no real sleep");
        assert_eq!(clock.now(), Duration::from_secs(3600));
    }

    #[test]
    fn manual_clones_share_time() {
        let a = Clock::manual();
        let b = a.clone();
        b.advance(Duration::from_millis(250));
        assert_eq!(a.now_ns(), 250_000_000);
    }

    #[test]
    fn system_clock_is_monotonic_and_ignores_advance() {
        let clock = Clock::system();
        assert!(!clock.is_manual());
        let t0 = clock.now_ns();
        clock.advance(Duration::from_secs(1000));
        clock.sleep(Duration::from_millis(1));
        let t1 = clock.now_ns();
        assert!(t1 >= t0 + 1_000_000, "slept at least 1ms");
        assert!(t1 < t0 + 500_000_000_000, "advance was a no-op");
    }
}
