//! Retry policy for transient server-side failures: seeded jittered
//! exponential backoff plus a per-tenant retry *budget*.
//!
//! The gateway retries a request only when the failure is transient
//! (an isolated internal error or worker panic — never a parse error
//! or a tripped budget), the attempt count is under
//! [`RetryConfig::max_retries`], and the tenant's budget has a token
//! left. The budget is a bucket refilled by successful requests
//! ([`RetryConfig::deposit_millitokens`] per success, capped at
//! [`RetryConfig::budget_millitokens`]), so sustained failure cannot
//! amplify load: once the bucket is dry, requests fail after their
//! first attempt until successes refill it.
//!
//! Backoff delays are `min(cap, base · 2^attempt)` with *equal jitter*
//! — the exponential delay halved plus a uniformly random share of the
//! other half — drawn from a caller-seeded [`XorShift64`], so a fixed
//! seed pins the whole schedule (see the tests, which assert exact
//! nanosecond values with zero real sleeps via
//! [`Clock::manual`](crate::Clock::manual)).

use std::time::Duration;

use joinopt_relset::XorShift64;

/// Millitokens one retry withdraws from the budget.
const RETRY_COST_MILLITOKENS: u64 = 1000;

/// Tuning for the gateway's retry loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryConfig {
    /// Retries after the initial attempt (0 disables retrying).
    pub max_retries: u32,
    /// Base backoff delay (the first retry waits about this long).
    pub base: Duration,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
    /// Per-tenant budget bucket capacity in millitokens (one retry
    /// costs 1000).
    pub budget_millitokens: u64,
    /// Millitokens credited to the tenant per successful request.
    pub deposit_millitokens: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 2,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(100),
            budget_millitokens: 10 * RETRY_COST_MILLITOKENS,
            deposit_millitokens: 500,
        }
    }
}

/// The seeded backoff schedule: owns the jitter RNG so a fixed seed
/// yields a fixed delay sequence.
#[derive(Debug)]
pub struct RetryPolicy {
    config: RetryConfig,
    rng: XorShift64,
}

impl RetryPolicy {
    /// A policy drawing jitter from a stream seeded with `seed`.
    pub fn new(config: RetryConfig, seed: u64) -> RetryPolicy {
        RetryPolicy {
            config,
            rng: XorShift64::seed_from_u64(seed ^ 0x5265_7472_794a_6974), // "RetryJit"
        }
    }

    /// The policy's configuration.
    pub fn config(&self) -> &RetryConfig {
        &self.config
    }

    /// Whether a transient failure on 0-based `attempt` may be retried
    /// at all (budget permitting — that check is the tenant's).
    pub fn allows(&self, attempt: u32) -> bool {
        attempt < self.config.max_retries
    }

    /// The jittered delay before 0-based retry `attempt`: exponential
    /// `min(cap, base · 2^attempt)`, then equal jitter in
    /// `[delay/2, delay]`. Consumes one RNG draw, so the schedule is a
    /// pure function of the seed and the attempt sequence.
    pub fn backoff(&mut self, attempt: u32) -> Duration {
        let base_ns = u64::try_from(self.config.base.as_nanos()).unwrap_or(u64::MAX);
        let cap_ns = u64::try_from(self.config.cap.as_nanos()).unwrap_or(u64::MAX);
        // checked_mul (not checked_shl) so value overflow — not just an
        // out-of-range shift count — clamps to the cap instead of
        // silently dropping high bits for second-scale bases.
        let exp_ns = base_ns
            .checked_mul(1u64 << attempt.min(32))
            .unwrap_or(cap_ns)
            .min(cap_ns);
        let half = exp_ns / 2;
        let jitter = if half == 0 {
            0
        } else {
            self.rng.next_u64() % (half + 1)
        };
        Duration::from_nanos(half + jitter)
    }
}

/// One tenant's retry budget: a millitoken bucket spent by retries and
/// refilled by successes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryBudget {
    millitokens: u64,
    cap: u64,
    deposit: u64,
}

impl RetryBudget {
    /// A bucket starting full under `config`'s capacity.
    pub fn new(config: &RetryConfig) -> RetryBudget {
        RetryBudget {
            millitokens: config.budget_millitokens,
            cap: config.budget_millitokens,
            deposit: config.deposit_millitokens,
        }
    }

    /// Current balance in millitokens.
    pub fn balance_millitokens(&self) -> u64 {
        self.millitokens
    }

    /// Withdraws one retry's worth of tokens; `false` (and no
    /// withdrawal) when the bucket cannot cover it.
    pub fn try_withdraw(&mut self) -> bool {
        if self.millitokens >= RETRY_COST_MILLITOKENS {
            self.millitokens -= RETRY_COST_MILLITOKENS;
            true
        } else {
            false
        }
    }

    /// Credits one success's deposit, saturating at the cap.
    pub fn deposit(&mut self) {
        self.millitokens = (self.millitokens + self.deposit).min(self.cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_pinned_by_the_seed() {
        let config = RetryConfig {
            base: Duration::from_millis(4),
            cap: Duration::from_millis(64),
            ..RetryConfig::default()
        };
        let mut a = RetryPolicy::new(config.clone(), 42);
        let mut b = RetryPolicy::new(config, 42);
        let schedule_a: Vec<u64> = (0..6).map(|i| a.backoff(i).as_nanos() as u64).collect();
        let schedule_b: Vec<u64> = (0..6).map(|i| b.backoff(i).as_nanos() as u64).collect();
        assert_eq!(schedule_a, schedule_b, "same seed, same schedule");
        // Equal jitter keeps every delay in [exp/2, exp] with the
        // exponential capped at 64ms.
        for (i, &ns) in schedule_a.iter().enumerate() {
            let exp = (4_000_000u64 << i).min(64_000_000);
            assert!(ns >= exp / 2 && ns <= exp, "attempt {i}: {ns}ns");
        }
        let mut c = RetryPolicy::new(
            RetryConfig {
                base: Duration::from_millis(4),
                cap: Duration::from_millis(64),
                ..RetryConfig::default()
            },
            43,
        );
        let schedule_c: Vec<u64> = (0..6).map(|i| c.backoff(i).as_nanos() as u64).collect();
        assert_ne!(schedule_a, schedule_c, "different seed, different jitter");
    }

    #[test]
    fn backoff_caps_even_for_huge_attempts() {
        let mut p = RetryPolicy::new(RetryConfig::default(), 7);
        let d = p.backoff(63);
        assert!(d <= Duration::from_millis(100));
        assert!(d >= Duration::from_millis(50));
    }

    #[test]
    fn backoff_with_second_scale_base_clamps_to_cap_instead_of_wrapping() {
        // base << attempt would overflow u64 here (5s in ns is ~2^32);
        // overflow must clamp to the cap, not collapse toward zero.
        let mut p = RetryPolicy::new(
            RetryConfig {
                base: Duration::from_secs(5),
                cap: Duration::from_secs(8),
                ..RetryConfig::default()
            },
            11,
        );
        for attempt in [1, 30, 63] {
            let d = p.backoff(attempt);
            assert!(
                d >= Duration::from_secs(4) && d <= Duration::from_secs(8),
                "attempt {attempt}: {d:?} escaped [cap/2, cap]"
            );
        }
    }

    #[test]
    fn allows_respects_max_retries() {
        let p = RetryPolicy::new(
            RetryConfig {
                max_retries: 2,
                ..RetryConfig::default()
            },
            1,
        );
        assert!(p.allows(0));
        assert!(p.allows(1));
        assert!(!p.allows(2));
    }

    #[test]
    fn budget_dries_out_and_refills_on_success() {
        let config = RetryConfig {
            budget_millitokens: 2500,
            deposit_millitokens: 1000,
            ..RetryConfig::default()
        };
        let mut budget = RetryBudget::new(&config);
        assert!(budget.try_withdraw());
        assert!(budget.try_withdraw());
        // 500 left: cannot cover a third retry.
        assert!(!budget.try_withdraw());
        assert_eq!(budget.balance_millitokens(), 500);
        budget.deposit();
        assert!(budget.try_withdraw());
        // Deposits saturate at the cap.
        for _ in 0..10 {
            budget.deposit();
        }
        assert_eq!(budget.balance_millitokens(), 2500);
    }
}
