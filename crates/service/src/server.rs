//! `joinopt serve`: a dependency-free long-running server over the
//! [`Gateway`].
//!
//! The server listens on a TCP address or a unix socket and speaks
//! **newline-delimited JSON**: one request object per line, one
//! response object per line, in order, per connection. Each connection
//! gets its own thread and its own pooled optimizer
//! [`Session`](joinopt_core::Session); every optimize request runs the
//! gateway's full hardened lifecycle (shedding → breaker → deadline
//! propagation → retries; see [`crate::gateway`]).
//!
//! ## Protocol verbs
//!
//! | verb       | request fields                                        | response |
//! |------------|-------------------------------------------------------|----------|
//! | `health`   | —                                                     | `status: ok` (liveness) |
//! | `ready`    | —                                                     | `ready: true` unless draining |
//! | `stats`    | —                                                     | gateway + cache counters |
//! | `optimize` | `query` (DSL/SQL text), `id?`, `tenant?`, `priority?`, `algorithm?`, `cost_model?`, `deadline_ms?`, `time_budget_ms?`, `cost_budget?`, `memory_budget?`, `degrade?` | plan summary, or a typed rejection/error |
//! | `shutdown` | —                                                     | `status: ok`, then graceful drain |
//!
//! Responses carry `status`: `"ok"`, `"rejected"` (gateway refusal
//! with `error_type` ∈ {`shed`, `breaker-open`, `draining`} and a
//! `retry_after_ms` hint) or `"error"` (`error_type` ∈ {`timeout`,
//! `memory`, `panic`, `parse`, `invalid`, …} with a message).
//! `deadline_ms` above [`MAX_DEADLINE_MS`] is rejected as `invalid`
//! before any work happens.
//!
//! ## Shutdown
//!
//! On the `shutdown` verb (or [`ShutdownHandle::shutdown`]) the server
//! stops accepting connections, the gateway begins draining (new
//! requests get typed `draining` rejections), every in-flight request
//! runs to completion, connection threads exit, and the final metrics
//! snapshot — including the `joinopt_serve_*_total` series — is
//! flushed to the configured Prometheus path and returned in the
//! [`ServeSummary`].
//!
//! The `serve-accept` failpoint site fires per accepted connection
//! (when armed the connection is dropped before any read — clients see
//! a reset, the accept loop survives). See `docs/robustness.md`.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use joinopt_core::{Algorithm, Session};
use joinopt_telemetry::json::{write_escaped, write_f64, JsonValue};
use joinopt_telemetry::{MetricsRegistry, Observer, RegistryObserver};

use crate::gateway::{Gateway, GatewayConfig, GatewayError, GatewayStats};
use crate::service::{CostModelId, OptimizerService, Priority, ServiceConfig, ServiceRequest};
use crate::spec::QuerySpec;

/// Largest accepted `deadline_ms` (one hour). Anything larger is a
/// protocol error — an oversized deadline is always a client bug, and
/// admitting it would pin queue slots for an absurd window.
pub const MAX_DEADLINE_MS: u64 = 3_600_000;

/// How often blocked reads and the accept loop re-check the shutdown
/// flag.
const POLL: Duration = Duration::from_millis(10);

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address like `127.0.0.1:7878` (port 0 picks a free port).
    Tcp(String),
    /// A unix-domain socket path (a stale file is replaced).
    Unix(PathBuf),
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub listen: Listen,
    /// Sizing of the underlying [`OptimizerService`] (cache, limits).
    pub service: ServiceConfig,
    /// Gateway hardening (shedding, retries, breaker).
    pub gateway: GatewayConfig,
    /// How long the final drain may wait for in-flight requests.
    pub drain_timeout: Duration,
    /// When set, the final metrics snapshot is written here in
    /// Prometheus exposition format.
    pub prom_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: Listen::Tcp("127.0.0.1:0".into()),
            service: ServiceConfig::default(),
            gateway: GatewayConfig::default(),
            drain_timeout: Duration::from_secs(30),
            prom_path: None,
        }
    }
}

/// What a completed serve run looked like.
#[derive(Debug)]
pub struct ServeSummary {
    /// Final gateway counters.
    pub stats: GatewayStats,
    /// Whether the drain completed within the timeout.
    pub drained: bool,
    /// In-flight requests that completed during the drain.
    pub drained_in_flight: usize,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Connections dropped by the `serve-accept` failpoint.
    pub accept_faults: u64,
    /// The final metrics flush in Prometheus exposition format.
    pub prometheus: String,
}

/// Requests the accept loop to stop; usable from any thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Signals the server to drain and exit.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }

    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// The bound-but-not-yet-running server.
pub struct Server {
    config: ServerConfig,
    listener: Listener,
    local_addr: Option<SocketAddr>,
    gateway: Gateway,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured listener (without accepting yet).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = match &config.listen {
            Listen::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr)?),
            Listen::Unix(path) => {
                // A stale socket file from a dead process would make
                // bind fail with AddrInUse; replace it.
                let _ = std::fs::remove_file(path);
                Listener::Unix(UnixListener::bind(path)?)
            }
        };
        let local_addr = match &listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        };
        let gateway = Gateway::new(
            OptimizerService::new(config.service.clone()),
            config.gateway.clone(),
        );
        Ok(Server {
            config,
            listener,
            local_addr,
            gateway,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound TCP address (`None` for unix sockets) — lets callers
    /// bind port 0 and discover the real port.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// A handle that stops the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
        }
    }

    /// Runs until a `shutdown` verb or [`ShutdownHandle::shutdown`],
    /// then drains gracefully and returns the summary.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let registry = MetricsRegistry::new();
        let obs = RegistryObserver::new(&registry);
        let gateway = &self.gateway;
        let shutdown = &self.shutdown;
        let mut connections = 0u64;
        let mut accept_faults = 0u64;

        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l) => l.set_nonblocking(true)?,
        }

        std::thread::scope(|scope| -> std::io::Result<()> {
            while !shutdown.load(Ordering::SeqCst) {
                let accepted = match &self.listener {
                    Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
                    Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
                };
                match accepted {
                    Ok(stream) => {
                        if joinopt_core::failpoint::check("serve-accept").is_err() {
                            // Injected accept failure: the connection is
                            // dropped before any read, the loop lives on.
                            accept_faults += 1;
                            continue;
                        }
                        connections += 1;
                        let obs = &obs;
                        scope.spawn(move || {
                            let _ = serve_connection(gateway, shutdown, stream, obs);
                        });
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        std::thread::sleep(POLL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        // A fatal accept error (e.g. EMFILE) ends the
                        // listen loop; raise the shutdown flag first so
                        // connection threads wind down and the scope's
                        // implicit join cannot hang on a live client.
                        shutdown.store(true, Ordering::SeqCst);
                        return Err(e);
                    }
                }
            }
            // The accept loop is done; the scope now joins every
            // connection thread, each of which finishes its in-flight
            // request (admitted pre-drain) before exiting.
            Ok(())
        })?;

        // Belt and braces: a ShutdownHandle stop skips the verb path.
        if !gateway.is_draining() {
            gateway.begin_drain();
        }
        let drained = gateway.await_drained(self.config.drain_timeout, &obs);
        let prometheus = registry.snapshot().to_prometheus();
        if let Some(path) = &self.config.prom_path {
            std::fs::write(path, &prometheus)?;
        }
        if let Listen::Unix(path) = &self.config.listen {
            let _ = std::fs::remove_file(path);
        }
        Ok(ServeSummary {
            stats: gateway.stats(),
            drained: drained.is_ok(),
            drained_in_flight: drained.unwrap_or(0),
            connections,
            accept_faults,
            prometheus,
        })
    }
}

/// One connection's read → dispatch → respond loop.
fn serve_connection(
    gateway: &Gateway,
    shutdown: &AtomicBool,
    stream: Stream,
    obs: &dyn Observer,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let mut session: Option<Session> = None;
    let mut line = String::new();
    loop {
        // Close idle connections once draining; a partially read
        // request (non-empty buffer) is always completed and answered.
        if shutdown.load(Ordering::SeqCst) && line.is_empty() {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {
                let text = line.trim().to_string();
                line.clear();
                if text.is_empty() {
                    continue;
                }
                let (response, is_shutdown) = dispatch(gateway, shutdown, &text, &mut session, obs);
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                if is_shutdown {
                    return Ok(());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(()), // connection torn down
        }
    }
}

/// Parses one request line and produces the response line. The second
/// component is `true` when the verb was `shutdown`.
fn dispatch(
    gateway: &Gateway,
    shutdown: &AtomicBool,
    text: &str,
    session: &mut Option<Session>,
    obs: &dyn Observer,
) -> (String, bool) {
    let parsed = match JsonValue::parse(text) {
        Ok(v) => v,
        Err(e) => {
            return (
                error_response("?", None, "invalid", &format!("bad request JSON: {e:?}")),
                false,
            )
        }
    };
    let id = parsed
        .get("id")
        .and_then(|v| v.as_str())
        .map(str::to_string);
    let verb = parsed.get("verb").and_then(|v| v.as_str()).unwrap_or("");
    match verb {
        "health" => (simple_ok("health", id.as_deref()), false),
        "ready" => {
            let mut s = String::from("{\"verb\":\"ready\",\"status\":\"ok\",\"ready\":");
            s.push_str(if gateway.is_draining() {
                "false"
            } else {
                "true"
            });
            push_id(&mut s, id.as_deref());
            s.push('}');
            (s, false)
        }
        "stats" => (stats_response(gateway, id.as_deref()), false),
        "shutdown" => {
            // Respond first (the flush happens before the flag is
            // visible to this connection's loop), then drain.
            gateway.begin_drain();
            shutdown.store(true, Ordering::SeqCst);
            (simple_ok("shutdown", id.as_deref()), true)
        }
        "optimize" => (
            optimize_response(gateway, &parsed, id.as_deref(), session, obs),
            false,
        ),
        other => (
            error_response(
                "?",
                id.as_deref(),
                "invalid",
                &format!("unknown verb {other:?}"),
            ),
            false,
        ),
    }
}

fn simple_ok(verb: &str, id: Option<&str>) -> String {
    let mut s = format!("{{\"verb\":\"{verb}\",\"status\":\"ok\"");
    push_id(&mut s, id);
    s.push('}');
    s
}

fn push_id(out: &mut String, id: Option<&str>) {
    if let Some(id) = id {
        out.push_str(",\"id\":");
        write_escaped(out, id);
    }
}

fn error_response(verb: &str, id: Option<&str>, error_type: &str, message: &str) -> String {
    let mut s = format!(
        "{{\"verb\":\"{verb}\",\"status\":\"error\",\"error_type\":\"{error_type}\",\"message\":"
    );
    write_escaped(&mut s, message);
    push_id(&mut s, id);
    s.push('}');
    s
}

fn stats_response(gateway: &Gateway, id: Option<&str>) -> String {
    let st = gateway.stats();
    let mut s = format!(
        "{{\"verb\":\"stats\",\"status\":\"ok\",\"accepted\":{},\"completed\":{},\"failed\":{},\
         \"shed\":{},\"breaker_rejected\":{},\"retried\":{},\"breaker_opens\":{},\"in_flight\":{}",
        st.accepted,
        st.completed,
        st.failed,
        st.shed,
        st.breaker_rejected,
        st.retried,
        st.breaker_opens,
        st.in_flight
    );
    if let Some(cache) = gateway.service().cache() {
        let cs = cache.stats();
        s.push_str(&format!(
            ",\"cache_hits\":{},\"cache_misses\":{},\"cache_bytes\":{}",
            cs.hits,
            cs.misses,
            cache.bytes()
        ));
    }
    push_id(&mut s, id);
    s.push('}');
    s
}

/// Builds and runs one optimize request through the gateway.
fn optimize_response(
    gateway: &Gateway,
    parsed: &JsonValue,
    id: Option<&str>,
    session: &mut Option<Session>,
    obs: &dyn Observer,
) -> String {
    let (req, deadline) = match build_request(parsed) {
        Ok(pair) => pair,
        Err((error_type, message)) => return error_response("optimize", id, error_type, &message),
    };
    match gateway.handle(&req, deadline, session, obs) {
        Ok(outcome) => {
            let mut s = String::from("{\"verb\":\"optimize\",\"status\":\"ok\",\"cost\":");
            write_f64(&mut s, outcome.result.cost);
            s.push_str(",\"cardinality\":");
            write_f64(&mut s, outcome.result.cardinality);
            s.push_str(&format!(
                ",\"relations\":{},\"algorithm\":\"{}\",\"cache_hit\":{}",
                outcome.result.tree.num_relations(),
                algorithm_name(outcome.algorithm),
                outcome.cache_hit
            ));
            if let Some(d) = &outcome.degradation {
                s.push_str(&format!(",\"degraded\":\"{}\"", d.rung.as_str()));
            }
            s.push_str(&format!(
                ",\"elapsed_us\":{}",
                outcome.elapsed.as_micros().min(u128::from(u64::MAX))
            ));
            push_id(&mut s, id);
            s.push('}');
            s
        }
        Err(GatewayError::Rejected(r)) => {
            let mut s = format!(
                "{{\"verb\":\"optimize\",\"status\":\"rejected\",\"error_type\":\"{}\",\
                 \"retry_after_ms\":{}",
                r.kind(),
                r.retry_after().as_millis().max(1)
            );
            push_id(&mut s, id);
            s.push('}');
            s
        }
        Err(GatewayError::Failed(e)) => error_response(
            "optimize",
            id,
            crate::gateway::error_kind(&e),
            &e.to_string(),
        ),
    }
}

/// Extracts a [`ServiceRequest`] + lifecycle deadline from the JSON
/// request, or a typed (`error_type`, message) pair.
#[allow(clippy::type_complexity)]
fn build_request(
    parsed: &JsonValue,
) -> Result<(ServiceRequest, Option<Duration>), (&'static str, String)> {
    let query = parsed
        .get("query")
        .and_then(|v| v.as_str())
        .ok_or_else(|| ("invalid", "missing \"query\" field".to_string()))?;
    let spec = parse_query_text(query).map_err(|m| ("parse", m))?;
    let mut req = ServiceRequest::new(spec);
    if let Some(t) = parsed.get("tenant").and_then(|v| v.as_str()) {
        req = req.with_tenant(t);
    }
    if let Some(p) = parsed.get("priority").and_then(|v| v.as_str()) {
        let p = Priority::parse(p).ok_or_else(|| ("invalid", format!("unknown priority {p:?}")))?;
        req = req.with_priority(p);
    }
    if let Some(a) = parsed.get("algorithm").and_then(|v| v.as_str()) {
        let a =
            Algorithm::parse(a).ok_or_else(|| ("invalid", format!("unknown algorithm {a:?}")))?;
        req = req.with_algorithm(a);
    }
    if let Some(m) = parsed.get("cost_model").and_then(|v| v.as_str()) {
        let m = CostModelId::parse(m)
            .ok_or_else(|| ("invalid", format!("unknown cost model {m:?}")))?;
        req = req.with_cost_model(m);
    }
    let deadline = match parsed.get("deadline_ms").and_then(|v| v.as_u64()) {
        Some(ms) if ms > MAX_DEADLINE_MS => {
            return Err((
                "invalid",
                format!("oversized deadline: {ms} ms exceeds the {MAX_DEADLINE_MS} ms maximum"),
            ))
        }
        Some(ms) => Some(Duration::from_millis(ms)),
        None => None,
    };
    if let Some(ms) = parsed.get("time_budget_ms").and_then(|v| v.as_u64()) {
        req = req.with_time_budget(Duration::from_millis(ms));
    }
    if let Some(c) = parsed.get("cost_budget").and_then(|v| v.as_f64()) {
        req = req.with_cost_budget(c);
    }
    if let Some(b) = parsed.get("memory_budget").and_then(|v| v.as_u64()) {
        req = req.with_memory_budget(usize::try_from(b).unwrap_or(usize::MAX));
    }
    if parsed.get("degrade").and_then(|v| v.as_bool()) == Some(true) {
        req = req.with_degradation();
    }
    Ok((req, deadline))
}

/// Parses inline query text — conjunctive SQL or the native DSL, the
/// same content sniffing as the CLI file loader — into a [`QuerySpec`].
pub fn parse_query_text(text: &str) -> Result<QuerySpec, String> {
    let looks_like_sql = text
        .lines()
        .map(str::trim_start)
        .find(|l| !l.is_empty() && !l.starts_with("--") && !l.starts_with('#'))
        .is_some_and(|l| l.get(..6).is_some_and(|p| p.eq_ignore_ascii_case("select")));
    let parsed = if looks_like_sql {
        joinopt_query::parse_sql(text).map_err(|e| e.to_string())?
    } else {
        joinopt_query::parse(text).map_err(|e| e.to_string())?
    };
    let graph = parsed
        .graph()
        .ok_or_else(|| "query has hyperedges; serve supports simple graphs only".to_string())?;
    QuerySpec::capture(graph, &parsed.catalog).map_err(|e| e.to_string())
}

/// The wire name of a concrete algorithm (the same lower-case ids
/// [`Algorithm::parse`] accepts).
pub fn algorithm_name(a: Algorithm) -> &'static str {
    match a {
        Algorithm::DpSize => "dpsize",
        Algorithm::DpSizeNaive => "dpsize-naive",
        Algorithm::DpSub => "dpsub",
        Algorithm::DpSubUnfiltered => "dpsub-nofilter",
        Algorithm::DpSubCrossProducts => "dpsub-cp",
        Algorithm::DpCcp => "dpccp",
        Algorithm::DpConv => "dpconv",
        Algorithm::DpSizeLeftDeep => "dpsize-leftdeep",
        Algorithm::Idp => "idp",
        Algorithm::SimulatedAnnealing => "sa",
        Algorithm::TopDown => "topdown",
        Algorithm::Goo => "goo",
        Algorithm::Auto => "auto",
    }
}

/// A scripted client for tests and the `--smoke` self-check: connects,
/// sends one line, reads one line.
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl LineClient {
    /// Connects to a TCP server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<LineClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let writer = stream.try_clone()?;
        Ok(LineClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line, returns the parsed response.
    pub fn call(&mut self, request: &str) -> std::io::Result<JsonValue> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        JsonValue::parse(line.trim()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response JSON: {e:?} in {line:?}"),
            )
        })
    }
}

/// Convenience for smoke assertions: a string field of a response.
fn field_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(|f| f.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?} in {v:?}"))
}

/// Convenience for smoke assertions: a bool field of a response.
fn field_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(|f| f.as_bool())
        .ok_or_else(|| format!("missing bool field {key:?} in {v:?}"))
}

/// A fresh chain query whose relation names embed `tag`, so each tag
/// fingerprints (and caches) independently.
fn smoke_chain(tag: u32) -> String {
    let names: Vec<String> = (0..4).map(|i| format!("s{tag}_{i}")).collect();
    let mut q = String::new();
    for (i, n) in names.iter().enumerate() {
        // Cardinalities vary with the tag: canonicalization ignores
        // relation names, so identical statistics would make every tag
        // the same cached query.
        q.push_str(&format!(
            "relation {n} {}\n",
            (100 + 17 * tag as usize) * (i + 1)
        ));
    }
    for w in names.windows(2) {
        q.push_str(&format!("join {} {} 0.1\n", w[0], w[1]));
    }
    q
}

fn smoke_optimize(tag: u32, extra: &str) -> String {
    let mut req = String::from("{\"verb\":\"optimize\"");
    req.push_str(extra);
    req.push_str(",\"query\":");
    write_escaped(&mut req, &smoke_chain(tag));
    req.push('}');
    req
}

/// The `joinopt serve --smoke` self-check: starts a real TCP server in
/// this process, scripts a client through the whole protocol surface —
/// health/ready, cold + warm optimize, typed `parse`/`invalid`/
/// `timeout` errors (including an oversized `deadline_ms`), and, in
/// `--cfg failpoints` builds, an injected worker panic (typed `panic`
/// error, accept loop survives) and the `serve-cache-poison` proof
/// (poisoned fingerprints can only *miss*: the full-encoding check
/// rejects the collision and the recomputed plan costs the same) — then
/// shuts down and verifies the drain completed and the final
/// Prometheus flush is non-empty.
///
/// Returns the transcript of checks performed, or the first failure.
pub fn smoke(prom_path: Option<&std::path::Path>) -> Result<Vec<String>, String> {
    let mut log: Vec<String> = Vec::new();
    let server = Server::bind(ServerConfig {
        prom_path: prom_path.map(std::path::Path::to_path_buf),
        ..ServerConfig::default()
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .ok_or_else(|| "no local addr".to_string())?;
    let handle = std::thread::spawn(move || server.run());
    let mut client = LineClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut call = |req: &str| -> Result<JsonValue, String> {
        client.call(req).map_err(|e| format!("call {req:?}: {e}"))
    };

    let health = call("{\"verb\":\"health\"}")?;
    if field_str(&health, "status")? != "ok" {
        return Err(format!("health not ok: {health:?}"));
    }
    log.push("health: ok".into());
    let ready = call("{\"verb\":\"ready\"}")?;
    if !field_bool(&ready, "ready")? {
        return Err(format!("server not ready: {ready:?}"));
    }
    log.push("ready: true".into());

    let cold = call(&smoke_optimize(0, ""))?;
    if field_str(&cold, "status")? != "ok" || field_bool(&cold, "cache_hit")? {
        return Err(format!("cold optimize wrong: {cold:?}"));
    }
    let warm = call(&smoke_optimize(0, ""))?;
    if !field_bool(&warm, "cache_hit")? {
        return Err(format!("warm optimize missed the cache: {warm:?}"));
    }
    if warm.get("cost").and_then(|c| c.as_f64()) != cold.get("cost").and_then(|c| c.as_f64()) {
        return Err(format!("warm cost diverged: {cold:?} vs {warm:?}"));
    }
    log.push(format!(
        "optimize: cold miss + warm hit agree (algorithm {})",
        field_str(&warm, "algorithm")?
    ));

    let parse_err = call("{\"verb\":\"optimize\",\"query\":\"gibberish\"}")?;
    if field_str(&parse_err, "error_type")? != "parse" {
        return Err(format!("parse error not typed: {parse_err:?}"));
    }
    log.push("typed rejection: parse".into());

    let oversized = call(&smoke_optimize(0, ",\"deadline_ms\":86400000"))?;
    if field_str(&oversized, "error_type")? != "invalid"
        || !field_str(&oversized, "message")?.contains("oversized deadline")
    {
        return Err(format!("oversized deadline not rejected: {oversized:?}"));
    }
    log.push("typed rejection: invalid (oversized deadline)".into());

    let expired = call(&smoke_optimize(0, ",\"deadline_ms\":0"))?;
    if field_str(&expired, "error_type")? != "timeout" {
        return Err(format!("expired deadline not a timeout: {expired:?}"));
    }
    log.push("typed rejection: timeout (expired deadline)".into());

    #[cfg(failpoints)]
    {
        use joinopt_core::failpoint;

        // One injected worker panic per attempt: the request exhausts
        // its retries, surfaces as a typed `panic` error, and the
        // server (catch_unwind isolation) keeps serving.
        failpoint::configure_times(
            "serve-worker-panic",
            joinopt_core::failpoint::FailAction::Panic,
            16,
        );
        let panicked = call(&smoke_optimize(1, ""))?;
        failpoint::clear("serve-worker-panic");
        if field_str(&panicked, "error_type")? != "panic" {
            return Err(format!("injected panic not typed: {panicked:?}"));
        }
        let after = call(&smoke_optimize(1, ""))?;
        if field_str(&after, "status")? != "ok" {
            return Err(format!("server unhealthy after panic: {after:?}"));
        }
        log.push("failpoint serve-worker-panic: typed panic error, server survives".into());

        // Cache-poison proof: while every fingerprint is forced to the
        // same value, colliding entries can only *miss* — the cache's
        // full-encoding verification rejects them — never serve a wrong
        // plan. The repeat recomputes and matches the original cost.
        failpoint::configure(
            "serve-cache-poison",
            joinopt_core::failpoint::FailAction::Error,
        );
        let first = call(&smoke_optimize(2, ""))?;
        let second = call(&smoke_optimize(3, ""))?;
        let repeat = call(&smoke_optimize(2, ""))?;
        failpoint::clear("serve-cache-poison");
        for (name, r) in [("first", &first), ("second", &second), ("repeat", &repeat)] {
            if field_str(r, "status")? != "ok" {
                return Err(format!("poisoned {name} failed: {r:?}"));
            }
        }
        if field_bool(&repeat, "cache_hit")? {
            return Err(format!(
                "poisoned repeat must miss (encoding verification): {repeat:?}"
            ));
        }
        if repeat.get("cost").and_then(|c| c.as_f64()) != first.get("cost").and_then(|c| c.as_f64())
        {
            return Err(format!(
                "poisoned repeat cost diverged: {first:?} vs {repeat:?}"
            ));
        }
        log.push(
            "failpoint serve-cache-poison: collisions only miss, recomputed cost identical".into(),
        );
    }

    let stats = call("{\"verb\":\"stats\"}")?;
    let accepted = stats
        .get("accepted")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("stats missing accepted: {stats:?}"))?;
    if accepted == 0 {
        return Err(format!("stats accepted nothing: {stats:?}"));
    }
    log.push(format!("stats: accepted {accepted}"));

    let bye = call("{\"verb\":\"shutdown\"}")?;
    if field_str(&bye, "status")? != "ok" {
        return Err(format!("shutdown not acknowledged: {bye:?}"));
    }
    let summary = handle
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("server run: {e}"))?;
    if !summary.drained {
        return Err("drain did not complete".to_string());
    }
    if !summary.prometheus.contains("joinopt_serve_accepted_total") {
        return Err("final Prometheus flush missing serve series".to_string());
    }
    if summary.connections < 1 {
        return Err("no connections recorded".to_string());
    }
    log.push(format!(
        "shutdown: drained cleanly, {} connection(s), Prometheus flush {} bytes",
        summary.connections,
        summary.prometheus.len()
    ));
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHAIN4: &str = "relation a 100\\nrelation b 200\\nrelation c 300\\nrelation d 50\\n\
                          join a b 0.1\\njoin b c 0.05\\njoin c d 0.2";

    fn chain4_text() -> String {
        CHAIN4.replace("\\n", "\n")
    }

    fn start_default() -> (
        std::thread::JoinHandle<std::io::Result<ServeSummary>>,
        SocketAddr,
    ) {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        (std::thread::spawn(move || server.run()), addr)
    }

    #[test]
    fn end_to_end_optimize_health_stats_shutdown() {
        let (handle, addr) = start_default();
        let mut client = LineClient::connect(addr).unwrap();

        let health = client.call("{\"verb\":\"health\"}").unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        let ready = client.call("{\"verb\":\"ready\"}").unwrap();
        assert_eq!(ready.get("ready").unwrap().as_bool(), Some(true));

        let mut req = String::from("{\"verb\":\"optimize\",\"id\":\"q1\",\"query\":");
        write_escaped(&mut req, &chain4_text());
        req.push('}');
        let cold = client.call(&req).unwrap();
        assert_eq!(cold.get("status").unwrap().as_str(), Some("ok"), "{cold:?}");
        assert_eq!(cold.get("cache_hit").unwrap().as_bool(), Some(false));
        assert_eq!(cold.get("relations").unwrap().as_u64(), Some(4));
        assert_eq!(cold.get("id").unwrap().as_str(), Some("q1"));
        let warm = client.call(&req).unwrap();
        assert_eq!(warm.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(
            warm.get("cost").unwrap().as_f64(),
            cold.get("cost").unwrap().as_f64()
        );

        let stats = client.call("{\"verb\":\"stats\"}").unwrap();
        assert_eq!(stats.get("completed").unwrap().as_u64(), Some(2));
        assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));

        let bye = client.call("{\"verb\":\"shutdown\"}").unwrap();
        assert_eq!(bye.get("status").unwrap().as_str(), Some("ok"));
        let summary = handle.join().unwrap().unwrap();
        assert!(summary.drained);
        assert_eq!(summary.stats.completed, 2);
        assert_eq!(summary.connections, 1);
        assert!(summary.prometheus.contains("joinopt_serve_accepted_total"));
    }

    #[test]
    fn protocol_rejects_bad_requests_typed() {
        let (handle, addr) = start_default();
        let mut client = LineClient::connect(addr).unwrap();

        let bad_json = client.call("this is not json").unwrap();
        assert_eq!(bad_json.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(
            bad_json.get("error_type").unwrap().as_str(),
            Some("invalid")
        );

        let bad_verb = client.call("{\"verb\":\"frobnicate\"}").unwrap();
        assert_eq!(
            bad_verb.get("error_type").unwrap().as_str(),
            Some("invalid")
        );

        let no_query = client.call("{\"verb\":\"optimize\"}").unwrap();
        assert_eq!(
            no_query.get("error_type").unwrap().as_str(),
            Some("invalid")
        );

        let bad_query = client
            .call("{\"verb\":\"optimize\",\"query\":\"rel rel rel nonsense\"}")
            .unwrap();
        assert_eq!(bad_query.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(bad_query.get("error_type").unwrap().as_str(), Some("parse"));

        let mut oversized =
            String::from("{\"verb\":\"optimize\",\"deadline_ms\":999999999,\"query\":");
        write_escaped(&mut oversized, &chain4_text());
        oversized.push('}');
        let oversized = client.call(&oversized).unwrap();
        assert_eq!(
            oversized.get("error_type").unwrap().as_str(),
            Some("invalid")
        );
        assert!(oversized
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("oversized deadline"));

        // An already-expired deadline is a typed timeout, not a hang.
        let mut expired = String::from("{\"verb\":\"optimize\",\"deadline_ms\":0,\"query\":");
        write_escaped(&mut expired, &chain4_text());
        expired.push('}');
        let expired = client.call(&expired).unwrap();
        assert_eq!(expired.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(expired.get("error_type").unwrap().as_str(), Some("timeout"));

        client.call("{\"verb\":\"shutdown\"}").unwrap();
        let summary = handle.join().unwrap().unwrap();
        assert!(summary.drained);
        assert_eq!(
            summary.stats.failed, 1,
            "only the expired deadline ran and failed"
        );
    }

    #[test]
    fn sql_queries_are_accepted_inline() {
        let (handle, addr) = start_default();
        let mut client = LineClient::connect(addr).unwrap();
        let sql = "SELECT * FROM a, b WHERE a.x = b.x";
        // The SQL frontend defaults unknown statistics; just assert the
        // request parses and optimizes.
        let mut req = String::from("{\"verb\":\"optimize\",\"query\":");
        write_escaped(&mut req, sql);
        req.push('}');
        let resp = client.call(&req).unwrap();
        assert_eq!(resp.get("status").unwrap().as_str(), Some("ok"), "{resp:?}");
        assert_eq!(resp.get("relations").unwrap().as_u64(), Some(2));
        client.call("{\"verb\":\"shutdown\"}").unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn unix_socket_round_trip() {
        let dir = std::env::temp_dir().join(format!("joinopt-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("serve.sock");
        let server = Server::bind(ServerConfig {
            listen: Listen::Unix(sock.clone()),
            ..ServerConfig::default()
        })
        .unwrap();
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run());
        let stream = UnixStream::connect(&sock).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"verb\":\"health\"}\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\""));
        drop(writer);
        drop(reader);
        shutdown.shutdown();
        let summary = handle.join().unwrap().unwrap();
        assert!(summary.drained);
        assert!(!sock.exists(), "socket file cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_query_text_dispatches_and_validates() {
        assert!(parse_query_text(&chain4_text()).is_ok());
        assert!(parse_query_text("SELECT * FROM a, b WHERE a.x = b.x").is_ok());
        assert!(parse_query_text("gibberish").is_err());
        // Byte 6 falls inside the two-byte `é`: the SQL sniff must use
        // a boundary-safe prefix check, not panic on the slice.
        assert!(parse_query_text("aaaaaé = 1").is_err());
        assert!(parse_query_text("sélect * from a").is_err());
        assert_eq!(algorithm_name(Algorithm::DpCcp), "dpccp");
    }
}
