//! `joinopt serve`: a dependency-free long-running server over the
//! [`Gateway`].
//!
//! The server listens on a TCP address or a unix socket and speaks
//! **newline-delimited JSON**: one request object per line, one
//! response object per line, in order, per connection. Each connection
//! gets its own thread and its own pooled optimizer
//! [`Session`](joinopt_core::Session); every optimize request runs the
//! gateway's full hardened lifecycle (shedding → breaker → deadline
//! propagation → retries; see [`crate::gateway`]).
//!
//! ## Protocol verbs
//!
//! | verb       | request fields                                        | response |
//! |------------|-------------------------------------------------------|----------|
//! | `health`   | —                                                     | `status: ok` (liveness) |
//! | `ready`    | —                                                     | `ready: true` unless draining |
//! | `stats`    | —                                                     | gateway + cache counters |
//! | `optimize` | `query` (DSL/SQL text), `id?`, `trace_id?`, `tenant?`, `priority?`, `algorithm?`, `cost_model?`, `deadline_ms?`, `time_budget_ms?`, `cost_budget?`, `memory_budget?`, `degrade?` | plan summary, or a typed rejection/error |
//! | `metrics`  | `format?` (`"json"` default, `"prometheus"`)          | windowed per-(tenant, verb, stage) p50/p99/rate snapshot |
//! | `trace`    | `trace_id`                                            | the retained [`RequestTrace`] for that id, or `not-found` |
//! | `slow`     | —                                                     | the worst-K slowest retained traces, worst first |
//! | `shutdown` | —                                                     | `status: ok`, then graceful drain |
//!
//! Responses carry `status`: `"ok"`, `"rejected"` (gateway refusal
//! with `error_type` ∈ {`shed`, `breaker-open`, `draining`} and a
//! `retry_after_ms` hint) or `"error"` (`error_type` ∈ {`timeout`,
//! `memory`, `panic`, `parse`, `invalid`, …} with a message).
//! `deadline_ms` above [`MAX_DEADLINE_MS`] is rejected as `invalid`
//! before any work happens.
//!
//! ## Correlation ids
//!
//! Every response echoes the client's `id` when one was parseable —
//! including rejections, unknown verbs, and lines that failed JSON
//! parsing outright (a best-effort salvage scan recovers `id`/
//! `trace_id` from malformed lines). Optimize requests additionally
//! carry a `trace_id`: accepted verbatim from the client or minted from
//! a seeded per-server counter, echoed in the response, and usable with
//! the `trace` verb to fetch the request's full stage-span timeline
//! (accept → shed-check → breaker → cache-lookup/optimize per attempt →
//! retry-backoff → respond). Tracing is on by default and tunable via
//! [`TraceConfig`]; disabling it restores the untraced fast path with
//! zero extra clock reads (pinned by `tests/trace_overhead.rs`).
//!
//! ## Shutdown
//!
//! On the `shutdown` verb (or [`ShutdownHandle::shutdown`]) the server
//! stops accepting connections, the gateway begins draining (new
//! requests get typed `draining` rejections), every in-flight request
//! runs to completion, connection threads exit, and the final metrics
//! snapshot — including the `joinopt_serve_*_total` series — is
//! flushed to the configured Prometheus path and returned in the
//! [`ServeSummary`].
//!
//! The `serve-accept` failpoint site fires per accepted connection
//! (when armed the connection is dropped before any read — clients see
//! a reset, the accept loop survives). See `docs/robustness.md`.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use joinopt_core::{Algorithm, Session};
use joinopt_telemetry::json::{write_escaped, JsonObject, JsonValue};
use joinopt_telemetry::{
    MetricsRegistry, Observer, RegistryObserver, RequestTrace, TraceIdMinter, TraceLog,
    WindowConfig, WindowedMetrics,
};

use crate::gateway::{Gateway, GatewayConfig, GatewayError, GatewayStats};
use crate::service::{CostModelId, OptimizerService, Priority, ServiceConfig, ServiceRequest};
use crate::spec::QuerySpec;

/// Largest accepted `deadline_ms` (one hour). Anything larger is a
/// protocol error — an oversized deadline is always a client bug, and
/// admitting it would pin queue slots for an absurd window.
pub const MAX_DEADLINE_MS: u64 = 3_600_000;

/// How often blocked reads and the accept loop re-check the shutdown
/// flag.
const POLL: Duration = Duration::from_millis(10);

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address like `127.0.0.1:7878` (port 0 picks a free port).
    Tcp(String),
    /// A unix-domain socket path (a stale file is replaced).
    Unix(PathBuf),
}

/// Request-tracing and windowed-metrics tuning for the serve path.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Master switch. Off, the request path performs zero extra clock
    /// reads and produces bit-identical plans (pinned in
    /// `tests/trace_overhead.rs`); the `metrics`/`trace`/`slow` verbs
    /// then answer from empty stores.
    pub enabled: bool,
    /// Sizing of the rolling per-(tenant, verb, stage) latency windows
    /// behind the `metrics` verb and `joinopt top`.
    pub window: WindowConfig,
    /// How many finished traces the `trace` verb can look up by id.
    pub recent_capacity: usize,
    /// Worst-K bound of the `slow` verb's slowest-request ring.
    pub slow_capacity: usize,
}

impl Default for TraceConfig {
    /// Tracing on, a 60-second window of one-second buckets, 256 recent
    /// traces, worst 16 slow requests.
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            window: WindowConfig {
                bucket_width_ns: 1_000_000_000,
                buckets: 60,
            },
            recent_capacity: 256,
            slow_capacity: 16,
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub listen: Listen,
    /// Sizing of the underlying [`OptimizerService`] (cache, limits).
    pub service: ServiceConfig,
    /// Gateway hardening (shedding, retries, breaker).
    pub gateway: GatewayConfig,
    /// Request tracing and windowed metrics.
    pub trace: TraceConfig,
    /// How long the final drain may wait for in-flight requests.
    pub drain_timeout: Duration,
    /// When set, the final metrics snapshot is written here in
    /// Prometheus exposition format.
    pub prom_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: Listen::Tcp("127.0.0.1:0".into()),
            service: ServiceConfig::default(),
            gateway: GatewayConfig::default(),
            trace: TraceConfig::default(),
            drain_timeout: Duration::from_secs(30),
            prom_path: None,
        }
    }
}

/// The server's shared observability state: the trace-id minter, the
/// rolling windows and the bounded trace log, all behind locks so every
/// connection thread can feed them.
struct ServeTelemetry {
    enabled: bool,
    minter: TraceIdMinter,
    windows: std::sync::Mutex<WindowedMetrics>,
    traces: std::sync::Mutex<TraceLog>,
}

impl ServeTelemetry {
    fn new(config: &TraceConfig, seed: u64) -> ServeTelemetry {
        ServeTelemetry {
            enabled: config.enabled,
            minter: TraceIdMinter::new(seed),
            windows: std::sync::Mutex::new(WindowedMetrics::new(config.window)),
            traces: std::sync::Mutex::new(TraceLog::new(
                config.recent_capacity,
                config.slow_capacity,
            )),
        }
    }

    fn lock_windows(&self) -> std::sync::MutexGuard<'_, WindowedMetrics> {
        self.windows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_traces(&self) -> std::sync::MutexGuard<'_, TraceLog> {
        self.traces
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Files a finished trace: every stage span (plus a synthetic
    /// `total`) lands in the rolling windows, the trace itself in the
    /// recent/slow log.
    fn record(&self, trace: RequestTrace) {
        {
            let mut windows = self.lock_windows();
            for span in trace.spans() {
                windows.record(
                    &trace.tenant,
                    trace.verb,
                    span.stage,
                    span.end_ns,
                    span.duration_ns(),
                );
            }
            windows.record(
                &trace.tenant,
                trace.verb,
                "total",
                trace.finished_ns,
                trace.total_ns(),
            );
        }
        self.lock_traces().record(trace);
    }
}

/// What a completed serve run looked like.
#[derive(Debug)]
pub struct ServeSummary {
    /// Final gateway counters.
    pub stats: GatewayStats,
    /// Whether the drain completed within the timeout.
    pub drained: bool,
    /// In-flight requests that completed during the drain.
    pub drained_in_flight: usize,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Connections dropped by the `serve-accept` failpoint.
    pub accept_faults: u64,
    /// The final metrics flush in Prometheus exposition format.
    pub prometheus: String,
}

/// Requests the accept loop to stop; usable from any thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Signals the server to drain and exit.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }

    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// The bound-but-not-yet-running server.
pub struct Server {
    config: ServerConfig,
    listener: Listener,
    local_addr: Option<SocketAddr>,
    gateway: Gateway,
    telemetry: ServeTelemetry,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured listener (without accepting yet).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = match &config.listen {
            Listen::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr)?),
            Listen::Unix(path) => {
                // A stale socket file from a dead process would make
                // bind fail with AddrInUse; replace it.
                let _ = std::fs::remove_file(path);
                Listener::Unix(UnixListener::bind(path)?)
            }
        };
        let local_addr = match &listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        };
        let gateway = Gateway::new(
            OptimizerService::new(config.service.clone()),
            config.gateway.clone(),
        );
        let telemetry = ServeTelemetry::new(&config.trace, config.gateway.seed);
        Ok(Server {
            config,
            listener,
            local_addr,
            gateway,
            telemetry,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound TCP address (`None` for unix sockets) — lets callers
    /// bind port 0 and discover the real port.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// A handle that stops the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
        }
    }

    /// Runs until a `shutdown` verb or [`ShutdownHandle::shutdown`],
    /// then drains gracefully and returns the summary.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let registry = MetricsRegistry::new();
        let obs = RegistryObserver::new(&registry);
        let gateway = &self.gateway;
        let telemetry = &self.telemetry;
        let shutdown = &self.shutdown;
        let mut connections = 0u64;
        let mut accept_faults = 0u64;

        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l) => l.set_nonblocking(true)?,
        }

        std::thread::scope(|scope| -> std::io::Result<()> {
            while !shutdown.load(Ordering::SeqCst) {
                let accepted = match &self.listener {
                    Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
                    Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
                };
                match accepted {
                    Ok(stream) => {
                        if joinopt_core::failpoint::check("serve-accept").is_err() {
                            // Injected accept failure: the connection is
                            // dropped before any read, the loop lives on.
                            accept_faults += 1;
                            continue;
                        }
                        connections += 1;
                        let obs = &obs;
                        scope.spawn(move || {
                            let _ = serve_connection(gateway, telemetry, shutdown, stream, obs);
                        });
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        std::thread::sleep(POLL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        // A fatal accept error (e.g. EMFILE) ends the
                        // listen loop; raise the shutdown flag first so
                        // connection threads wind down and the scope's
                        // implicit join cannot hang on a live client.
                        shutdown.store(true, Ordering::SeqCst);
                        return Err(e);
                    }
                }
            }
            // The accept loop is done; the scope now joins every
            // connection thread, each of which finishes its in-flight
            // request (admitted pre-drain) before exiting.
            Ok(())
        })?;

        // Belt and braces: a ShutdownHandle stop skips the verb path.
        if !gateway.is_draining() {
            gateway.begin_drain();
        }
        let drained = gateway.await_drained(self.config.drain_timeout, &obs);
        let mut prometheus = registry.snapshot().to_prometheus();
        if telemetry.enabled {
            // The final flush carries the windowed per-stage series too,
            // so a scrape of the shutdown snapshot sees recent latency.
            let now = gateway.clock().now_ns();
            prometheus.push_str(&telemetry.lock_windows().snapshot(now).to_prometheus());
        }
        if let Some(path) = &self.config.prom_path {
            std::fs::write(path, &prometheus)?;
        }
        if let Listen::Unix(path) = &self.config.listen {
            let _ = std::fs::remove_file(path);
        }
        Ok(ServeSummary {
            stats: gateway.stats(),
            drained: drained.is_ok(),
            drained_in_flight: drained.unwrap_or(0),
            connections,
            accept_faults,
            prometheus,
        })
    }
}

/// One connection's read → dispatch → respond loop.
fn serve_connection(
    gateway: &Gateway,
    telemetry: &ServeTelemetry,
    shutdown: &AtomicBool,
    stream: Stream,
    obs: &dyn Observer,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let mut session: Option<Session> = None;
    let mut line = String::new();
    loop {
        // Close idle connections once draining; a partially read
        // request (non-empty buffer) is always completed and answered.
        if shutdown.load(Ordering::SeqCst) && line.is_empty() {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {
                let text = line.trim().to_string();
                line.clear();
                if text.is_empty() {
                    continue;
                }
                let (response, is_shutdown) =
                    dispatch(gateway, telemetry, shutdown, &text, &mut session, obs);
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                if is_shutdown {
                    return Ok(());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(()), // connection torn down
        }
    }
}

/// The correlation fields every response echoes back: the client's
/// request `id` (when one was parseable) and the request's `trace_id`
/// (client-supplied or server-minted).
#[derive(Debug, Clone, Copy, Default)]
struct Echo<'a> {
    id: Option<&'a str>,
    trace_id: Option<&'a str>,
}

impl Echo<'_> {
    fn apply(self, o: JsonObject) -> JsonObject {
        o.opt_str("id", self.id).opt_str("trace_id", self.trace_id)
    }
}

/// Parses one request line and produces the response line. The second
/// component is `true` when the verb was `shutdown`.
fn dispatch(
    gateway: &Gateway,
    telemetry: &ServeTelemetry,
    shutdown: &AtomicBool,
    text: &str,
    session: &mut Option<Session>,
    obs: &dyn Observer,
) -> (String, bool) {
    let parsed = match JsonValue::parse(text) {
        Ok(v) => v,
        Err(e) => {
            // The line is not JSON, but correlation ids are often still
            // recognizable in it; salvage them so even this error path
            // echoes `id`/`trace_id`.
            let id = salvage_str_field(text, "id");
            let trace_id = salvage_str_field(text, "trace_id");
            let echo = Echo {
                id: id.as_deref(),
                trace_id: trace_id.as_deref(),
            };
            return (
                error_response("?", echo, "invalid", &format!("bad request JSON: {e:?}")),
                false,
            );
        }
    };
    let id = parsed
        .get("id")
        .and_then(|v| v.as_str())
        .map(str::to_string);
    let client_trace = parsed
        .get("trace_id")
        .and_then(|v| v.as_str())
        .map(str::to_string);
    let echo = Echo {
        id: id.as_deref(),
        trace_id: client_trace.as_deref(),
    };
    let verb = parsed.get("verb").and_then(|v| v.as_str()).unwrap_or("");
    match verb {
        "health" => (simple_ok("health", echo), false),
        "ready" => (
            JsonObject::new()
                .str("verb", "ready")
                .str("status", "ok")
                .bool("ready", !gateway.is_draining())
                .finish_with(echo),
            false,
        ),
        "stats" => (stats_response(gateway, echo), false),
        "metrics" => (metrics_response(gateway, telemetry, &parsed, echo), false),
        "trace" => (trace_response(telemetry, &parsed, echo), false),
        "slow" => (slow_response(telemetry, echo), false),
        "shutdown" => {
            // Respond first (the flush happens before the flag is
            // visible to this connection's loop), then drain.
            gateway.begin_drain();
            shutdown.store(true, Ordering::SeqCst);
            (simple_ok("shutdown", echo), true)
        }
        "optimize" => (
            optimize_response(
                gateway,
                telemetry,
                &parsed,
                id.as_deref(),
                client_trace,
                session,
                obs,
            ),
            false,
        ),
        other => (
            error_response("?", echo, "invalid", &format!("unknown verb {other:?}")),
            false,
        ),
    }
}

/// Best-effort extraction of a string field from a line that failed
/// JSON parsing: finds `"key"`, expects `:` and a JSON string, and
/// decodes it with the real parser (escapes included). `None` when the
/// field is absent or hopeless.
fn salvage_str_field(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start().strip_prefix(':')?.trim_start();
    let bytes = rest.as_bytes();
    if bytes.first() != Some(&b'"') {
        return None;
    }
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                return JsonValue::parse(&rest[..=i])
                    .ok()
                    .and_then(|v| v.as_str().map(str::to_string));
            }
            _ => i += 1,
        }
    }
    None
}

trait FinishWith {
    fn finish_with(self, echo: Echo<'_>) -> String;
}

impl FinishWith for JsonObject {
    /// Appends the echoed correlation fields and closes the object —
    /// the one funnel every response line leaves through, so no path
    /// can forget to echo `id`.
    fn finish_with(self, echo: Echo<'_>) -> String {
        echo.apply(self).finish()
    }
}

fn simple_ok(verb: &str, echo: Echo<'_>) -> String {
    JsonObject::new()
        .str("verb", verb)
        .str("status", "ok")
        .finish_with(echo)
}

fn error_response(verb: &str, echo: Echo<'_>, error_type: &str, message: &str) -> String {
    JsonObject::new()
        .str("verb", verb)
        .str("status", "error")
        .str("error_type", error_type)
        .str("message", message)
        .finish_with(echo)
}

fn stats_response(gateway: &Gateway, echo: Echo<'_>) -> String {
    let st = gateway.stats();
    let mut o = JsonObject::new()
        .str("verb", "stats")
        .str("status", "ok")
        .u64("accepted", st.accepted)
        .u64("completed", st.completed)
        .u64("failed", st.failed)
        .u64("shed", st.shed)
        .u64("breaker_rejected", st.breaker_rejected)
        .u64("retried", st.retried)
        .u64("breaker_opens", st.breaker_opens)
        .u64("in_flight", st.in_flight as u64);
    if let Some(cache) = gateway.service().cache() {
        let cs = cache.stats();
        o = o
            .u64("cache_hits", cs.hits)
            .u64("cache_misses", cs.misses)
            .u64("cache_bytes", cache.bytes() as u64);
    }
    o.finish_with(echo)
}

/// The `metrics` verb: the windowed per-(tenant, verb, stage) snapshot,
/// as JSON (default) or Prometheus text (`"format": "prometheus"`).
fn metrics_response(
    gateway: &Gateway,
    telemetry: &ServeTelemetry,
    parsed: &JsonValue,
    echo: Echo<'_>,
) -> String {
    let now = if telemetry.enabled {
        gateway.clock().now_ns()
    } else {
        0
    };
    let snap = telemetry.lock_windows().snapshot(now);
    let o = JsonObject::new()
        .str("verb", "metrics")
        .str("status", "ok")
        .bool("tracing", telemetry.enabled);
    match parsed.get("format").and_then(|v| v.as_str()) {
        Some("prometheus") => o.str("prometheus", &snap.to_prometheus()).finish_with(echo),
        _ => o.raw("window", &snap.to_json()).finish_with(echo),
    }
}

/// The `trace` verb: looks one finished request up by `trace_id`.
fn trace_response(telemetry: &ServeTelemetry, parsed: &JsonValue, echo: Echo<'_>) -> String {
    let Some(wanted) = parsed.get("trace_id").and_then(|v| v.as_str()) else {
        return error_response("trace", echo, "invalid", "missing \"trace_id\" field");
    };
    match telemetry.lock_traces().find(wanted) {
        Some(trace) => JsonObject::new()
            .str("verb", "trace")
            .str("status", "ok")
            .raw("trace", &trace.to_json())
            .finish_with(echo),
        None => error_response(
            "trace",
            echo,
            "not-found",
            &format!("no retained trace with id {wanted:?}"),
        ),
    }
}

/// The `slow` verb: the worst-K slowest requests, worst first.
fn slow_response(telemetry: &ServeTelemetry, echo: Echo<'_>) -> String {
    let traces = telemetry.lock_traces();
    let mut slowest = String::from("[");
    for (i, t) in traces.slowest().iter().enumerate() {
        if i > 0 {
            slowest.push(',');
        }
        slowest.push_str(&t.to_json());
    }
    slowest.push(']');
    JsonObject::new()
        .str("verb", "slow")
        .str("status", "ok")
        .u64("count", traces.slowest().len() as u64)
        .raw("slowest", &slowest)
        .finish_with(echo)
}

/// Builds and runs one optimize request through the gateway, recording
/// a [`RequestTrace`] (accept → lifecycle stages → respond) when
/// tracing is enabled.
fn optimize_response(
    gateway: &Gateway,
    telemetry: &ServeTelemetry,
    parsed: &JsonValue,
    id: Option<&str>,
    client_trace: Option<String>,
    session: &mut Option<Session>,
    obs: &dyn Observer,
) -> String {
    // Accept the client's trace_id or mint one; with tracing disabled
    // nothing is minted and only a client-supplied id is echoed.
    let trace_id = match client_trace {
        Some(t) => Some(t),
        None if telemetry.enabled => Some(telemetry.minter.mint()),
        None => None,
    };
    let echo = Echo {
        id,
        trace_id: trace_id.as_deref(),
    };

    let accept_start = telemetry.enabled.then(|| gateway.clock().now_ns());
    let (req, deadline) = match build_request(parsed) {
        Ok(pair) => pair,
        Err((error_type, message)) => {
            return error_response("optimize", echo, error_type, &message)
        }
    };
    let mut trace = match (accept_start, &trace_id) {
        (Some(t0), Some(tid)) => {
            let mut tr = RequestTrace::new(tid.clone(), &req.tenant, "optimize", t0);
            tr.span("accept", t0, gateway.clock().now_ns());
            Some(tr)
        }
        _ => None,
    };

    let result = gateway.handle_traced(&req, deadline, session, obs, trace.as_mut());
    let respond_start = trace.as_ref().map(|_| gateway.clock().now_ns());

    let (status, response) = match result {
        Ok(outcome) => {
            if let Some(tr) = trace.as_mut() {
                tr.algorithm = Some(algorithm_name(outcome.algorithm));
                tr.cache_hit = Some(outcome.cache_hit);
                tr.degraded = outcome.degradation.as_ref().map(|d| d.rung.as_str());
            }
            let mut o = JsonObject::new()
                .str("verb", "optimize")
                .str("status", "ok")
                .f64("cost", outcome.result.cost)
                .f64("cardinality", outcome.result.cardinality)
                .u64("relations", outcome.result.tree.num_relations() as u64)
                .str("algorithm", algorithm_name(outcome.algorithm))
                .bool("cache_hit", outcome.cache_hit);
            if let Some(d) = &outcome.degradation {
                o = o.str("degraded", d.rung.as_str());
            }
            let elapsed_us = outcome.elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
            ("ok", o.u64("elapsed_us", elapsed_us).finish_with(echo))
        }
        Err(GatewayError::Rejected(r)) => (
            "rejected",
            JsonObject::new()
                .str("verb", "optimize")
                .str("status", "rejected")
                .str("error_type", r.kind())
                .u64(
                    "retry_after_ms",
                    r.retry_after().as_millis().max(1).min(u128::from(u64::MAX)) as u64,
                )
                .finish_with(echo),
        ),
        Err(GatewayError::Failed(e)) => (
            "error",
            error_response(
                "optimize",
                echo,
                crate::gateway::error_kind(&e),
                &e.to_string(),
            ),
        ),
    };

    if let (Some(mut tr), Some(t_resp)) = (trace, respond_start) {
        let now = gateway.clock().now_ns();
        tr.span("respond", t_resp, now);
        tr.finish(status, now);
        telemetry.record(tr);
    }
    response
}

/// Extracts a [`ServiceRequest`] + lifecycle deadline from the JSON
/// request, or a typed (`error_type`, message) pair.
#[allow(clippy::type_complexity)]
fn build_request(
    parsed: &JsonValue,
) -> Result<(ServiceRequest, Option<Duration>), (&'static str, String)> {
    let query = parsed
        .get("query")
        .and_then(|v| v.as_str())
        .ok_or_else(|| ("invalid", "missing \"query\" field".to_string()))?;
    let spec = parse_query_text(query).map_err(|m| ("parse", m))?;
    let mut req = ServiceRequest::new(spec);
    if let Some(t) = parsed.get("tenant").and_then(|v| v.as_str()) {
        req = req.with_tenant(t);
    }
    if let Some(p) = parsed.get("priority").and_then(|v| v.as_str()) {
        let p = Priority::parse(p).ok_or_else(|| ("invalid", format!("unknown priority {p:?}")))?;
        req = req.with_priority(p);
    }
    if let Some(a) = parsed.get("algorithm").and_then(|v| v.as_str()) {
        let a =
            Algorithm::parse(a).ok_or_else(|| ("invalid", format!("unknown algorithm {a:?}")))?;
        req = req.with_algorithm(a);
    }
    if let Some(m) = parsed.get("cost_model").and_then(|v| v.as_str()) {
        let m = CostModelId::parse(m)
            .ok_or_else(|| ("invalid", format!("unknown cost model {m:?}")))?;
        req = req.with_cost_model(m);
    }
    let deadline = match parsed.get("deadline_ms").and_then(|v| v.as_u64()) {
        Some(ms) if ms > MAX_DEADLINE_MS => {
            return Err((
                "invalid",
                format!("oversized deadline: {ms} ms exceeds the {MAX_DEADLINE_MS} ms maximum"),
            ))
        }
        Some(ms) => Some(Duration::from_millis(ms)),
        None => None,
    };
    if let Some(ms) = parsed.get("time_budget_ms").and_then(|v| v.as_u64()) {
        req = req.with_time_budget(Duration::from_millis(ms));
    }
    if let Some(c) = parsed.get("cost_budget").and_then(|v| v.as_f64()) {
        req = req.with_cost_budget(c);
    }
    if let Some(b) = parsed.get("memory_budget").and_then(|v| v.as_u64()) {
        req = req.with_memory_budget(usize::try_from(b).unwrap_or(usize::MAX));
    }
    if parsed.get("degrade").and_then(|v| v.as_bool()) == Some(true) {
        req = req.with_degradation();
    }
    Ok((req, deadline))
}

/// Parses inline query text — conjunctive SQL or the native DSL, the
/// same content sniffing as the CLI file loader — into a [`QuerySpec`].
pub fn parse_query_text(text: &str) -> Result<QuerySpec, String> {
    let looks_like_sql = text
        .lines()
        .map(str::trim_start)
        .find(|l| !l.is_empty() && !l.starts_with("--") && !l.starts_with('#'))
        .is_some_and(|l| l.get(..6).is_some_and(|p| p.eq_ignore_ascii_case("select")));
    let parsed = if looks_like_sql {
        joinopt_query::parse_sql(text).map_err(|e| e.to_string())?
    } else {
        joinopt_query::parse(text).map_err(|e| e.to_string())?
    };
    let graph = parsed
        .graph()
        .ok_or_else(|| "query has hyperedges; serve supports simple graphs only".to_string())?;
    QuerySpec::capture(graph, &parsed.catalog).map_err(|e| e.to_string())
}

/// The wire name of a concrete algorithm (the same lower-case ids
/// [`Algorithm::parse`] accepts).
pub fn algorithm_name(a: Algorithm) -> &'static str {
    match a {
        Algorithm::DpSize => "dpsize",
        Algorithm::DpSizeNaive => "dpsize-naive",
        Algorithm::DpSub => "dpsub",
        Algorithm::DpSubUnfiltered => "dpsub-nofilter",
        Algorithm::DpSubCrossProducts => "dpsub-cp",
        Algorithm::DpCcp => "dpccp",
        Algorithm::DpConv => "dpconv",
        Algorithm::DpSizeLeftDeep => "dpsize-leftdeep",
        Algorithm::Idp => "idp",
        Algorithm::SimulatedAnnealing => "sa",
        Algorithm::TopDown => "topdown",
        Algorithm::Goo => "goo",
        Algorithm::Auto => "auto",
    }
}

/// A scripted client for tests and the `--smoke` self-check: connects,
/// sends one line, reads one line.
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl LineClient {
    /// Connects to a TCP server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<LineClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let writer = stream.try_clone()?;
        Ok(LineClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line, returns the parsed response.
    pub fn call(&mut self, request: &str) -> std::io::Result<JsonValue> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        JsonValue::parse(line.trim()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response JSON: {e:?} in {line:?}"),
            )
        })
    }
}

/// Convenience for smoke assertions: a string field of a response.
fn field_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(|f| f.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?} in {v:?}"))
}

/// Convenience for smoke assertions: a bool field of a response.
fn field_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(|f| f.as_bool())
        .ok_or_else(|| format!("missing bool field {key:?} in {v:?}"))
}

/// A fresh chain query whose relation names embed `tag`, so each tag
/// fingerprints (and caches) independently.
fn smoke_chain(tag: u32) -> String {
    let names: Vec<String> = (0..4).map(|i| format!("s{tag}_{i}")).collect();
    let mut q = String::new();
    for (i, n) in names.iter().enumerate() {
        // Cardinalities vary with the tag: canonicalization ignores
        // relation names, so identical statistics would make every tag
        // the same cached query.
        q.push_str(&format!(
            "relation {n} {}\n",
            (100 + 17 * tag as usize) * (i + 1)
        ));
    }
    for w in names.windows(2) {
        q.push_str(&format!("join {} {} 0.1\n", w[0], w[1]));
    }
    q
}

fn smoke_optimize(tag: u32, extra: &str) -> String {
    let mut req = String::from("{\"verb\":\"optimize\"");
    req.push_str(extra);
    req.push_str(",\"query\":");
    write_escaped(&mut req, &smoke_chain(tag));
    req.push('}');
    req
}

/// The `joinopt serve --smoke` self-check: starts a real TCP server in
/// this process, scripts a client through the whole protocol surface —
/// health/ready, cold + warm optimize, typed `parse`/`invalid`/
/// `timeout` errors (including an oversized `deadline_ms`), and, in
/// `--cfg failpoints` builds, an injected worker panic (typed `panic`
/// error, accept loop survives) and the `serve-cache-poison` proof
/// (poisoned fingerprints can only *miss*: the full-encoding check
/// rejects the collision and the recomputed plan costs the same) — then
/// shuts down and verifies the drain completed and the final
/// Prometheus flush is non-empty.
///
/// Returns the transcript of checks performed, or the first failure.
pub fn smoke(prom_path: Option<&std::path::Path>) -> Result<Vec<String>, String> {
    let mut log: Vec<String> = Vec::new();
    let server = Server::bind(ServerConfig {
        prom_path: prom_path.map(std::path::Path::to_path_buf),
        ..ServerConfig::default()
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .ok_or_else(|| "no local addr".to_string())?;
    let handle = std::thread::spawn(move || server.run());
    let mut client = LineClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut call = |req: &str| -> Result<JsonValue, String> {
        client.call(req).map_err(|e| format!("call {req:?}: {e}"))
    };

    let health = call("{\"verb\":\"health\"}")?;
    if field_str(&health, "status")? != "ok" {
        return Err(format!("health not ok: {health:?}"));
    }
    log.push("health: ok".into());
    let ready = call("{\"verb\":\"ready\"}")?;
    if !field_bool(&ready, "ready")? {
        return Err(format!("server not ready: {ready:?}"));
    }
    log.push("ready: true".into());

    let cold = call(&smoke_optimize(0, ""))?;
    if field_str(&cold, "status")? != "ok" || field_bool(&cold, "cache_hit")? {
        return Err(format!("cold optimize wrong: {cold:?}"));
    }
    let warm = call(&smoke_optimize(0, ""))?;
    if !field_bool(&warm, "cache_hit")? {
        return Err(format!("warm optimize missed the cache: {warm:?}"));
    }
    if warm.get("cost").and_then(|c| c.as_f64()) != cold.get("cost").and_then(|c| c.as_f64()) {
        return Err(format!("warm cost diverged: {cold:?} vs {warm:?}"));
    }
    log.push(format!(
        "optimize: cold miss + warm hit agree (algorithm {})",
        field_str(&warm, "algorithm")?
    ));

    let parse_err = call("{\"verb\":\"optimize\",\"query\":\"gibberish\"}")?;
    if field_str(&parse_err, "error_type")? != "parse" {
        return Err(format!("parse error not typed: {parse_err:?}"));
    }
    log.push("typed rejection: parse".into());

    let oversized = call(&smoke_optimize(0, ",\"deadline_ms\":86400000"))?;
    if field_str(&oversized, "error_type")? != "invalid"
        || !field_str(&oversized, "message")?.contains("oversized deadline")
    {
        return Err(format!("oversized deadline not rejected: {oversized:?}"));
    }
    log.push("typed rejection: invalid (oversized deadline)".into());

    let expired = call(&smoke_optimize(0, ",\"deadline_ms\":0"))?;
    if field_str(&expired, "error_type")? != "timeout" {
        return Err(format!("expired deadline not a timeout: {expired:?}"));
    }
    log.push("typed rejection: timeout (expired deadline)".into());

    #[cfg(failpoints)]
    {
        use joinopt_core::failpoint;

        // One injected worker panic per attempt: the request exhausts
        // its retries, surfaces as a typed `panic` error, and the
        // server (catch_unwind isolation) keeps serving.
        failpoint::configure_times(
            "serve-worker-panic",
            joinopt_core::failpoint::FailAction::Panic,
            16,
        );
        let panicked = call(&smoke_optimize(1, ""))?;
        failpoint::clear("serve-worker-panic");
        if field_str(&panicked, "error_type")? != "panic" {
            return Err(format!("injected panic not typed: {panicked:?}"));
        }
        let after = call(&smoke_optimize(1, ""))?;
        if field_str(&after, "status")? != "ok" {
            return Err(format!("server unhealthy after panic: {after:?}"));
        }
        log.push("failpoint serve-worker-panic: typed panic error, server survives".into());

        // Cache-poison proof: while every fingerprint is forced to the
        // same value, colliding entries can only *miss* — the cache's
        // full-encoding verification rejects them — never serve a wrong
        // plan. The repeat recomputes and matches the original cost.
        failpoint::configure(
            "serve-cache-poison",
            joinopt_core::failpoint::FailAction::Error,
        );
        let first = call(&smoke_optimize(2, ""))?;
        let second = call(&smoke_optimize(3, ""))?;
        let repeat = call(&smoke_optimize(2, ""))?;
        failpoint::clear("serve-cache-poison");
        for (name, r) in [("first", &first), ("second", &second), ("repeat", &repeat)] {
            if field_str(r, "status")? != "ok" {
                return Err(format!("poisoned {name} failed: {r:?}"));
            }
        }
        if field_bool(&repeat, "cache_hit")? {
            return Err(format!(
                "poisoned repeat must miss (encoding verification): {repeat:?}"
            ));
        }
        if repeat.get("cost").and_then(|c| c.as_f64()) != first.get("cost").and_then(|c| c.as_f64())
        {
            return Err(format!(
                "poisoned repeat cost diverged: {first:?} vs {repeat:?}"
            ));
        }
        log.push(
            "failpoint serve-cache-poison: collisions only miss, recomputed cost identical".into(),
        );
    }

    let stats = call("{\"verb\":\"stats\"}")?;
    let accepted = stats
        .get("accepted")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("stats missing accepted: {stats:?}"))?;
    if accepted == 0 {
        return Err(format!("stats accepted nothing: {stats:?}"));
    }
    log.push(format!("stats: accepted {accepted}"));

    // Tracing surface: a client-supplied trace_id is echoed, its full
    // span timeline is retrievable, the windowed metrics carry stage
    // series, and the slow list is populated.
    let traced = call(&smoke_optimize(0, ",\"trace_id\":\"smoke-trace-1\""))?;
    if field_str(&traced, "trace_id")? != "smoke-trace-1" {
        return Err(format!("client trace_id not echoed: {traced:?}"));
    }
    let fetched = call("{\"verb\":\"trace\",\"trace_id\":\"smoke-trace-1\"}")?;
    if field_str(&fetched, "status")? != "ok" || fetched.get("trace").is_none() {
        return Err(format!("trace verb did not return the trace: {fetched:?}"));
    }
    let metrics = call("{\"verb\":\"metrics\"}")?;
    let window = metrics
        .get("window")
        .ok_or_else(|| format!("metrics missing window: {metrics:?}"))?;
    let stage_count = window
        .get("stages")
        .and_then(|s| s.as_array().map(<[JsonValue]>::len))
        .unwrap_or(0);
    if stage_count == 0 {
        return Err(format!(
            "windowed metrics have no stage series: {metrics:?}"
        ));
    }
    let slow = call("{\"verb\":\"slow\"}")?;
    if slow.get("count").and_then(|v| v.as_u64()).unwrap_or(0) == 0 {
        return Err(format!("slow list empty after traffic: {slow:?}"));
    }
    log.push(format!(
        "tracing: trace_id echoed + fetched, {stage_count} windowed stage series, slow list live"
    ));

    let bye = call("{\"verb\":\"shutdown\"}")?;
    if field_str(&bye, "status")? != "ok" {
        return Err(format!("shutdown not acknowledged: {bye:?}"));
    }
    let summary = handle
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("server run: {e}"))?;
    if !summary.drained {
        return Err("drain did not complete".to_string());
    }
    if !summary.prometheus.contains("joinopt_serve_accepted_total") {
        return Err("final Prometheus flush missing serve series".to_string());
    }
    if !summary.prometheus.contains("joinopt_serve_stage_") {
        return Err("final Prometheus flush missing windowed stage series".to_string());
    }
    if summary.connections < 1 {
        return Err("no connections recorded".to_string());
    }
    log.push(format!(
        "shutdown: drained cleanly, {} connection(s), Prometheus flush {} bytes",
        summary.connections,
        summary.prometheus.len()
    ));
    Ok(log)
}

/// Produces the byte-deterministic span-timeline document `ci.sh` diffs
/// against `tests/goldens/serve-span-timeline.json`.
///
/// A manual-clock gateway and a seeded trace-id minter drive
/// [`dispatch`] directly (no sockets, no threads), so every span
/// boundary is an exact virtual-clock reading:
///
/// 1. a **cold** optimize with a server-minted trace id,
/// 2. a **warm** repeat (cache hit) with a client-supplied id,
/// 3. in `--cfg failpoints` builds only — which is what the committed
///    golden is generated from — a request whose first attempt is an
///    injected worker panic, exercising the `retry-backoff` span with
///    the seeded jitter stream while the `serve-slow-request` stall
///    advances the virtual clock per attempt.
///
/// The document ends with the windowed-metrics snapshot aggregated from
/// those traces, pinning the whole trace → window pipeline in one diff.
pub fn span_timeline_demo() -> String {
    let config = ServerConfig::default();
    let service = OptimizerService::new(config.service.clone());
    let gateway = Gateway::with_clock(
        service,
        config.gateway.clone(),
        crate::clock::Clock::manual(),
    );
    let telemetry = ServeTelemetry::new(&config.trace, 42);
    let shutdown = AtomicBool::new(false);
    let obs = joinopt_telemetry::NoopObserver;
    let mut session: Option<Session> = None;
    let mut run = |req: &str| {
        let (response, _) = dispatch(&gateway, &telemetry, &shutdown, req, &mut session, &obs);
        response
    };

    // Spread the requests across virtual time so their span timestamps
    // are visibly distinct in the golden.
    run(&smoke_optimize(0, ""));
    gateway.clock().advance(Duration::from_millis(5));
    run(&smoke_optimize(0, ",\"trace_id\":\"demo-warm\""));
    gateway.clock().advance(Duration::from_millis(5));

    #[cfg(failpoints)]
    {
        use joinopt_core::failpoint;
        failpoint::configure_times(
            "serve-worker-panic",
            joinopt_core::failpoint::FailAction::Panic,
            1,
        );
        failpoint::configure(
            "serve-slow-request",
            joinopt_core::failpoint::FailAction::Error,
        );
        run(&smoke_optimize(1, ",\"trace_id\":\"demo-retry\""));
        failpoint::clear("serve-slow-request");
        failpoint::clear("serve-worker-panic");
    }

    let mut doc = String::from("{\"schema\":\"joinopt-span-timeline-v1\",\n\"traces\":[\n");
    let traces = telemetry.lock_traces();
    let mut ids: Vec<&str> = traces.recent_ids();
    ids.sort_unstable();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            doc.push_str(",\n");
        }
        if let Some(t) = traces.find(id) {
            doc.push_str(&t.to_json());
        }
    }
    doc.push_str("\n],\n\"window\":");
    doc.push_str(
        &telemetry
            .lock_windows()
            .snapshot(gateway.clock().now_ns())
            .to_json(),
    );
    doc.push_str("}\n");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHAIN4: &str = "relation a 100\\nrelation b 200\\nrelation c 300\\nrelation d 50\\n\
                          join a b 0.1\\njoin b c 0.05\\njoin c d 0.2";

    fn chain4_text() -> String {
        CHAIN4.replace("\\n", "\n")
    }

    fn start_default() -> (
        std::thread::JoinHandle<std::io::Result<ServeSummary>>,
        SocketAddr,
    ) {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        (std::thread::spawn(move || server.run()), addr)
    }

    #[test]
    fn end_to_end_optimize_health_stats_shutdown() {
        let (handle, addr) = start_default();
        let mut client = LineClient::connect(addr).unwrap();

        let health = client.call("{\"verb\":\"health\"}").unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        let ready = client.call("{\"verb\":\"ready\"}").unwrap();
        assert_eq!(ready.get("ready").unwrap().as_bool(), Some(true));

        let mut req = String::from("{\"verb\":\"optimize\",\"id\":\"q1\",\"query\":");
        write_escaped(&mut req, &chain4_text());
        req.push('}');
        let cold = client.call(&req).unwrap();
        assert_eq!(cold.get("status").unwrap().as_str(), Some("ok"), "{cold:?}");
        assert_eq!(cold.get("cache_hit").unwrap().as_bool(), Some(false));
        assert_eq!(cold.get("relations").unwrap().as_u64(), Some(4));
        assert_eq!(cold.get("id").unwrap().as_str(), Some("q1"));
        let warm = client.call(&req).unwrap();
        assert_eq!(warm.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(
            warm.get("cost").unwrap().as_f64(),
            cold.get("cost").unwrap().as_f64()
        );

        let stats = client.call("{\"verb\":\"stats\"}").unwrap();
        assert_eq!(stats.get("completed").unwrap().as_u64(), Some(2));
        assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));

        let bye = client.call("{\"verb\":\"shutdown\"}").unwrap();
        assert_eq!(bye.get("status").unwrap().as_str(), Some("ok"));
        let summary = handle.join().unwrap().unwrap();
        assert!(summary.drained);
        assert_eq!(summary.stats.completed, 2);
        assert_eq!(summary.connections, 1);
        assert!(summary.prometheus.contains("joinopt_serve_accepted_total"));
    }

    #[test]
    fn protocol_rejects_bad_requests_typed() {
        let (handle, addr) = start_default();
        let mut client = LineClient::connect(addr).unwrap();

        let bad_json = client.call("this is not json").unwrap();
        assert_eq!(bad_json.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(
            bad_json.get("error_type").unwrap().as_str(),
            Some("invalid")
        );

        let bad_verb = client.call("{\"verb\":\"frobnicate\"}").unwrap();
        assert_eq!(
            bad_verb.get("error_type").unwrap().as_str(),
            Some("invalid")
        );

        let no_query = client.call("{\"verb\":\"optimize\"}").unwrap();
        assert_eq!(
            no_query.get("error_type").unwrap().as_str(),
            Some("invalid")
        );

        let bad_query = client
            .call("{\"verb\":\"optimize\",\"query\":\"rel rel rel nonsense\"}")
            .unwrap();
        assert_eq!(bad_query.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(bad_query.get("error_type").unwrap().as_str(), Some("parse"));

        let mut oversized =
            String::from("{\"verb\":\"optimize\",\"deadline_ms\":999999999,\"query\":");
        write_escaped(&mut oversized, &chain4_text());
        oversized.push('}');
        let oversized = client.call(&oversized).unwrap();
        assert_eq!(
            oversized.get("error_type").unwrap().as_str(),
            Some("invalid")
        );
        assert!(oversized
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("oversized deadline"));

        // An already-expired deadline is a typed timeout, not a hang.
        let mut expired = String::from("{\"verb\":\"optimize\",\"deadline_ms\":0,\"query\":");
        write_escaped(&mut expired, &chain4_text());
        expired.push('}');
        let expired = client.call(&expired).unwrap();
        assert_eq!(expired.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(expired.get("error_type").unwrap().as_str(), Some("timeout"));

        client.call("{\"verb\":\"shutdown\"}").unwrap();
        let summary = handle.join().unwrap().unwrap();
        assert!(summary.drained);
        assert_eq!(
            summary.stats.failed, 1,
            "only the expired deadline ran and failed"
        );
    }

    #[test]
    fn sql_queries_are_accepted_inline() {
        let (handle, addr) = start_default();
        let mut client = LineClient::connect(addr).unwrap();
        let sql = "SELECT * FROM a, b WHERE a.x = b.x";
        // The SQL frontend defaults unknown statistics; just assert the
        // request parses and optimizes.
        let mut req = String::from("{\"verb\":\"optimize\",\"query\":");
        write_escaped(&mut req, sql);
        req.push('}');
        let resp = client.call(&req).unwrap();
        assert_eq!(resp.get("status").unwrap().as_str(), Some("ok"), "{resp:?}");
        assert_eq!(resp.get("relations").unwrap().as_u64(), Some(2));
        client.call("{\"verb\":\"shutdown\"}").unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn unix_socket_round_trip() {
        let dir = std::env::temp_dir().join(format!("joinopt-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("serve.sock");
        let server = Server::bind(ServerConfig {
            listen: Listen::Unix(sock.clone()),
            ..ServerConfig::default()
        })
        .unwrap();
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run());
        let stream = UnixStream::connect(&sock).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"verb\":\"health\"}\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\""));
        drop(writer);
        drop(reader);
        shutdown.shutdown();
        let summary = handle.join().unwrap().unwrap();
        assert!(summary.drained);
        assert!(!sock.exists(), "socket file cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_query_text_dispatches_and_validates() {
        assert!(parse_query_text(&chain4_text()).is_ok());
        assert!(parse_query_text("SELECT * FROM a, b WHERE a.x = b.x").is_ok());
        assert!(parse_query_text("gibberish").is_err());
        // Byte 6 falls inside the two-byte `é`: the SQL sniff must use
        // a boundary-safe prefix check, not panic on the slice.
        assert!(parse_query_text("aaaaaé = 1").is_err());
        assert!(parse_query_text("sélect * from a").is_err());
        assert_eq!(algorithm_name(Algorithm::DpCcp), "dpccp");
    }

    /// A socket-less harness: a manual-clock gateway + telemetry pair
    /// driven straight through [`dispatch`].
    fn dispatch_harness(trace: TraceConfig) -> (Gateway, ServeTelemetry) {
        let config = ServerConfig {
            trace,
            ..ServerConfig::default()
        };
        let service = OptimizerService::new(config.service.clone());
        let gateway = Gateway::with_clock(
            service,
            config.gateway.clone(),
            crate::clock::Clock::manual(),
        );
        let telemetry = ServeTelemetry::new(&config.trace, 7);
        (gateway, telemetry)
    }

    fn call_dispatch(gateway: &Gateway, telemetry: &ServeTelemetry, req: &str) -> JsonValue {
        let shutdown = AtomicBool::new(false);
        let mut session = None;
        let (response, _) = dispatch(
            gateway,
            telemetry,
            &shutdown,
            req,
            &mut session,
            &joinopt_telemetry::NoopObserver,
        );
        JsonValue::parse(&response).unwrap_or_else(|e| panic!("bad response {response:?}: {e:?}"))
    }

    fn optimize_req(extra: &str) -> String {
        let mut req = String::from("{\"verb\":\"optimize\",\"query\":");
        write_escaped(&mut req, &chain4_text());
        req.push_str(extra);
        req.push('}');
        req
    }

    #[test]
    fn every_error_path_echoes_id() {
        let (gateway, telemetry) = dispatch_harness(TraceConfig::default());
        let expect_id = |resp: &JsonValue, who: &str| {
            assert_eq!(
                resp.get("id").and_then(|v| v.as_str()),
                Some("req-9"),
                "{who} lost the id: {resp:?}"
            );
        };

        // Unknown verb.
        let r = call_dispatch(
            &gateway,
            &telemetry,
            "{\"verb\":\"frobnicate\",\"id\":\"req-9\"}",
        );
        assert_eq!(
            r.get("error_type").and_then(|v| v.as_str()),
            Some("invalid")
        );
        expect_id(&r, "unknown verb");

        // Missing query.
        let r = call_dispatch(
            &gateway,
            &telemetry,
            "{\"verb\":\"optimize\",\"id\":\"req-9\"}",
        );
        assert_eq!(
            r.get("error_type").and_then(|v| v.as_str()),
            Some("invalid")
        );
        expect_id(&r, "missing query");

        // Oversized deadline.
        let r = call_dispatch(
            &gateway,
            &telemetry,
            &optimize_req(",\"id\":\"req-9\",\"deadline_ms\":999999999"),
        );
        assert_eq!(
            r.get("error_type").and_then(|v| v.as_str()),
            Some("invalid")
        );
        expect_id(&r, "oversized deadline");

        // Parse failure inside the query text.
        let r = call_dispatch(
            &gateway,
            &telemetry,
            "{\"verb\":\"optimize\",\"id\":\"req-9\",\"query\":\"gibberish\"}",
        );
        assert_eq!(r.get("error_type").and_then(|v| v.as_str()), Some("parse"));
        expect_id(&r, "parse failure");

        // Gateway rejection (draining).
        gateway.begin_drain();
        let r = call_dispatch(&gateway, &telemetry, &optimize_req(",\"id\":\"req-9\""));
        assert_eq!(r.get("status").and_then(|v| v.as_str()), Some("rejected"));
        assert_eq!(
            r.get("error_type").and_then(|v| v.as_str()),
            Some("draining")
        );
        expect_id(&r, "draining rejection");
        assert!(
            r.get("trace_id").and_then(|v| v.as_str()).is_some(),
            "rejections still carry a trace_id: {r:?}"
        );
    }

    #[test]
    fn unparseable_lines_salvage_id_and_trace_id() {
        let (gateway, telemetry) = dispatch_harness(TraceConfig::default());
        // Truncated JSON — unclosed object — still echoes both ids.
        let r = call_dispatch(
            &gateway,
            &telemetry,
            "{\"verb\":\"optimize\",\"id\":\"sal-1\",\"trace_id\":\"tr-1\",\"query\":\"unterminated",
        );
        assert_eq!(r.get("status").and_then(|v| v.as_str()), Some("error"));
        assert_eq!(
            r.get("error_type").and_then(|v| v.as_str()),
            Some("invalid")
        );
        assert_eq!(r.get("id").and_then(|v| v.as_str()), Some("sal-1"));
        assert_eq!(r.get("trace_id").and_then(|v| v.as_str()), Some("tr-1"));

        // Salvage decodes escapes with the real parser.
        assert_eq!(
            salvage_str_field("{\"id\": \"a\\\"b\\\\c\", oops", "id").as_deref(),
            Some("a\"b\\c")
        );
        // Absent, non-string, or unterminated fields salvage nothing.
        assert_eq!(salvage_str_field("{\"other\":\"x\"}", "id"), None);
        assert_eq!(salvage_str_field("{\"id\": 42}", "id"), None);
        assert_eq!(salvage_str_field("{\"id\": \"never-closed", "id"), None);
    }

    #[test]
    fn trace_ids_are_minted_fetched_and_windowed() {
        let (gateway, telemetry) = dispatch_harness(TraceConfig::default());
        let cold = call_dispatch(&gateway, &telemetry, &optimize_req(",\"id\":\"c1\""));
        assert_eq!(cold.get("status").and_then(|v| v.as_str()), Some("ok"));
        let minted = cold
            .get("trace_id")
            .and_then(|v| v.as_str())
            .expect("server mints a trace_id")
            .to_string();

        // The trace verb returns the full span timeline for that id.
        let fetched = call_dispatch(
            &gateway,
            &telemetry,
            &format!("{{\"verb\":\"trace\",\"trace_id\":\"{minted}\"}}"),
        );
        assert_eq!(fetched.get("status").and_then(|v| v.as_str()), Some("ok"));
        let trace = fetched.get("trace").expect("trace body");
        assert_eq!(
            trace.get("trace_id").and_then(|v| v.as_str()),
            Some(minted.as_str())
        );
        let spans = trace
            .get("spans")
            .and_then(|s| s.as_array().map(<[JsonValue]>::to_vec))
            .expect("spans array");
        let stages: Vec<_> = spans
            .iter()
            .filter_map(|s| s.get("stage").and_then(|v| v.as_str()))
            .collect();
        for stage in [
            "accept",
            "shed-check",
            "breaker",
            "cache-lookup",
            "optimize",
            "respond",
        ] {
            assert!(stages.contains(&stage), "missing stage {stage}: {stages:?}");
        }

        // A warm repeat records cache-lookup but no optimize span.
        let warm = call_dispatch(
            &gateway,
            &telemetry,
            &optimize_req(",\"trace_id\":\"warm-1\""),
        );
        assert_eq!(warm.get("cache_hit").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(
            warm.get("trace_id").and_then(|v| v.as_str()),
            Some("warm-1")
        );
        let warm_trace = call_dispatch(
            &gateway,
            &telemetry,
            "{\"verb\":\"trace\",\"trace_id\":\"warm-1\"}",
        );
        let body = warm_trace.get("trace").expect("trace body");
        assert_eq!(body.get("cache_hit").and_then(|v| v.as_bool()), Some(true));
        let warm_stages: Vec<_> = body
            .get("spans")
            .and_then(|s| s.as_array().map(<[JsonValue]>::to_vec))
            .unwrap()
            .iter()
            .filter_map(|s| s.get("stage").and_then(|v| v.as_str()).map(str::to_string))
            .collect();
        assert!(warm_stages.iter().any(|s| s == "cache-lookup"));
        assert!(!warm_stages.iter().any(|s| s == "optimize"));

        // Unknown ids are typed not-found.
        let missing = call_dispatch(
            &gateway,
            &telemetry,
            "{\"verb\":\"trace\",\"trace_id\":\"nope\",\"id\":\"t9\"}",
        );
        assert_eq!(
            missing.get("error_type").and_then(|v| v.as_str()),
            Some("not-found")
        );
        assert_eq!(missing.get("id").and_then(|v| v.as_str()), Some("t9"));

        // The windowed metrics carry per-stage series for the traffic.
        let metrics = call_dispatch(&gateway, &telemetry, "{\"verb\":\"metrics\"}");
        assert_eq!(metrics.get("tracing").and_then(|v| v.as_bool()), Some(true));
        let stages = metrics
            .get("window")
            .and_then(|w| w.get("stages"))
            .and_then(|s| s.as_array().map(<[JsonValue]>::to_vec))
            .expect("windowed stages");
        assert!(!stages.is_empty());
        let prom = call_dispatch(
            &gateway,
            &telemetry,
            "{\"verb\":\"metrics\",\"format\":\"prometheus\"}",
        );
        assert!(prom
            .get("prometheus")
            .and_then(|v| v.as_str())
            .unwrap()
            .contains("joinopt_serve_stage_window_count"));

        // And the slow list knows about the requests.
        let slow = call_dispatch(&gateway, &telemetry, "{\"verb\":\"slow\"}");
        assert_eq!(slow.get("count").and_then(|v| v.as_u64()), Some(2));
    }

    #[test]
    fn disabled_tracing_mints_nothing_but_echoes_client_ids() {
        let (gateway, telemetry) = dispatch_harness(TraceConfig {
            enabled: false,
            ..TraceConfig::default()
        });
        let r = call_dispatch(&gateway, &telemetry, &optimize_req(""));
        assert_eq!(r.get("status").and_then(|v| v.as_str()), Some("ok"));
        assert!(
            r.get("trace_id").is_none(),
            "disabled tracing must not mint ids: {r:?}"
        );
        // A client-supplied trace_id is still echoed (pure string work).
        let r = call_dispatch(
            &gateway,
            &telemetry,
            &optimize_req(",\"trace_id\":\"cli-1\""),
        );
        assert_eq!(r.get("trace_id").and_then(|v| v.as_str()), Some("cli-1"));
        // But nothing is recorded behind it.
        let fetched = call_dispatch(
            &gateway,
            &telemetry,
            "{\"verb\":\"trace\",\"trace_id\":\"cli-1\"}",
        );
        assert_eq!(
            fetched.get("error_type").and_then(|v| v.as_str()),
            Some("not-found")
        );
        let metrics = call_dispatch(&gateway, &telemetry, "{\"verb\":\"metrics\"}");
        assert_eq!(
            metrics.get("tracing").and_then(|v| v.as_bool()),
            Some(false)
        );
        let stages = metrics
            .get("window")
            .and_then(|w| w.get("stages"))
            .and_then(|s| s.as_array().map(<[JsonValue]>::len));
        assert_eq!(stages, Some(0));
    }

    #[test]
    fn responses_round_trip_hostile_ids() {
        let (gateway, telemetry) = dispatch_harness(TraceConfig::default());
        let hostile = "he said \"quote\"\\\n\ttab\u{1}";
        let mut req = String::from("{\"verb\":\"optimize\",\"id\":");
        write_escaped(&mut req, hostile);
        req.push_str(",\"trace_id\":");
        write_escaped(&mut req, hostile);
        req.push_str(",\"query\":");
        write_escaped(&mut req, &chain4_text());
        req.push('}');
        // call_dispatch parse-proves the response is valid JSON even
        // with the hostile id spliced in; the fields round-trip exactly.
        let r = call_dispatch(&gateway, &telemetry, &req);
        assert_eq!(r.get("id").and_then(|v| v.as_str()), Some(hostile));
        assert_eq!(r.get("trace_id").and_then(|v| v.as_str()), Some(hostile));
    }

    #[test]
    fn span_timeline_demo_is_byte_deterministic() {
        let a = span_timeline_demo();
        let b = span_timeline_demo();
        assert_eq!(a, b, "span timeline must be run-to-run identical");
        let doc = JsonValue::parse(&a).expect("timeline is one JSON document");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("joinopt-span-timeline-v1")
        );
        let traces = doc
            .get("traces")
            .and_then(|t| t.as_array().map(<[JsonValue]>::to_vec))
            .expect("traces array");
        assert!(traces.len() >= 2, "cold + warm at minimum");
        assert!(doc.get("window").and_then(|w| w.get("stages")).is_some());
    }
}
