//! Canonical query fingerprints: a stable 128-bit identity for a query
//! that is invariant under relation renumbering and edge reordering.
//!
//! ## Canonicalization
//!
//! The conformance harness proves (metamorphic renumbering invariance)
//! that relabeling a query's relations does not change its optimum —
//! so a plan cache keyed by the *labeled* spec would miss every hit a
//! renumbered resubmission should get. The fingerprint therefore hashes
//! a **canonical encoding** computed in three steps:
//!
//! 1. **Color refinement** (Weisfeiler–Leman style): every relation
//!    starts with a color derived from its cardinality bits and degree,
//!    then repeatedly absorbs the sorted multiset of
//!    `(selectivity bits, neighbor color)` contributions over its
//!    incident edges. After `n` rounds colors are stable and label-free.
//! 2. **Canonical BFS**: from every relation of minimal color, relations
//!    are placed greedily one at a time; the next placement is the
//!    candidate with the lexicographically least label-free key — its
//!    sorted list of `(position of placed neighbor, selectivity bits)`
//!    attachments, then its refined color. Ties after that key are
//!    between relations the refinement cannot distinguish (in the
//!    generated families, automorphic images), so any choice yields the
//!    same encoding.
//! 3. **Encoding**: the `u64` stream `[n, m, cardinality bits in
//!    canonical order, sorted canonical edge triples (u, v, selectivity
//!    bits)]`. The lexicographically least encoding over all starts is
//!    the canonical form; the fingerprint is a 128-bit hash of it (two
//!    independently seeded 64-bit folds).
//!
//! ## Soundness
//!
//! The cache never trusts the hash alone: entries store the full
//! canonical encoding and compare it on lookup, so a canonicalization
//! instability (or a 128-bit collision) can only cause a missed hit,
//! never a wrong one. Plans are stored in canonical index space and
//! remapped through the requester's canonical order on a hit, which
//! makes a warm lookup of the *same* spec bit-identical to its cold run.

use std::sync::atomic::{AtomicU64, Ordering};

use joinopt_qgraph::RelIdx;

use crate::spec::QuerySpec;

/// Process-wide count of canonicalizations ever computed. The
/// disabled-cache guard test pins this to zero across a service batch
/// with no cache configured — the fingerprint path (and its
/// allocations) must be skipped entirely, in the spirit of the
/// zero-overhead observer.
static FINGERPRINTS: AtomicU64 = AtomicU64::new(0);

/// Total canonical fingerprints computed by this process.
pub fn fingerprints_computed() -> u64 {
    FINGERPRINTS.load(Ordering::Relaxed)
}

/// SplitMix64's odd constant; decorrelates sequential folds.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Stafford "mix13" finalizer: the bijective avalanche at SplitMix64's
/// core (also used by the conformance generator).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds one value into a running hash.
fn fold(h: u64, v: u64) -> u64 {
    mix(h.wrapping_add(GOLDEN_GAMMA) ^ v)
}

/// A 128-bit canonical query fingerprint.
///
/// Displayed (and compared) as 32 hex digits. Two specs that differ
/// only by relation renumbering or edge reordering share a fingerprint;
/// distinct queries collide with probability ~2⁻¹²⁸ (and the plan cache
/// verifies the full encoding anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// The result of canonicalizing a [`QuerySpec`].
#[derive(Debug, Clone)]
pub struct CanonicalForm {
    /// The canonical `u64` encoding stream (see the module docs).
    pub encoding: Vec<u64>,
    /// `order[p]` is the original index of the relation at canonical
    /// position `p`.
    pub order: Vec<RelIdx>,
    /// 128-bit hash of the encoding.
    pub fingerprint: Fingerprint,
}

/// Computes the canonical form of a spec. `O(n·(n + m) + s·n·m)` for
/// `s` minimal-color starts — trivial at the 64-relation cap.
pub fn canonicalize(spec: &QuerySpec) -> CanonicalForm {
    FINGERPRINTS.fetch_add(1, Ordering::Relaxed);
    let n = spec.num_relations();
    let edges = spec.edges();
    let sels = spec.catalog().selectivities();
    let cards = spec.catalog().cardinalities();

    // Adjacency with selectivity bits on each incident edge.
    let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for (e, &(u, v)) in edges.iter().enumerate() {
        let bits = sels[e].to_bits();
        adj[u].push((v, bits));
        adj[v].push((u, bits));
    }

    // 1. Color refinement.
    let mut colors: Vec<u64> = (0..n)
        .map(|v| fold(mix(cards[v].to_bits()), adj[v].len() as u64))
        .collect();
    let mut contribs: Vec<u64> = Vec::new();
    for _round in 0..n {
        let mut next = Vec::with_capacity(n);
        for v in 0..n {
            contribs.clear();
            contribs.extend(adj[v].iter().map(|&(u, bits)| fold(mix(bits), colors[u])));
            contribs.sort_unstable();
            let mut h = mix(colors[v]);
            for &c in &contribs {
                h = fold(h, c);
            }
            next.push(h);
        }
        colors = next;
    }

    // 2 + 3. Canonical BFS from every minimal-color start; keep the
    // lexicographically least encoding.
    let mut best: Option<(Vec<u64>, Vec<RelIdx>)> = None;
    let min_color = colors.iter().copied().min().unwrap_or(0);
    let starts: Vec<usize> = (0..n).filter(|&v| colors[v] == min_color).collect();
    for &start in starts.iter().take(n.max(1)) {
        let order = place_from(start, n, &adj, &colors);
        let encoding = encode(spec, &order);
        match &best {
            Some((enc, _)) if *enc <= encoding => {}
            _ => best = Some((encoding, order)),
        }
    }
    let (encoding, order) = best.unwrap_or_else(|| (encode(spec, &[]), Vec::new()));

    // Two independently seeded folds over the encoding → 128 bits.
    let mut hi = mix(0x6A6F_696E_6F70_7431); // "joinopt1"
    let mut lo = mix(0x6A6F_696E_6F70_7432); // "joinopt2"
    for &w in &encoding {
        hi = fold(hi, w);
        lo = fold(lo, w.rotate_left(32));
    }
    CanonicalForm {
        encoding,
        order,
        fingerprint: Fingerprint { hi, lo },
    }
}

/// A placement candidate: sorted (placed-neighbor position, selectivity
/// bits) key, the candidate's refinement color, and the candidate.
type PlacementChoice = (Vec<(usize, u64)>, u64, usize);

/// Greedy canonical placement starting at `start` (see module docs).
fn place_from(start: usize, n: usize, adj: &[Vec<(usize, u64)>], colors: &[u64]) -> Vec<RelIdx> {
    let mut order: Vec<RelIdx> = Vec::with_capacity(n);
    let mut pos: Vec<Option<usize>> = vec![None; n];
    order.push(start);
    pos[start] = Some(0);
    let mut key_buf: Vec<(usize, u64)> = Vec::new();
    while order.len() < n {
        // Candidates attached to the placed prefix; on a disconnected
        // component boundary, fall back to every unplaced relation.
        let attached: Vec<usize> = (0..n)
            .filter(|&v| pos[v].is_none() && adj[v].iter().any(|&(u, _)| pos[u].is_some()))
            .collect();
        let candidates = if attached.is_empty() {
            (0..n).filter(|&v| pos[v].is_none()).collect()
        } else {
            attached
        };
        let mut chosen: Option<PlacementChoice> = None;
        for v in candidates {
            key_buf.clear();
            key_buf.extend(
                adj[v]
                    .iter()
                    .filter_map(|&(u, bits)| pos[u].map(|p| (p, bits))),
            );
            key_buf.sort_unstable();
            let better = match &chosen {
                None => true,
                Some((key, color, _)) => (&key_buf, colors[v]) < (key, *color),
            };
            if better {
                chosen = Some((key_buf.clone(), colors[v], v));
            }
        }
        if let Some((_, _, v)) = chosen {
            pos[v] = Some(order.len());
            order.push(v);
        } else {
            break; // unreachable: candidates is non-empty while order < n
        }
    }
    order
}

/// The canonical encoding of `spec` under a placement `order`
/// (`order[p]` = original index at canonical position `p`).
fn encode(spec: &QuerySpec, order: &[RelIdx]) -> Vec<u64> {
    let n = spec.num_relations();
    let m = spec.num_edges();
    let mut pos: Vec<usize> = vec![0; n];
    for (p, &v) in order.iter().enumerate() {
        pos[v] = p;
    }
    let mut enc = Vec::with_capacity(2 + n + 3 * m);
    enc.push(n as u64);
    enc.push(m as u64);
    let cards = spec.catalog().cardinalities();
    for &v in order {
        enc.push(cards[v].to_bits());
    }
    let sels = spec.catalog().selectivities();
    let mut triples: Vec<(u64, u64, u64)> = spec
        .edges()
        .iter()
        .enumerate()
        .map(|(e, &(u, v))| {
            let (a, b) = (pos[u].min(pos[v]), pos[u].max(pos[v]));
            (a as u64, b as u64, sels[e].to_bits())
        })
        .collect();
    triples.sort_unstable();
    for (a, b, s) in triples {
        enc.push(a);
        enc.push(b);
        enc.push(s);
    }
    enc
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_cost::{workload, Catalog};
    use joinopt_qgraph::{bfs, GraphKind, QueryGraph};
    use joinopt_relset::XorShift64;

    fn spec_of(graph: &QueryGraph, catalog: &Catalog) -> QuerySpec {
        QuerySpec::capture(graph, catalog).unwrap()
    }

    /// Renumbers a workload by `order` exactly like the conformance
    /// harness does (selectivities keep their edge ids).
    fn renumbered(graph: &QueryGraph, catalog: &Catalog, order: &[usize]) -> QuerySpec {
        let n = graph.num_relations();
        let g2 = bfs::renumber(graph, order);
        let mut c2 = Catalog::with_shape(n, graph.num_edges());
        for (new, &old) in order.iter().enumerate() {
            c2.set_cardinality(new, catalog.cardinality(old)).unwrap();
        }
        for e in 0..graph.num_edges() {
            c2.set_selectivity(e, catalog.selectivity(e)).unwrap();
        }
        spec_of(&g2, &c2)
    }

    #[test]
    fn renumbering_is_invariant_across_families() {
        for kind in GraphKind::ALL {
            for seed in 0..8u64 {
                let w = workload::family_workload(kind, 7, seed);
                let base = canonicalize(&spec_of(&w.graph, &w.catalog));
                let mut rng = XorShift64::seed_from_u64(seed ^ 0xABCD);
                let mut order: Vec<usize> = (0..7).collect();
                rng.shuffle(&mut order);
                let permuted = canonicalize(&renumbered(&w.graph, &w.catalog, &order));
                assert_eq!(
                    base.fingerprint, permuted.fingerprint,
                    "{kind:?} seed {seed} order {order:?}"
                );
                assert_eq!(base.encoding, permuted.encoding);
            }
        }
    }

    #[test]
    fn edge_reordering_is_invariant() {
        let w = workload::family_workload(GraphKind::Clique, 6, 3);
        let base = canonicalize(&spec_of(&w.graph, &w.catalog));
        // Rebuild the same graph inserting edges in reverse order,
        // carrying each selectivity with its edge.
        let mut g2 = QueryGraph::new(6).unwrap();
        let mut c2 = Catalog::with_shape(6, w.graph.num_edges());
        for (i, edge) in w.graph.edges().iter().enumerate().rev() {
            let id = g2.add_edge(edge.u, edge.v).unwrap();
            c2.set_selectivity(id, w.catalog.selectivity(i)).unwrap();
        }
        for v in 0..6 {
            c2.set_cardinality(v, w.catalog.cardinality(v)).unwrap();
        }
        let reordered = canonicalize(&spec_of(&g2, &c2));
        assert_eq!(base.fingerprint, reordered.fingerprint);
        assert_eq!(base.encoding, reordered.encoding);
    }

    #[test]
    fn distinct_workloads_do_not_collide() {
        use std::collections::HashMap;
        let mut seen: HashMap<Fingerprint, Vec<u64>> = HashMap::new();
        for kind in GraphKind::ALL {
            for n in 2..=8 {
                for seed in 0..4u64 {
                    let w = workload::family_workload(kind, n, seed);
                    let c = canonicalize(&spec_of(&w.graph, &w.catalog));
                    if let Some(enc) = seen.get(&c.fingerprint) {
                        assert_eq!(enc, &c.encoding, "hash collision on distinct encodings");
                    }
                    seen.insert(c.fingerprint, c.encoding);
                }
            }
        }
    }

    #[test]
    fn statistics_changes_change_the_fingerprint() {
        let w = workload::family_workload(GraphKind::Chain, 5, 0);
        let base = canonicalize(&spec_of(&w.graph, &w.catalog));
        let mut tweaked = w.catalog.clone();
        tweaked
            .set_cardinality(2, w.catalog.cardinality(2) + 1.0)
            .unwrap();
        let c = canonicalize(&spec_of(&w.graph, &tweaked));
        assert_ne!(base.fingerprint, c.fingerprint);
    }

    #[test]
    fn order_maps_canonical_positions_to_original_indices() {
        let w = workload::family_workload(GraphKind::Star, 5, 2);
        let c = canonicalize(&spec_of(&w.graph, &w.catalog));
        let mut sorted = c.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).collect::<Vec<_>>());
        assert!(fingerprints_computed() > 0);
    }
}
