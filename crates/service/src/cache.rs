//! The sharded plan cache: canonical fingerprint → detached plan tree.
//!
//! Keys are `(fingerprint, algorithm, cost-model id)` — the fingerprint
//! identifies the canonical query, and because different algorithms
//! (and different cost models) legitimately produce different trees or
//! costs for the same query, both are part of the identity. Every entry
//! additionally stores the full canonical encoding, which lookups
//! compare word-for-word: a 128-bit collision or a canonicalization
//! instability can therefore only *miss*, never serve a wrong plan.
//!
//! Plans are stored in canonical index space. On a hit the tree's scan
//! leaves are remapped through the requester's canonical order, so a
//! warm lookup of the same spec returns cost bits and plan shape
//! bit-identical to its cold run (the `joinopt fuzz --cache` oracle).
//! For a hit across two *isomorphic but differently labeled* specs the
//! served plan is the canonical entry's — equal in canonical space, and
//! correct for the requester, though its cost may differ from that
//! requester's own cold run in the last float bits (the estimator
//! multiplies the same factors in a different order; see the
//! conformance crate's renumbering tolerance).
//!
//! Eviction is LRU under an **exact** byte budget: each shard owns
//! `total/shards` bytes (the remainder spread one byte each over the
//! first shards, so shard budgets sum to exactly the configured total),
//! and an insert evicts least-recently-used entries until its shard is
//! back under budget. Entry sizes use a deterministic formula, so the
//! accounting is reproducible across runs and platforms.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use joinopt_core::Algorithm;
use joinopt_plan::JoinTree;
use joinopt_qgraph::RelIdx;
use joinopt_telemetry::{Event, Observer};

use crate::fingerprint::Fingerprint;

/// Plan-cache sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total byte budget across all shards (exact; see module docs).
    pub byte_budget: usize,
    /// Number of independently locked shards.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            byte_budget: 8 << 20, // 8 MiB
            shards: 16,
        }
    }
}

/// Point-in-time cache statistics (monotonic counters plus occupancy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a plan.
    pub hits: u64,
    /// Lookups that found nothing (or failed encoding verification).
    pub misses: u64,
    /// Successful inserts.
    pub stores: u64,
    /// Entries evicted to honor the byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
}

/// A plan served from the cache, already remapped into the requester's
/// relation numbering.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPlan {
    /// The join tree (scan leaves carry the requester's indices).
    pub tree: JoinTree,
    /// Total plan cost, bit-identical to the stored run's.
    pub cost: f64,
    /// Result cardinality, bit-identical to the stored run's.
    pub cardinality: f64,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    fp: Fingerprint,
    algorithm: Algorithm,
    model: &'static str,
}

struct Entry {
    /// Canonical encoding, verified on every hit.
    encoding: Vec<u64>,
    /// Plan tree in canonical index space.
    tree: JoinTree,
    cost: f64,
    cardinality: f64,
    bytes: usize,
    last_used: u64,
}

struct Shard {
    budget: usize,
    bytes: usize,
    clock: u64,
    entries: HashMap<Key, Entry>,
}

/// The sharded plan cache. All methods take `&self`; shards are
/// individually locked and the counters are atomics, so a cache is
/// shared freely across service workers.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
}

/// Fixed per-entry overhead charged on top of the payload (map slot,
/// key, bookkeeping).
const ENTRY_OVERHEAD: usize = 96;
/// Bytes charged per plan-tree node (scan or join).
const NODE_BYTES: usize = 48;

/// The deterministic size formula entries are charged with.
fn entry_bytes(encoding_len: usize, tree: &JoinTree) -> usize {
    let nodes = tree.num_relations() + tree.num_joins();
    ENTRY_OVERHEAD + encoding_len * 8 + nodes * NODE_BYTES
}

/// Rebuilds `tree` with every scan leaf's relation index mapped through
/// `map`.
fn remap(tree: &JoinTree, map: &dyn Fn(RelIdx) -> RelIdx) -> JoinTree {
    match tree {
        JoinTree::Scan {
            relation,
            cardinality,
        } => JoinTree::Scan {
            relation: map(*relation),
            cardinality: *cardinality,
        },
        JoinTree::Join {
            left,
            right,
            cardinality,
            cost,
        } => JoinTree::Join {
            left: Box::new(remap(left, map)),
            right: Box::new(remap(right, map)),
            cardinality: *cardinality,
            cost: *cost,
        },
    }
}

impl PlanCache {
    /// An empty cache. Shard count is clamped to at least 1; each shard
    /// gets `byte_budget / shards` bytes with the remainder spread one
    /// byte each over the first shards, so the shard budgets sum to
    /// exactly `byte_budget`.
    pub fn new(config: CacheConfig) -> PlanCache {
        let shards = config.shards.max(1);
        let base = config.byte_budget / shards;
        let remainder = config.byte_budget % shards;
        PlanCache {
            shards: (0..shards)
                .map(|i| {
                    Mutex::new(Shard {
                        budget: base + usize::from(i < remainder),
                        bytes: 0,
                        clock: 0,
                        entries: HashMap::new(),
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, fp: Fingerprint) -> &Mutex<Shard> {
        &self.shards[(fp.lo as usize) % self.shards.len()]
    }

    fn lock(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
        match shard.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up a plan. `encoding` is the requester's canonical encoding
    /// (verified against the entry's) and `order` its canonical order
    /// (`order[p]` = requester index at canonical position `p`), used to
    /// remap the stored canonical-space tree. Emits
    /// [`Event::CacheLookup`] when `obs` is enabled.
    pub fn lookup_observed(
        &self,
        fp: Fingerprint,
        algorithm: Algorithm,
        model: &'static str,
        encoding: &[u64],
        order: &[RelIdx],
        obs: &dyn Observer,
    ) -> Option<CachedPlan> {
        let key = Key {
            fp,
            algorithm,
            model,
        };
        let mut shard = Self::lock(self.shard_of(fp));
        shard.clock += 1;
        let clock = shard.clock;
        let found = match shard.entries.get_mut(&key) {
            Some(entry) if entry.encoding == encoding => {
                entry.last_used = clock;
                Some(CachedPlan {
                    tree: remap(&entry.tree, &|p| order[p]),
                    cost: entry.cost,
                    cardinality: entry.cardinality,
                })
            }
            _ => None,
        };
        drop(shard);
        let hit = found.is_some();
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        if obs.enabled() {
            obs.on_event(Event::CacheLookup { hit });
        }
        found
    }

    /// [`PlanCache::lookup_observed`] without telemetry.
    pub fn lookup(
        &self,
        fp: Fingerprint,
        algorithm: Algorithm,
        model: &'static str,
        encoding: &[u64],
        order: &[RelIdx],
    ) -> Option<CachedPlan> {
        self.lookup_observed(
            fp,
            algorithm,
            model,
            encoding,
            order,
            &joinopt_telemetry::NoopObserver,
        )
    }

    /// Stores a plan. `tree` carries the inserter's relation indices and
    /// is converted to canonical space through `order` before storage.
    /// An entry larger than its shard's whole budget is not stored;
    /// otherwise least-recently-used entries are evicted until the shard
    /// is back under budget. Emits [`Event::CacheStore`] and one
    /// [`Event::CacheEvict`] per eviction when `obs` is enabled.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_observed(
        &self,
        fp: Fingerprint,
        algorithm: Algorithm,
        model: &'static str,
        encoding: &[u64],
        order: &[RelIdx],
        tree: &JoinTree,
        cost: f64,
        cardinality: f64,
        obs: &dyn Observer,
    ) {
        let key = Key {
            fp,
            algorithm,
            model,
        };
        // Invert the requester's canonical order: pos[original] = p.
        let mut pos: Vec<usize> = vec![0; order.len()];
        for (p, &v) in order.iter().enumerate() {
            pos[v] = p;
        }
        let canonical_tree = remap(tree, &|v| pos[v]);
        let bytes = entry_bytes(encoding.len(), &canonical_tree);

        let mut shard = Self::lock(self.shard_of(fp));
        if bytes > shard.budget {
            return; // would never fit; leave the cache untouched
        }
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(old) = shard.entries.remove(&key) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        shard.entries.insert(
            key,
            Entry {
                encoding: encoding.to_vec(),
                tree: canonical_tree,
                cost,
                cardinality,
                bytes,
                last_used: clock,
            },
        );
        let mut evicted: Vec<usize> = Vec::new();
        while shard.bytes > shard.budget {
            let victim = shard
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(e) = shard.entries.remove(&victim) {
                shard.bytes -= e.bytes;
                evicted.push(e.bytes);
            }
        }
        drop(shard);
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.evictions
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        if obs.enabled() {
            // Global resident total after this shard settled (the shard
            // lock is released, so this re-locks without deadlock).
            let total_bytes = self.bytes();
            obs.on_event(Event::CacheStore {
                entry_bytes: bytes,
                total_bytes,
            });
            for entry_bytes in evicted {
                obs.on_event(Event::CacheEvict {
                    entry_bytes,
                    total_bytes,
                });
            }
        }
    }

    /// [`PlanCache::insert_observed`] without telemetry.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &self,
        fp: Fingerprint,
        algorithm: Algorithm,
        model: &'static str,
        encoding: &[u64],
        order: &[RelIdx],
        tree: &JoinTree,
        cost: f64,
        cardinality: f64,
    ) {
        self.insert_observed(
            fp,
            algorithm,
            model,
            encoding,
            order,
            tree,
            cost,
            cardinality,
            &joinopt_telemetry::NoopObserver,
        );
    }

    /// Bytes currently resident across all shards.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).bytes).sum()
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::lock(s).entries.len())
            .sum()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent-enough snapshot of the counters plus occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.bytes(),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(i: u64) -> Fingerprint {
        Fingerprint { hi: i, lo: i }
    }

    fn scan(relation: usize) -> JoinTree {
        JoinTree::Scan {
            relation,
            cardinality: 100.0,
        }
    }

    /// A tree of `joins + 1` scans, sized deterministically.
    fn tree_with(joins: usize) -> JoinTree {
        let mut t = scan(0);
        for i in 1..=joins {
            t = JoinTree::Join {
                left: Box::new(t),
                right: Box::new(scan(i)),
                cardinality: 10.0,
                cost: 10.0,
            };
        }
        t
    }

    #[test]
    fn entry_size_formula_is_deterministic() {
        let t = tree_with(2); // 3 scans + 2 joins = 5 nodes
        assert_eq!(entry_bytes(4, &t), 96 + 32 + 5 * 48);
    }

    #[test]
    fn eviction_honors_the_byte_budget_exactly() {
        let t = tree_with(0); // 1 node → 96 + 8*enc + 48
        let enc = [1u64];
        let one = entry_bytes(enc.len(), &t); // 152
                                              // Budget fits exactly two entries; the third insert must evict
                                              // the least recently used and land exactly back at 2×.
        let cache = PlanCache::new(CacheConfig {
            byte_budget: 2 * one,
            shards: 1,
        });
        let order = [0usize];
        cache.insert(fp(1), Algorithm::DpCcp, "cout", &enc, &order, &t, 1.0, 1.0);
        assert_eq!(cache.bytes(), one);
        cache.insert(fp(2), Algorithm::DpCcp, "cout", &enc, &order, &t, 1.0, 1.0);
        assert_eq!(cache.bytes(), 2 * one);
        assert_eq!(cache.stats().evictions, 0);
        // Touch fp(1) so fp(2) is the LRU victim.
        assert!(cache
            .lookup(fp(1), Algorithm::DpCcp, "cout", &enc, &order)
            .is_some());
        cache.insert(fp(3), Algorithm::DpCcp, "cout", &enc, &order, &t, 1.0, 1.0);
        assert_eq!(cache.bytes(), 2 * one, "budget is exact, never exceeded");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(
            cache
                .lookup(fp(2), Algorithm::DpCcp, "cout", &enc, &order)
                .is_none(),
            "LRU entry was the victim"
        );
        assert!(cache
            .lookup(fp(1), Algorithm::DpCcp, "cout", &enc, &order)
            .is_some());
        assert!(cache
            .lookup(fp(3), Algorithm::DpCcp, "cout", &enc, &order)
            .is_some());
    }

    #[test]
    fn shard_budgets_sum_to_the_total_exactly() {
        let cache = PlanCache::new(CacheConfig {
            byte_budget: 1003,
            shards: 16,
        });
        let total: usize = cache.shards.iter().map(|s| PlanCache::lock(s).budget).sum();
        assert_eq!(total, 1003);
    }

    #[test]
    fn oversized_entries_are_rejected_outright() {
        let cache = PlanCache::new(CacheConfig {
            byte_budget: 10,
            shards: 1,
        });
        let t = tree_with(1);
        cache.insert(fp(1), Algorithm::DpCcp, "cout", &[1], &[0, 1], &t, 1.0, 1.0);
        assert_eq!(cache.bytes(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn encoding_mismatch_is_a_miss_not_a_wrong_hit() {
        let cache = PlanCache::new(CacheConfig::default());
        let t = tree_with(0);
        let order = [0usize];
        cache.insert(
            fp(9),
            Algorithm::DpCcp,
            "cout",
            &[1, 2],
            &order,
            &t,
            1.0,
            1.0,
        );
        // Same fingerprint, different encoding: must miss.
        assert!(cache
            .lookup(fp(9), Algorithm::DpCcp, "cout", &[1, 3], &order)
            .is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
    }

    #[test]
    fn keys_separate_algorithms_and_models() {
        let cache = PlanCache::new(CacheConfig::default());
        let t = tree_with(0);
        let order = [0usize];
        cache.insert(fp(5), Algorithm::DpCcp, "cout", &[1], &order, &t, 1.0, 1.0);
        assert!(cache
            .lookup(fp(5), Algorithm::Goo, "cout", &[1], &order)
            .is_none());
        assert!(cache
            .lookup(fp(5), Algorithm::DpCcp, "nlj", &[1], &order)
            .is_none());
        assert!(cache
            .lookup(fp(5), Algorithm::DpCcp, "cout", &[1], &order)
            .is_some());
    }

    #[test]
    fn hits_remap_through_the_requesters_order() {
        let cache = PlanCache::new(CacheConfig::default());
        // Inserter's numbering: scan(1) ⋈ scan(0); canonical order [1, 0]
        // (position 0 holds original 1).
        let t = JoinTree::Join {
            left: Box::new(scan(1)),
            right: Box::new(scan(0)),
            cardinality: 10.0,
            cost: 10.0,
        };
        cache.insert(
            fp(7),
            Algorithm::DpCcp,
            "cout",
            &[42],
            &[1, 0],
            &t,
            10.0,
            10.0,
        );
        // A requester whose canonical order is [0, 1] gets the leaves
        // renamed: canonical position 0 → its relation 0.
        let hit = cache
            .lookup(fp(7), Algorithm::DpCcp, "cout", &[42], &[0, 1])
            .unwrap();
        let expect = JoinTree::Join {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            cardinality: 10.0,
            cost: 10.0,
        };
        assert_eq!(hit.tree, expect);
        // The original inserter gets its own tree back verbatim.
        let same = cache
            .lookup(fp(7), Algorithm::DpCcp, "cout", &[42], &[1, 0])
            .unwrap();
        assert_eq!(same.tree, t);
    }
}
