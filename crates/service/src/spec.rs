//! Owned, hashable forms of a query: [`QuerySpec`] and [`CatalogSpec`].
//!
//! The borrowed pair `(&QueryGraph, &Catalog)` stays the zero-cost fast
//! path for embedded use. A service needs more: requests that can be
//! queued, compared, hashed and cached, which means owning the data and
//! giving the `f64` statistics a total equality (`to_bits` — catalogs
//! reject non-finite values on construction, so bit equality is value
//! equality with no NaN corner).

use std::hash::{Hash, Hasher};

use joinopt_core::OptimizeError;
use joinopt_cost::Catalog;
use joinopt_qgraph::{QueryGraph, RelIdx};

/// Owned statistics: one cardinality per relation, one selectivity per
/// join edge (indexed like the edges of the owning [`QuerySpec`]).
///
/// Equality and hashing go through [`f64::to_bits`], so two specs are
/// equal exactly when they would rebuild bit-identical [`Catalog`]s.
#[derive(Debug, Clone)]
pub struct CatalogSpec {
    cardinalities: Vec<f64>,
    selectivities: Vec<f64>,
}

impl CatalogSpec {
    /// The relation cardinalities, indexed by relation.
    pub fn cardinalities(&self) -> &[f64] {
        &self.cardinalities
    }

    /// The edge selectivities, indexed like the spec's edge list.
    pub fn selectivities(&self) -> &[f64] {
        &self.selectivities
    }
}

impl PartialEq for CatalogSpec {
    fn eq(&self, other: &Self) -> bool {
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        bits(&self.cardinalities) == bits(&other.cardinalities)
            && bits(&self.selectivities) == bits(&other.selectivities)
    }
}

impl Eq for CatalogSpec {}

impl Hash for CatalogSpec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for x in &self.cardinalities {
            x.to_bits().hash(state);
        }
        for x in &self.selectivities {
            x.to_bits().hash(state);
        }
    }
}

/// An owned query: relation count, join edges and statistics.
///
/// A `QuerySpec` is the cacheable/queueable form of the borrowed
/// `(&QueryGraph, &Catalog)` pair — construction validates the shapes
/// against each other once, so [`QuerySpec::instantiate`] cannot fail
/// for shape reasons. Edge *order* is preserved (selectivities are
/// indexed by edge id), but does not affect the canonical fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QuerySpec {
    relations: usize,
    edges: Vec<(RelIdx, RelIdx)>,
    catalog: CatalogSpec,
}

impl QuerySpec {
    /// Captures a borrowed graph + catalog pair into an owned spec.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::Cost`] when the catalog's shape does not
    /// match the graph.
    pub fn capture(graph: &QueryGraph, catalog: &Catalog) -> Result<QuerySpec, OptimizeError> {
        catalog.check_shape(graph)?;
        Ok(QuerySpec {
            relations: graph.num_relations(),
            edges: graph.edges().iter().map(|e| (e.u, e.v)).collect(),
            catalog: CatalogSpec {
                cardinalities: catalog.cardinalities().to_vec(),
                selectivities: catalog.selectivities().to_vec(),
            },
        })
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations
    }

    /// Number of join edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The join edges in spec order (each normalized `u < v`).
    pub fn edges(&self) -> &[(RelIdx, RelIdx)] {
        &self.edges
    }

    /// The owned statistics.
    pub fn catalog(&self) -> &CatalogSpec {
        &self.catalog
    }

    /// Rebuilds the borrowed types the algorithms consume.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::Graph`] / [`OptimizeError::Cost`] when
    /// the spec is malformed (only reachable for specs not built via
    /// [`QuerySpec::capture`], which validates on entry).
    pub fn instantiate(&self) -> Result<(QueryGraph, Catalog), OptimizeError> {
        let graph = QueryGraph::from_edges(self.relations, self.edges.iter().copied())?;
        let mut catalog = Catalog::with_shape(self.relations, self.edges.len());
        for (i, &card) in self.catalog.cardinalities.iter().enumerate() {
            catalog.set_cardinality(i, card)?;
        }
        for (e, &sel) in self.catalog.selectivities.iter().enumerate() {
            catalog.set_selectivity(e, sel)?;
        }
        Ok((graph, catalog))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_cost::workload;
    use joinopt_qgraph::GraphKind;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(spec: &QuerySpec) -> u64 {
        let mut h = DefaultHasher::new();
        spec.hash(&mut h);
        h.finish()
    }

    #[test]
    fn capture_round_trips_bit_exactly() {
        let w = workload::family_workload(GraphKind::Star, 6, 7);
        let spec = QuerySpec::capture(&w.graph, &w.catalog).unwrap();
        let (graph, catalog) = spec.instantiate().unwrap();
        assert_eq!(graph.num_relations(), w.graph.num_relations());
        assert_eq!(graph.edges(), w.graph.edges());
        for i in 0..graph.num_relations() {
            assert_eq!(
                catalog.cardinality(i).to_bits(),
                w.catalog.cardinality(i).to_bits()
            );
        }
        for e in 0..graph.num_edges() {
            assert_eq!(
                catalog.selectivity(e).to_bits(),
                w.catalog.selectivity(e).to_bits()
            );
        }
    }

    #[test]
    fn equality_and_hash_track_the_statistics() {
        let w = workload::family_workload(GraphKind::Chain, 5, 1);
        let a = QuerySpec::capture(&w.graph, &w.catalog).unwrap();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));

        let mut tweaked = w.catalog.clone();
        tweaked.set_cardinality(0, 123.0).unwrap();
        let c = QuerySpec::capture(&w.graph, &tweaked).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn capture_rejects_shape_mismatch() {
        let w = workload::family_workload(GraphKind::Chain, 5, 1);
        let other = workload::family_workload(GraphKind::Clique, 5, 1);
        assert!(QuerySpec::capture(&w.graph, &other.catalog).is_err());
    }
}
