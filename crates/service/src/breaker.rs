//! A per-tenant circuit breaker with the classic
//! closed → open → half-open state machine.
//!
//! The gateway keeps one breaker per tenant. While **closed**, requests
//! flow and consecutive failures are counted; at
//! [`BreakerConfig::failure_threshold`] the breaker **opens** and the
//! tenant's requests are rejected instantly (a typed rejection carrying
//! the remaining cooldown as a `Retry-After` hint), protecting the
//! worker pool from a tenant whose queries reliably fail and shortening
//! the failure feedback loop for the client. After
//! [`BreakerConfig::cooldown`] the first admission becomes a
//! **half-open probe**: exactly one request is let through; if it (and
//! any further probes, up to [`BreakerConfig::success_threshold`]
//! successes) succeeds the breaker closes, and any probe failure
//! re-opens it for a fresh cooldown.
//!
//! The breaker itself is clock-free: every time-dependent entry point
//! takes `now_ns` from the caller's [`Clock`](crate::Clock), so unit
//! tests pin exact cooldown boundaries with zero sleeps.

use std::time::Duration;

/// Tuning for one circuit breaker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing a probe.
    pub cooldown: Duration,
    /// Probe successes (while half-open) needed to close.
    pub success_threshold: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(250),
            success_threshold: 1,
        }
    }
}

/// The externally visible breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, failures are counted.
    Closed,
    /// Tripped: requests are rejected until the cooldown elapses.
    Open,
    /// Probing: limited requests test whether the tenant recovered.
    HalfOpen,
}

/// What the breaker decided about one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Run the request (possibly as a half-open probe). The caller
    /// must report the result via `on_success`/`on_failure`.
    Allow,
    /// Fail fast; `retry_after` is the suggested client backoff (the
    /// remaining cooldown, or a fraction of it while a probe is out).
    Reject {
        /// Suggested wait before the tenant retries.
        retry_after: Duration,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed {
        consecutive_failures: u32,
    },
    Open {
        opened_at_ns: u64,
    },
    HalfOpen {
        successes: u32,
        probe_in_flight: bool,
    },
}

/// One tenant's breaker. Time comes in as `now_ns` (nanoseconds on the
/// gateway's clock); the struct never reads a clock itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: State,
}

impl CircuitBreaker {
    /// A closed breaker under `config`.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: State::Closed {
                consecutive_failures: 0,
            },
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        match self.state {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Decides one admission at time `now_ns`. An open breaker whose
    /// cooldown has elapsed transitions to half-open and admits the
    /// caller as the probe; a half-open breaker admits one probe at a
    /// time. Every `Allow` obligates the caller to report the result
    /// via `on_success`, `on_failure` or `on_neutral`.
    pub fn admit(&mut self, now_ns: u64) -> BreakerDecision {
        let cooldown_ns = u64::try_from(self.config.cooldown.as_nanos()).unwrap_or(u64::MAX);
        match self.state {
            State::Closed { .. } => BreakerDecision::Allow,
            State::Open { opened_at_ns } => {
                let elapsed = now_ns.saturating_sub(opened_at_ns);
                if elapsed >= cooldown_ns {
                    self.state = State::HalfOpen {
                        successes: 0,
                        probe_in_flight: true,
                    };
                    BreakerDecision::Allow
                } else {
                    BreakerDecision::Reject {
                        retry_after: Duration::from_nanos(cooldown_ns - elapsed),
                    }
                }
            }
            State::HalfOpen {
                successes,
                probe_in_flight,
            } => {
                if probe_in_flight {
                    // A probe is already out; come back once it lands.
                    BreakerDecision::Reject {
                        retry_after: self.config.cooldown / 2,
                    }
                } else {
                    self.state = State::HalfOpen {
                        successes,
                        probe_in_flight: true,
                    };
                    BreakerDecision::Allow
                }
            }
        }
    }

    /// Reports a success for an admitted request.
    pub fn on_success(&mut self) {
        match self.state {
            State::Closed { .. } => {
                self.state = State::Closed {
                    consecutive_failures: 0,
                };
            }
            State::HalfOpen { successes, .. } => {
                let successes = successes + 1;
                if successes >= self.config.success_threshold {
                    self.state = State::Closed {
                        consecutive_failures: 0,
                    };
                } else {
                    self.state = State::HalfOpen {
                        successes,
                        probe_in_flight: false,
                    };
                }
            }
            // A request admitted while closed can land after a
            // concurrent failure already opened the breaker; the late
            // success does not shorten the cooldown.
            State::Open { .. } => {}
        }
    }

    /// Reports an admitted request that ended with an outcome the
    /// breaker does not count — e.g. a tripped per-request memory or
    /// cost budget. Releases the half-open probe slot (the breaker
    /// stays half-open for the next probe) without touching failure
    /// or success counts; every `Allow` must be resolved through
    /// exactly one of `on_success`, `on_failure` or `on_neutral`, or
    /// a leaked probe slot would reject the tenant forever.
    pub fn on_neutral(&mut self) {
        if let State::HalfOpen { successes, .. } = self.state {
            self.state = State::HalfOpen {
                successes,
                probe_in_flight: false,
            };
        }
    }

    /// Reports a failure for an admitted request at time `now_ns`.
    /// Returns `true` when this failure transitioned the breaker to
    /// open (the caller emits `ServeBreakerOpen` on that edge).
    pub fn on_failure(&mut self, now_ns: u64) -> bool {
        match self.state {
            State::Closed {
                consecutive_failures,
            } => {
                let consecutive_failures = consecutive_failures + 1;
                if consecutive_failures >= self.config.failure_threshold {
                    self.state = State::Open {
                        opened_at_ns: now_ns,
                    };
                    true
                } else {
                    self.state = State::Closed {
                        consecutive_failures,
                    };
                    false
                }
            }
            State::HalfOpen { .. } => {
                self.state = State::Open {
                    opened_at_ns: now_ns,
                };
                true
            }
            State::Open { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
            success_threshold: 1,
        })
    }

    #[test]
    fn closed_opens_on_consecutive_failures_only() {
        let mut b = breaker();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_failure(0));
        assert!(!b.on_failure(MS));
        // A success resets the consecutive count.
        b.on_success();
        assert!(!b.on_failure(2 * MS));
        assert!(!b.on_failure(3 * MS));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.on_failure(4 * MS), "third consecutive failure opens");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_rejects_with_remaining_cooldown_then_probes() {
        let mut b = breaker();
        for i in 0..3 {
            b.on_failure(i * MS);
        }
        // Opened at t=2ms; at t=42ms, 60ms of the 100ms cooldown left.
        match b.admit(42 * MS) {
            BreakerDecision::Reject { retry_after } => {
                assert_eq!(retry_after, Duration::from_millis(60));
            }
            BreakerDecision::Allow => panic!("open breaker must reject"),
        }
        // Cooldown elapses at t=102ms: the next admission is the probe.
        assert_eq!(b.admit(102 * MS), BreakerDecision::Allow);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // While the probe is out, others are rejected.
        assert!(matches!(b.admit(103 * MS), BreakerDecision::Reject { .. }));
    }

    #[test]
    fn half_open_probe_success_closes() {
        let mut b = breaker();
        for i in 0..3 {
            b.on_failure(i);
        }
        assert_eq!(b.admit(200 * MS), BreakerDecision::Allow);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(201 * MS), BreakerDecision::Allow);
    }

    #[test]
    fn half_open_probe_failure_reopens_for_a_fresh_cooldown() {
        let mut b = breaker();
        for i in 0..3 {
            b.on_failure(i);
        }
        assert_eq!(b.admit(200 * MS), BreakerDecision::Allow);
        assert!(b.on_failure(200 * MS), "probe failure re-opens");
        assert_eq!(b.state(), BreakerState::Open);
        // Fresh cooldown from t=200ms: still rejecting at t=250ms.
        assert!(matches!(b.admit(250 * MS), BreakerDecision::Reject { .. }));
        assert_eq!(b.admit(300 * MS), BreakerDecision::Allow);
    }

    #[test]
    fn success_threshold_above_one_needs_multiple_probes() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(10),
            success_threshold: 2,
        });
        assert!(b.on_failure(0));
        assert_eq!(b.admit(20 * MS), BreakerDecision::Allow);
        b.on_success();
        assert_eq!(b.state(), BreakerState::HalfOpen, "one of two successes");
        assert_eq!(b.admit(21 * MS), BreakerDecision::Allow);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn neutral_probe_outcome_releases_the_slot_without_reopening() {
        let mut b = breaker();
        for i in 0..3 {
            b.on_failure(i);
        }
        assert_eq!(b.admit(200 * MS), BreakerDecision::Allow);
        // The probe ends with an uncounted outcome (e.g. a tripped
        // memory budget): the slot frees, the state stays half-open.
        b.on_neutral();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // The next admission gets the probe slot — no permanent
        // lockout — and its success closes the breaker.
        assert_eq!(b.admit(201 * MS), BreakerDecision::Allow);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        // Neutral while closed or open is a no-op.
        b.on_neutral();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn late_success_after_open_does_not_close() {
        let mut b = breaker();
        for i in 0..3 {
            b.on_failure(i);
        }
        b.on_success();
        assert_eq!(b.state(), BreakerState::Open);
    }
}
