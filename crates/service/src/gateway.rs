//! The server gateway: the hardened request lifecycle between a
//! protocol frontend and the [`OptimizerService`].
//!
//! Every `joinopt serve` request — and every request of the chaos
//! harness, which drives this same type without sockets — passes
//! through one [`Gateway::handle`] call:
//!
//! 1. **Drain check** — a draining gateway refuses new work with a
//!    typed [`Rejection::Draining`] so a restarting client retries
//!    elsewhere.
//! 2. **Load shedding** — admission is compared against per-priority
//!    watermarks over the current in-flight count ([`ShedConfig`]):
//!    `Low` priority sheds first, `Normal` next, `High` only at the
//!    hard cap. A shed request costs no optimizer work and carries a
//!    `Retry-After` hint.
//! 3. **Circuit breaker** — one [`CircuitBreaker`] per tenant fails
//!    fast while the tenant's requests reliably die (see
//!    [`crate::breaker`]).
//! 4. **Deadline propagation** — the request's lifecycle deadline is
//!    measured from admission; each attempt's remaining slice becomes
//!    the optimizer's time budget and flows into the core
//!    `CancellationToken`, so a request never outlives its deadline by
//!    more than one checkpoint interval.
//! 5. **Retry** — transient failures (worker panics, isolated internal
//!    errors) retry under the seeded jittered backoff of
//!    [`crate::retry`], bounded per request by
//!    [`RetryConfig::max_retries`] and per tenant by the retry budget.
//!
//! All sleeps and time reads go through the injectable [`Clock`], so
//! the unit tests below pin exact schedules with zero real sleeps. The
//! lifecycle emits the `serve` telemetry vocabulary
//! ([`Event::ServeAccepted`], [`Event::ServeShed`],
//! [`Event::ServeRetried`], [`Event::ServeBreakerOpen`],
//! [`Event::ServeDrained`]), which the registry folds into the
//! `joinopt_serve_*_total` series.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

use joinopt_core::{OptimizeError, Session};
use joinopt_telemetry::{Event, Observer, RequestTrace};

use crate::breaker::{BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker};
use crate::clock::Clock;
use crate::retry::{RetryBudget, RetryConfig, RetryPolicy};
use crate::service::{OptimizerService, Priority, ServiceOutcome, ServiceRequest};

/// Load-shedding watermarks over the gateway's in-flight count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedConfig {
    /// In-flight count at which `Low`-priority requests shed.
    pub low_watermark: usize,
    /// In-flight count at which `Normal`-priority requests shed.
    pub high_watermark: usize,
    /// Hard cap: even `High`-priority requests shed here.
    pub max_in_flight: usize,
    /// Base `Retry-After` hint attached to shed rejections.
    pub retry_after: Duration,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig {
            low_watermark: 8,
            high_watermark: 16,
            max_in_flight: 32,
            retry_after: Duration::from_millis(50),
        }
    }
}

/// Gateway tuning: shedding, retry, breaker and the failpoint-driven
/// slow-request stall.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Shedding watermarks.
    pub shed: ShedConfig,
    /// Retry/backoff policy (shared jitter stream, per-tenant budgets).
    pub retry: RetryConfig,
    /// Per-tenant breaker tuning.
    pub breaker: BreakerConfig,
    /// Seed for the backoff jitter stream.
    pub seed: u64,
    /// Stall injected per attempt while the `serve-slow-request`
    /// failpoint flag is armed (models a wedged worker; drives
    /// deadline-propagation tests).
    pub slow_request_delay: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            shed: ShedConfig::default(),
            retry: RetryConfig::default(),
            breaker: BreakerConfig::default(),
            seed: 2006,
            slow_request_delay: Duration::from_millis(25),
        }
    }
}

/// A typed refusal: the gateway did not run the request and the client
/// should wait [`Rejection::retry_after`] before trying again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// Shed at a load watermark.
    Shed {
        /// Priority of the shed request.
        priority: Priority,
        /// In-flight count observed at admission.
        in_flight: usize,
        /// Suggested client backoff.
        retry_after: Duration,
    },
    /// The tenant's circuit breaker is open (or its half-open probe
    /// slot is taken).
    BreakerOpen {
        /// Remaining cooldown (or probe window).
        retry_after: Duration,
    },
    /// The server is draining for shutdown.
    Draining {
        /// Suggested client backoff (against another instance).
        retry_after: Duration,
    },
}

impl Rejection {
    /// The wire/reporting kind: `shed`, `breaker-open` or `draining`.
    pub fn kind(&self) -> &'static str {
        match self {
            Rejection::Shed { .. } => "shed",
            Rejection::BreakerOpen { .. } => "breaker-open",
            Rejection::Draining { .. } => "draining",
        }
    }

    /// The `Retry-After` hint.
    pub fn retry_after(&self) -> Duration {
        match *self {
            Rejection::Shed { retry_after, .. }
            | Rejection::BreakerOpen { retry_after }
            | Rejection::Draining { retry_after } => retry_after,
        }
    }
}

/// How one gateway-handled request ended unsuccessfully.
#[derive(Debug)]
pub enum GatewayError {
    /// Refused before any optimizer work.
    Rejected(Rejection),
    /// Ran (possibly with retries) and failed.
    Failed(OptimizeError),
}

impl GatewayError {
    /// The reporting label: a rejection's [`Rejection::kind`], or the
    /// failure's [`error_kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            GatewayError::Rejected(r) => r.kind(),
            GatewayError::Failed(e) => error_kind(e),
        }
    }
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Rejected(r) => write!(
                f,
                "rejected ({}), retry after {:?}",
                r.kind(),
                r.retry_after()
            ),
            GatewayError::Failed(e) => write!(f, "{e}"),
        }
    }
}

/// A point-in-time snapshot of the gateway's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Requests admitted past shedding and breaker checks.
    pub accepted: u64,
    /// Requests shed at a watermark (including drain refusals).
    pub shed: u64,
    /// Requests rejected by an open breaker.
    pub breaker_rejected: u64,
    /// Retry attempts performed.
    pub retried: u64,
    /// Closed→open (and half-open→open) breaker transitions.
    pub breaker_opens: u64,
    /// Admitted requests that returned a plan.
    pub completed: u64,
    /// Admitted requests that failed after all retries.
    pub failed: u64,
    /// Requests currently executing.
    pub in_flight: usize,
}

struct TenantState {
    breaker: CircuitBreaker,
    budget: RetryBudget,
}

/// The hardened request lifecycle around an [`OptimizerService`].
/// Methods take `&self`; one gateway is shared across connection
/// threads.
pub struct Gateway {
    service: OptimizerService,
    config: GatewayConfig,
    clock: Clock,
    tenants: Mutex<HashMap<String, TenantState>>,
    policy: Mutex<RetryPolicy>,
    in_flight: Mutex<usize>,
    idle: Condvar,
    draining: AtomicBool,
    drain_in_flight: AtomicUsize,
    accepted: AtomicU64,
    shed: AtomicU64,
    breaker_rejected: AtomicU64,
    retried: AtomicU64,
    breaker_opens: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
}

impl Gateway {
    /// A gateway over `service` on the real clock.
    pub fn new(service: OptimizerService, config: GatewayConfig) -> Gateway {
        Gateway::with_clock(service, config, Clock::system())
    }

    /// A gateway on an explicit (possibly manual) clock.
    pub fn with_clock(service: OptimizerService, config: GatewayConfig, clock: Clock) -> Gateway {
        let policy = RetryPolicy::new(config.retry.clone(), config.seed);
        Gateway {
            service,
            config,
            clock,
            tenants: Mutex::new(HashMap::new()),
            policy: Mutex::new(policy),
            in_flight: Mutex::new(0),
            idle: Condvar::new(),
            draining: AtomicBool::new(false),
            drain_in_flight: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            breaker_rejected: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    /// The underlying service (cache statistics, direct submission).
    pub fn service(&self) -> &OptimizerService {
        &self.service
    }

    /// The gateway's clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The gateway's configuration.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// Counter snapshot.
    pub fn stats(&self) -> GatewayStats {
        GatewayStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            breaker_rejected: self.breaker_rejected.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            in_flight: *lock(&self.in_flight),
        }
    }

    /// The named tenant's current breaker state (`Closed` when the
    /// tenant has never been seen).
    pub fn breaker_state(&self, tenant: &str) -> BreakerState {
        lock(&self.tenants)
            .get(tenant)
            .map_or(BreakerState::Closed, |t| t.breaker.state())
    }

    /// Whether new requests are being refused for shutdown.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Stops admitting new requests; in-flight requests keep running.
    /// Records the in-flight count at the moment the drain began (the
    /// number [`Event::ServeDrained`] later reports as completed).
    pub fn begin_drain(&self) {
        let in_flight = *lock(&self.in_flight);
        self.drain_in_flight.store(in_flight, Ordering::SeqCst);
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Blocks until every in-flight request has completed, then emits
    /// [`Event::ServeDrained`]. Returns `Ok(completed_in_flight)` or,
    /// if `timeout` (real time) expires first, `Err(still_in_flight)`.
    pub fn await_drained(&self, timeout: Duration, obs: &dyn Observer) -> Result<usize, usize> {
        let mut guard = lock(&self.in_flight);
        let deadline = std::time::Instant::now() + timeout;
        while *guard > 0 {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Err(*guard);
            }
            let (g, _) = self
                .idle
                .wait_timeout(guard, left)
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
        drop(guard);
        let in_flight = self.drain_in_flight.load(Ordering::SeqCst);
        if obs.enabled() {
            obs.on_event(Event::ServeDrained { in_flight });
        }
        Ok(in_flight)
    }

    /// Runs one request through the full lifecycle. `deadline` is the
    /// end-to-end allowance measured from this call; `session` is the
    /// caller's pooled optimizer session.
    pub fn handle(
        &self,
        req: &ServiceRequest,
        deadline: Option<Duration>,
        session: &mut Option<Session>,
        obs: &dyn Observer,
    ) -> Result<ServiceOutcome, GatewayError> {
        self.handle_traced(req, deadline, session, obs, None)
    }

    /// [`Gateway::handle`] with an optional flight recorder: when
    /// `trace` is `Some`, each lifecycle stage (shed-check, breaker,
    /// per-attempt cache-lookup/optimize, retry backoffs) lands as a
    /// [`RequestTrace`] span and rejections/failures stamp their kind
    /// on the trace. When `trace` is `None` this path performs exactly
    /// the clock reads of the untraced lifecycle — every span timestamp
    /// below is gated on the trace — which the pinned test in
    /// `tests/trace_overhead.rs` holds it to via [`crate::clock_reads`].
    pub fn handle_traced(
        &self,
        req: &ServiceRequest,
        deadline: Option<Duration>,
        session: &mut Option<Session>,
        obs: &dyn Observer,
        mut trace: Option<&mut RequestTrace>,
    ) -> Result<ServiceOutcome, GatewayError> {
        let admitted_ns = self.clock.now_ns();
        if let Some(tr) = trace.as_mut() {
            tr.begin("shed-check", admitted_ns);
        }

        if self.is_draining() {
            self.shed.fetch_add(1, Ordering::Relaxed);
            if obs.enabled() {
                obs.on_event(Event::ServeShed {
                    priority: req.priority.name(),
                });
            }
            if let Some(tr) = trace.as_mut() {
                tr.close_open(self.clock.now_ns());
                tr.error_kind = Some("draining");
            }
            return Err(GatewayError::Rejected(Rejection::Draining {
                retry_after: self.config.shed.retry_after,
            }));
        }

        // Watermark shedding: the comparison and the in-flight
        // increment happen under a single lock acquisition, so racing
        // admissions cannot collectively overshoot the watermark.
        let watermark = match req.priority {
            Priority::Low => self.config.shed.low_watermark,
            Priority::Normal => self.config.shed.high_watermark,
            Priority::High => self.config.shed.max_in_flight,
        }
        .min(self.config.shed.max_in_flight);
        let _guard = match InFlightGuard::try_enter(self, watermark) {
            Ok(guard) => guard,
            Err(in_flight) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                if obs.enabled() {
                    obs.on_event(Event::ServeShed {
                        priority: req.priority.name(),
                    });
                }
                if let Some(tr) = trace.as_mut() {
                    tr.close_open(self.clock.now_ns());
                    tr.error_kind = Some("shed");
                }
                return Err(GatewayError::Rejected(Rejection::Shed {
                    priority: req.priority,
                    in_flight,
                    retry_after: self.config.shed.retry_after,
                }));
            }
        };

        if let Some(tr) = trace.as_mut() {
            let t = self.clock.now_ns();
            tr.end(t);
            tr.begin("breaker", t);
        }

        // Per-tenant breaker admission. A breaker rejection releases
        // the just-reserved in-flight slot via the guard's drop.
        {
            let mut tenants = lock(&self.tenants);
            let tenant = tenants
                .entry(req.tenant.clone())
                .or_insert_with(|| self.tenant_state());
            if let BreakerDecision::Reject { retry_after } =
                tenant.breaker.admit(self.clock.now_ns())
            {
                drop(tenants);
                self.breaker_rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(tr) = trace.as_mut() {
                    tr.close_open(self.clock.now_ns());
                    tr.error_kind = Some("breaker-open");
                }
                return Err(GatewayError::Rejected(Rejection::BreakerOpen {
                    retry_after,
                }));
            }
        }
        if let Some(tr) = trace.as_mut() {
            tr.end(self.clock.now_ns());
        }

        self.accepted.fetch_add(1, Ordering::Relaxed);
        if obs.enabled() {
            obs.on_event(Event::ServeAccepted {
                priority: req.priority.name(),
            });
        }

        let mut attempt: u32 = 0;
        loop {
            // A wedged worker, when injected: each attempt stalls before
            // it runs, eating into the deadline below.
            if joinopt_core::failpoint::flag("serve-slow-request") {
                self.clock.sleep(self.config.slow_request_delay);
            }

            // Deadline propagation: the remaining end-to-end allowance
            // caps this attempt's optimizer time budget (and with it the
            // core CancellationToken's deadline).
            let mut effective = req.clone();
            if let Some(d) = deadline {
                let elapsed = Duration::from_nanos(self.clock.now_ns().saturating_sub(admitted_ns));
                let Some(remaining) = d.checked_sub(elapsed).filter(|r| !r.is_zero()) else {
                    if let Some(tr) = trace.as_mut() {
                        tr.close_open(self.clock.now_ns());
                        tr.error_kind = Some("timeout");
                    }
                    return Err(self.finish_failed(
                        req,
                        OptimizeError::TimeBudgetExceeded { budget: d },
                        obs,
                    ));
                };
                effective.time_budget = Some(match req.time_budget {
                    Some(b) => b.min(remaining),
                    None => remaining,
                });
            }

            let tracer = trace
                .as_mut()
                .map(|tr| (&self.clock, attempt, &mut **tr) as crate::service::AttemptTracer<'_>);
            match self
                .service
                .submit_one_traced(&effective, session, obs, tracer)
            {
                Ok(outcome) => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    let mut tenants = lock(&self.tenants);
                    if let Some(t) = tenants.get_mut(req.tenant.as_str()) {
                        t.breaker.on_success();
                        t.budget.deposit();
                    }
                    return Ok(outcome);
                }
                Err(e) if is_transient(&e) && self.may_retry(req, attempt) => {
                    attempt += 1;
                    self.retried.fetch_add(1, Ordering::Relaxed);
                    if obs.enabled() {
                        obs.on_event(Event::ServeRetried { attempt });
                    }
                    // A panicking attempt unwound past its span closes;
                    // close them here and time the backoff sleep itself.
                    if let Some(tr) = trace.as_mut() {
                        let t = self.clock.now_ns();
                        tr.close_open(t);
                        tr.begin_attempt("retry-backoff", attempt, t);
                    }
                    let delay = lock(&self.policy).backoff(attempt - 1);
                    self.clock.sleep(delay);
                    if let Some(tr) = trace.as_mut() {
                        tr.end(self.clock.now_ns());
                    }
                }
                Err(e) => {
                    if let Some(tr) = trace.as_mut() {
                        tr.close_open(self.clock.now_ns());
                        tr.error_kind = Some(error_kind(&e));
                    }
                    return Err(self.finish_failed(req, e, obs));
                }
            }
        }
    }

    /// Whether a transient failure on 0-based `attempt` may retry:
    /// policy allows it and the tenant's budget covers it (withdrawing
    /// the token when so).
    fn may_retry(&self, req: &ServiceRequest, attempt: u32) -> bool {
        if !lock(&self.policy).allows(attempt) {
            return false;
        }
        let mut tenants = lock(&self.tenants);
        tenants
            .entry(req.tenant.clone())
            .or_insert_with(|| self.tenant_state())
            .budget
            .try_withdraw()
    }

    /// Books a terminal failure: feeds the tenant's breaker (emitting
    /// [`Event::ServeBreakerOpen`] on the closed→open edge) and wraps
    /// the error. Failures the breaker does not count still resolve
    /// the admission as neutral, so a half-open probe slot is never
    /// leaked (which would lock the tenant out until restart).
    fn finish_failed(
        &self,
        req: &ServiceRequest,
        e: OptimizeError,
        obs: &dyn Observer,
    ) -> GatewayError {
        self.failed.fetch_add(1, Ordering::Relaxed);
        if counts_for_breaker(&e) {
            let opened = lock(&self.tenants)
                .get_mut(req.tenant.as_str())
                .is_some_and(|t| t.breaker.on_failure(self.clock.now_ns()));
            if opened {
                self.breaker_opens.fetch_add(1, Ordering::Relaxed);
                if obs.enabled() {
                    obs.on_event(Event::ServeBreakerOpen);
                }
            }
        } else if let Some(t) = lock(&self.tenants).get_mut(req.tenant.as_str()) {
            t.breaker.on_neutral();
        }
        GatewayError::Failed(e)
    }

    fn tenant_state(&self) -> TenantState {
        TenantState {
            breaker: CircuitBreaker::new(self.config.breaker.clone()),
            budget: RetryBudget::new(&self.config.retry),
        }
    }
}

/// RAII in-flight accounting: decrements and wakes drain waiters even
/// when a request path unwinds.
struct InFlightGuard<'a> {
    gateway: &'a Gateway,
}

impl<'a> InFlightGuard<'a> {
    /// Unconditionally occupies one in-flight slot (test scaffolding
    /// for pinning synthetic load; the request path uses `try_enter`).
    #[cfg(test)]
    fn enter(gateway: &'a Gateway) -> InFlightGuard<'a> {
        *lock(&gateway.in_flight) += 1;
        InFlightGuard { gateway }
    }

    /// Atomically admits one request against `watermark`: checks and
    /// increments the in-flight count under one lock acquisition.
    /// Returns `Err(observed_count)`, leaving the count untouched,
    /// when the count is already at or above the watermark.
    fn try_enter(gateway: &'a Gateway, watermark: usize) -> Result<InFlightGuard<'a>, usize> {
        let mut guard = lock(&gateway.in_flight);
        if *guard >= watermark {
            return Err(*guard);
        }
        *guard += 1;
        Ok(InFlightGuard { gateway })
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut guard = lock(&self.gateway.in_flight);
        *guard = guard.saturating_sub(1);
        drop(guard);
        self.gateway.idle.notify_all();
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The reporting label an optimizer error rolls up under in serve
/// responses and the load report's per-type error breakdown:
/// `timeout`, `memory`, `panic`, `parse`, `admission` or `other`.
pub fn error_kind(e: &OptimizeError) -> &'static str {
    match e {
        OptimizeError::TimeBudgetExceeded { .. } => "timeout",
        OptimizeError::MemoryBudgetExceeded { .. } => "memory",
        OptimizeError::Parse(_) | OptimizeError::Sql(_) => "parse",
        OptimizeError::QueueFull { .. } | OptimizeError::TenantLimitExceeded { .. } => "admission",
        OptimizeError::Internal(msg) if msg.contains("panic") => "panic",
        _ => "other",
    }
}

/// Failures that feed the circuit breaker: service-side malfunction
/// (panics surface as `Internal`) and deadline blowouts — not
/// per-query client errors (parse, shape, admission).
fn counts_for_breaker(e: &OptimizeError) -> bool {
    matches!(
        e,
        OptimizeError::Internal(_) | OptimizeError::TimeBudgetExceeded { .. }
    )
}

/// Failures worth retrying: isolated internal errors and panics. A
/// deadline blowout is not — the deadline covers retries too, and a
/// parse error will parse no better the second time.
fn is_transient(e: &OptimizeError) -> bool {
    matches!(e, OptimizeError::Internal(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::spec::QuerySpec;
    use joinopt_cost::workload::family_workload;
    use joinopt_qgraph::GraphKind;
    use joinopt_telemetry::NoopObserver;

    fn spec(n: usize, seed: u64) -> QuerySpec {
        let w = family_workload(GraphKind::Chain, n, seed);
        QuerySpec::capture(&w.graph, &w.catalog).unwrap()
    }

    fn gateway(config: GatewayConfig) -> Gateway {
        Gateway::with_clock(
            OptimizerService::new(ServiceConfig::default()),
            config,
            Clock::manual(),
        )
    }

    #[test]
    fn happy_path_completes_and_counts() {
        let gw = gateway(GatewayConfig::default());
        let mut session = None;
        let req = ServiceRequest::new(spec(6, 1)).with_tenant("t");
        let out = gw
            .handle(
                &req,
                Some(Duration::from_secs(10)),
                &mut session,
                &NoopObserver,
            )
            .unwrap();
        assert!(!out.cache_hit);
        let out2 = gw.handle(&req, None, &mut session, &NoopObserver).unwrap();
        assert!(out2.cache_hit, "second identical request hits the cache");
        let stats = gw.stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.in_flight, 0);
        assert_eq!((stats.shed, stats.failed, stats.retried), (0, 0, 0));
    }

    #[test]
    fn watermarks_shed_by_priority() {
        let gw = gateway(GatewayConfig {
            shed: ShedConfig {
                low_watermark: 1,
                high_watermark: 2,
                max_in_flight: 3,
                retry_after: Duration::from_millis(40),
            },
            ..GatewayConfig::default()
        });
        let mut session = None;
        // Hold two synthetic in-flight slots.
        let _a = InFlightGuard::enter(&gw);
        let low = ServiceRequest::new(spec(4, 2)).with_priority(Priority::Low);
        let normal = ServiceRequest::new(spec(4, 3));
        let high = ServiceRequest::new(spec(4, 4)).with_priority(Priority::High);
        match gw.handle(&low, None, &mut session, &NoopObserver) {
            Err(GatewayError::Rejected(Rejection::Shed {
                priority,
                in_flight,
                retry_after,
            })) => {
                assert_eq!(priority, Priority::Low);
                assert_eq!(in_flight, 1);
                assert_eq!(retry_after, Duration::from_millis(40));
            }
            other => panic!("low must shed: {other:?}"),
        }
        let _b = InFlightGuard::enter(&gw);
        assert!(matches!(
            gw.handle(&normal, None, &mut session, &NoopObserver),
            Err(GatewayError::Rejected(Rejection::Shed { .. }))
        ));
        // High still flows below the hard cap.
        assert!(gw.handle(&high, None, &mut session, &NoopObserver).is_ok());
        let _c = InFlightGuard::enter(&gw);
        assert!(matches!(
            gw.handle(&high, None, &mut session, &NoopObserver),
            Err(GatewayError::Rejected(Rejection::Shed { .. }))
        ));
        assert_eq!(gw.stats().shed, 3);
    }

    #[test]
    fn draining_rejects_new_requests_and_drain_completes() {
        let gw = gateway(GatewayConfig::default());
        let mut session = None;
        gw.begin_drain();
        assert!(gw.is_draining());
        let req = ServiceRequest::new(spec(4, 5));
        assert!(matches!(
            gw.handle(&req, None, &mut session, &NoopObserver),
            Err(GatewayError::Rejected(Rejection::Draining { .. }))
        ));
        assert_eq!(
            gw.await_drained(Duration::from_secs(1), &NoopObserver),
            Ok(0)
        );
    }

    #[test]
    fn deadline_zero_fails_typed_without_running() {
        let gw = gateway(GatewayConfig::default());
        let mut session = None;
        let req = ServiceRequest::new(spec(6, 6));
        // The manual clock never advances on its own, so force the
        // elapsed time past the deadline with the slow-request stall
        // disabled: a zero deadline is already expired at admission.
        match gw.handle(&req, Some(Duration::ZERO), &mut session, &NoopObserver) {
            Err(GatewayError::Failed(OptimizeError::TimeBudgetExceeded { budget })) => {
                assert_eq!(budget, Duration::ZERO);
            }
            other => panic!("expected typed deadline error: {other:?}"),
        }
        assert_eq!(gw.stats().failed, 1);
        assert_eq!(gw.stats().completed, 0);
    }

    #[test]
    fn deadline_caps_the_attempt_time_budget() {
        let gw = gateway(GatewayConfig::default());
        let mut session = None;
        // A generous explicit budget is clamped to the small remaining
        // deadline; the run itself is fast enough to finish anyway.
        let req = ServiceRequest::new(spec(5, 7)).with_time_budget(Duration::from_secs(3600));
        assert!(gw
            .handle(
                &req,
                Some(Duration::from_secs(1)),
                &mut session,
                &NoopObserver
            )
            .is_ok());
    }

    #[test]
    fn breaker_opens_after_consecutive_deadline_failures_and_recloses() {
        let clock = Clock::manual();
        let gw = Gateway::with_clock(
            OptimizerService::new(ServiceConfig::default()),
            GatewayConfig {
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    cooldown: Duration::from_millis(100),
                    success_threshold: 1,
                },
                ..GatewayConfig::default()
            },
            clock.clone(),
        );
        let mut session = None;
        let req = ServiceRequest::new(spec(6, 8)).with_tenant("acme");
        for _ in 0..3 {
            assert!(matches!(
                gw.handle(&req, Some(Duration::ZERO), &mut session, &NoopObserver),
                Err(GatewayError::Failed(
                    OptimizeError::TimeBudgetExceeded { .. }
                ))
            ));
        }
        assert_eq!(gw.breaker_state("acme"), BreakerState::Open);
        assert_eq!(gw.stats().breaker_opens, 1);
        // Open: rejected with the remaining cooldown.
        match gw.handle(&req, None, &mut session, &NoopObserver) {
            Err(GatewayError::Rejected(Rejection::BreakerOpen { retry_after })) => {
                assert!(retry_after <= Duration::from_millis(100));
            }
            other => panic!("expected breaker rejection: {other:?}"),
        }
        // Other tenants are unaffected.
        let other = ServiceRequest::new(spec(6, 9)).with_tenant("beta");
        assert!(gw.handle(&other, None, &mut session, &NoopObserver).is_ok());
        // Cooldown elapses on the virtual clock; the probe succeeds and
        // the breaker re-closes.
        clock.advance(Duration::from_millis(150));
        assert!(gw.handle(&req, None, &mut session, &NoopObserver).is_ok());
        assert_eq!(gw.breaker_state("acme"), BreakerState::Closed);
    }

    #[test]
    fn uncounted_probe_failure_frees_the_slot_instead_of_locking_the_tenant_out() {
        let clock = Clock::manual();
        let gw = Gateway::with_clock(
            OptimizerService::new(ServiceConfig::default()),
            GatewayConfig {
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    cooldown: Duration::from_millis(100),
                    success_threshold: 1,
                },
                ..GatewayConfig::default()
            },
            clock.clone(),
        );
        let mut session = None;
        let req = ServiceRequest::new(spec(6, 40)).with_tenant("acme");
        for _ in 0..2 {
            assert!(gw
                .handle(&req, Some(Duration::ZERO), &mut session, &NoopObserver)
                .is_err());
        }
        assert_eq!(gw.breaker_state("acme"), BreakerState::Open);
        clock.advance(Duration::from_millis(150));

        // The half-open probe fails with an error the breaker does not
        // count (a tripped memory budget). The probe slot must be
        // released — a leaked slot would reject the tenant forever.
        let w = family_workload(GraphKind::Clique, 12, 41);
        let heavy = QuerySpec::capture(&w.graph, &w.catalog).unwrap();
        let probe = ServiceRequest::new(heavy)
            .with_tenant("acme")
            .with_algorithm(joinopt_core::Algorithm::DpSub)
            .with_memory_budget(1024);
        assert!(matches!(
            gw.handle(&probe, None, &mut session, &NoopObserver),
            Err(GatewayError::Failed(
                OptimizeError::MemoryBudgetExceeded { .. }
            ))
        ));
        assert_eq!(gw.breaker_state("acme"), BreakerState::HalfOpen);
        // The next request takes the freed probe slot; its success
        // closes the breaker.
        assert!(gw.handle(&req, None, &mut session, &NoopObserver).is_ok());
        assert_eq!(gw.breaker_state("acme"), BreakerState::Closed);
    }

    #[test]
    fn stats_and_rejection_kinds_render() {
        let r = Rejection::Shed {
            priority: Priority::Low,
            in_flight: 9,
            retry_after: Duration::from_millis(10),
        };
        assert_eq!(r.kind(), "shed");
        assert_eq!(r.retry_after(), Duration::from_millis(10));
        assert_eq!(
            Rejection::BreakerOpen {
                retry_after: Duration::from_millis(5)
            }
            .kind(),
            "breaker-open"
        );
        assert_eq!(
            Rejection::Draining {
                retry_after: Duration::from_millis(5)
            }
            .kind(),
            "draining"
        );
        let err = GatewayError::Rejected(r);
        assert!(err.to_string().contains("shed"));
    }
}
