//! [`ServiceRequest`], admission control and the batch executor.
//!
//! The service is the one blessed entry point for *owned* work: a
//! [`ServiceRequest`] carries its [`QuerySpec`], a tenant label, a
//! priority and per-request budgets, so it can sit in a queue, be
//! rejected with a typed error, or be answered straight from the plan
//! cache. Execution rides the core crate end to end: each worker pools
//! a [`Session`](joinopt_core::Session) across the queries it claims,
//! budget trips walk the exact → IDP → GOO degradation ladder when the
//! request opted in, and panics are isolated per request.
//!
//! ## Admission
//!
//! A submitted batch is admitted in arrival order under two limits:
//! per-tenant concurrency (`tenant_limit` requests of one tenant in
//! flight per batch) and total queue capacity. Rejected slots come back
//! immediately as [`OptimizeError::TenantLimitExceeded`] /
//! [`OptimizeError::QueueFull`] without disturbing their neighbours.
//! Admitted requests execute highest [`Priority`] first (stable within
//! a priority class), spread across the worker pool.
//!
//! ## Caching
//!
//! With a cache configured, each request canonicalizes its spec
//! ([`crate::fingerprint`]), probes the cache under
//! (fingerprint, resolved algorithm, cost-model id) and, on a miss
//! whose run completes exactly (no degradation), stores the resulting
//! plan. Hits return bit-identical cost bits and plan shape to the cold
//! run of the same spec. Without a cache the fingerprint path is
//! skipped entirely — see [`crate::fingerprint::fingerprints_computed`].

use std::time::{Duration, Instant};

use joinopt_core::{
    Algorithm, BudgetAction, DegradationInfo, DpResult, OptimizeError, OptimizeRequest, Session,
};
use joinopt_cost::{CostModel, Cout, HashJoin, MinOverPhysical, NestedLoopJoin, SortMergeJoin};
use joinopt_telemetry::{NoopObserver, Observer, RequestTrace};

use crate::cache::{CacheConfig, PlanCache};
use crate::clock::Clock;
use crate::fingerprint::canonicalize;
use crate::spec::QuerySpec;

/// The gateway's per-attempt tracing hookup: the clock that stamps
/// span boundaries, the 0-based retry attempt, and the request's
/// flight record. Bundled as a tuple so the untraced path stays a
/// single `None`.
pub type AttemptTracer<'a> = (&'a Clock, u32, &'a mut RequestTrace);

/// The cost models the service can name — a closed, hashable id so the
/// cache key stays `Copy` and model identity is never a dangling
/// pointer comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CostModelId {
    /// `C_out` (the paper's model; the default).
    #[default]
    Cout,
    /// Nested-loop join cost.
    NestedLoopJoin,
    /// Hash join cost.
    HashJoin,
    /// Sort-merge join cost.
    SortMergeJoin,
    /// Minimum over the physical operators.
    MinOverPhysical,
}

impl CostModelId {
    /// The CLI-facing id (`cout`, `nlj`, `hash`, `smj`, `min`).
    pub fn name(self) -> &'static str {
        match self {
            CostModelId::Cout => "cout",
            CostModelId::NestedLoopJoin => "nlj",
            CostModelId::HashJoin => "hash",
            CostModelId::SortMergeJoin => "smj",
            CostModelId::MinOverPhysical => "min",
        }
    }

    /// Parses a CLI-facing id.
    pub fn parse(s: &str) -> Option<CostModelId> {
        match s.to_ascii_lowercase().as_str() {
            "cout" => Some(CostModelId::Cout),
            "nlj" => Some(CostModelId::NestedLoopJoin),
            "hash" => Some(CostModelId::HashJoin),
            "smj" => Some(CostModelId::SortMergeJoin),
            "min" => Some(CostModelId::MinOverPhysical),
            _ => None,
        }
    }

    /// The model itself (all five are stateless unit structs).
    pub fn model(self) -> &'static dyn CostModel {
        match self {
            CostModelId::Cout => &Cout,
            CostModelId::NestedLoopJoin => &NestedLoopJoin,
            CostModelId::HashJoin => &HashJoin,
            CostModelId::SortMergeJoin => &SortMergeJoin,
            CostModelId::MinOverPhysical => &MinOverPhysical,
        }
    }
}

/// Request priority: higher executes earlier within a batch, and the
/// server's load shedding drops lower priorities first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work; runs after everything else.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Latency-sensitive; runs first.
    High,
}

impl Priority {
    /// The wire name (`low`, `normal`, `high`) used by the serve
    /// protocol and the `joinopt_serve_*` metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Priority> {
        match s.to_ascii_lowercase().as_str() {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }
}

/// An owned, queueable optimization request.
#[derive(Debug, Clone)]
pub struct ServiceRequest {
    /// The owned query.
    pub spec: QuerySpec,
    /// Tenant label for admission accounting.
    pub tenant: String,
    /// Scheduling priority within a batch.
    pub priority: Priority,
    /// Algorithm (possibly `Auto`, resolved per query).
    pub algorithm: Algorithm,
    /// Cost model id (part of the cache key).
    pub cost_model: CostModelId,
    /// Optional wall-clock budget for the run.
    pub time_budget: Option<Duration>,
    /// Optional ceiling on the optimal plan's cost.
    pub cost_budget: Option<f64>,
    /// Optional ceiling on DP table + arena bytes.
    pub memory_budget: Option<usize>,
    /// Whether a tripped budget degrades down the ladder
    /// (exact → IDP → GOO) instead of erroring.
    pub degrade: bool,
}

impl ServiceRequest {
    /// A request for `spec` with default tenant (`""`), normal priority,
    /// `Auto` algorithm, `C_out` and no budgets.
    pub fn new(spec: QuerySpec) -> ServiceRequest {
        ServiceRequest {
            spec,
            tenant: String::new(),
            priority: Priority::Normal,
            algorithm: Algorithm::Auto,
            cost_model: CostModelId::Cout,
            time_budget: None,
            cost_budget: None,
            memory_budget: None,
            degrade: false,
        }
    }

    /// Sets the tenant label.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Sets the priority.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Chooses a specific algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Chooses a cost model.
    #[must_use]
    pub fn with_cost_model(mut self, model: CostModelId) -> Self {
        self.cost_model = model;
        self
    }

    /// Sets a wall-clock budget.
    #[must_use]
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Sets a plan-cost ceiling.
    #[must_use]
    pub fn with_cost_budget(mut self, budget: f64) -> Self {
        self.cost_budget = Some(budget);
        self
    }

    /// Sets a memory ceiling in bytes.
    #[must_use]
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Lets tripped budgets fall down the degradation ladder instead of
    /// erroring.
    #[must_use]
    pub fn with_degradation(mut self) -> Self {
        self.degrade = true;
        self
    }
}

/// Service sizing and policy.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads for batch execution. `0` = the machine's
    /// available parallelism.
    pub worker_threads: usize,
    /// Maximum requests admitted per batch.
    pub queue_capacity: usize,
    /// Maximum requests of one tenant in flight per batch.
    pub tenant_limit: usize,
    /// Plan-cache sizing; `None` disables caching entirely (and with it
    /// the whole fingerprint path).
    pub cache: Option<CacheConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            worker_threads: 0,
            queue_capacity: 1024,
            tenant_limit: 256,
            cache: Some(CacheConfig::default()),
        }
    }
}

/// One answered request.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// Plan, cost, counters and statistics. On a cache hit the counters
    /// are zero — no enumeration ran.
    pub result: DpResult,
    /// The concrete algorithm (`Auto` resolved) that produced — or, on
    /// a hit, whose cache slot served — the plan.
    pub algorithm: Algorithm,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// `Some` when a budget tripped and a ladder rung produced the plan.
    pub degradation: Option<DegradationInfo>,
    /// Wall-clock time spent answering this request (lookup or run).
    pub elapsed: Duration,
}

/// The optimizer service: a plan cache plus a batch executor with
/// admission control. Methods take `&self`; one service is shared
/// across submitting threads.
pub struct OptimizerService {
    config: ServiceConfig,
    cache: Option<PlanCache>,
}

impl Default for OptimizerService {
    fn default() -> Self {
        OptimizerService::new(ServiceConfig::default())
    }
}

impl OptimizerService {
    /// A service with the given sizing.
    pub fn new(config: ServiceConfig) -> OptimizerService {
        let cache = config.cache.map(PlanCache::new);
        OptimizerService { config, cache }
    }

    /// The plan cache, when one is configured.
    pub fn cache(&self) -> Option<&PlanCache> {
        self.cache.as_ref()
    }

    /// Submits a batch. Results come back in input order; admission
    /// rejections occupy their slots as typed errors.
    pub fn submit_batch(
        &self,
        requests: &[ServiceRequest],
    ) -> Vec<Result<ServiceOutcome, OptimizeError>> {
        self.submit_batch_observed(requests, &NoopObserver)
    }

    /// [`OptimizerService::submit_batch`] with telemetry: every run and
    /// every cache lookup/store/evict reports to `obs` (which must be
    /// `Sync`; workers emit concurrently, tagged by thread id).
    pub fn submit_batch_observed(
        &self,
        requests: &[ServiceRequest],
        obs: &(dyn Observer + Sync),
    ) -> Vec<Result<ServiceOutcome, OptimizeError>> {
        use std::collections::HashMap;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::mpsc;

        let mut results: Vec<Option<Result<ServiceOutcome, OptimizeError>>> =
            (0..requests.len()).map(|_| None).collect();

        // Admission in arrival order: tenant caps first, then capacity.
        let mut in_flight: HashMap<&str, usize> = HashMap::new();
        let mut admitted: Vec<usize> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            let tenant_count = in_flight.entry(req.tenant.as_str()).or_insert(0);
            if *tenant_count >= self.config.tenant_limit {
                results[i] = Some(Err(OptimizeError::TenantLimitExceeded {
                    tenant: req.tenant.clone(),
                    in_flight: *tenant_count,
                    limit: self.config.tenant_limit,
                }));
                continue;
            }
            if admitted.len() >= self.config.queue_capacity {
                results[i] = Some(Err(OptimizeError::QueueFull {
                    queued: admitted.len(),
                    capacity: self.config.queue_capacity,
                }));
                continue;
            }
            *tenant_count += 1;
            admitted.push(i);
        }
        // Highest priority first; stable, so arrival order breaks ties.
        admitted.sort_by_key(|&i| std::cmp::Reverse(requests[i].priority));

        let workers = if self.config.worker_threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.config.worker_threads
        }
        .min(admitted.len())
        .max(1);

        let run_one = |session: &mut Option<Session>, req: &ServiceRequest| {
            self.submit_one(req, session, obs)
        };

        if workers == 1 {
            let mut session = None;
            for &i in &admitted {
                results[i] = Some(run_one(&mut session, &requests[i]));
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    let run_one = &run_one;
                    let admitted = &admitted;
                    scope.spawn(move || {
                        let mut session = None;
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&i) = admitted.get(k) else { break };
                            if tx.send((i, run_one(&mut session, &requests[i]))).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                for (i, r) in rx {
                    results[i] = Some(r);
                }
            });
        }
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(OptimizeError::Internal(
                        "request was never claimed by a service worker".into(),
                    ))
                })
            })
            .collect()
    }

    /// Answers one request outside a batch — the `joinopt serve` path.
    /// Skips batch admission (the server gateway does its own shedding
    /// and breaker checks before calling this), shares the plan cache,
    /// isolates panics exactly like a batch worker, and reuses the
    /// caller's pooled session across calls.
    pub fn submit_one(
        &self,
        req: &ServiceRequest,
        session: &mut Option<Session>,
        obs: &dyn Observer,
    ) -> Result<ServiceOutcome, OptimizeError> {
        self.submit_one_traced(req, session, obs, None)
    }

    /// [`OptimizerService::submit_one`] with the gateway's flight
    /// recorder: when `tracer` is `Some`, the cache probe and the
    /// engine run land as `cache-lookup` / `optimize` spans stamped
    /// from the gateway's clock and tagged with the retry attempt.
    /// `None` keeps this path free of clock reads entirely (the
    /// zero-overhead contract pinned in `tests/trace_overhead.rs`).
    pub fn submit_one_traced(
        &self,
        req: &ServiceRequest,
        session: &mut Option<Session>,
        obs: &dyn Observer,
        tracer: Option<AttemptTracer<'_>>,
    ) -> Result<ServiceOutcome, OptimizeError> {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.answer(session, req, obs, tracer)
        }));
        match outcome {
            Ok(r) => r,
            Err(payload) => {
                *session = None; // discard the half-mutated session
                Err(OptimizeError::Internal(panic_message(payload.as_ref())))
            }
        }
    }

    /// Answers one admitted request: cache probe, then (on a miss) a
    /// full optimization, then (when exact) a cache store.
    ///
    /// Two service-level failpoint sites live here (cfg-gated, see
    /// `docs/robustness.md`): `serve-worker-panic` fires before any
    /// work — its panics are swallowed by the caller's `catch_unwind`
    /// like a real worker bug — and `serve-cache-poison` replaces the
    /// canonical fingerprint with a constant, forcing every distinct
    /// query into one cache slot to prove the full-encoding
    /// verification turns collisions into misses, never wrong plans.
    fn answer(
        &self,
        session: &mut Option<Session>,
        req: &ServiceRequest,
        obs: &dyn Observer,
        mut tracer: Option<AttemptTracer<'_>>,
    ) -> Result<ServiceOutcome, OptimizeError> {
        joinopt_core::failpoint::check("serve-worker-panic")?;
        let started = Instant::now();
        let model = req.cost_model.model();
        let model_id = req.cost_model.name();

        // Resolve `Auto` from the spec's density, exactly like the core
        // policy at one intra-query thread, so the cache key is concrete.
        let algorithm = if req.algorithm == Algorithm::Auto {
            resolve_auto(&req.spec)
        } else {
            req.algorithm
        };

        // Probe the cache (fingerprinting is skipped entirely when no
        // cache is configured). The canonicalization is billed to the
        // cache-lookup span: it exists only to produce the cache key.
        if let Some((clock, attempt, tr)) = tracer.as_mut() {
            tr.begin_attempt("cache-lookup", *attempt, clock.now_ns());
        }
        let mut canon = self.cache.as_ref().map(|_| canonicalize(&req.spec));
        if let Some(c) = canon.as_mut() {
            if joinopt_core::failpoint::flag("serve-cache-poison") {
                // Simulate the worst-case fingerprint collision: every
                // query maps to the same slot. Correctness must now rest
                // entirely on the cache's word-for-word encoding check.
                c.fingerprint = crate::Fingerprint {
                    hi: 0xdead_beef_dead_beef,
                    lo: 0xfeed_face_feed_face,
                };
            }
        }
        if let (Some(cache), Some(canon)) = (&self.cache, &canon) {
            if let Some(hit) = cache.lookup_observed(
                canon.fingerprint,
                algorithm,
                model_id,
                &canon.encoding,
                &canon.order,
                obs,
            ) {
                if let Some((clock, _, tr)) = tracer.as_mut() {
                    tr.end(clock.now_ns());
                }
                return Ok(ServiceOutcome {
                    result: DpResult {
                        tree: hit.tree,
                        cost: hit.cost,
                        cardinality: hit.cardinality,
                        counters: Default::default(),
                        table_size: 0,
                        plans_built: 0,
                    },
                    algorithm,
                    cache_hit: true,
                    degradation: None,
                    elapsed: started.elapsed(),
                });
            }
        }

        // Miss (or no cache): the optimize span covers graph
        // instantiation, the engine run and the post-run cache store.
        if let Some((clock, attempt, tr)) = tracer.as_mut() {
            let t = clock.now_ns();
            tr.end(t);
            tr.begin_attempt("optimize", *attempt, t);
        }
        let (graph, catalog) = req.spec.instantiate()?;
        let mut s = session.take().unwrap_or_default();
        let mut request = OptimizeRequest::new(&graph, &catalog)
            .with_algorithm(algorithm)
            .with_cost_model(model)
            .with_threads(1)
            .with_observer(obs);
        if let Some(budget) = req.time_budget {
            request = request.with_time_budget(budget);
        }
        if let Some(budget) = req.cost_budget {
            request = request.with_cost_budget(budget);
        }
        if let Some(bytes) = req.memory_budget {
            request = request.with_memory_budget(bytes);
        }
        if req.degrade {
            request = request.on_budget_exceeded(BudgetAction::Degrade);
        }
        let outcome = request.run_in(&mut s);
        *session = Some(s);
        let outcome = outcome?;

        // Only exact plans are worth remembering: a degraded plan is an
        // artifact of this request's budgets, not of the query.
        if let (Some(cache), Some(canon)) = (&self.cache, &canon) {
            if outcome.degradation.is_none() {
                cache.insert_observed(
                    canon.fingerprint,
                    algorithm,
                    model_id,
                    &canon.encoding,
                    &canon.order,
                    &outcome.result.tree,
                    outcome.result.cost,
                    outcome.result.cardinality,
                    obs,
                );
            }
        }
        if let Some((clock, _, tr)) = tracer.as_mut() {
            tr.end(clock.now_ns());
        }
        Ok(ServiceOutcome {
            result: outcome.result,
            algorithm: outcome.algorithm,
            cache_hit: false,
            degradation: outcome.degradation,
            elapsed: started.elapsed(),
        })
    }
}

/// Resolves `Auto` from an owned spec without instantiating the graph:
/// the same density policy as
/// [`Algorithm::select_auto_with_parallelism`] at one intra-query
/// thread (service workers run queries sequentially inside).
fn resolve_auto(spec: &QuerySpec) -> Algorithm {
    let n = spec.num_relations();
    if (2..=joinopt_core::table::DenseDpTable::MAX_RELATIONS).contains(&n) {
        let max_edges = n * (n - 1) / 2;
        if 100 * spec.num_edges() >= 90 * max_edges {
            return Algorithm::DpSub;
        }
    }
    Algorithm::DpCcp
}

/// Renders a caught panic payload for [`OptimizeError::Internal`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("request panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("request panicked: {s}")
    } else {
        "request panicked".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_cost::workload;
    use joinopt_qgraph::GraphKind;

    fn spec(kind: GraphKind, n: usize, seed: u64) -> QuerySpec {
        let w = workload::family_workload(kind, n, seed);
        QuerySpec::capture(&w.graph, &w.catalog).unwrap()
    }

    #[test]
    fn cost_model_ids_round_trip() {
        for id in [
            CostModelId::Cout,
            CostModelId::NestedLoopJoin,
            CostModelId::HashJoin,
            CostModelId::SortMergeJoin,
            CostModelId::MinOverPhysical,
        ] {
            assert_eq!(CostModelId::parse(id.name()), Some(id));
        }
        assert_eq!(CostModelId::parse("bogus"), None);
    }

    #[test]
    fn warm_hit_is_bit_identical_to_the_cold_run() {
        let service = OptimizerService::default();
        let req = ServiceRequest::new(spec(GraphKind::Chain, 7, 11));
        let cold = &service.submit_batch(std::slice::from_ref(&req))[0];
        let cold = cold.as_ref().unwrap();
        assert!(!cold.cache_hit);
        let warm = &service.submit_batch(std::slice::from_ref(&req))[0];
        let warm = warm.as_ref().unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.result.cost.to_bits(), cold.result.cost.to_bits());
        assert_eq!(warm.result.tree, cold.result.tree);
        let stats = service.cache().unwrap().stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
    }

    #[test]
    fn tenant_limit_rejects_in_place() {
        let service = OptimizerService::new(ServiceConfig {
            tenant_limit: 2,
            ..ServiceConfig::default()
        });
        let reqs: Vec<_> = (0..4)
            .map(|i| ServiceRequest::new(spec(GraphKind::Star, 5, i)).with_tenant("acme"))
            .collect();
        let results = service.submit_batch(&reqs);
        assert!(results[0].is_ok());
        assert!(results[1].is_ok());
        for r in &results[2..] {
            assert!(matches!(
                r,
                Err(OptimizeError::TenantLimitExceeded { tenant, limit: 2, .. })
                    if tenant == "acme"
            ));
        }
    }

    #[test]
    fn queue_capacity_rejects_the_overflow() {
        let service = OptimizerService::new(ServiceConfig {
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        let reqs: Vec<_> = (0..3)
            .map(|i| ServiceRequest::new(spec(GraphKind::Chain, 4, i)))
            .collect();
        let results = service.submit_batch(&reqs);
        assert!(results[0].is_ok());
        for r in &results[1..] {
            assert!(matches!(
                r,
                Err(OptimizeError::QueueFull { capacity: 1, .. })
            ));
        }
    }

    #[test]
    fn batch_matches_individual_requests_and_preserves_errors() {
        let service = OptimizerService::new(ServiceConfig {
            cache: None,
            worker_threads: 3,
            ..ServiceConfig::default()
        });
        let mut reqs: Vec<_> = (0..5u64)
            .map(|i| {
                ServiceRequest::new(spec(GraphKind::ALL[i as usize % 4], 5 + i as usize % 3, i))
            })
            .collect();
        // A disconnected spec mid-batch must fail alone.
        let disc_graph = joinopt_qgraph::QueryGraph::new(3).unwrap();
        let disc_cat = joinopt_cost::Catalog::new(&disc_graph);
        reqs.insert(
            2,
            ServiceRequest::new(QuerySpec::capture(&disc_graph, &disc_cat).unwrap()),
        );
        let results = service.submit_batch(&reqs);
        assert_eq!(results.len(), 6);
        assert!(results[2].is_err(), "disconnected request fails in place");
        for (i, req) in reqs.iter().enumerate() {
            if i == 2 {
                continue;
            }
            let batch = results[i].as_ref().unwrap();
            let single = &service.submit_batch(std::slice::from_ref(req))[0];
            let single = single.as_ref().unwrap();
            assert_eq!(batch.result.cost.to_bits(), single.result.cost.to_bits());
            assert_eq!(batch.result.tree, single.result.tree);
        }
    }

    #[test]
    fn priorities_only_reorder_execution_not_results() {
        let service = OptimizerService::default();
        let reqs = vec![
            ServiceRequest::new(spec(GraphKind::Chain, 5, 0)).with_priority(Priority::Low),
            ServiceRequest::new(spec(GraphKind::Star, 5, 1)).with_priority(Priority::High),
        ];
        let results = service.submit_batch(&reqs);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(Result::is_ok));
        // Slot 0 is still the chain (5 relations, 4 edges).
        assert_eq!(results[0].as_ref().unwrap().result.tree.num_relations(), 5);
    }

    #[test]
    fn degraded_plans_are_not_cached() {
        let service = OptimizerService::default();
        // A cost budget of 0 always trips; with degradation the GOO rung
        // answers, and nothing must be stored.
        let req = ServiceRequest::new(spec(GraphKind::Clique, 7, 3))
            .with_cost_budget(0.0)
            .with_degradation();
        let r = &service.submit_batch(std::slice::from_ref(&req))[0];
        let r = r.as_ref().unwrap();
        assert!(r.degradation.is_some());
        assert_eq!(service.cache().unwrap().stats().stores, 0);
    }
}
