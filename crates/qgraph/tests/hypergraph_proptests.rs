//! Randomized property tests for the hypergraph substrate (seeded,
//! deterministic — the in-repo xorshift replaces any external
//! property-test framework).

use joinopt_qgraph::hypergraph::Hypergraph;
use joinopt_qgraph::{generators, QueryGraph};
use joinopt_relset::{RelSet, XorShift64};

const CASES: usize = 64;

/// A random hypergraph: random connected simple base + random complex
/// edges.
fn build_hypergraph(n: usize, extra: usize, seed: u64) -> Hypergraph {
    let mut rng = XorShift64::seed_from_u64(seed);
    let base = generators::random_connected(n, 0.3, &mut rng).unwrap();
    let mut h = Hypergraph::from_query_graph(&base);
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < 100 {
        attempts += 1;
        let u_size = rng.gen_range(1..3.min(n - 1) + 1);
        let v_size = rng.gen_range(1..2.min(n - u_size) + 1);
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..(u_size + v_size) {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        let u = RelSet::from_indices(pool[..u_size].iter().copied());
        let v = RelSet::from_indices(pool[u_size..u_size + v_size].iter().copied());
        if h.add_edge(u, v).is_ok() {
            added += 1;
        }
    }
    h
}

/// Draws a random `(hypergraph, n)` pair with 3..=9 nodes.
fn arb_hypergraph(rng: &mut XorShift64) -> (Hypergraph, usize) {
    let n = rng.gen_range(3..10);
    let extra = rng.gen_range(0..4);
    let seed = rng.next_u64();
    (build_hypergraph(n, extra, seed), n)
}

#[test]
fn neighborhood_avoids_forbidden() {
    let mut rng = XorShift64::seed_from_u64(201);
    for _ in 0..CASES {
        let (h, n) = arb_hypergraph(&mut rng);
        let all = RelSet::full(n);
        let s = RelSet::from_bits(rng.next_u64()) & all;
        let x = (RelSet::from_bits(rng.next_u64()) & all) - s;
        let nb = h.neighborhood(s, x);
        assert!(nb.is_disjoint(s));
        assert!(nb.is_disjoint(x));
        assert!(nb.is_subset(all));
    }
}

#[test]
fn neighborhood_shrinks_with_exclusion() {
    let mut rng = XorShift64::seed_from_u64(202);
    for _ in 0..CASES {
        let (h, n) = arb_hypergraph(&mut rng);
        let all = RelSet::full(n);
        let s = RelSet::from_bits(rng.next_u64()) & all;
        let x = (RelSet::from_bits(rng.next_u64()) & all) - s;
        // Neighborhood under a larger exclusion set never gains nodes
        // outside the smaller one's result… for *simple* graphs this is
        // monotone; with representatives a blocked min can shift the
        // representative, so we check the weaker sound property: the
        // unexcluded neighborhood covers at least one member of each
        // excluded-run result's edges. Here: check subset for x = ∅.
        let nb_all = h.neighborhood(s, RelSet::EMPTY);
        let nb_x = h.neighborhood(s, x);
        // Every node in nb_x must be reachable with no exclusion too,
        // except representatives that shifted within their edge side.
        for v in (nb_x & nb_all.complement_in(n)).iter() {
            // v must belong to some complex edge side whose minimum was
            // excluded (representative shift). Verify it is adjacent at
            // all via some edge with u ⊆ s.
            let adjacent = h.edges().iter().any(|e| {
                (e.u.is_subset(s) && e.v.contains(v)) || (e.v.is_subset(s) && e.u.contains(v))
            });
            assert!(adjacent, "node R{v} in neighborhood but not adjacent");
        }
    }
}

#[test]
fn connects_is_symmetric_and_monotone() {
    let mut rng = XorShift64::seed_from_u64(203);
    for _ in 0..CASES {
        let (h, n) = arb_hypergraph(&mut rng);
        let all = RelSet::full(n);
        let a = RelSet::from_bits(rng.next_u64()) & all;
        let b = (RelSet::from_bits(rng.next_u64()) & all) - a;
        assert_eq!(h.connects(a, b), h.connects(b, a));
        // Growing either side preserves connectedness.
        if h.connects(a, b) {
            let grown = a | (all - b);
            assert!(h.connects(grown, b));
        }
    }
}

#[test]
fn lifted_graph_agrees_with_simple_graph() {
    let mut rng = XorShift64::seed_from_u64(204);
    for _ in 0..CASES {
        let n = rng.gen_range(2..10);
        let density = rng.gen_range(0..11) as f64 / 10.0;
        let g = generators::random_connected(n, density, &mut rng).unwrap();
        let h = Hypergraph::from_query_graph(&g);
        let all = g.all_relations();
        for bits in 1..(1u64 << n) {
            let s = RelSet::from_bits(bits) & all;
            assert_eq!(
                h.is_connected_set(s),
                g.is_connected_set(s),
                "connectivity mismatch on {s}"
            );
            assert_eq!(
                h.neighborhood(s, RelSet::EMPTY),
                g.neighborhood(s),
                "neighborhood mismatch on {s}"
            );
        }
    }
}

#[test]
fn connected_set_grows_through_edges() {
    // If S is reachability-connected and an edge (u ⊆ S, w) exists with
    // w disjoint from S, then S ∪ w is also connected.
    let mut rng = XorShift64::seed_from_u64(205);
    let mut checked = 0;
    while checked < CASES {
        let (h, n) = arb_hypergraph(&mut rng);
        let all = RelSet::full(n);
        let s = RelSet::from_bits(rng.next_u64()) & all;
        if s.is_empty() || !h.is_connected_set(s) {
            continue;
        }
        checked += 1;
        for e in h.edges() {
            for (u, w) in [(e.u, e.v), (e.v, e.u)] {
                if u.is_subset(s) && w.is_disjoint(s) {
                    assert!(h.is_connected_set(s | w), "{s} ∪ {w} should stay connected");
                }
            }
        }
    }
}

#[test]
fn query_graph_lift_is_exact_inverse() {
    let g = generators::grid(3, 3).unwrap();
    let h = Hypergraph::from_query_graph(&g);
    assert_eq!(h.num_edges(), g.num_edges());
    assert_eq!(h.num_complex_edges(), 0);
    for (he, ge) in h.edges().iter().zip(g.edges()) {
        assert_eq!(he.u, RelSet::single(ge.u));
        assert_eq!(he.v, RelSet::single(ge.v));
    }
}

#[test]
fn rejects_duplicate_complex_edges_in_any_orientation() {
    let mut h = Hypergraph::new(5).unwrap();
    let u = RelSet::from_indices([0, 1]);
    let v = RelSet::from_indices([3, 4]);
    h.add_edge(u, v).unwrap();
    assert!(h.add_edge(v, u).is_err());
    // Different sides are fine.
    assert!(h.add_edge(RelSet::from_indices([0, 1, 2]), v).is_ok());
}

#[test]
fn empty_and_degenerate_queries() {
    let h = Hypergraph::new(0).unwrap();
    assert!(!h.is_connected());
    let h1 = Hypergraph::new(1).unwrap();
    assert!(h1.is_connected());
    assert_eq!(
        h1.neighborhood(RelSet::single(0), RelSet::EMPTY),
        RelSet::EMPTY
    );
    assert!(!QueryGraph::new(0).unwrap().is_connected());
}
