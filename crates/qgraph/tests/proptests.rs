//! Property-based tests for query-graph invariants and the csg/ccp
//! enumeration on randomized graphs.

use joinopt_qgraph::{bfs, csg, generators, profile::CsgProfile, QueryGraph, RelSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Strategy: a seeded random connected graph with 2..=9 nodes.
fn arb_graph() -> impl Strategy<Value = QueryGraph> {
    (2usize..=9, 0u8..=10, any::<u64>()).prop_map(|(n, density, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::random_connected(n, f64::from(density) / 10.0, &mut rng).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn neighborhood_union_law(g in arb_graph(), bits in any::<u64>()) {
        let n = g.num_relations();
        let all = g.all_relations();
        let s = RelSet::from_bits(bits) & all;
        let t = RelSet::from_bits(bits.rotate_left(n as u32 / 2)) & all;
        let lhs = g.neighborhood(s | t);
        let rhs = (g.neighborhood(s) | g.neighborhood(t)) - (s | t);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn neighborhood_disjoint_from_set(g in arb_graph(), bits in any::<u64>()) {
        let s = RelSet::from_bits(bits) & g.all_relations();
        prop_assert!(g.neighborhood(s).is_disjoint(s));
    }

    #[test]
    fn connected_set_union_with_neighbor_subset_stays_connected(
        g in arb_graph(), bits in any::<u64>(), pick in any::<u64>()
    ) {
        // Paper Section 3.2: if S is connected and S' ⊆ 𝒩(S), then
        // S ∪ S' is connected.
        let s = RelSet::from_bits(bits) & g.all_relations();
        prop_assume!(!s.is_empty() && g.is_connected_set(s));
        let nb = g.neighborhood(s);
        let sp = RelSet::from_bits(pick) & nb;
        prop_assert!(g.is_connected_set(s | sp) || sp.is_empty());
    }

    #[test]
    fn csg_enumeration_exact(g in arb_graph()) {
        let n = g.num_relations();
        let emitted: Vec<RelSet> = csg::collect_csgs(&g);
        let uniq: HashSet<RelSet> = emitted.iter().copied().collect();
        prop_assert_eq!(emitted.len(), uniq.len(), "duplicate emission");
        let mut brute = HashSet::new();
        for bits in 1..(1u64 << n) {
            let s = RelSet::from_bits(bits);
            if g.is_connected_set(s) {
                brute.insert(s);
            }
        }
        prop_assert_eq!(uniq, brute);
    }

    #[test]
    fn ccp_pairs_valid_and_unique(g in arb_graph()) {
        let pairs = csg::collect_ccps(&g);
        let mut seen = HashSet::new();
        for &(s1, s2) in &pairs {
            prop_assert!(s1.is_disjoint(s2));
            prop_assert!(g.is_connected_set(s1));
            prop_assert!(g.is_connected_set(s2));
            prop_assert!(g.sets_connected(s1, s2));
            let canon = if s1.min_index() < s2.min_index() { (s1, s2) } else { (s2, s1) };
            prop_assert!(seen.insert(canon), "pair ({}, {}) emitted twice", s1, s2);
        }
    }

    #[test]
    fn ccp_count_matches_brute_force(g in arb_graph()) {
        let n = g.num_relations();
        let mut csgs = Vec::new();
        for bits in 1..(1u64 << n) {
            let s = RelSet::from_bits(bits);
            if g.is_connected_set(s) {
                csgs.push(s);
            }
        }
        let mut brute = 0u64;
        for &s1 in &csgs {
            for &s2 in &csgs {
                if s1.is_disjoint(s2) && g.sets_connected(s1, s2) {
                    brute += 1;
                }
            }
        }
        prop_assert_eq!(csg::count_ccp_distinct(&g) * 2, brute);
    }

    #[test]
    fn profile_sums_to_csg_count(g in arb_graph()) {
        let p = CsgProfile::compute(&g);
        prop_assert_eq!(p.csg_count(), u128::from(csg::count_csg(&g)));
    }

    #[test]
    fn bfs_renumber_preserves_structure(g in arb_graph()) {
        let (h, order) = bfs::bfs_renumber(&g).unwrap();
        prop_assert!(bfs::is_bfs_numbering(&h));
        prop_assert_eq!(h.num_edges(), g.num_edges());
        // Connected subsets are in bijection: same csg count.
        prop_assert_eq!(csg::count_csg(&h), csg::count_csg(&g));
        prop_assert_eq!(csg::count_ccp_distinct(&h), csg::count_ccp_distinct(&g));
        prop_assert_eq!(order.len(), g.num_relations());
    }

    #[test]
    fn is_connected_set_agrees_with_bfs_reachability(
        g in arb_graph(), bits in any::<u64>()
    ) {
        let s = RelSet::from_bits(bits) & g.all_relations();
        prop_assume!(!s.is_empty());
        // Reference: grow from the minimum element edge by edge.
        let start = s.min_index().unwrap();
        let mut reach = RelSet::single(start);
        loop {
            let grow = (g.neighborhood(reach) & s) - reach;
            if grow.is_empty() {
                break;
            }
            reach |= grow;
        }
        prop_assert_eq!(g.is_connected_set(s), reach == s);
    }

    #[test]
    fn sets_connected_iff_cut_edge_exists(g in arb_graph(), b1 in any::<u64>(), b2 in any::<u64>()) {
        let all = g.all_relations();
        let s1 = RelSet::from_bits(b1) & all;
        let s2 = (RelSet::from_bits(b2) & all) - s1;
        let has_cut = g.edges_between_sets(s1, s2).next().is_some();
        prop_assert_eq!(g.sets_connected(s1, s2), has_cut);
    }
}

#[test]
fn arbitrary_renumbering_keeps_enumeration_exact() {
    // Shuffle labels (not BFS!) and check the enumeration still matches
    // brute force — the numbering-independence claim in the module docs.
    use rand::seq::SliceRandom;
    let mut rng = StdRng::seed_from_u64(77);
    for trial in 0..20 {
        let g = generators::random_connected(8, 0.25, &mut rng).unwrap();
        let mut perm: Vec<usize> = (0..8).collect();
        perm.shuffle(&mut rng);
        let h = bfs::renumber(&g, &perm);
        let emitted: HashSet<RelSet> = csg::collect_csgs(&h).into_iter().collect();
        let mut brute = HashSet::new();
        for bits in 1..(1u64 << 8) {
            let s = RelSet::from_bits(bits);
            if h.is_connected_set(s) {
                brute.insert(s);
            }
        }
        assert_eq!(emitted, brute, "trial {trial}");
        assert_eq!(
            csg::count_ccp_distinct(&h),
            csg::count_ccp_distinct(&g),
            "trial {trial}: ccp count changed under relabeling"
        );
    }
}
