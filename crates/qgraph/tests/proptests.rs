//! Randomized property tests for query-graph invariants and the csg/ccp
//! enumeration, on seeded random connected graphs (deterministic — the
//! in-repo xorshift replaces any external property-test framework).

use joinopt_qgraph::{bfs, csg, generators, profile::CsgProfile, QueryGraph, RelSet};
use joinopt_relset::XorShift64;
use std::collections::HashSet;

const CASES: usize = 64;

/// A seeded random connected graph with 2..=9 nodes.
fn arb_graph(rng: &mut XorShift64) -> QueryGraph {
    let n = rng.gen_range(2..10);
    let density = rng.gen_range(0..11) as f64 / 10.0;
    generators::random_connected(n, density, rng).unwrap()
}

#[test]
fn neighborhood_union_law() {
    let mut rng = XorShift64::seed_from_u64(101);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng);
        let bits = rng.next_u64();
        let n = g.num_relations();
        let all = g.all_relations();
        let s = RelSet::from_bits(bits) & all;
        let t = RelSet::from_bits(bits.rotate_left(n as u32 / 2)) & all;
        let lhs = g.neighborhood(s | t);
        let rhs = (g.neighborhood(s) | g.neighborhood(t)) - (s | t);
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn neighborhood_disjoint_from_set() {
    let mut rng = XorShift64::seed_from_u64(102);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng);
        let s = RelSet::from_bits(rng.next_u64()) & g.all_relations();
        assert!(g.neighborhood(s).is_disjoint(s));
    }
}

#[test]
fn connected_set_union_with_neighbor_subset_stays_connected() {
    // Paper Section 3.2: if S is connected and S' ⊆ 𝒩(S), then S ∪ S'
    // is connected.
    let mut rng = XorShift64::seed_from_u64(103);
    let mut checked = 0;
    while checked < CASES {
        let g = arb_graph(&mut rng);
        let s = RelSet::from_bits(rng.next_u64()) & g.all_relations();
        let pick = rng.next_u64();
        if s.is_empty() || !g.is_connected_set(s) {
            continue;
        }
        checked += 1;
        let nb = g.neighborhood(s);
        let sp = RelSet::from_bits(pick) & nb;
        assert!(g.is_connected_set(s | sp) || sp.is_empty());
    }
}

#[test]
fn csg_enumeration_exact() {
    let mut rng = XorShift64::seed_from_u64(104);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng);
        let n = g.num_relations();
        let emitted: Vec<RelSet> = csg::collect_csgs(&g);
        let uniq: HashSet<RelSet> = emitted.iter().copied().collect();
        assert_eq!(emitted.len(), uniq.len(), "duplicate emission");
        let mut brute = HashSet::new();
        for bits in 1..(1u64 << n) {
            let s = RelSet::from_bits(bits);
            if g.is_connected_set(s) {
                brute.insert(s);
            }
        }
        assert_eq!(uniq, brute);
    }
}

#[test]
fn ccp_pairs_valid_and_unique() {
    let mut rng = XorShift64::seed_from_u64(105);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng);
        let pairs = csg::collect_ccps(&g);
        let mut seen = HashSet::new();
        for &(s1, s2) in &pairs {
            assert!(s1.is_disjoint(s2));
            assert!(g.is_connected_set(s1));
            assert!(g.is_connected_set(s2));
            assert!(g.sets_connected(s1, s2));
            let canon = if s1.min_index() < s2.min_index() {
                (s1, s2)
            } else {
                (s2, s1)
            };
            assert!(seen.insert(canon), "pair ({}, {}) emitted twice", s1, s2);
        }
    }
}

#[test]
fn ccp_count_matches_brute_force() {
    let mut rng = XorShift64::seed_from_u64(106);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng);
        let n = g.num_relations();
        let mut csgs = Vec::new();
        for bits in 1..(1u64 << n) {
            let s = RelSet::from_bits(bits);
            if g.is_connected_set(s) {
                csgs.push(s);
            }
        }
        let mut brute = 0u64;
        for &s1 in &csgs {
            for &s2 in &csgs {
                if s1.is_disjoint(s2) && g.sets_connected(s1, s2) {
                    brute += 1;
                }
            }
        }
        assert_eq!(csg::count_ccp_distinct(&g) * 2, brute);
    }
}

#[test]
fn profile_sums_to_csg_count() {
    let mut rng = XorShift64::seed_from_u64(107);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng);
        let p = CsgProfile::compute(&g);
        assert_eq!(p.csg_count(), u128::from(csg::count_csg(&g)));
    }
}

#[test]
fn bfs_renumber_preserves_structure() {
    let mut rng = XorShift64::seed_from_u64(108);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng);
        let (h, order) = bfs::bfs_renumber(&g).unwrap();
        assert!(bfs::is_bfs_numbering(&h));
        assert_eq!(h.num_edges(), g.num_edges());
        // Connected subsets are in bijection: same csg count.
        assert_eq!(csg::count_csg(&h), csg::count_csg(&g));
        assert_eq!(csg::count_ccp_distinct(&h), csg::count_ccp_distinct(&g));
        assert_eq!(order.len(), g.num_relations());
    }
}

#[test]
fn is_connected_set_agrees_with_bfs_reachability() {
    let mut rng = XorShift64::seed_from_u64(109);
    let mut checked = 0;
    while checked < CASES {
        let g = arb_graph(&mut rng);
        let s = RelSet::from_bits(rng.next_u64()) & g.all_relations();
        if s.is_empty() {
            continue;
        }
        checked += 1;
        // Reference: grow from the minimum element edge by edge.
        let start = s.min_index().unwrap();
        let mut reach = RelSet::single(start);
        loop {
            let grow = (g.neighborhood(reach) & s) - reach;
            if grow.is_empty() {
                break;
            }
            reach |= grow;
        }
        assert_eq!(g.is_connected_set(s), reach == s);
    }
}

#[test]
fn sets_connected_iff_cut_edge_exists() {
    let mut rng = XorShift64::seed_from_u64(110);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng);
        let all = g.all_relations();
        let s1 = RelSet::from_bits(rng.next_u64()) & all;
        let s2 = (RelSet::from_bits(rng.next_u64()) & all) - s1;
        let has_cut = g.edges_between_sets(s1, s2).next().is_some();
        assert_eq!(g.sets_connected(s1, s2), has_cut);
    }
}

#[test]
fn arbitrary_renumbering_keeps_enumeration_exact() {
    // Shuffle labels (not BFS!) and check the enumeration still matches
    // brute force — the numbering-independence claim in the module docs.
    let mut rng = XorShift64::seed_from_u64(77);
    for trial in 0..20 {
        let g = generators::random_connected(8, 0.25, &mut rng).unwrap();
        let mut perm: Vec<usize> = (0..8).collect();
        rng.shuffle(&mut perm);
        let h = bfs::renumber(&g, &perm);
        let emitted: HashSet<RelSet> = csg::collect_csgs(&h).into_iter().collect();
        let mut brute = HashSet::new();
        for bits in 1..(1u64 << 8) {
            let s = RelSet::from_bits(bits);
            if h.is_connected_set(s) {
                brute.insert(s);
            }
        }
        assert_eq!(emitted, brute, "trial {trial}");
        assert_eq!(
            csg::count_ccp_distinct(&h),
            csg::count_ccp_distinct(&g),
            "trial {trial}: ccp count changed under relabeling"
        );
    }
}
