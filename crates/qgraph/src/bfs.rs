//! Breadth-first numbering — the precondition of `EnumerateCsg`.
//!
//! The paper (Section 3.4.1) requires the nodes to be labeled so that
//! `v_0` has label 0 and the *k*-th generation of neighbors
//! `𝒩_k(v_0)` occupies a contiguous label range after all earlier
//! generations. Any visit order within a generation is acceptable; this
//! module produces the ascending-index order for determinism.

use joinopt_relset::{RelIdx, RelSet};

use crate::error::QueryGraphError;
use crate::graph::QueryGraph;

/// Computes a BFS visit order starting from `start`.
///
/// `order[new_index] = old_index`: the node visited `i`-th receives the
/// new label `i`.
///
/// # Errors
///
/// Returns [`QueryGraphError::Disconnected`] if not every node is
/// reachable from `start`, and [`QueryGraphError::NodeOutOfRange`] for a
/// bad start node.
pub fn bfs_order(g: &QueryGraph, start: RelIdx) -> Result<Vec<RelIdx>, QueryGraphError> {
    let n = g.num_relations();
    if start >= n {
        return Err(QueryGraphError::NodeOutOfRange { node: start, n });
    }
    let mut order = Vec::with_capacity(n);
    let mut seen = RelSet::single(start);
    let mut frontier = seen;
    order.push(start);
    while !frontier.is_empty() {
        // Next generation: 𝒩(frontier) \ seen, visited in ascending index
        // order for determinism.
        let next = g.neighborhood(frontier) - seen;
        for v in next.iter() {
            order.push(v);
        }
        seen |= next;
        frontier = next;
    }
    if order.len() != n {
        return Err(QueryGraphError::Disconnected);
    }
    Ok(order)
}

/// Rebuilds `g` with nodes relabeled according to `order`
/// (`order[new] = old`, as produced by [`bfs_order`]).
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..n`.
pub fn renumber(g: &QueryGraph, order: &[RelIdx]) -> QueryGraph {
    let n = g.num_relations();
    assert_eq!(order.len(), n, "order must be a permutation of 0..n");
    let mut new_of_old = vec![usize::MAX; n];
    for (new, &old) in order.iter().enumerate() {
        assert!(
            old < n && new_of_old[old] == usize::MAX,
            "order must be a permutation of 0..n"
        );
        new_of_old[old] = new;
    }
    let mut out = QueryGraph::new(n).expect("same size as validated input");
    for e in g.edges() {
        out.add_edge(new_of_old[e.u], new_of_old[e.v])
            .expect("permuted edges stay valid");
    }
    out
}

/// Convenience: BFS-renumbers `g` starting at node 0.
///
/// Returns the renumbered graph together with the order
/// (`order[new] = old`) so results can be mapped back.
///
/// # Errors
///
/// Returns [`QueryGraphError::Disconnected`] for disconnected input.
pub fn bfs_renumber(g: &QueryGraph) -> Result<(QueryGraph, Vec<RelIdx>), QueryGraphError> {
    let order = bfs_order(g, 0)?;
    Ok((renumber(g, &order), order))
}

/// Checks the paper's BFS-numbering precondition: node 0 exists and the
/// `k`-th neighbor generation of node 0 occupies labels
/// `[Σ_{i<k} |𝒩_i|, Σ_{i≤k} |𝒩_i|)`.
pub fn is_bfs_numbering(g: &QueryGraph) -> bool {
    let n = g.num_relations();
    if n == 0 {
        return false;
    }
    let mut seen = RelSet::single(0);
    let mut frontier = seen;
    let mut next_label = 1usize;
    while !frontier.is_empty() {
        let gen = g.neighborhood(frontier) - seen;
        let count = gen.len();
        // The generation must be exactly the labels [next_label, next_label+count).
        for (offset, v) in gen.iter().enumerate() {
            if v != next_label + offset {
                return false;
            }
        }
        next_label += count;
        seen |= gen;
        frontier = gen;
    }
    next_label == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphKind;
    use joinopt_relset::XorShift64;

    #[test]
    fn families_bfs_numbering_status() {
        // Chains, stars and cliques are BFS-numbered by construction.
        // Cycles are NOT for n ≥ 4 (node n−1 is adjacent to node 0 but
        // carries the last label); the enumeration algorithms do not
        // actually depend on the BFS property (see csg module tests on
        // arbitrarily renumbered graphs), so this is fine.
        for kind in [GraphKind::Chain, GraphKind::Star, GraphKind::Clique] {
            for n in 1..=10 {
                let g = generators::generate(kind, n);
                assert!(is_bfs_numbering(&g), "{kind} n={n} not BFS-numbered");
            }
        }
        assert!(is_bfs_numbering(&generators::cycle(3).unwrap()));
        assert!(!is_bfs_numbering(&generators::cycle(4).unwrap()));
        // Renumbering repairs cycles.
        let (g, _) = bfs_renumber(&generators::cycle(6).unwrap()).unwrap();
        assert!(is_bfs_numbering(&g));
    }

    #[test]
    fn grid_is_not_necessarily_bfs_but_renumber_fixes_it() {
        let g = generators::grid(3, 3).unwrap();
        let (renumbered, order) = bfs_renumber(&g).unwrap();
        assert!(is_bfs_numbering(&renumbered));
        assert_eq!(order.len(), 9);
        // Renumbering preserves the edge count and connectivity.
        assert_eq!(renumbered.num_edges(), g.num_edges());
        assert!(renumbered.is_connected());
    }

    #[test]
    fn bfs_order_on_path_from_middle() {
        let g = generators::chain(5).unwrap();
        let order = bfs_order(&g, 2).unwrap();
        assert_eq!(order[0], 2);
        // First generation: {1, 3}; second: {0, 4}.
        assert_eq!(&order[1..3], &[1, 3]);
        assert_eq!(&order[3..5], &[0, 4]);
    }

    #[test]
    fn bfs_order_rejects_disconnected() {
        let g = QueryGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(bfs_order(&g, 0), Err(QueryGraphError::Disconnected));
    }

    #[test]
    fn bfs_order_rejects_bad_start() {
        let g = generators::chain(3).unwrap();
        assert!(matches!(
            bfs_order(&g, 5),
            Err(QueryGraphError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn renumber_is_an_isomorphism() {
        let mut rng = XorShift64::seed_from_u64(3);
        for _ in 0..20 {
            let g = generators::random_connected(10, 0.3, &mut rng).unwrap();
            let (h, order) = bfs_renumber(&g).unwrap();
            assert!(is_bfs_numbering(&h));
            assert_eq!(h.num_edges(), g.num_edges());
            // Every edge of h maps back to an edge of g.
            for e in h.edges() {
                assert!(
                    g.edge_between(order[e.u], order[e.v]).is_some(),
                    "edge {e:?} has no preimage"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn renumber_rejects_non_permutation() {
        let g = generators::chain(3).unwrap();
        let _ = renumber(&g, &[0, 0, 2]);
    }

    #[test]
    fn shuffled_labels_detected_as_non_bfs() {
        // Chain 0-2-1: node numbering skips a generation.
        let g = QueryGraph::from_edges(3, [(0, 2), (2, 1)]).unwrap();
        assert!(!is_bfs_numbering(&g));
        let (h, _) = bfs_renumber(&g).unwrap();
        assert!(is_bfs_numbering(&h));
    }

    #[test]
    fn empty_graph_is_not_bfs_numbered() {
        let g = QueryGraph::new(0).unwrap();
        assert!(!is_bfs_numbering(&g));
    }

    #[test]
    fn single_node_is_bfs_numbered() {
        let g = QueryGraph::new(1).unwrap();
        assert!(is_bfs_numbering(&g));
    }
}
