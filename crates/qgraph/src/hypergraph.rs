//! Query **hypergraphs**: join predicates that reference more than two
//! relations.
//!
//! The paper's closing direction (realized in Moerkotte & Neumann's 2008
//! follow-up, "Dynamic Programming Strikes Back") is to generalize DPccp
//! from graphs to hypergraphs, where a predicate like
//! `R1.a + R2.b = R3.c` becomes a *hyperedge* `({R1,R2}, {R3})`: the
//! join of the two sides is only possible once all of `{R1,R2}` are on
//! one side. This module provides that substrate:
//!
//! * [`Hyperedge`] — an unordered pair of disjoint, non-empty relation
//!   sets; simple binary predicates are the `|u| = |v| = 1` special case;
//! * [`Hypergraph`] — edge storage plus the neighborhood/connection
//!   operations the DPhyp enumeration needs, with simple edges kept in
//!   an adjacency-bitset fast path.
//!
//! Connectivity on hypergraphs is subtle: the standard blob notion
//! implemented by [`Hypergraph::is_connected_set`] (an edge whose
//! referenced relations all lie inside the set connects them as a unit)
//! is necessary but **not** sufficient for a cross-product-free join
//! tree to exist — e.g. with the single edge `({R0}, {R1,R2})` the set
//! `{R0,R1,R2}` is blob-connected, yet `{R1,R2}` cannot be built as a
//! sub-plan. The DP algorithms therefore
//! treat "has a table entry" as the authoritative buildability test, and
//! report a dedicated "no plan without cross products" error when
//! the full set is unbuildable.

use core::fmt;

use joinopt_relset::{RelSet, MAX_RELATIONS};

use crate::error::QueryGraphError;
use crate::graph::QueryGraph;

/// Identifier of a hyperedge within a [`Hypergraph`].
pub type HyperEdgeId = usize;

/// An undirected hyperedge between two disjoint, non-empty relation
/// sets. Stored with `min(u) < min(v)` for a canonical orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hyperedge {
    /// Side containing the smaller minimum index.
    pub u: RelSet,
    /// The other side.
    pub v: RelSet,
}

impl Hyperedge {
    /// Normalizes two sides into a canonical hyperedge.
    ///
    /// # Panics
    ///
    /// Panics if either side is empty or the sides overlap; use
    /// [`Hypergraph::add_edge`] for validated construction.
    pub fn new(a: RelSet, b: RelSet) -> Hyperedge {
        assert!(
            !a.is_empty() && !b.is_empty(),
            "hyperedge sides must be non-empty"
        );
        assert!(a.is_disjoint(b), "hyperedge sides must be disjoint");
        if a.min_index() < b.min_index() {
            Hyperedge { u: a, v: b }
        } else {
            Hyperedge { u: b, v: a }
        }
    }

    /// `true` iff both sides are singletons (an ordinary binary
    /// predicate).
    pub fn is_simple(self) -> bool {
        self.u.is_singleton() && self.v.is_singleton()
    }

    /// All relations referenced by the predicate.
    pub fn as_set(self) -> RelSet {
        self.u | self.v
    }
}

impl fmt::Display for Hyperedge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} — {}", self.u, self.v)
    }
}

/// A query hypergraph over relations `R_0 … R_{n-1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    n: usize,
    /// Adjacency bitsets from the **simple** edges only (fast path).
    simple_adj: Vec<RelSet>,
    /// All edges, simple and complex, in insertion order.
    edges: Vec<Hyperedge>,
    /// Indices into `edges` of the complex (non-simple) ones.
    complex: Vec<HyperEdgeId>,
}

impl Hypergraph {
    /// Creates an edgeless hypergraph with `n` relations.
    ///
    /// # Errors
    ///
    /// Returns [`QueryGraphError::TooManyRelations`] if `n > 64`.
    pub fn new(n: usize) -> Result<Hypergraph, QueryGraphError> {
        if n > MAX_RELATIONS {
            return Err(QueryGraphError::TooManyRelations { n });
        }
        Ok(Hypergraph {
            n,
            simple_adj: vec![RelSet::EMPTY; n],
            edges: Vec::new(),
            complex: Vec::new(),
        })
    }

    /// Lifts an ordinary query graph (all edges simple).
    pub fn from_query_graph(g: &QueryGraph) -> Hypergraph {
        let mut h = Hypergraph::new(g.num_relations()).expect("same validated size");
        for e in g.edges() {
            h.add_edge(RelSet::single(e.u), RelSet::single(e.v))
                .expect("validated edges stay valid");
        }
        h
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.n
    }

    /// Number of edges (simple + complex).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of complex (hyper) edges.
    pub fn num_complex_edges(&self) -> usize {
        self.complex.len()
    }

    /// The set of all relations.
    pub fn all_relations(&self) -> RelSet {
        RelSet::full(self.n)
    }

    /// All edges, indexable by [`HyperEdgeId`].
    pub fn edges(&self) -> &[Hyperedge] {
        &self.edges
    }

    /// Adds a hyperedge between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Rejects empty sides, overlapping sides, out-of-range members and
    /// exact duplicates.
    pub fn add_edge(&mut self, a: RelSet, b: RelSet) -> Result<HyperEdgeId, QueryGraphError> {
        let all = self.all_relations();
        if a.is_empty() || b.is_empty() {
            return Err(QueryGraphError::InvalidSize {
                n: 0,
                what: "hyperedge side",
            });
        }
        for side in [a, b] {
            if !side.is_subset(all) {
                return Err(QueryGraphError::NodeOutOfRange {
                    node: side.max_index().unwrap_or(0),
                    n: self.n,
                });
            }
        }
        if a.overlaps(b) {
            return Err(QueryGraphError::SelfLoop {
                node: (a & b).min_index().expect("overlap is non-empty"),
            });
        }
        let edge = Hyperedge::new(a, b);
        if self.edges.contains(&edge) {
            return Err(QueryGraphError::DuplicateEdge {
                u: edge.u.min_index().expect("non-empty"),
                v: edge.v.min_index().expect("non-empty"),
            });
        }
        let id = self.edges.len();
        if edge.is_simple() {
            let (x, y) = (
                edge.u.min_index().expect("singleton"),
                edge.v.min_index().expect("singleton"),
            );
            self.simple_adj[x].insert(y);
            self.simple_adj[y].insert(x);
        } else {
            self.complex.push(id);
        }
        self.edges.push(edge);
        Ok(id)
    }

    /// The DPhyp neighborhood `𝒩(S, X)`: representative (minimum) nodes
    /// of edge sides reachable from `S`, excluding anything in `S ∪ X`.
    ///
    /// For a simple edge the representative is the neighbor itself; for
    /// a complex edge `(u, w)` with `u ⊆ S` and `w ∩ (S ∪ X) = ∅` it is
    /// `min(w)`.
    pub fn neighborhood(&self, s: RelSet, x: RelSet) -> RelSet {
        let forbidden = s | x;
        let mut nb = RelSet::EMPTY;
        for v in s.iter() {
            nb |= self.simple_adj[v];
        }
        nb -= forbidden;
        for &id in &self.complex {
            let e = self.edges[id];
            if e.u.is_subset(s) && e.v.is_disjoint(forbidden) {
                nb.insert(e.v.min_index().expect("non-empty side"));
            } else if e.v.is_subset(s) && e.u.is_disjoint(forbidden) {
                nb.insert(e.u.min_index().expect("non-empty side"));
            }
        }
        nb
    }

    /// `true` iff some edge has one side inside `s1` and the other
    /// inside `s2` — the DPhyp applicability test for joining the two.
    pub fn connects(&self, s1: RelSet, s2: RelSet) -> bool {
        // Simple-edge fast path.
        let (small, big) = if s1.len() <= s2.len() {
            (s1, s2)
        } else {
            (s2, s1)
        };
        if small.iter().any(|v| self.simple_adj[v].overlaps(big)) {
            return true;
        }
        self.complex.iter().any(|&id| {
            let e = self.edges[id];
            (e.u.is_subset(s1) && e.v.is_subset(s2)) || (e.u.is_subset(s2) && e.v.is_subset(s1))
        })
    }

    /// Connectivity of the induced sub-hypergraph, in the standard
    /// hypergraph sense: every edge whose referenced relations all lie
    /// inside `s` acts as a blob connecting those relations; `s` is
    /// connected iff the blobs and singletons form one component.
    ///
    /// This is a *necessary* condition for a cross-product-free join
    /// tree over `s` to exist, but not sufficient (see module docs);
    /// the DP table is the authoritative buildability test.
    pub fn is_connected_set(&self, s: RelSet) -> bool {
        if s.is_empty() {
            return false;
        }
        // Grow one component until stable (edge counts are small; no
        // union-find machinery needed).
        let mut component = s.lowest();
        loop {
            let mut grew = false;
            // Simple edges: absorb adjacent members of s in bulk.
            let mut nb = RelSet::EMPTY;
            for v in component.iter() {
                nb |= self.simple_adj[v];
            }
            let grow = (nb & s) - component;
            if !grow.is_empty() {
                component |= grow;
                grew = true;
            }
            for &id in &self.complex {
                let refs = self.edges[id].as_set();
                if refs.is_subset(s) && refs.overlaps(component) && !refs.is_subset(component) {
                    component |= refs;
                    grew = true;
                }
            }
            if component == s {
                return true;
            }
            if !grew {
                return false;
            }
        }
    }

    /// `true` iff the whole hypergraph is connected (in the blob sense
    /// of [`Hypergraph::is_connected_set`]).
    pub fn is_connected(&self) -> bool {
        self.n > 0 && self.is_connected_set(self.all_relations())
    }
}

impl fmt::Display for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Hypergraph(n={}, m={} [{} complex])",
            self.n,
            self.edges.len(),
            self.complex.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use joinopt_relset::RelIdx;

    fn set(indices: impl IntoIterator<Item = RelIdx>) -> RelSet {
        RelSet::from_indices(indices)
    }

    #[test]
    fn edge_normalization() {
        let e = Hyperedge::new(set([3, 4]), set([0, 1]));
        assert_eq!(e.u, set([0, 1]));
        assert_eq!(e.v, set([3, 4]));
        assert!(!e.is_simple());
        assert_eq!(e.as_set(), set([0, 1, 3, 4]));
        assert!(Hyperedge::new(set([0]), set([1])).is_simple());
        assert!(e.to_string().contains("R0"));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_edge_panics() {
        let _ = Hyperedge::new(set([0, 1]), set([1, 2]));
    }

    #[test]
    fn add_edge_validation() {
        let mut h = Hypergraph::new(4).unwrap();
        assert!(h.add_edge(RelSet::EMPTY, set([1])).is_err());
        assert!(h.add_edge(set([0]), set([0, 1])).is_err()); // overlap
        assert!(h.add_edge(set([0]), set([9])).is_err()); // out of range
        h.add_edge(set([0]), set([1])).unwrap();
        assert!(h.add_edge(set([1]), set([0])).is_err()); // duplicate
        h.add_edge(set([0, 1]), set([2, 3])).unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.num_complex_edges(), 1);
        assert!(Hypergraph::new(65).is_err());
    }

    #[test]
    fn lifting_a_query_graph() {
        let g = generators::cycle(5).unwrap();
        let h = Hypergraph::from_query_graph(&g);
        assert_eq!(h.num_relations(), 5);
        assert_eq!(h.num_edges(), 5);
        assert_eq!(h.num_complex_edges(), 0);
        assert!(h.is_connected());
        // Neighborhoods agree with the graph's on simple edges.
        for v in 0..5 {
            assert_eq!(
                h.neighborhood(RelSet::single(v), RelSet::EMPTY),
                g.neighborhood(RelSet::single(v))
            );
        }
    }

    #[test]
    fn complex_neighborhood_uses_representatives() {
        // ({0}, {1,2}): from {0}, the representative is min{1,2} = 1.
        let mut h = Hypergraph::new(3).unwrap();
        h.add_edge(set([0]), set([1, 2])).unwrap();
        assert_eq!(h.neighborhood(set([0]), RelSet::EMPTY), set([1]));
        // Excluding node 1 blocks the whole side.
        assert_eq!(h.neighborhood(set([0]), set([1])), RelSet::EMPTY);
        // From {1,2} the representative of {0} is 0.
        assert_eq!(h.neighborhood(set([1, 2]), RelSet::EMPTY), set([0]));
        // From {1} alone the edge does not fire (u ⊄ {1}).
        assert_eq!(h.neighborhood(set([1]), RelSet::EMPTY), RelSet::EMPTY);
    }

    #[test]
    fn connects_requires_full_sides() {
        let mut h = Hypergraph::new(4).unwrap();
        h.add_edge(set([0, 1]), set([2])).unwrap();
        assert!(h.connects(set([0, 1]), set([2])));
        assert!(h.connects(set([2]), set([0, 1, 3])));
        assert!(!h.connects(set([0]), set([2]))); // u not fully inside
        assert!(!h.connects(set([0, 1]), set([3])));
    }

    #[test]
    fn reachability_connectivity() {
        let mut h = Hypergraph::new(4).unwrap();
        h.add_edge(set([0]), set([1])).unwrap();
        h.add_edge(set([0, 1]), set([2, 3])).unwrap();
        assert!(h.is_connected_set(set([0, 1])));
        assert!(h.is_connected_set(RelSet::full(4)));
        assert!(!h.is_connected_set(set([2, 3]))); // no internal edge
        assert!(!h.is_connected_set(set([0, 2])));
        assert!(!h.is_connected_set(RelSet::EMPTY));
        assert!(h.is_connected());
    }

    #[test]
    fn reachable_but_not_buildable_documented_case() {
        // ({R0}, {R1,R2}): the full set is blob-connected even though
        // {R1,R2} alone is not buildable — the documented gap DPhyp
        // resolves through table membership.
        let mut h = Hypergraph::new(3).unwrap();
        h.add_edge(set([0]), set([1, 2])).unwrap();
        assert!(h.is_connected_set(RelSet::full(3)));
        assert!(!h.is_connected_set(set([1, 2])));
    }

    #[test]
    fn display_counts_edges() {
        let mut h = Hypergraph::new(3).unwrap();
        h.add_edge(set([0]), set([1])).unwrap();
        h.add_edge(set([0, 1]), set([2])).unwrap();
        assert_eq!(h.to_string(), "Hypergraph(n=3, m=2 [1 complex])");
    }
}
