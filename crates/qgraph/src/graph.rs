//! The [`QueryGraph`] type.

use core::fmt;

use joinopt_relset::{RelIdx, RelSet, MAX_RELATIONS};

use crate::error::QueryGraphError;

/// Identifier of an edge (join predicate) within a [`QueryGraph`].
pub type EdgeId = usize;

/// An undirected edge between two relations, stored with `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: RelIdx,
    /// Larger endpoint.
    pub v: RelIdx,
}

impl Edge {
    /// Normalizes an endpoint pair into an `Edge` (`u < v`).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loop).
    #[inline]
    pub fn new(a: RelIdx, b: RelIdx) -> Edge {
        assert!(a != b, "self-loop is not a valid edge");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The two endpoints as a set.
    #[inline]
    pub fn as_set(self) -> RelSet {
        RelSet::single(self.u) | RelSet::single(self.v)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{} — R{}", self.u, self.v)
    }
}

/// An undirected query graph over relations `R_0 … R_{n-1}`.
///
/// The adjacency structure is a `Vec<RelSet>`: `adj[v]` is the neighborhood
/// `𝒩(v)` as a bitset, which makes the set-level operations the paper's
/// algorithms need (neighborhood of a set, connectivity of an induced
/// subgraph, connectivity between two sets) loops over machine words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryGraph {
    n: usize,
    adj: Vec<RelSet>,
    edges: Vec<Edge>,
}

impl QueryGraph {
    /// Creates an edgeless graph with `n` relations.
    ///
    /// # Errors
    ///
    /// Returns [`QueryGraphError::TooManyRelations`] if `n > 64`.
    pub fn new(n: usize) -> Result<QueryGraph, QueryGraphError> {
        if n > MAX_RELATIONS {
            return Err(QueryGraphError::TooManyRelations { n });
        }
        Ok(QueryGraph {
            n,
            adj: vec![RelSet::EMPTY; n],
            edges: Vec::new(),
        })
    }

    /// Number of relations (nodes).
    #[inline]
    pub fn num_relations(&self) -> usize {
        self.n
    }

    /// Number of join predicates (edges).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The set of all relations `{R_0, …, R_{n-1}}`.
    #[inline]
    pub fn all_relations(&self) -> RelSet {
        RelSet::full(self.n)
    }

    /// Adds an undirected edge (join predicate) between `a` and `b`.
    ///
    /// Returns the new edge's [`EdgeId`].
    ///
    /// # Errors
    ///
    /// Rejects out-of-range endpoints, self-loops and duplicate edges.
    pub fn add_edge(&mut self, a: RelIdx, b: RelIdx) -> Result<EdgeId, QueryGraphError> {
        if a >= self.n {
            return Err(QueryGraphError::NodeOutOfRange { node: a, n: self.n });
        }
        if b >= self.n {
            return Err(QueryGraphError::NodeOutOfRange { node: b, n: self.n });
        }
        if a == b {
            return Err(QueryGraphError::SelfLoop { node: a });
        }
        if self.adj[a].contains(b) {
            let e = Edge::new(a, b);
            return Err(QueryGraphError::DuplicateEdge { u: e.u, v: e.v });
        }
        self.adj[a].insert(b);
        self.adj[b].insert(a);
        self.edges.push(Edge::new(a, b));
        Ok(self.edges.len() - 1)
    }

    /// Convenience constructor from an edge list.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`QueryGraph::new`] and
    /// [`QueryGraph::add_edge`].
    pub fn from_edges<I>(n: usize, edges: I) -> Result<QueryGraph, QueryGraphError>
    where
        I: IntoIterator<Item = (RelIdx, RelIdx)>,
    {
        let mut g = QueryGraph::new(n)?;
        for (a, b) in edges {
            g.add_edge(a, b)?;
        }
        Ok(g)
    }

    /// The neighborhood `𝒩(v)` of a single node, as a bitset.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: RelIdx) -> RelSet {
        self.adj[v]
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: RelIdx) -> usize {
        self.adj[v].len()
    }

    /// The edges, indexable by [`EdgeId`].
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Looks up the id of the edge between `a` and `b`, if present.
    pub fn edge_between(&self, a: RelIdx, b: RelIdx) -> Option<EdgeId> {
        if a >= self.n || !self.adj[a].contains(b) {
            return None;
        }
        let want = Edge::new(a, b);
        self.edges.iter().position(|e| *e == want)
    }

    /// The neighborhood of a set, `𝒩(S) := ⋃_{v∈S} 𝒩(v) \ S`
    /// (paper, Section 3.2).
    #[inline]
    pub fn neighborhood(&self, s: RelSet) -> RelSet {
        let mut acc = RelSet::EMPTY;
        for v in s.iter() {
            acc |= self.adj[v];
        }
        acc - s
    }

    /// `true` iff the subgraph induced by `s` is connected.
    ///
    /// The empty set is *not* connected; singletons are.
    pub fn is_connected_set(&self, s: RelSet) -> bool {
        let Some(start) = s.min_index() else {
            return false;
        };
        let mut reached = RelSet::single(start);
        let mut frontier = reached;
        while !frontier.is_empty() {
            let mut next = RelSet::EMPTY;
            for v in frontier.iter() {
                next |= self.adj[v];
            }
            next = (next & s) - reached;
            reached |= next;
            frontier = next;
        }
        reached == s
    }

    /// `true` iff there is at least one join predicate with one endpoint in
    /// `s1` and the other in `s2` ("S₁ connected to S₂" in the paper).
    ///
    /// Does **not** require or check disjointness.
    #[inline]
    pub fn sets_connected(&self, s1: RelSet, s2: RelSet) -> bool {
        // Iterate the smaller side.
        let (small, big) = if s1.len() <= s2.len() {
            (s1, s2)
        } else {
            (s2, s1)
        };
        small.iter().any(|v| self.adj[v].overlaps(big))
    }

    /// `true` iff the whole graph is connected (and non-empty).
    #[inline]
    pub fn is_connected(&self) -> bool {
        self.n > 0 && self.is_connected_set(self.all_relations())
    }

    /// Validates that the graph is a usable join-ordering input:
    /// non-empty and connected.
    ///
    /// # Errors
    ///
    /// Returns [`QueryGraphError::Disconnected`] otherwise.
    pub fn require_connected(&self) -> Result<(), QueryGraphError> {
        if self.is_connected() {
            Ok(())
        } else {
            Err(QueryGraphError::Disconnected)
        }
    }

    /// Iterates over the edges crossing the cut between `s1` and `s2`.
    pub fn edges_between_sets<'a>(
        &'a self,
        s1: RelSet,
        s2: RelSet,
    ) -> impl Iterator<Item = EdgeId> + 'a {
        self.edges.iter().enumerate().filter_map(move |(id, e)| {
            let (inu, inv) = (s1.contains(e.u), s1.contains(e.v));
            let (ju, jv) = (s2.contains(e.u), s2.contains(e.v));
            if (inu && jv) || (inv && ju) {
                Some(id)
            } else {
                None
            }
        })
    }

    /// Iterates over the edges with **both** endpoints inside `s`.
    pub fn edges_within<'a>(&'a self, s: RelSet) -> impl Iterator<Item = EdgeId> + 'a {
        self.edges
            .iter()
            .enumerate()
            .filter_map(move |(id, e)| (s.contains(e.u) && s.contains(e.v)).then_some(id))
    }

    /// Renders the graph in Graphviz DOT syntax (undirected).
    pub fn to_dot(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::from("graph query {\n");
        for v in 0..self.n {
            let _ = writeln!(out, "    R{v};");
        }
        for e in &self.edges {
            let _ = writeln!(out, "    R{} -- R{};", e.u, e.v);
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for QueryGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QueryGraph(n={}, m={})", self.n, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> QueryGraph {
        QueryGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let g = path4();
        assert_eq!(g.num_relations(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.all_relations(), RelSet::full(4));
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = QueryGraph::new(3).unwrap();
        assert_eq!(
            g.add_edge(0, 3),
            Err(QueryGraphError::NodeOutOfRange { node: 3, n: 3 })
        );
        assert_eq!(g.add_edge(1, 1), Err(QueryGraphError::SelfLoop { node: 1 }));
        g.add_edge(0, 1).unwrap();
        assert_eq!(
            g.add_edge(1, 0),
            Err(QueryGraphError::DuplicateEdge { u: 0, v: 1 })
        );
    }

    #[test]
    fn rejects_too_many_relations() {
        assert_eq!(
            QueryGraph::new(65),
            Err(QueryGraphError::TooManyRelations { n: 65 })
        );
        assert!(QueryGraph::new(64).is_ok());
    }

    #[test]
    fn neighbors_and_degree() {
        let g = path4();
        assert_eq!(g.neighbors(0), RelSet::single(1));
        assert_eq!(g.neighbors(1), RelSet::from_indices([0, 2]));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn set_neighborhood() {
        let g = path4();
        assert_eq!(
            g.neighborhood(RelSet::from_indices([1, 2])),
            RelSet::from_indices([0, 3])
        );
        assert_eq!(g.neighborhood(RelSet::single(0)), RelSet::single(1));
        assert_eq!(g.neighborhood(RelSet::full(4)), RelSet::EMPTY);
        assert_eq!(g.neighborhood(RelSet::EMPTY), RelSet::EMPTY);
    }

    #[test]
    fn neighborhood_union_law() {
        // 𝒩(S ∪ S') = (𝒩(S) ∪ 𝒩(S')) \ (S ∪ S')   (paper, Section 3.2)
        let g = path4();
        let s = RelSet::single(0);
        let t = RelSet::single(2);
        let lhs = g.neighborhood(s | t);
        let rhs = (g.neighborhood(s) | g.neighborhood(t)) - (s | t);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn connected_sets() {
        let g = path4();
        assert!(g.is_connected_set(RelSet::single(2)));
        assert!(g.is_connected_set(RelSet::from_indices([0, 1, 2])));
        assert!(!g.is_connected_set(RelSet::from_indices([0, 2])));
        assert!(!g.is_connected_set(RelSet::EMPTY));
        assert!(g.is_connected());
    }

    #[test]
    fn sets_connected_cross_edges() {
        let g = path4();
        assert!(g.sets_connected(RelSet::from_indices([0, 1]), RelSet::from_indices([2, 3])));
        assert!(!g.sets_connected(RelSet::single(0), RelSet::from_indices([2, 3])));
        assert!(!g.sets_connected(RelSet::EMPTY, RelSet::full(4)));
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = QueryGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.require_connected(), Err(QueryGraphError::Disconnected));
    }

    #[test]
    fn empty_graph_not_connected() {
        let g = QueryGraph::new(0).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn single_node_graph_connected() {
        let g = QueryGraph::new(1).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn edge_lookup() {
        let g = path4();
        assert_eq!(g.edge_between(1, 0), Some(0));
        assert_eq!(g.edge_between(2, 1), Some(1));
        assert_eq!(g.edge_between(0, 2), None);
        assert_eq!(g.edge_between(0, 9), None);
    }

    #[test]
    fn cut_and_internal_edges() {
        let g = path4();
        let left = RelSet::from_indices([0, 1]);
        let right = RelSet::from_indices([2, 3]);
        let cut: Vec<_> = g.edges_between_sets(left, right).collect();
        assert_eq!(cut, vec![1]); // the (1,2) edge
        let within: Vec<_> = g.edges_within(left).collect();
        assert_eq!(within, vec![0]); // the (0,1) edge
        assert_eq!(g.edges_within(RelSet::full(4)).count(), 3);
    }

    #[test]
    fn dot_output_contains_edges() {
        let dot = path4().to_dot();
        assert!(dot.contains("R0 -- R1"));
        assert!(dot.contains("R2 -- R3"));
        assert!(dot.starts_with("graph query {"));
    }

    #[test]
    fn edge_normalization_and_display() {
        let e = Edge::new(5, 2);
        assert_eq!(e, Edge { u: 2, v: 5 });
        assert_eq!(e.as_set(), RelSet::from_indices([2, 5]));
        assert_eq!(e.to_string(), "R2 — R5");
    }
}
