//! Enumeration of connected subgraphs and csg-cmp-pairs
//! (paper, Section 3: `EnumerateCsg`, `EnumerateCsgRec`, `EnumerateCmp`).
//!
//! These are the routines that make DPccp hit the Ono/Lohman lower bound:
//! every csg-cmp-pair is produced exactly once, in an order valid for
//! dynamic programming, with at most linear overhead per pair.
//!
//! # Erratum in the published pseudocode
//!
//! The paper defines `B_i(W) := {v_j ∈ W | j ≤ i}` in Section 3.3 but the
//! printed `EnumerateCmp` never uses it — it recurses with the exclusion
//! set `X ∪ N`. That version is incomplete: on a 4-cycle
//! `0—1—2—3—0` with `S₁ = {R0}` the complement `{R1,R2,R3}` is never
//! emitted (from start `R1` the other hub neighbor `R3` is excluded, and
//! vice versa), and the pair is not recovered commutatively either.
//! The correct recursion — consistent with the definition the paper
//! introduces and with the successor DPhyp paper — excludes only the
//! *already-tried* neighbors: `X ∪ B_i(N)`. We implement that version;
//! the tests verify exact agreement with the `#ccp` closed forms and
//! exactly-once emission on randomized graphs.
//!
//! # On the BFS-numbering precondition
//!
//! The paper states breadth-first numbering
//! ([`crate::bfs::is_bfs_numbering`]) as a precondition — it is the device
//! its correctness proofs are built on. The algorithms are in fact correct
//! for **any** node numbering (the uniqueness/completeness arguments only
//! use the total order of labels, as the successor DPhyp paper makes
//! explicit), and the natural numbering of cycle graphs with `n ≥ 4` is
//! not BFS. The tests in this module therefore verify the enumeration on
//! arbitrarily renumbered random graphs as well as on the raw families;
//! [`crate::bfs::bfs_renumber`] remains available for strict fidelity.

use joinopt_relset::RelSet;

use crate::graph::QueryGraph;

/// Calls `f` for every non-empty connected subset of `g`'s nodes,
/// in an order where every set appears after all of its connected
/// subsets (`EnumerateCsg`, Fig. in Section 3.2).
pub fn for_each_csg<F: FnMut(RelSet)>(g: &QueryGraph, mut f: F) {
    let _ = try_for_each_csg::<core::convert::Infallible, _>(g, |s| {
        f(s);
        Ok(())
    });
}

/// Fallible [`for_each_csg`]: stops the enumeration at the first `Err`
/// the callback returns and forwards it. The emission order of the
/// successful prefix is identical to `for_each_csg` (which delegates
/// here).
pub fn try_for_each_csg<E, F: FnMut(RelSet) -> Result<(), E>>(
    g: &QueryGraph,
    mut f: F,
) -> Result<(), E> {
    let n = g.num_relations();
    for i in (0..n).rev() {
        let s = RelSet::single(i);
        f(s)?;
        csg_rec(g, s, RelSet::prefix_through(i), g.neighborhood(s), &mut f)?;
    }
    Ok(())
}

/// `EnumerateCsgRec`: extends the connected set `s` by non-empty subsets
/// of its neighborhood, excluding `x`, emitting each extension and then
/// recursing ("subsets first").
///
/// `nb_s` must be `g.neighborhood(s)`; it is threaded through the
/// recursion so neighborhoods are maintained incrementally via
/// `𝒩(S ∪ S') = (𝒩(S) ∪ 𝒩(S')) \ (S ∪ S')`.
fn csg_rec<E, F: FnMut(RelSet) -> Result<(), E>>(
    g: &QueryGraph,
    s: RelSet,
    x: RelSet,
    nb_s: RelSet,
    f: &mut F,
) -> Result<(), E> {
    let n = nb_s - x;
    if n.is_empty() {
        return Ok(());
    }
    for sp in n.non_empty_subsets() {
        f(s | sp)?;
    }
    for sp in n.non_empty_subsets() {
        let s2 = s | sp;
        let mut nb2 = nb_s;
        for v in sp.iter() {
            nb2 |= g.neighbors(v);
        }
        csg_rec(g, s2, x | n, nb2 - s2, f)?;
    }
    Ok(())
}

/// `EnumerateCmp`: calls `f` for every set `s2` such that `(s1, s2)` is a
/// csg-cmp-pair and `min(s2) > min(s1)` — i.e. the canonical
/// representative of each commutative pair.
///
/// `s1` must be a non-empty connected subset of `g`.
pub fn for_each_cmp<F: FnMut(RelSet)>(g: &QueryGraph, s1: RelSet, mut f: F) {
    let _ = try_for_each_cmp::<core::convert::Infallible, _>(g, s1, |s2| {
        f(s2);
        Ok(())
    });
}

/// Fallible [`for_each_cmp`]: stops at the first `Err` and forwards it.
pub fn try_for_each_cmp<E, F: FnMut(RelSet) -> Result<(), E>>(
    g: &QueryGraph,
    s1: RelSet,
    mut f: F,
) -> Result<(), E> {
    let min = s1.min_index().expect("s1 must be non-empty");
    let x = RelSet::prefix_through(min) | s1;
    let n = g.neighborhood(s1) - x;
    for i in n.iter_descending() {
        let s2 = RelSet::single(i);
        f(s2)?;
        // Erratum fix: exclude only the neighbors of s1 already tried as
        // start vertices (B_i(N)), not all of N.
        let x2 = x | (n & RelSet::prefix_through(i));
        csg_rec(g, s2, x2, g.neighborhood(s2), &mut f)?;
    }
    Ok(())
}

/// Calls `f(s1, s2)` for every csg-cmp-pair of `g`, each unordered pair
/// exactly once, in an order valid for dynamic programming: when
/// `(s1, s2)` is produced, every decomposition of `s1` and of `s2` has
/// been produced earlier.
pub fn for_each_ccp<F: FnMut(RelSet, RelSet)>(g: &QueryGraph, mut f: F) {
    let _ = try_for_each_ccp::<core::convert::Infallible, _>(g, |s1, s2| {
        f(s1, s2);
        Ok(())
    });
}

/// Fallible [`for_each_ccp`]: stops the enumeration at the first `Err`
/// the callback returns and forwards it — the hook cooperative
/// cancellation and budget enforcement need to abort DPccp mid-run.
pub fn try_for_each_ccp<E, F: FnMut(RelSet, RelSet) -> Result<(), E>>(
    g: &QueryGraph,
    mut f: F,
) -> Result<(), E> {
    try_for_each_csg(g, |s1| try_for_each_cmp(g, s1, |s2| f(s1, s2)))
}

/// Counts the non-empty connected subsets (`#csg`) by enumeration.
pub fn count_csg(g: &QueryGraph) -> u64 {
    let mut count = 0u64;
    for_each_csg(g, |_| count += 1);
    count
}

/// Counts csg-cmp-pairs by enumeration, symmetric pairs **excluded**
/// (the Ono/Lohman convention; `#ccp / 2` in the paper's notation).
pub fn count_ccp_distinct(g: &QueryGraph) -> u64 {
    let mut count = 0u64;
    for_each_ccp(g, |_, _| count += 1);
    count
}

/// Collects all non-empty connected subsets in emission order.
pub fn collect_csgs(g: &QueryGraph) -> Vec<RelSet> {
    let mut out = Vec::new();
    for_each_csg(g, |s| out.push(s));
    out
}

/// Collects all csg-cmp-pairs (canonical orientation) in emission order.
pub fn collect_ccps(g: &QueryGraph) -> Vec<(RelSet, RelSet)> {
    let mut out = Vec::new();
    for_each_ccp(g, |a, b| out.push((a, b)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphKind;
    use joinopt_relset::RelSet;
    use std::collections::HashSet;

    /// Brute-force reference: all connected subsets by subset scan.
    fn brute_csgs(g: &QueryGraph) -> HashSet<RelSet> {
        let n = g.num_relations();
        let mut out = HashSet::new();
        for bits in 1..(1u64 << n) {
            let s = RelSet::from_bits(bits);
            if g.is_connected_set(s) {
                out.insert(s);
            }
        }
        out
    }

    /// Brute-force reference: all csg-cmp-pairs, canonicalized with the
    /// smaller min-index component first.
    fn brute_ccps(g: &QueryGraph) -> HashSet<(RelSet, RelSet)> {
        let mut out = HashSet::new();
        let csgs: Vec<RelSet> = brute_csgs(g).into_iter().collect();
        for &s1 in &csgs {
            for &s2 in &csgs {
                if s1.is_disjoint(s2) && g.sets_connected(s1, s2) && s1.min_index() < s2.min_index()
                {
                    out.insert((s1, s2));
                }
            }
        }
        out
    }

    #[test]
    fn csg_enumeration_matches_brute_force_on_families() {
        for kind in GraphKind::ALL {
            for n in 1..=8 {
                let g = generators::generate(kind, n);
                let fast: Vec<RelSet> = collect_csgs(&g);
                let fast_set: HashSet<RelSet> = fast.iter().copied().collect();
                assert_eq!(
                    fast.len(),
                    fast_set.len(),
                    "{kind} n={n}: duplicate emission"
                );
                assert_eq!(fast_set, brute_csgs(&g), "{kind} n={n}: wrong csg set");
            }
        }
    }

    #[test]
    fn csg_emission_order_is_dp_valid() {
        for kind in GraphKind::ALL {
            let g = generators::generate(kind, 7);
            let order = collect_csgs(&g);
            for (i, s) in order.iter().enumerate() {
                for t in &order[i + 1..] {
                    assert!(
                        !t.is_strict_subset(*s),
                        "{kind}: {t} emitted after its superset {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn ccp_enumeration_matches_brute_force_on_families() {
        for kind in GraphKind::ALL {
            for n in 2..=8 {
                let g = generators::generate(kind, n);
                let pairs = collect_ccps(&g);
                let canon: HashSet<(RelSet, RelSet)> = pairs
                    .iter()
                    .map(|&(a, b)| {
                        if a.min_index() < b.min_index() {
                            (a, b)
                        } else {
                            (b, a)
                        }
                    })
                    .collect();
                assert_eq!(pairs.len(), canon.len(), "{kind} n={n}: duplicate pair");
                assert_eq!(canon, brute_ccps(&g), "{kind} n={n}: wrong pair set");
            }
        }
    }

    #[test]
    fn ccp_pairs_are_valid() {
        for kind in GraphKind::ALL {
            let g = generators::generate(kind, 8);
            for_each_ccp(&g, |s1, s2| {
                assert!(!s1.is_empty() && !s2.is_empty());
                assert!(s1.is_disjoint(s2));
                assert!(g.is_connected_set(s1), "{kind}: {s1} not connected");
                assert!(g.is_connected_set(s2), "{kind}: {s2} not connected");
                assert!(g.sets_connected(s1, s2), "{kind}: {s1} ⊮ {s2}");
            });
        }
    }

    #[test]
    fn ccp_order_is_dp_valid() {
        // When (s1, s2) is emitted, every proper decomposition of s1 and
        // s2 must already have been emitted (as a pair covering it).
        for kind in GraphKind::ALL {
            let g = generators::generate(kind, 7);
            let mut built: HashSet<RelSet> = (0..7).map(RelSet::single).collect();
            for_each_ccp(&g, |s1, s2| {
                assert!(built.contains(&s1), "{kind}: BestPlan({s1}) not yet built");
                assert!(built.contains(&s2), "{kind}: BestPlan({s2}) not yet built");
                built.insert(s1 | s2);
            });
            assert!(
                built.contains(&g.all_relations()),
                "{kind}: final plan never built"
            );
        }
    }

    #[test]
    fn erratum_regression_four_cycle() {
        // With the paper's printed `X ∪ N` exclusion, the pair
        // ({R0}, {R1,R2,R3}) on the 4-cycle is lost. Guard against it.
        let g = generators::cycle(4).unwrap();
        let pairs = collect_ccps(&g);
        let want = (RelSet::single(0), RelSet::from_indices([1, 2, 3]));
        assert!(
            pairs.contains(&want),
            "corrected EnumerateCmp must emit ({}, {})",
            want.0,
            want.1
        );
    }

    #[test]
    fn paper_example_enumerate_cmp() {
        // Section 3.3 example: graph of Fig. 6, S1 = {R1} →
        // complements {R4}, {R2,R4}, {R3,R4}, {R2,R3,R4}.
        let g =
            QueryGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)]).unwrap();
        let mut got = Vec::new();
        for_each_cmp(&g, RelSet::single(1), |s2| got.push(s2));
        let got: HashSet<RelSet> = got.into_iter().collect();
        let want: HashSet<RelSet> = [
            RelSet::single(4),
            RelSet::from_indices([2, 4]),
            RelSet::from_indices([3, 4]),
            RelSet::from_indices([2, 3, 4]),
        ]
        .into_iter()
        .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn paper_example_enumerate_csg_first_steps() {
        // Fig. 7: starting nodes emit in descending order; {4} first,
        // then {3}, {3,4}, then {2}, {2,3}, {2,4}, {2,3,4}, …
        let g =
            QueryGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)]).unwrap();
        let order = collect_csgs(&g);
        assert_eq!(order[0], RelSet::single(4));
        assert_eq!(order[1], RelSet::single(3));
        assert_eq!(order[2], RelSet::from_indices([3, 4]));
        assert_eq!(order[3], RelSet::single(2));
        // total #csg for this graph: count by brute force
        assert_eq!(order.len(), brute_csgs(&g).len());
    }

    #[test]
    fn try_variants_abort_early_and_preserve_prefix_order() {
        let g = generators::generate(GraphKind::Cycle, 7);
        let full = collect_ccps(&g);
        let stop_after = full.len() / 2;
        let mut seen = Vec::new();
        let r = try_for_each_ccp(&g, |a, b| {
            if seen.len() == stop_after {
                return Err("stop");
            }
            seen.push((a, b));
            Ok(())
        });
        assert_eq!(r, Err("stop"));
        assert_eq!(seen, full[..stop_after]);

        let mut count = 0usize;
        try_for_each_csg::<core::convert::Infallible, _>(&g, |_| {
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count as u64, count_csg(&g));
    }

    #[test]
    fn counts_on_singleton_graph() {
        let g = QueryGraph::new(1).unwrap();
        assert_eq!(count_csg(&g), 1);
        assert_eq!(count_ccp_distinct(&g), 0);
    }

    #[test]
    fn random_graphs_match_brute_force() {
        use joinopt_relset::XorShift64;
        let mut rng = XorShift64::seed_from_u64(2006);
        for trial in 0..30 {
            // Deliberately do NOT renumber: the enumeration must be
            // correct for arbitrary numberings (see module docs).
            let g = generators::random_connected(8, 0.3, &mut rng).unwrap();
            let fast: HashSet<RelSet> = collect_csgs(&g).into_iter().collect();
            assert_eq!(fast, brute_csgs(&g), "trial {trial}: csg mismatch");
            let pairs = collect_ccps(&g);
            let canon: HashSet<(RelSet, RelSet)> = pairs
                .iter()
                .map(|&(a, b)| {
                    if a.min_index() < b.min_index() {
                        (a, b)
                    } else {
                        (b, a)
                    }
                })
                .collect();
            assert_eq!(pairs.len(), canon.len(), "trial {trial}: duplicate pair");
            assert_eq!(canon, brute_ccps(&g), "trial {trial}: ccp mismatch");
        }
    }
}
