//! Query graphs and connected-subgraph machinery for join ordering.
//!
//! A *query graph* has one node per relation and one edge per join
//! predicate. All three dynamic-programming algorithms of Moerkotte &
//! Neumann (VLDB 2006) consume a connected query graph; DPccp additionally
//! requires the nodes to be numbered in breadth-first order.
//!
//! This crate provides:
//!
//! * [`QueryGraph`] — adjacency-bitset representation with the set
//!   operations the algorithms need: neighborhoods `𝒩(S)`, connectivity
//!   of induced subgraphs, and connectivity *between* two sets;
//! * [`generators`] — the four families the paper evaluates (chain,
//!   cycle, star, clique) plus trees, grids and seeded random connected
//!   graphs for testing and extension studies;
//! * [`bfs`] — breadth-first numbering and graph renumbering, the
//!   precondition of `EnumerateCsg` / `EnumerateCmp`;
//! * [`csg`] — the paper's Section 3 enumeration algorithms:
//!   `EnumerateCsg`, `EnumerateCsgRec` and `EnumerateCmp` (with the
//!   published pseudocode's exclusion-set typo corrected, see module
//!   docs), composed into a csg-cmp-pair driver;
//! * [`profile`] — per-size connected-subset counts (`c_k`), through
//!   which the paper's counter formulas factor;
//! * [`formulas`] — closed forms for `#csg` and `#ccp` on the four
//!   families (Section 2.3.2), with the published typos corrected and
//!   documented.
//!
//! # Example
//!
//! ```
//! use joinopt_qgraph::{generators, GraphKind};
//!
//! let g = generators::generate(GraphKind::Chain, 5);
//! assert!(g.is_connected());
//! // Count csg-cmp-pairs by enumeration and compare to the closed form.
//! let by_enum = joinopt_qgraph::csg::count_ccp_distinct(&g);
//! let by_formula = joinopt_qgraph::formulas::ccp_distinct(GraphKind::Chain, 5);
//! assert_eq!(u128::from(by_enum), by_formula);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod csg;
mod error;
pub mod formulas;
pub mod generators;
mod graph;
pub mod hypergraph;
pub mod profile;

pub use error::QueryGraphError;
pub use generators::GraphKind;
pub use graph::{Edge, EdgeId, QueryGraph};
pub use hypergraph::{HyperEdgeId, Hyperedge, Hypergraph};

pub use joinopt_relset::{RelIdx, RelSet};
