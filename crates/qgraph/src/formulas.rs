//! Closed forms for `#csg` and `#ccp` (paper, Section 2.3.2).
//!
//! All formulas are exact integer computations in `u128`. Conventions:
//!
//! * [`csg_count`] — number of non-empty connected subsets;
//! * [`ccp_distinct`] — csg-cmp-pairs with symmetric pairs **excluded**
//!   (the Ono/Lohman convention; this is what Figure 3's `#ccp` column
//!   lists and what `OnoLohmanCounter` reports);
//! * [`ccp_total`] — symmetric pairs included (`CsgCmpPairCounter`),
//!   always `2 × ccp_distinct`.
//!
//! # Errata relative to the paper
//!
//! * Eq. (6) for chains, as printed, evaluates to 64 at `n = 5`, while
//!   Figure 3 (and enumeration) give 20. The correct distinct count is
//!   `(n³ − n) / 6`.
//! * Eqs. (8) and (12) (cycle, clique) are the *total* counts; Figure 3's
//!   column lists them halved. We expose both so there is no ambiguity.
//!
//! Every formula here is verified by the test suite against exhaustive
//! enumeration ([`crate::csg::count_ccp_distinct`]) for `n ≤ 14`.

use crate::generators::GraphKind;

/// Binomial coefficient `C(n, k)` in `u128`.
///
/// # Panics
///
/// Panics on internal overflow, which cannot occur for the `n ≤ 64`
/// range this workspace supports.
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * u128::from(n - i) / u128::from(i + 1);
    }
    acc
}

/// `#csg(n)` for a graph family (Eqs. (5), (7), (9), (11)).
pub fn csg_count(kind: GraphKind, n: u64) -> u128 {
    let n128 = u128::from(n);
    match kind {
        // n(n+1)/2
        GraphKind::Chain => n128 * (n128 + 1) / 2,
        // n² − n + 1; degenerate small cycles are chains.
        GraphKind::Cycle => {
            if n <= 2 {
                csg_count(GraphKind::Chain, n)
            } else {
                n128 * n128 - n128 + 1
            }
        }
        // 2^{n−1} + n − 1
        GraphKind::Star => {
            if n == 0 {
                0
            } else {
                (1u128 << (n - 1)) + n128 - 1
            }
        }
        // 2^n − 1
        GraphKind::Clique => (1u128 << n) - 1,
    }
}

/// `#ccp(n)`, symmetric pairs excluded (Ono/Lohman; Figure 3's column).
pub fn ccp_distinct(kind: GraphKind, n: u64) -> u128 {
    let n128 = u128::from(n);
    match kind {
        // (n³ − n) / 6   [paper's Eq. (6) is misprinted]
        GraphKind::Chain => (n128 * n128 * n128 - n128) / 6,
        // (n³ − 2n² + n) / 2
        GraphKind::Cycle => {
            if n <= 2 {
                ccp_distinct(GraphKind::Chain, n)
            } else {
                (n128 * n128 * n128 - 2 * n128 * n128 + n128) / 2
            }
        }
        // (n − 1) · 2^{n−2}
        GraphKind::Star => {
            if n < 2 {
                0
            } else {
                (n128 - 1) * (1u128 << (n - 2))
            }
        }
        // (3^n − 2^{n+1} + 1) / 2, reordered to stay non-negative at n = 1.
        GraphKind::Clique => (pow3(n) + 1 - (1u128 << (n + 1))) / 2,
    }
}

/// `#ccp(n)` with symmetric pairs included (`CsgCmpPairCounter` after any
/// of the three algorithms terminates).
pub fn ccp_total(kind: GraphKind, n: u64) -> u128 {
    2 * ccp_distinct(kind, n)
}

/// `3^n` in `u128`.
pub fn pow3(n: u64) -> u128 {
    3u128.pow(u32::try_from(n).expect("n fits in u32"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csg;
    use crate::generators;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(40, 20), 137_846_528_820);
        assert_eq!(binomial(64, 32), 1_832_624_140_942_590_534);
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..=30u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn binomial_pascal() {
        for n in 1..=40u64 {
            for k in 1..=n {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }

    #[test]
    fn figure3_ccp_column() {
        // Figure 3's #ccp values, verbatim from the paper.
        let expect: &[(GraphKind, &[(u64, u128)])] = &[
            (
                GraphKind::Chain,
                &[(2, 1), (5, 20), (10, 165), (15, 560), (20, 1330)],
            ),
            (
                GraphKind::Cycle,
                &[(2, 1), (5, 40), (10, 405), (15, 1470), (20, 3610)],
            ),
            (
                GraphKind::Star,
                &[(2, 1), (5, 32), (10, 2304), (15, 114_688), (20, 4_980_736)],
            ),
            (
                GraphKind::Clique,
                &[
                    (2, 1),
                    (5, 90),
                    (10, 28_501),
                    (15, 7_141_686),
                    (20, 1_742_343_625),
                ],
            ),
        ];
        for &(kind, rows) in expect {
            for &(n, want) in rows {
                assert_eq!(ccp_distinct(kind, n), want, "{kind} n={n}");
            }
        }
    }

    #[test]
    fn csg_formulas_match_enumeration() {
        for kind in GraphKind::ALL {
            for n in 1..=12u64 {
                let g = generators::generate(kind, n as usize);
                assert_eq!(
                    csg_count(kind, n),
                    u128::from(csg::count_csg(&g)),
                    "{kind} n={n}"
                );
            }
        }
    }

    #[test]
    fn ccp_formulas_match_enumeration() {
        for kind in GraphKind::ALL {
            for n in 1..=12u64 {
                let g = generators::generate(kind, n as usize);
                assert_eq!(
                    ccp_distinct(kind, n),
                    u128::from(csg::count_ccp_distinct(&g)),
                    "{kind} n={n}"
                );
            }
        }
    }

    #[test]
    fn ccp_total_is_twice_distinct() {
        for kind in GraphKind::ALL {
            for n in 2..=20u64 {
                assert_eq!(ccp_total(kind, n), 2 * ccp_distinct(kind, n));
            }
        }
    }

    #[test]
    fn degenerate_sizes() {
        for kind in GraphKind::ALL {
            assert_eq!(csg_count(kind, 1), 1, "{kind}");
            assert_eq!(ccp_distinct(kind, 1), 0, "{kind}");
        }
    }

    #[test]
    fn pow3_values() {
        assert_eq!(pow3(0), 1);
        assert_eq!(pow3(20), 3_486_784_401);
    }
}
