//! Error type for query-graph construction.

use core::fmt;

use joinopt_relset::RelIdx;

/// Errors produced when building or validating a [`QueryGraph`](crate::QueryGraph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryGraphError {
    /// More relations requested than the bitset representation supports.
    TooManyRelations {
        /// Requested relation count.
        n: usize,
    },
    /// An edge endpoint does not name an existing relation.
    NodeOutOfRange {
        /// The offending node index.
        node: RelIdx,
        /// Number of relations in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; query graphs have none.
    SelfLoop {
        /// The node with the self-loop.
        node: RelIdx,
    },
    /// The same edge was supplied twice.
    DuplicateEdge {
        /// One endpoint.
        u: RelIdx,
        /// Other endpoint.
        v: RelIdx,
    },
    /// The graph is not connected, but the operation requires it.
    Disconnected,
    /// A graph family generator was asked for an unsupported size.
    InvalidSize {
        /// Requested size.
        n: usize,
        /// What was being generated.
        what: &'static str,
    },
}

impl fmt::Display for QueryGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            QueryGraphError::TooManyRelations { n } => {
                write!(f, "{n} relations exceed the supported maximum of 64")
            }
            QueryGraphError::NodeOutOfRange { node, n } => {
                write!(
                    f,
                    "node R{node} out of range for a graph with {n} relations"
                )
            }
            QueryGraphError::SelfLoop { node } => {
                write!(f, "self-loop on R{node} is not a valid join predicate")
            }
            QueryGraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge between R{u} and R{v}")
            }
            QueryGraphError::Disconnected => {
                write!(f, "query graph is not connected")
            }
            QueryGraphError::InvalidSize { n, what } => {
                write!(f, "cannot generate {what} with {n} relations")
            }
        }
    }
}

impl std::error::Error for QueryGraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(QueryGraphError::TooManyRelations { n: 70 }
            .to_string()
            .contains("70"));
        assert!(QueryGraphError::NodeOutOfRange { node: 9, n: 5 }
            .to_string()
            .contains("R9"));
        assert!(QueryGraphError::SelfLoop { node: 1 }
            .to_string()
            .contains("R1"));
        assert!(QueryGraphError::DuplicateEdge { u: 1, v: 2 }
            .to_string()
            .contains("R2"));
        assert!(QueryGraphError::Disconnected
            .to_string()
            .contains("connected"));
        assert!(QueryGraphError::InvalidSize {
            n: 0,
            what: "cycle"
        }
        .to_string()
        .contains("cycle"));
    }
}
