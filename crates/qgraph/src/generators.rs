//! Query-graph family generators.
//!
//! The paper evaluates on four families — chain, cycle, star and clique —
//! because they are the canonical extreme points of the search-space
//! spectrum: chains are the sparsest connected graphs, cliques the
//! densest, stars the data-warehouse shape, and cycles add one edge to a
//! chain. This module generates all four, plus trees, grids and seeded
//! random connected graphs used by the test suite and the extension
//! benchmarks.
//!
//! All generators number nodes such that the natural order is already a
//! valid BFS numbering for the family (verified by tests), so DPccp can
//! run on them without renumbering.

use joinopt_relset::{RelIdx, XorShift64};

use crate::error::QueryGraphError;
use crate::graph::QueryGraph;

/// The four query-graph families of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// `R_0 — R_1 — … — R_{n-1}`.
    Chain,
    /// Chain plus the closing edge `R_{n-1} — R_0`.
    Cycle,
    /// Hub `R_0` joined to every satellite `R_1 … R_{n-1}`.
    Star,
    /// Every pair of relations joined.
    Clique,
}

impl GraphKind {
    /// All four families, in the order the paper presents them.
    pub const ALL: [GraphKind; 4] = [
        GraphKind::Chain,
        GraphKind::Cycle,
        GraphKind::Star,
        GraphKind::Clique,
    ];

    /// Lower-case name as used in tables and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            GraphKind::Chain => "chain",
            GraphKind::Cycle => "cycle",
            GraphKind::Star => "star",
            GraphKind::Clique => "clique",
        }
    }

    /// Parses a family name (case-insensitive).
    pub fn parse(s: &str) -> Option<GraphKind> {
        match s.to_ascii_lowercase().as_str() {
            "chain" => Some(GraphKind::Chain),
            "cycle" => Some(GraphKind::Cycle),
            "star" => Some(GraphKind::Star),
            "clique" => Some(GraphKind::Clique),
            _ => None,
        }
    }
}

impl core::fmt::Display for GraphKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates a graph of the given family with `n` relations.
///
/// # Panics
///
/// Panics if `n` is invalid for the family (`n == 0`, or `n > 64`).
/// Use [`try_generate`] for a fallible version.
pub fn generate(kind: GraphKind, n: usize) -> QueryGraph {
    try_generate(kind, n).expect("invalid size for graph family")
}

/// Fallible version of [`generate`].
///
/// # Errors
///
/// Returns an error for `n == 0` or `n > 64`.
pub fn try_generate(kind: GraphKind, n: usize) -> Result<QueryGraph, QueryGraphError> {
    match kind {
        GraphKind::Chain => chain(n),
        GraphKind::Cycle => cycle(n),
        GraphKind::Star => star(n),
        GraphKind::Clique => clique(n),
    }
}

/// Chain query graph `R_0 — R_1 — … — R_{n-1}`.
///
/// # Errors
///
/// `n == 0` and `n > 64` are rejected.
pub fn chain(n: usize) -> Result<QueryGraph, QueryGraphError> {
    if n == 0 {
        return Err(QueryGraphError::InvalidSize { n, what: "chain" });
    }
    let mut g = QueryGraph::new(n)?;
    for i in 1..n {
        g.add_edge(i - 1, i)?;
    }
    Ok(g)
}

/// Cycle query graph: a chain plus the closing edge.
///
/// For `n ≤ 2` the closing edge would duplicate an existing one, so the
/// result degenerates to the chain (matching the formulas' conventions).
///
/// # Errors
///
/// `n == 0` and `n > 64` are rejected.
pub fn cycle(n: usize) -> Result<QueryGraph, QueryGraphError> {
    let mut g = chain(n)?;
    if n >= 3 {
        g.add_edge(n - 1, 0)?;
    }
    Ok(g)
}

/// Star query graph: hub `R_0` joined to each of `R_1 … R_{n-1}`.
///
/// # Errors
///
/// `n == 0` and `n > 64` are rejected.
pub fn star(n: usize) -> Result<QueryGraph, QueryGraphError> {
    if n == 0 {
        return Err(QueryGraphError::InvalidSize { n, what: "star" });
    }
    let mut g = QueryGraph::new(n)?;
    for i in 1..n {
        g.add_edge(0, i)?;
    }
    Ok(g)
}

/// Clique query graph: all `n(n−1)/2` edges.
///
/// # Errors
///
/// `n == 0` and `n > 64` are rejected.
pub fn clique(n: usize) -> Result<QueryGraph, QueryGraphError> {
    if n == 0 {
        return Err(QueryGraphError::InvalidSize { n, what: "clique" });
    }
    let mut g = QueryGraph::new(n)?;
    for i in 0..n {
        for j in i + 1..n {
            g.add_edge(i, j)?;
        }
    }
    Ok(g)
}

/// Grid query graph with `rows × cols` relations; node `(r, c)` has index
/// `r * cols + c` and is joined to its right and down neighbors.
///
/// # Errors
///
/// Empty dimensions and `rows*cols > 64` are rejected.
pub fn grid(rows: usize, cols: usize) -> Result<QueryGraph, QueryGraphError> {
    let n = rows * cols;
    if rows == 0 || cols == 0 {
        return Err(QueryGraphError::InvalidSize { n, what: "grid" });
    }
    let mut g = QueryGraph::new(n)?;
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge(v, v + 1)?;
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols)?;
            }
        }
    }
    Ok(g)
}

/// A random tree over `n` relations built by random attachment: node `i`
/// joins a uniformly random earlier node. The result is connected, and the
/// natural numbering is **not** necessarily BFS — renumber before DPccp.
///
/// # Errors
///
/// `n == 0` and `n > 64` are rejected.
pub fn random_tree(n: usize, rng: &mut XorShift64) -> Result<QueryGraph, QueryGraphError> {
    if n == 0 {
        return Err(QueryGraphError::InvalidSize {
            n,
            what: "random tree",
        });
    }
    let mut g = QueryGraph::new(n)?;
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(parent, i)?;
    }
    Ok(g)
}

/// A random connected graph: a random tree plus each remaining pair joined
/// independently with probability `extra_edge_prob`.
///
/// # Errors
///
/// `n == 0`, `n > 64` and probabilities outside `[0, 1]` are rejected.
///
/// # Panics
///
/// Never panics for valid inputs.
pub fn random_connected(
    n: usize,
    extra_edge_prob: f64,
    rng: &mut XorShift64,
) -> Result<QueryGraph, QueryGraphError> {
    if !(0.0..=1.0).contains(&extra_edge_prob) {
        return Err(QueryGraphError::InvalidSize {
            n,
            what: "random graph (bad probability)",
        });
    }
    let mut g = random_tree(n, rng)?;
    let mut candidates: Vec<(RelIdx, RelIdx)> = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if g.edge_between(i, j).is_none() {
                candidates.push((i, j));
            }
        }
    }
    rng.shuffle(&mut candidates);
    for (i, j) in candidates {
        if rng.gen_bool(extra_edge_prob) {
            g.add_edge(i, j)?;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let g = chain(5).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(4), 1);
        assert!(g.is_connected());
    }

    #[test]
    fn chain_of_one() {
        let g = chain(1).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5).unwrap();
        assert_eq!(g.num_edges(), 5);
        for v in 0..5 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn small_cycles_degenerate_to_chains() {
        assert_eq!(cycle(1).unwrap().num_edges(), 0);
        assert_eq!(cycle(2).unwrap().num_edges(), 1);
        assert_eq!(cycle(3).unwrap().num_edges(), 3);
    }

    #[test]
    fn star_shape() {
        let g = star(6).unwrap();
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn clique_shape() {
        let g = clique(5).unwrap();
        assert_eq!(g.num_edges(), 10);
        for v in 0..5 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn zero_size_rejected_for_all_kinds() {
        for kind in GraphKind::ALL {
            assert!(try_generate(kind, 0).is_err(), "{kind} accepted n=0");
        }
    }

    #[test]
    fn oversized_rejected() {
        for kind in GraphKind::ALL {
            assert!(try_generate(kind, 65).is_err(), "{kind} accepted n=65");
        }
        assert!(try_generate(GraphKind::Chain, 64).is_ok());
    }

    #[test]
    fn generate_dispatches() {
        assert_eq!(generate(GraphKind::Chain, 4).num_edges(), 3);
        assert_eq!(generate(GraphKind::Cycle, 4).num_edges(), 4);
        assert_eq!(generate(GraphKind::Star, 4).num_edges(), 3);
        assert_eq!(generate(GraphKind::Clique, 4).num_edges(), 6);
    }

    #[test]
    fn kind_name_roundtrip() {
        for kind in GraphKind::ALL {
            assert_eq!(GraphKind::parse(kind.name()), Some(kind));
            assert_eq!(GraphKind::parse(&kind.name().to_uppercase()), Some(kind));
        }
        assert_eq!(GraphKind::parse("hypercube"), None);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.num_relations(), 12);
        // edges: rows*(cols-1) + (rows-1)*cols = 9 + 8 = 17
        assert_eq!(g.num_edges(), 17);
        assert!(g.is_connected());
        assert!(grid(0, 4).is_err());
    }

    #[test]
    fn random_tree_is_connected_spanning() {
        let mut rng = XorShift64::seed_from_u64(7);
        for n in 1..20 {
            let g = random_tree(n, &mut rng).unwrap();
            assert_eq!(g.num_edges(), n - 1);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = XorShift64::seed_from_u64(42);
        for &p in &[0.0, 0.3, 1.0] {
            let g = random_connected(10, p, &mut rng).unwrap();
            assert!(g.is_connected());
            if p == 1.0 {
                assert_eq!(g.num_edges(), 45); // full clique
            }
            if p == 0.0 {
                assert_eq!(g.num_edges(), 9); // just the tree
            }
        }
        assert!(random_connected(5, 1.5, &mut rng).is_err());
    }

    #[test]
    fn random_generation_is_seed_deterministic() {
        let g1 = random_connected(12, 0.25, &mut XorShift64::seed_from_u64(99)).unwrap();
        let g2 = random_connected(12, 0.25, &mut XorShift64::seed_from_u64(99)).unwrap();
        assert_eq!(g1, g2);
    }
}
