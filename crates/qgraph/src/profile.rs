//! Per-size connected-subset counts (`c_k`).
//!
//! The paper's counter formulas for DPsize and DPsub factor through the
//! *csg size profile*: the number `c_k` of connected subsets of each size
//! `k`. Computing the profile by fast enumeration (`EnumerateCsg`) makes
//! the counter predictions available for **arbitrary** query graphs, not
//! just the four closed-form families — and provides the middle layer of
//! the three-way cross-validation (closed form ⇔ profile ⇔ instrumented
//! run) the test suite performs.

use crate::csg;
use crate::graph::QueryGraph;

/// The csg size profile of a query graph: `counts()[k]` is the number of
/// connected subsets with exactly `k` relations (index 0 unused, kept for
/// direct size indexing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsgProfile {
    counts: Vec<u64>,
}

impl CsgProfile {
    /// Computes the profile of `g` by connected-subgraph enumeration.
    ///
    /// Cost is `O(#csg · n/64)` — fine for every graph on which dynamic
    /// programming itself is feasible.
    pub fn compute(g: &QueryGraph) -> CsgProfile {
        let n = g.num_relations();
        let mut counts = vec![0u64; n + 1];
        csg::for_each_csg(g, |s| counts[s.len()] += 1);
        CsgProfile { counts }
    }

    /// Builds a profile directly from per-size counts (`counts[k]` =
    /// number of connected subsets of size `k`; `counts[0]` must be 0).
    ///
    /// # Panics
    ///
    /// Panics if `counts[0] != 0`.
    pub fn from_counts(counts: Vec<u64>) -> CsgProfile {
        assert!(
            counts.first().copied().unwrap_or(0) == 0,
            "no connected subset has size 0"
        );
        CsgProfile { counts }
    }

    /// Per-size counts, indexable by subset size.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of relations of the underlying graph.
    pub fn num_relations(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Total number of non-empty connected subsets (`#csg`).
    pub fn csg_count(&self) -> u128 {
        self.counts.iter().map(|&c| u128::from(c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphKind;

    #[test]
    fn chain_profile() {
        // Chains have n−k+1 connected subsets of size k.
        let p = CsgProfile::compute(&generators::chain(6).unwrap());
        assert_eq!(p.counts(), &[0, 6, 5, 4, 3, 2, 1]);
        assert_eq!(p.csg_count(), 21); // n(n+1)/2
    }

    #[test]
    fn cycle_profile() {
        // Cycles have n connected subsets (arcs) of every size k < n, one of size n.
        let p = CsgProfile::compute(&generators::cycle(5).unwrap());
        assert_eq!(p.counts(), &[0, 5, 5, 5, 5, 1]);
    }

    #[test]
    fn star_profile() {
        // Stars: singletons, plus C(n−1, k−1) hub-containing sets for k ≥ 2.
        let p = CsgProfile::compute(&generators::star(5).unwrap());
        assert_eq!(p.counts(), &[0, 5, 4, 6, 4, 1]);
    }

    #[test]
    fn clique_profile() {
        // Cliques: every subset is connected, C(n, k).
        let p = CsgProfile::compute(&generators::clique(5).unwrap());
        assert_eq!(p.counts(), &[0, 5, 10, 10, 5, 1]);
        assert_eq!(p.csg_count(), 31); // 2^n − 1
    }

    #[test]
    fn csg_count_matches_enumeration() {
        for kind in GraphKind::ALL {
            for n in 1..=10 {
                let g = generators::generate(kind, n);
                let p = CsgProfile::compute(&g);
                assert_eq!(p.csg_count(), u128::from(crate::csg::count_csg(&g)));
                assert_eq!(p.num_relations(), n);
            }
        }
    }

    #[test]
    fn from_counts_roundtrip() {
        let p = CsgProfile::from_counts(vec![0, 3, 2, 1]);
        assert_eq!(p.csg_count(), 6);
        assert_eq!(p.num_relations(), 3);
    }

    #[test]
    #[should_panic(expected = "size 0")]
    fn from_counts_rejects_size_zero_entries() {
        let _ = CsgProfile::from_counts(vec![1, 3]);
    }
}
