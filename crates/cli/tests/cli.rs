//! End-to-end tests of every CLI command, driven through
//! [`joinopt_cli::run`] with captured output.

use joinopt_cli::{run, CliError};

fn run_ok(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&args, &mut out).unwrap_or_else(|e| panic!("command {args:?} failed: {e}"));
    String::from_utf8(out).expect("utf8 output")
}

fn run_err(args: &[&str]) -> CliError {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&args, &mut out).expect_err("command should fail")
}

fn write_query_file(content: &str) -> tempfile::TempPath {
    use std::io::Write as _;
    let mut f = tempfile::Builder::new()
        .suffix(".query")
        .tempfile()
        .expect("create temp file");
    f.write_all(content.as_bytes()).unwrap();
    f.into_temp_path()
}

/// Minimal stand-in for the `tempfile` crate (not in the offline set):
/// writes to a unique path under the target tmp dir and removes it on
/// drop.
mod tempfile {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct Builder {
        suffix: String,
    }

    impl Builder {
        pub fn new() -> Builder {
            Builder { suffix: String::new() }
        }

        pub fn suffix(mut self, s: &str) -> Builder {
            self.suffix = s.to_string();
            self
        }

        pub fn tempfile(self) -> std::io::Result<TempFile> {
            let dir = std::env::temp_dir();
            let unique = format!(
                "joinopt-cli-test-{}-{}{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed),
                self.suffix
            );
            let path = dir.join(unique);
            let file = std::fs::File::create(&path)?;
            Ok(TempFile { file, path })
        }
    }

    pub struct TempFile {
        file: std::fs::File,
        path: PathBuf,
    }

    impl TempFile {
        pub fn into_temp_path(self) -> TempPath {
            TempPath { path: self.path }
        }
    }

    impl std::io::Write for TempFile {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            std::io::Write::write(&mut self.file, buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            std::io::Write::flush(&mut self.file)
        }
    }

    pub struct TempPath {
        path: PathBuf,
    }

    impl std::ops::Deref for TempPath {
        type Target = Path;
        fn deref(&self) -> &Path {
            &self.path
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

const CHAIN_QUERY: &str = "\
relation customer 150000
relation orders 1500000
relation lineitem 6000000
join customer orders 6.67e-6
join orders lineitem 6.67e-7
";

#[test]
fn help_prints_usage() {
    let out = run_ok(&["help"]);
    assert!(out.contains("USAGE"));
    assert!(out.contains("optimize"));
    assert!(out.contains("counters"));
}

#[test]
fn optimize_defaults() {
    let path = write_query_file(CHAIN_QUERY);
    let out = run_ok(&["optimize", path.to_str().unwrap()]);
    assert!(out.contains("algorithm:   DPccp"), "{out}");
    assert!(out.contains("cost model:  Cout"));
    assert!(out.contains("customer"));
    assert!(out.contains('⋈'));
    assert!(out.contains("Scan R0"));
}

#[test]
fn optimize_with_explicit_algorithm_and_model() {
    let path = write_query_file(CHAIN_QUERY);
    let out = run_ok(&[
        "optimize",
        path.to_str().unwrap(),
        "--algorithm",
        "dpsize",
        "--cost-model",
        "hash",
    ]);
    assert!(out.contains("algorithm:   DPsize"), "{out}");
    assert!(out.contains("cost model:  HashJoin"));
}

#[test]
fn optimize_rejects_unknowns() {
    let path = write_query_file(CHAIN_QUERY);
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap(), "--algorithm", "magic"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap(), "--cost-model", "magic"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap(), "--bogus", "1"]),
        CliError::Usage(_)
    ));
}

#[test]
fn optimize_propagates_parse_errors_with_lines() {
    let path = write_query_file("relation a ten\n");
    match run_err(&["optimize", path.to_str().unwrap()]) {
        CliError::Parse(e) => assert_eq!(e.line(), Some(1)),
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn optimize_rejects_disconnected_queries() {
    let path = write_query_file("relation a 10\nrelation b 10\n");
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap()]),
        CliError::Optimize(_)
    ));
}

#[test]
fn optimize_missing_file_is_io_error() {
    assert!(matches!(
        run_err(&["optimize", "/nonexistent/query.txt"]),
        CliError::Io(_)
    ));
}

#[test]
fn compare_lists_all_algorithms() {
    let path = write_query_file(CHAIN_QUERY);
    let out = run_ok(&["compare", path.to_str().unwrap()]);
    for name in ["DPsize", "DPsub", "DPccp", "GOO"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn generate_emits_parseable_queries() {
    for family in ["chain", "cycle", "star", "clique"] {
        let out = run_ok(&["generate", family, "6", "--seed", "9"]);
        let body: String = out
            .lines()
            .filter(|l| !l.trim_start().starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n");
        let q = joinopt_query::parse(&body).expect("generated output must parse");
        assert_eq!(q.hypergraph.num_relations(), 6);
        // Determinism: same seed, same output.
        let again = run_ok(&["generate", family, "6", "--seed", "9"]);
        assert_eq!(out, again);
    }
}

#[test]
fn generate_validates_arguments() {
    assert!(matches!(run_err(&["generate", "moebius", "5"]), CliError::Usage(_)));
    assert!(matches!(run_err(&["generate", "chain", "zero"]), CliError::Usage(_)));
    assert!(matches!(run_err(&["generate", "chain", "0"]), CliError::Usage(_)));
    assert!(matches!(run_err(&["generate", "chain", "65"]), CliError::Usage(_)));
}

#[test]
fn counters_reproduce_figure3_values() {
    let out = run_ok(&["counters", "star", "20"]);
    // Figure 3 star row n=20: ccp 4980736, DPsub 2323474358, DPsize 59892991338.
    let row = out.lines().find(|l| l.starts_with("20")).expect("row for n=20");
    assert!(row.contains("4980736"), "{row}");
    assert!(row.contains("2323474358"), "{row}");
    assert!(row.contains("59892991338"), "{row}");
}

#[test]
fn optimize_routes_complex_queries_to_dphyp() {
    let path = write_query_file(
        "relation a 100\nrelation b 200\nrelation c 50\njoin a b 0.01\njoin a,b c 0.05\n",
    );
    let out = run_ok(&["optimize", path.to_str().unwrap()]);
    assert!(out.contains("algorithm:   DPhyp"), "{out}");
    assert!(out.contains("(a ⋈ b) ⋈ c") || out.contains("c ⋈ (a ⋈ b)"), "{out}");
    // Explicit simple-graph algorithms are rejected for complex queries.
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap(), "--algorithm", "dpsize"]),
        CliError::Usage(_)
    ));
}

#[test]
fn compare_runs_dphyp_for_complex_queries() {
    let path = write_query_file(
        "relation a 100\nrelation b 200\nrelation c 50\njoin a b 0.01\njoin a,b c 0.05\n",
    );
    let out = run_ok(&["compare", path.to_str().unwrap()]);
    assert!(out.contains("DPhyp"), "{out}");
    assert!(!out.contains("DPsize"), "{out}");
}

#[test]
fn optimize_accepts_sql_files() {
    let path = write_query_file(
        "SELECT *\nFROM customer /*+ rows=150000 */ c, orders /*+ rows=1500000 */ o\n\
         WHERE c.ck = o.ck /*+ sel=6.7e-6 */\n",
    );
    let out = run_ok(&["optimize", path.to_str().unwrap()]);
    assert!(out.contains('⋈'), "{out}");
    assert!(out.contains("c") && out.contains("o"));
    assert!(out.contains("cost:"), "{out}");
}

#[test]
fn sql_parse_errors_are_reported() {
    let path = write_query_file("SELECT * FROM a WHERE ghost.x = a.y\n");
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap()]),
        CliError::Sql(_)
    ));
}

#[test]
fn sql_with_leading_comment_detected() {
    let path = write_query_file("-- a comment\nSELECT * FROM a, b WHERE a.x = b.y\n");
    let out = run_ok(&["compare", path.to_str().unwrap()]);
    assert!(out.contains("DPccp"), "{out}");
}

#[test]
fn unknown_command_is_usage_error() {
    assert!(matches!(run_err(&["explode"]), CliError::Usage(_)));
    assert!(matches!(run_err(&[]), CliError::Usage(_)));
}
