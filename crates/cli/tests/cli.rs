//! End-to-end tests of every CLI command, driven through
//! [`joinopt_cli::run`] with captured output.

use joinopt_cli::{run, CliError};

fn run_ok(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&args, &mut out).unwrap_or_else(|e| panic!("command {args:?} failed: {e}"));
    String::from_utf8(out).expect("utf8 output")
}

fn run_err(args: &[&str]) -> CliError {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&args, &mut out).expect_err("command should fail")
}

fn write_query_file(content: &str) -> tempfile::TempPath {
    use std::io::Write as _;
    let mut f = tempfile::Builder::new()
        .suffix(".query")
        .tempfile()
        .expect("create temp file");
    f.write_all(content.as_bytes()).unwrap();
    f.into_temp_path()
}

/// Minimal stand-in for the `tempfile` crate (not in the offline set):
/// writes to a unique path under the target tmp dir and removes it on
/// drop.
mod tempfile {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct Builder {
        suffix: String,
    }

    impl Builder {
        pub fn new() -> Builder {
            Builder {
                suffix: String::new(),
            }
        }

        pub fn suffix(mut self, s: &str) -> Builder {
            self.suffix = s.to_string();
            self
        }

        pub fn tempfile(self) -> std::io::Result<TempFile> {
            let dir = std::env::temp_dir();
            let unique = format!(
                "joinopt-cli-test-{}-{}{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed),
                self.suffix
            );
            let path = dir.join(unique);
            let file = std::fs::File::create(&path)?;
            Ok(TempFile { file, path })
        }
    }

    pub struct TempFile {
        file: std::fs::File,
        path: PathBuf,
    }

    impl TempFile {
        pub fn into_temp_path(self) -> TempPath {
            TempPath { path: self.path }
        }
    }

    impl std::io::Write for TempFile {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            std::io::Write::write(&mut self.file, buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            std::io::Write::flush(&mut self.file)
        }
    }

    pub struct TempPath {
        path: PathBuf,
    }

    impl std::ops::Deref for TempPath {
        type Target = Path;
        fn deref(&self) -> &Path {
            &self.path
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

const CHAIN_QUERY: &str = "\
relation customer 150000
relation orders 1500000
relation lineitem 6000000
join customer orders 6.67e-6
join orders lineitem 6.67e-7
";

#[test]
fn help_prints_usage() {
    let out = run_ok(&["help"]);
    assert!(out.contains("USAGE"));
    assert!(out.contains("optimize"));
    assert!(out.contains("counters"));
}

#[test]
fn optimize_defaults() {
    let path = write_query_file(CHAIN_QUERY);
    let out = run_ok(&["optimize", path.to_str().unwrap()]);
    assert!(out.contains("algorithm:   DPccp"), "{out}");
    assert!(out.contains("cost model:  Cout"));
    assert!(out.contains("customer"));
    assert!(out.contains('⋈'));
    assert!(out.contains("Scan R0"));
}

#[test]
fn optimize_with_explicit_algorithm_and_model() {
    let path = write_query_file(CHAIN_QUERY);
    let out = run_ok(&[
        "optimize",
        path.to_str().unwrap(),
        "--algorithm",
        "dpsize",
        "--cost-model",
        "hash",
    ]);
    assert!(out.contains("algorithm:   DPsize"), "{out}");
    assert!(out.contains("cost model:  HashJoin"));
}

#[test]
fn optimize_rejects_unknowns() {
    let path = write_query_file(CHAIN_QUERY);
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap(), "--algorithm", "magic"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap(), "--cost-model", "magic"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap(), "--bogus", "1"]),
        CliError::Usage(_)
    ));
}

#[test]
fn optimize_propagates_parse_errors_with_lines() {
    let path = write_query_file("relation a ten\n");
    match run_err(&["optimize", path.to_str().unwrap()]) {
        CliError::Optimize(joinopt_core::OptimizeError::Parse(e)) => {
            assert_eq!(e.line(), Some(1));
        }
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn optimize_rejects_disconnected_queries() {
    let path = write_query_file("relation a 10\nrelation b 10\n");
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap()]),
        CliError::Optimize(_)
    ));
}

#[test]
fn optimize_missing_file_is_io_error() {
    assert!(matches!(
        run_err(&["optimize", "/nonexistent/query.txt"]),
        CliError::Io(_)
    ));
}

#[test]
fn compare_lists_all_algorithms() {
    let path = write_query_file(CHAIN_QUERY);
    let out = run_ok(&["compare", path.to_str().unwrap()]);
    for name in ["DPsize", "DPsub", "DPccp", "GOO"] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
}

#[test]
fn generate_emits_parseable_queries() {
    for family in ["chain", "cycle", "star", "clique"] {
        let out = run_ok(&["generate", family, "6", "--seed", "9"]);
        let body: String = out
            .lines()
            .filter(|l| !l.trim_start().starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n");
        let q = joinopt_query::parse(&body).expect("generated output must parse");
        assert_eq!(q.hypergraph.num_relations(), 6);
        // Determinism: same seed, same output.
        let again = run_ok(&["generate", family, "6", "--seed", "9"]);
        assert_eq!(out, again);
    }
}

#[test]
fn generate_validates_arguments() {
    assert!(matches!(
        run_err(&["generate", "moebius", "5"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["generate", "chain", "zero"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["generate", "chain", "0"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["generate", "chain", "65"]),
        CliError::Usage(_)
    ));
}

#[test]
fn counters_reproduce_figure3_values() {
    let out = run_ok(&["counters", "star", "20"]);
    // Figure 3 star row n=20: ccp 4980736, DPsub 2323474358, DPsize 59892991338.
    let row = out
        .lines()
        .find(|l| l.starts_with("20"))
        .expect("row for n=20");
    assert!(row.contains("4980736"), "{row}");
    assert!(row.contains("2323474358"), "{row}");
    assert!(row.contains("59892991338"), "{row}");
}

#[test]
fn optimize_routes_complex_queries_to_dphyp() {
    let path = write_query_file(
        "relation a 100\nrelation b 200\nrelation c 50\njoin a b 0.01\njoin a,b c 0.05\n",
    );
    let out = run_ok(&["optimize", path.to_str().unwrap()]);
    assert!(out.contains("algorithm:   DPhyp"), "{out}");
    assert!(
        out.contains("(a ⋈ b) ⋈ c") || out.contains("c ⋈ (a ⋈ b)"),
        "{out}"
    );
    // Explicit simple-graph algorithms are rejected for complex queries.
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap(), "--algorithm", "dpsize"]),
        CliError::Usage(_)
    ));
}

#[test]
fn compare_runs_dphyp_for_complex_queries() {
    let path = write_query_file(
        "relation a 100\nrelation b 200\nrelation c 50\njoin a b 0.01\njoin a,b c 0.05\n",
    );
    let out = run_ok(&["compare", path.to_str().unwrap()]);
    assert!(out.contains("DPhyp"), "{out}");
    assert!(!out.contains("DPsize"), "{out}");
}

#[test]
fn optimize_accepts_sql_files() {
    let path = write_query_file(
        "SELECT *\nFROM customer /*+ rows=150000 */ c, orders /*+ rows=1500000 */ o\n\
         WHERE c.ck = o.ck /*+ sel=6.7e-6 */\n",
    );
    let out = run_ok(&["optimize", path.to_str().unwrap()]);
    assert!(out.contains('⋈'), "{out}");
    assert!(out.contains("c") && out.contains("o"));
    assert!(out.contains("cost:"), "{out}");
}

#[test]
fn sql_parse_errors_are_reported() {
    let path = write_query_file("SELECT * FROM a WHERE ghost.x = a.y\n");
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap()]),
        CliError::Optimize(joinopt_core::OptimizeError::Sql(_))
    ));
}

#[test]
fn sql_with_leading_comment_detected() {
    let path = write_query_file("-- a comment\nSELECT * FROM a, b WHERE a.x = b.y\n");
    let out = run_ok(&["compare", path.to_str().unwrap()]);
    assert!(out.contains("DPccp"), "{out}");
}

// ---------------------------------------------------------------------
// Parallelism flags (--threads / --batch).
// ---------------------------------------------------------------------

#[test]
fn optimize_threads_is_deterministic_and_reported() {
    let path = write_query_file(CHAIN_QUERY);
    let sequential = run_ok(&[
        "optimize",
        path.to_str().unwrap(),
        "--algorithm",
        "dpsub",
        "--threads",
        "1",
    ]);
    assert!(sequential.contains("threads:     1"), "{sequential}");
    for t in ["2", "4", "8"] {
        let parallel = run_ok(&[
            "optimize",
            path.to_str().unwrap(),
            "--algorithm",
            "dpsub",
            "--threads",
            t,
        ]);
        assert!(
            parallel.contains(&format!("threads:     {t}")),
            "{parallel}"
        );
        // Same plan, cost, counters at any thread count: everything but
        // the threads and wall-clock lines is byte-identical.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("time:") && !l.starts_with("threads:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&sequential), strip(&parallel), "t={t}");
    }
    // Without --threads the output keeps its historical shape.
    let plain = run_ok(&["optimize", path.to_str().unwrap(), "--algorithm", "dpsub"]);
    assert!(!plain.contains("threads:"), "{plain}");
}

#[test]
fn optimize_threads_validates_value() {
    let path = write_query_file(CHAIN_QUERY);
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap(), "--threads", "lots"]),
        CliError::Usage(_)
    ));
}

#[test]
fn batch_optimizes_many_files_and_isolates_failures() {
    let a = write_query_file(CHAIN_QUERY);
    let disconnected = write_query_file("relation x 10\nrelation y 10\n");
    let b = write_query_file(
        "relation a 100\nrelation b 200\nrelation c 50\njoin a b 0.01\njoin b c 0.05\n",
    );
    let out = run_ok(&[
        "optimize",
        a.to_str().unwrap(),
        disconnected.to_str().unwrap(),
        b.to_str().unwrap(),
        "--batch",
        "--threads",
        "2",
    ]);
    assert!(out.contains("3 queries (1 failed)"), "{out}");
    assert!(out.contains("connected"), "failure reason shown: {out}");
    // One row per input file, in input order.
    for (i, p) in [&a, &disconnected, &b].iter().enumerate() {
        let row = out
            .lines()
            .find(|l| l.contains(p.to_str().unwrap()))
            .unwrap_or_else(|| panic!("no row for query {i}: {out}"));
        assert!(row.trim_start().starts_with(&i.to_string()), "{row}");
    }
}

#[test]
fn batch_rejects_telemetry_and_complex_queries() {
    let a = write_query_file(CHAIN_QUERY);
    assert!(matches!(
        run_err(&["optimize", a.to_str().unwrap(), "--batch", "--metrics"]),
        CliError::Usage(_)
    ));
    let complex = write_query_file(
        "relation a 100\nrelation b 200\nrelation c 50\njoin a b 0.01\njoin a,b c 0.05\n",
    );
    assert!(matches!(
        run_err(&["optimize", complex.to_str().unwrap(), "--batch"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["optimize", "--batch"]),
        CliError::Usage(_)
    ));
}

#[test]
fn batch_matches_single_runs() {
    let a = write_query_file(CHAIN_QUERY);
    let single = run_ok(&["optimize", a.to_str().unwrap(), "--algorithm", "dpsub"]);
    let cost_line = single
        .lines()
        .find(|l| l.starts_with("cost:"))
        .expect("cost line");
    let cost = cost_line.split_whitespace().nth(1).expect("cost value");
    let batched = run_ok(&[
        "optimize",
        a.to_str().unwrap(),
        "--batch",
        "--algorithm",
        "dpsub",
    ]);
    assert!(batched.contains(cost), "{batched} missing {cost}");
}

#[test]
fn batch_marks_repeated_query_files_as_cached() {
    let a = write_query_file(CHAIN_QUERY);
    let out = run_ok(&[
        "optimize",
        a.to_str().unwrap(),
        a.to_str().unwrap(),
        "--batch",
        "--threads",
        "1",
    ]);
    // At one worker the second (identical) file is answered from the
    // plan cache; both rows carry the same cost.
    assert!(out.contains("(cached)"), "{out}");
    assert!(out.contains("2 queries (0 failed)"), "{out}");
    let costs: Vec<&str> = out
        .lines()
        .filter(|l| l.contains(".query"))
        .map(|l| l.split_whitespace().nth(1).expect("cost column"))
        .collect();
    assert_eq!(costs.len(), 2);
    assert_eq!(costs[0], costs[1], "{out}");
}

// ---------------------------------------------------------------------
// The sustained-load harness (`joinopt load`).
// ---------------------------------------------------------------------

#[test]
fn load_reports_hits_and_gates_on_hit_rate() {
    use joinopt_telemetry::json::JsonValue;

    let json = tempfile::Builder::new()
        .suffix(".json")
        .tempfile()
        .expect("create json file")
        .into_temp_path();
    let out = run_ok(&[
        "load",
        "--requests",
        "40",
        "--threads",
        "1",
        "--seed",
        "7",
        "--repeat-rate",
        "0.5",
        "--max-n",
        "6",
        "--min-hit-rate",
        "0.05",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(out.contains("load gate passed"), "{out}");
    assert!(out.contains("hit_rate"), "{out}");
    let report = JsonValue::parse(&std::fs::read_to_string(&*json).expect("json written"))
        .expect("parseable report");
    assert_eq!(
        report.get("schema").and_then(|s| s.as_str()),
        Some("joinopt-load-v3")
    );
    assert_eq!(report.get("errors").and_then(|e| e.as_u64()), Some(0));
    let breakdown = report.get("errors_by_type").expect("v2 error breakdown");
    assert_eq!(breakdown.get("timeout").and_then(|v| v.as_u64()), Some(0));
    assert!(report.get("hits").and_then(|h| h.as_u64()).unwrap() > 0);
    // The v3 stage breakdown rides along and reaches the rendered table.
    let stages = report
        .get("stages")
        .and_then(|s| s.as_array())
        .expect("v3 stage breakdown");
    assert!(
        stages
            .iter()
            .any(|s| s.get("stage").and_then(|v| v.as_str()) == Some("cache-lookup")),
        "stage breakdown missing cache-lookup: {stages:?}"
    );
    assert!(out.contains("cache-lookup"), "{out}");
}

#[test]
fn load_gate_fails_when_the_floor_is_unreachable() {
    // A repeat rate of 0 keeps every request fresh, so a 0.9 hit-rate
    // floor cannot be met.
    assert!(matches!(
        run_err(&[
            "load",
            "--requests",
            "10",
            "--threads",
            "1",
            "--repeat-rate",
            "0",
            "--max-n",
            "5",
            "--min-hit-rate",
            "0.9",
        ]),
        CliError::Regression(_)
    ));
}

#[test]
fn load_rejects_bad_options() {
    assert!(matches!(
        run_err(&["load", "--requests", "0"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["load", "--repeat-rate", "1.5"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["load", "--max-n", "99"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["load", "--cache-bytes", "lots"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["load", "positional"]),
        CliError::Usage(_)
    ));
}

#[test]
fn unknown_command_is_usage_error() {
    assert!(matches!(run_err(&["explode"]), CliError::Usage(_)));
    assert!(matches!(run_err(&[]), CliError::Usage(_)));
}

// ---------------------------------------------------------------------
// Telemetry flags (--metrics / --trace-json).
// ---------------------------------------------------------------------

/// Replaces the value of the wall-clock `time:` line, the only
/// nondeterministic bytes in `optimize` output.
fn normalize_time(s: &str) -> String {
    let mut result = String::new();
    for line in s.lines() {
        if line.starts_with("time:") {
            result.push_str("time:        <normalized>");
        } else {
            result.push_str(line);
        }
        result.push('\n');
    }
    result
}

#[test]
fn optimize_output_without_telemetry_flags_is_unchanged() {
    let path = write_query_file(CHAIN_QUERY);
    let plain = run_ok(&["optimize", path.to_str().unwrap()]);

    // The pre-telemetry output skeleton: exactly these sections, in this
    // order, with nothing appended after the explain block.
    let lines: Vec<&str> = plain.lines().collect();
    let expected_prefixes = [
        "algorithm:",
        "cost model:",
        "plan:",
        "cost:",
        "cardinality:",
        "counters:",
        "time:",
        "",
    ];
    for (i, prefix) in expected_prefixes.iter().enumerate() {
        assert!(lines[i].starts_with(prefix), "line {i} = {:?}", lines[i]);
    }
    assert!(plain.contains("Scan R0"));
    assert!(
        !plain.contains("run:"),
        "telemetry block leaked into plain output:\n{plain}"
    );
    assert!(
        !plain.contains("phase "),
        "telemetry block leaked into plain output:\n{plain}"
    );

    // With --metrics the report is strictly appended: everything before
    // it is byte-identical to the plain run (modulo the time line).
    let with_metrics = run_ok(&["optimize", path.to_str().unwrap(), "--metrics"]);
    let head = with_metrics
        .split("\nrun:")
        .next()
        .expect("report separator present");
    assert_eq!(normalize_time(&plain), normalize_time(head));
}

#[test]
fn optimize_metrics_appends_human_report() {
    let path = write_query_file(CHAIN_QUERY);
    let out = run_ok(&["optimize", path.to_str().unwrap(), "--metrics"]);
    assert!(out.contains("run:        DPccp on 3 relations"), "{out}");
    assert!(out.contains("phase init"), "{out}");
    assert!(out.contains("phase enumerate"), "{out}");
    assert!(out.contains("phase extract"), "{out}");
    assert!(out.contains("dp levels:"), "{out}");
    assert!(out.contains("table:"), "{out}");
    assert!(out.contains("arena:"), "{out}");
    assert!(out.contains("counters:   inner="), "{out}");
}

#[test]
fn optimize_trace_json_lines_parse_with_common_fields() {
    use joinopt_telemetry::json::JsonValue;

    let path = write_query_file(CHAIN_QUERY);
    let trace = tempfile::Builder::new()
        .suffix(".jsonl")
        .tempfile()
        .expect("create trace file")
        .into_temp_path();
    run_ok(&[
        "optimize",
        path.to_str().unwrap(),
        "--trace-json",
        trace.to_str().unwrap(),
    ]);

    let text = std::fs::read_to_string(&*trace).expect("trace file written");
    assert!(!text.is_empty(), "trace file is empty");
    let mut events = Vec::new();
    let mut last_elapsed = 0u64;
    for line in text.lines() {
        let v = JsonValue::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        let event = v
            .get("event")
            .and_then(|e| e.as_str())
            .expect("event field");
        assert!(
            v.get("phase").and_then(|p| p.as_str()).is_some(),
            "missing phase field: {line}"
        );
        let elapsed = v
            .get("elapsed_ns")
            .and_then(|e| e.as_u64())
            .expect("elapsed_ns field");
        assert!(elapsed >= last_elapsed, "elapsed_ns went backwards: {line}");
        last_elapsed = elapsed;
        events.push(event.to_string());
    }
    assert_eq!(events.first().map(String::as_str), Some("run_start"));
    assert_eq!(events.last().map(String::as_str), Some("run_end"));
    assert!(events.iter().any(|e| e == "dp_level"), "{events:?}");
    assert!(events.iter().any(|e| e == "final_counters"), "{events:?}");
}

#[test]
fn compare_metrics_emits_csv_per_algorithm() {
    let path = write_query_file(CHAIN_QUERY);
    let out = run_ok(&["compare", path.to_str().unwrap(), "--metrics"]);
    assert!(out.contains("algorithm,relations,total_ns"), "{out}");
    for name in ["DPsize,3", "DPsub,3", "DPccp,3", "GOO,3"] {
        assert!(out.contains(name), "missing CSV row {name} in:\n{out}");
    }
}

#[test]
fn counters_metrics_appends_measured_rows() {
    let out = run_ok(&["counters", "chain", "5", "--metrics"]);
    assert!(out.contains("I_DPccp"), "{out}"); // formula table still there
    assert!(out.contains("measured (seed-2006 workloads):"), "{out}");
    assert!(out.contains("algorithm,relations,total_ns"), "{out}");
    for n in 2..=5 {
        assert!(
            out.contains(&format!("DPccp,{n},")),
            "missing DPccp row for n={n}:\n{out}"
        );
    }
}

#[test]
fn counters_telemetry_rejects_infeasible_sizes() {
    assert!(matches!(
        run_err(&["counters", "chain", "20", "--metrics"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["counters", "clique", "30", "--trace-json", "/tmp/t.jsonl"]),
        CliError::Usage(_)
    ));
}

#[test]
fn counters_trace_json_covers_all_runs() {
    use joinopt_telemetry::json::JsonValue;

    let trace = tempfile::Builder::new()
        .suffix(".jsonl")
        .tempfile()
        .expect("create trace file")
        .into_temp_path();
    run_ok(&[
        "counters",
        "star",
        "4",
        "--trace-json",
        trace.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&*trace).expect("trace file written");
    let starts = text
        .lines()
        .filter(|l| {
            JsonValue::parse(l)
                .ok()
                .and_then(|v| v.get("event").and_then(|e| e.as_str()).map(String::from))
                .as_deref()
                == Some("run_start")
        })
        .count();
    // 4 algorithms (DPsize, DPsub, DPccp, DPconv) × sizes 2..=4.
    assert_eq!(starts, 12, "{text}");
}

/// Dense clique whose exact DP table outgrows a small memory budget
/// while the fallback rungs (IDP, greedy) still fit.
fn clique_query(n: usize) -> String {
    let mut q = String::new();
    for i in 0..n {
        q.push_str(&format!("relation r{i} 1000\n"));
    }
    for i in 0..n {
        for j in i + 1..n {
            q.push_str(&format!("join r{i} r{j} 0.1\n"));
        }
    }
    q
}

#[test]
fn optimize_memory_budget_trips_and_degrade_recovers() {
    let path = write_query_file(&clique_query(13));
    let err = run_err(&["optimize", path.to_str().unwrap(), "--memory-budget", "64k"]);
    assert!(
        matches!(
            err,
            CliError::Optimize(joinopt_core::OptimizeError::MemoryBudgetExceeded { .. })
        ),
        "{err}"
    );

    let out = run_ok(&[
        "optimize",
        path.to_str().unwrap(),
        "--memory-budget",
        "64k",
        "--degrade",
    ]);
    assert!(out.contains("plan after memory budget trip"), "{out}");
    assert!(out.contains("degraded:"), "{out}");
    assert!(out.contains('⋈'), "{out}");
}

#[test]
fn optimize_generous_memory_budget_changes_nothing() {
    let path = write_query_file(CHAIN_QUERY);
    let plain = run_ok(&["optimize", path.to_str().unwrap()]);
    let budgeted = run_ok(&[
        "optimize",
        path.to_str().unwrap(),
        "--memory-budget",
        "1g",
        "--degrade",
    ]);
    // Everything but the wall-clock line must be bit-identical.
    let strip = |s: &str| -> String {
        s.lines()
            .filter(|l| !l.starts_with("time:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&plain), strip(&budgeted));
    assert!(!budgeted.contains("degraded:"), "{budgeted}");
}

#[test]
fn optimize_rejects_bad_budget_values_and_batch_combination() {
    let path = write_query_file(CHAIN_QUERY);
    assert!(matches!(
        run_err(&[
            "optimize",
            path.to_str().unwrap(),
            "--memory-budget",
            "nope"
        ]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap(), "--memory-budget", "64q"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["optimize", path.to_str().unwrap(), "--degrade", "--batch"]),
        CliError::Usage(_)
    ));
}

#[test]
fn fuzz_smoke_run_is_clean() {
    let out = run_ok(&["fuzz", "--seed", "7", "--iters", "20", "--max-n", "7"]);
    assert!(out.contains("fuzz: seed 7, 20 instances"), "{out}");
    assert!(out.contains("all instances conform"), "{out}");
}

#[test]
fn fuzz_metrics_prints_registry_and_trace_has_thread_ids() {
    use joinopt_telemetry::json::JsonValue;

    let trace = tempfile::Builder::new()
        .suffix(".jsonl")
        .tempfile()
        .expect("create trace file")
        .into_temp_path();
    let out = run_ok(&[
        "fuzz",
        "--seed",
        "7",
        "--iters",
        "10",
        "--max-n",
        "7",
        "--metrics",
        "--trace-json",
        trace.to_str().unwrap(),
    ]);
    // Campaign-scale registry snapshot, not a single-run report.
    assert!(out.contains("joinopt_runs_total"), "{out}");
    assert!(out.contains("all instances conform"), "{out}");
    let text = std::fs::read_to_string(&*trace).expect("trace file written");
    assert!(!text.is_empty());
    for line in text.lines() {
        let v = JsonValue::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        assert!(
            v.get("thread_id").and_then(|t| t.as_u64()).is_some(),
            "missing thread_id: {line}"
        );
    }
}

#[test]
fn fuzz_cache_mode_is_clean() {
    let out = run_ok(&[
        "fuzz", "--seed", "7", "--iters", "15", "--max-n", "7", "--cache",
    ]);
    assert!(out.contains("all instances conform"), "{out}");
}

#[test]
fn fuzz_rejects_bad_options() {
    assert!(matches!(
        run_err(&["fuzz", "--seed", "nope"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["fuzz", "--max-n", "1"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["fuzz", "positional"]),
        CliError::Usage(_)
    ));
}

// ---------------------------------------------------------------------
// Prometheus export (--prom), perf baselines, flamegraph folding.
// ---------------------------------------------------------------------

#[test]
fn optimize_prom_writes_exposition_file() {
    let path = write_query_file(CHAIN_QUERY);
    let prom = tempfile::Builder::new()
        .suffix(".prom")
        .tempfile()
        .expect("create prom file")
        .into_temp_path();
    run_ok(&[
        "optimize",
        path.to_str().unwrap(),
        "--prom",
        prom.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&*prom).expect("prom file written");
    assert!(text.contains("# TYPE joinopt_runs_total counter"), "{text}");
    assert!(text.contains("algorithm=\"DPccp\""), "{text}");
    assert!(text.contains("joinopt_run_duration_ns_count"), "{text}");
}

#[test]
fn batch_trace_and_prom_aggregate_all_workers() {
    use joinopt_telemetry::json::JsonValue;

    let a = write_query_file(CHAIN_QUERY);
    let b = write_query_file(
        "relation a 100\nrelation b 200\nrelation c 50\njoin a b 0.01\njoin b c 0.05\n",
    );
    let trace = tempfile::Builder::new()
        .suffix(".jsonl")
        .tempfile()
        .expect("create trace file")
        .into_temp_path();
    let prom = tempfile::Builder::new()
        .suffix(".prom")
        .tempfile()
        .expect("create prom file")
        .into_temp_path();
    run_ok(&[
        "optimize",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--batch",
        "--threads",
        "2",
        "--trace-json",
        trace.to_str().unwrap(),
        "--prom",
        prom.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&*trace).expect("trace file written");
    let starts = text
        .lines()
        .filter(|l| {
            JsonValue::parse(l)
                .ok()
                .and_then(|v| v.get("event").and_then(|e| e.as_str()).map(String::from))
                .as_deref()
                == Some("run_start")
        })
        .count();
    assert_eq!(starts, 2, "{text}");
    for line in text.lines() {
        let v = JsonValue::parse(line).expect("parseable line");
        assert!(v.get("thread_id").and_then(|t| t.as_u64()).is_some());
    }
    let exposition = std::fs::read_to_string(&*prom).expect("prom file written");
    assert!(
        exposition.contains("joinopt_runs_total{algorithm=\"DPccp\"} 2"),
        "{exposition}"
    );
}

#[test]
fn perf_writes_baseline_and_check_passes_against_itself() {
    let baseline_path = tempfile::Builder::new()
        .suffix(".json")
        .tempfile()
        .expect("create baseline file")
        .into_temp_path();
    let out = run_ok(&[
        "perf",
        "--n",
        "6",
        "--reps",
        "1",
        "--threads",
        "1,2",
        "--out",
        baseline_path.to_str().unwrap(),
    ]);
    assert!(out.contains("chain"), "{out}");
    assert!(out.contains("DPsub"), "{out}");
    // 3 families × (DPsize + DPccp + DPconv + 2 DPsub thread counts).
    assert!(out.contains("wrote 15 cells"), "{out}");
    let text = std::fs::read_to_string(&*baseline_path).expect("baseline written");
    assert!(text.contains("\"schema\": \"joinopt-perf-v1\""), "{text}");

    let check = run_ok(&[
        "perf",
        "--check",
        baseline_path.to_str().unwrap(),
        "--counters-only",
    ]);
    assert!(
        check.contains("perf check passed (counters-only): 15 cells"),
        "{check}"
    );
}

#[test]
fn perf_check_fails_on_counter_drift() {
    use joinopt_bench::perf::PerfBaseline;

    let baseline_path = tempfile::Builder::new()
        .suffix(".json")
        .tempfile()
        .expect("create baseline file")
        .into_temp_path();
    run_ok(&[
        "perf",
        "--n",
        "6",
        "--reps",
        "1",
        "--threads",
        "1",
        "--out",
        baseline_path.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&*baseline_path).expect("baseline written");
    let mut tampered = PerfBaseline::parse(&text).expect("parseable baseline");
    tampered.cells[0].inner += 1;
    std::fs::write(&*baseline_path, tampered.to_json()).expect("rewrite baseline");

    let err = run_err(&[
        "perf",
        "--check",
        baseline_path.to_str().unwrap(),
        "--counters-only",
    ]);
    assert!(matches!(err, CliError::Regression(_)), "{err:?}");
}

#[test]
fn perf_rejects_bad_options_and_garbage_baselines() {
    assert!(matches!(
        run_err(&["perf", "positional"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["perf", "--n", "99"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["perf", "--threads", "1,zero"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["perf", "--noise", "-1"]),
        CliError::Usage(_)
    ));
    let garbage = write_query_file("not json at all");
    assert!(matches!(
        run_err(&["perf", "--check", garbage.to_str().unwrap()]),
        CliError::Data(_)
    ));
}

#[test]
fn flame_folds_a_trace_into_collapsed_stacks() {
    let query = write_query_file(CHAIN_QUERY);
    let trace = tempfile::Builder::new()
        .suffix(".jsonl")
        .tempfile()
        .expect("create trace file")
        .into_temp_path();
    run_ok(&[
        "optimize",
        query.to_str().unwrap(),
        "--trace-json",
        trace.to_str().unwrap(),
    ]);
    let folded = run_ok(&["flame", trace.to_str().unwrap()]);
    assert!(folded.contains("DPccp;enumerate "), "{folded}");
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("stack value");
        assert!(!stack.is_empty(), "{line}");
        assert!(value.parse::<u64>().is_ok(), "{line}");
    }

    // --out writes the same folded lines to a file.
    let out_file = tempfile::Builder::new()
        .suffix(".folded")
        .tempfile()
        .expect("create folded file")
        .into_temp_path();
    let msg = run_ok(&[
        "flame",
        trace.to_str().unwrap(),
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert!(msg.contains("wrote"), "{msg}");
    assert_eq!(
        std::fs::read_to_string(&*out_file).expect("folded file"),
        folded
    );
}

#[test]
fn flame_rejects_garbage_traces() {
    let garbage = write_query_file("this is not jsonl");
    assert!(matches!(
        run_err(&["flame", garbage.to_str().unwrap()]),
        CliError::Data(_)
    ));
    assert!(matches!(run_err(&["flame"]), CliError::Usage(_)));
}

#[test]
fn explain_renders_text_with_decision_records() {
    let path = write_query_file(CHAIN_QUERY);
    let out = run_ok(&["explain", path.to_str().unwrap()]);
    assert!(out.contains("algorithm:"), "{out}");
    assert!(out.contains("cost model:"), "{out}");
    assert!(out.contains("decision records (DP order):"), "{out}");
    assert!(out.contains("customer"), "{out}");
    assert!(out.contains("lineitem"), "{out}");
    assert!(out.contains("└── "), "{out}");
    assert!(out.contains("candidates="), "{out}");
}

#[test]
fn explain_json_is_structured_and_deterministic() {
    use joinopt_telemetry::json::JsonValue;

    let path = write_query_file(CHAIN_QUERY);
    let args = ["explain", path.to_str().unwrap(), "--format", "json"];
    let first = run_ok(&args);
    let second = run_ok(&args);
    assert_eq!(first, second, "explain JSON must be byte-stable");

    let v = JsonValue::parse(first.trim()).expect("valid JSON");
    assert!(
        v.get("decisions").and_then(JsonValue::as_array).is_some(),
        "{first}"
    );
    assert!(v.get("plan").is_some(), "{first}");
}

#[test]
fn explain_emits_graphviz_dot() {
    let path = write_query_file(CHAIN_QUERY);
    let out = run_ok(&["explain", path.to_str().unwrap(), "--format", "dot"]);
    assert!(out.starts_with("digraph plan {"), "{out}");
    assert!(out.contains("orders"), "{out}");
}

#[test]
fn explain_compare_diffs_two_algorithms() {
    use joinopt_telemetry::json::JsonValue;

    let path = write_query_file(CHAIN_QUERY);
    let out = run_ok(&[
        "explain",
        path.to_str().unwrap(),
        "--compare",
        "dpsize,dpccp",
    ]);
    assert!(out.contains("compare: DPsize vs DPccp"), "{out}");
    assert!(
        out.contains("first divergent decision") || out.contains("no divergent decisions"),
        "{out}"
    );

    let json = run_ok(&[
        "explain",
        path.to_str().unwrap(),
        "--compare",
        "dpsize,dpccp",
        "--format",
        "json",
    ]);
    let v = JsonValue::parse(json.trim()).expect("valid compare JSON");
    assert!(
        v.get("divergences").and_then(JsonValue::as_array).is_some(),
        "{json}"
    );
}

#[test]
fn explain_compare_pinpoints_divergence_on_tie_rich_corpus() {
    let out = run_ok(&[
        "explain",
        "../../tests/corpus/tie-rich-chain-8.query",
        "--compare",
        "dpsize,goo",
    ]);
    assert!(out.contains("plans:   differ"), "{out}");
    assert!(out.contains("first divergent decision"), "{out}");
}

#[test]
fn explain_rejects_bad_options() {
    let path = write_query_file(CHAIN_QUERY);
    assert!(matches!(run_err(&["explain"]), CliError::Usage(_)));
    assert!(matches!(
        run_err(&["explain", path.to_str().unwrap(), "--format", "svg"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["explain", path.to_str().unwrap(), "--compare", "dpsize"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&[
            "explain",
            path.to_str().unwrap(),
            "--compare",
            "dpsize,dpccp",
            "--format",
            "dot"
        ]),
        CliError::Usage(_)
    ));
}

#[test]
fn explain_rejects_complex_predicate_queries() {
    let path = write_query_file(
        "relation a 100\nrelation b 200\nrelation c 50\njoin a b 0.01\njoin a,b c 0.05\n",
    );
    assert!(matches!(
        run_err(&["explain", path.to_str().unwrap()]),
        CliError::Usage(_)
    ));
}

#[test]
fn perf_streams_telemetry_to_trace_and_prom_files() {
    use joinopt_telemetry::json::JsonValue;

    let trace = tempfile::Builder::new()
        .suffix(".jsonl")
        .tempfile()
        .expect("create trace file")
        .into_temp_path();
    let prom = tempfile::Builder::new()
        .suffix(".prom")
        .tempfile()
        .expect("create prom file")
        .into_temp_path();
    let baseline = tempfile::Builder::new()
        .suffix(".json")
        .tempfile()
        .expect("create baseline file")
        .into_temp_path();
    run_ok(&[
        "perf",
        "--n",
        "6",
        "--reps",
        "1",
        "--threads",
        "1",
        "--out",
        baseline.to_str().unwrap(),
        "--trace-json",
        trace.to_str().unwrap(),
        "--prom",
        prom.to_str().unwrap(),
    ]);

    let trace_text = std::fs::read_to_string(&*trace).expect("trace written");
    let run_starts = trace_text
        .lines()
        .filter(|l| {
            let v = JsonValue::parse(l).expect("valid JSONL line");
            v.get("event").and_then(JsonValue::as_str) == Some("run_start")
        })
        .count();
    assert!(run_starts > 0, "expected run_start events:\n{trace_text}");

    let prom_text = std::fs::read_to_string(&*prom).expect("prom written");
    assert!(prom_text.contains("joinopt_runs_total"), "{prom_text}");
}

#[test]
fn load_chaos_rejects_misused_options() {
    // Chaos-tuning flags are meaningless for the plain load gate.
    let err = run_err(&["load", "--drivers", "4"]);
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("require --chaos")),
        "{err}"
    );
    assert!(matches!(
        run_err(&["load", "--burst-faults", "10"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["load", "--recheck", "8"]),
        CliError::Usage(_)
    ));
    // The hit-rate floor belongs to the plain gate; chaos has its own.
    let err = run_err(&["load", "--chaos", "--min-hit-rate", "0.5"]);
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("--chaos")),
        "{err}"
    );
    assert!(matches!(
        run_err(&["load", "--chaos", "--drivers", "0"]),
        CliError::Usage(_)
    ));
}

// Without the failpoints cfg there is nothing to inject, so the chaos
// harness must refuse loudly instead of "passing" a burst-free run.
// (The affirmative chaos run is exercised in the bench crate's own
// integration test and by the ci.sh gate, both under the failpoints
// build.)
#[cfg(not(failpoints))]
#[test]
fn load_chaos_refuses_without_failpoints_build() {
    let err = run_err(&["load", "--chaos", "--requests", "20"]);
    assert!(
        matches!(&err, CliError::Regression(m) if m.contains("failpoints")),
        "{err}"
    );
}

#[test]
fn serve_rejects_bad_options() {
    assert!(matches!(
        run_err(&["serve", "positional"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["serve", "--bogus", "x"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["serve", "--drain-timeout-ms", "soon"]),
        CliError::Usage(_)
    ));
    let err = run_err(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--unix",
        "/tmp/joinopt-test.sock",
    ]);
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("exclusive")),
        "{err}"
    );
    let err = run_err(&["serve", "--smoke", "--addr", "127.0.0.1:0"]);
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("loopback")),
        "{err}"
    );
}

#[test]
fn serve_span_timeline_is_byte_deterministic() {
    use joinopt_telemetry::json::JsonValue;

    let path = tempfile::Builder::new()
        .suffix(".json")
        .tempfile()
        .expect("create timeline file")
        .into_temp_path();
    let out = run_ok(&["serve", "--span-timeline", path.to_str().unwrap()]);
    assert!(out.contains("wrote span timeline"), "{out}");
    let first = std::fs::read_to_string(&*path).expect("timeline written");
    run_ok(&["serve", "--span-timeline", path.to_str().unwrap()]);
    let second = std::fs::read_to_string(&*path).expect("timeline rewritten");
    assert_eq!(first, second, "span timeline must be run-to-run identical");
    let doc = JsonValue::parse(&first).expect("timeline is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("joinopt-span-timeline-v1")
    );
}

#[test]
fn top_once_renders_the_windowed_latency_table() {
    use joinopt_service::server::LineClient;
    use joinopt_service::{Server, ServerConfig};

    let server = Server::bind(ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().expect("tcp addr");
    let handle = std::thread::spawn(move || server.run());

    // Put one traced optimize through so the window has stage series.
    let mut client = LineClient::connect(addr).expect("connect");
    let resp = client
        .call("{\"verb\":\"optimize\",\"query\":\"relation a 10\\nrelation b 20\\njoin a b 0.1\"}")
        .expect("optimize");
    assert_eq!(resp.get("status").and_then(|v| v.as_str()), Some("ok"));

    let out = run_ok(&["top", "--once", "--addr", &addr.to_string()]);
    assert!(out.contains("joinopt top"), "{out}");
    for needle in ["tenant", "stage", "optimize", "p99", "total"] {
        assert!(out.contains(needle), "top output missing {needle}: {out}");
    }

    client.call("{\"verb\":\"shutdown\"}").expect("shutdown");
    handle.join().unwrap().expect("server run");

    assert!(matches!(
        run_err(&["top", "positional"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["top", "--interval-ms", "soon"]),
        CliError::Usage(_)
    ));
    assert!(matches!(
        run_err(&["top", "--addr", "not-an-addr"]),
        CliError::Usage(_)
    ));
}
