//! The `joinopt serve --smoke` self-check, isolated in its own test
//! binary: under the failpoints build the smoke script arms
//! process-global failpoints (`serve-worker-panic`,
//! `serve-cache-poison`), which must not race sibling CLI tests that
//! drive the optimizer service in the same process.

use joinopt_cli::run;

#[test]
fn serve_smoke_passes_and_flushes_prometheus() {
    let prom =
        std::env::temp_dir().join(format!("joinopt-serve-smoke-{}.prom", std::process::id()));
    let args: Vec<String> = [
        "serve",
        "--smoke",
        "--prom",
        prom.to_str().expect("utf8 temp path"),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut out = Vec::new();
    run(&args, &mut out).unwrap_or_else(|e| panic!("serve --smoke failed: {e}"));
    let text = String::from_utf8(out).expect("utf8 output");

    assert!(text.contains("serve smoke passed"), "{text}");
    // The transcript narrates the scripted protocol exchange.
    assert!(text.contains("smoke: "), "{text}");
    assert!(text.contains("health"), "{text}");

    let prom_text = std::fs::read_to_string(&prom).expect("prometheus flush written");
    std::fs::remove_file(&prom).ok();
    assert!(
        prom_text.contains("joinopt_serve_accepted_total"),
        "{prom_text}"
    );
}
