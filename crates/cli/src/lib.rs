//! Implementation of the `joinopt` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin wrapper around [`run`], which
//! writes to any `io::Write` so the integration tests can drive every
//! command end-to-end without spawning processes.
//!
//! ```text
//! joinopt optimize <query-file> [--algorithm NAME] [--cost-model NAME]
//! joinopt compare  <query-file> [--cost-model NAME]
//! joinopt generate <family> <n> [--seed S]
//! joinopt counters <family> <max-n>
//! joinopt help
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io::Write;
use std::time::Instant;

use joinopt_core::formulas::{dpccp_inner, dpsize_inner, dpsub_inner};
use joinopt_core::greedy::Goo;
use joinopt_core::{Algorithm, DpCcp, DpHyp, DpSize, DpSub, JoinOrderer};
use joinopt_cost::{
    workload, CostModel, Cout, HashJoin, MinOverPhysical, NestedLoopJoin, SortMergeJoin,
};
use joinopt_qgraph::formulas::{ccp_distinct, csg_count};
use joinopt_qgraph::GraphKind;
use joinopt_query::{parse, parse_sql, write as write_query, ParsedQuery};

/// Errors surfaced to the CLI user (exit code 1 + message).
#[derive(Debug)]
pub enum CliError {
    /// Wrong invocation (unknown command, missing/invalid arguments).
    Usage(String),
    /// A file could not be read.
    Io(std::io::Error),
    /// The query file did not parse.
    Parse(joinopt_query::ParseError),
    /// The SQL query file did not parse.
    Sql(joinopt_query::SqlError),
    /// Optimization failed (disconnected graph, …).
    Optimize(joinopt_core::OptimizeError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Parse(e) => write!(f, "parse error: {e}"),
            CliError::Sql(e) => write!(f, "SQL parse error: {e}"),
            CliError::Optimize(e) => write!(f, "optimization failed: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<joinopt_query::ParseError> for CliError {
    fn from(e: joinopt_query::ParseError) -> Self {
        CliError::Parse(e)
    }
}

impl From<joinopt_query::SqlError> for CliError {
    fn from(e: joinopt_query::SqlError) -> Self {
        CliError::Sql(e)
    }
}

impl From<joinopt_core::OptimizeError> for CliError {
    fn from(e: joinopt_core::OptimizeError) -> Self {
        CliError::Optimize(e)
    }
}

/// The usage text printed by `joinopt help` and on usage errors.
pub const USAGE: &str = "\
joinopt — optimal bushy join trees without cross products (VLDB 2006)

USAGE:
  joinopt optimize <query-file> [--algorithm NAME] [--cost-model NAME]
  joinopt compare  <query-file> [--cost-model NAME]
  joinopt generate <family> <n> [--seed S]
  joinopt counters <family> <max-n>
  joinopt help

ALGORITHMS:  dpsize, dpsub, dpccp, goo, auto (default),
             dpsize-naive, dpsub-nofilter, dpsub-cp
COST MODELS: cout (default), nlj, hash, smj, min
FAMILIES:    chain, cycle, star, clique

Query files are either the native DSL:
  relation <name> <cardinality>
  join <name> <name> [<selectivity>]     # default selectivity 0.1
  join <a>,<b> <c> [<selectivity>]       # complex predicate -> DPhyp
or conjunctive SQL (detected by a leading SELECT):
  SELECT * FROM t /*+ rows=N */ a, ...
  WHERE a.x = b.y /*+ sel=F */ AND ...
";

/// Entry point shared by the binary and the tests.
///
/// `args` excludes the program name.
///
/// # Errors
///
/// Returns [`CliError`] for bad usage, unreadable files, parse failures
/// and optimizer rejections.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    match command.as_str() {
        "optimize" => cmd_optimize(&args[1..], out),
        "compare" => cmd_compare(&args[1..], out),
        "generate" => cmd_generate(&args[1..], out),
        "counters" => cmd_counters(&args[1..], out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn parse_cost_model(name: &str) -> Result<Box<dyn CostModel>, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "cout" => Ok(Box::new(Cout)),
        "nlj" => Ok(Box::new(NestedLoopJoin)),
        "hash" => Ok(Box::new(HashJoin)),
        "smj" => Ok(Box::new(SortMergeJoin)),
        "min" => Ok(Box::new(MinOverPhysical)),
        other => Err(CliError::Usage(format!("unknown cost model `{other}`"))),
    }
}

fn parse_family(name: &str) -> Result<GraphKind, CliError> {
    GraphKind::parse(name)
        .ok_or_else(|| CliError::Usage(format!("unknown graph family `{name}`")))
}

/// Positional arguments and `--key value` option pairs.
type SplitArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Splits `args` into positionals and `--key value` options.
fn split_options(args: &[String]) -> Result<SplitArgs<'_>, CliError> {
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(key) = a.strip_prefix("--") {
            let Some(value) = args.get(i + 1) else {
                return Err(CliError::Usage(format!("option --{key} needs a value")));
            };
            options.push((key, value.as_str()));
            i += 2;
        } else {
            positional.push(a);
            i += 1;
        }
    }
    Ok((positional, options))
}

fn load_query(path: &str) -> Result<ParsedQuery, CliError> {
    let text = std::fs::read_to_string(path)?;
    // Dispatch on content: conjunctive SQL vs the native DSL. SQL files
    // may lead with `--` comments; DSL files with `#` comments.
    let looks_like_sql = text
        .lines()
        .map(str::trim_start)
        .find(|l| !l.is_empty() && !l.starts_with("--"))
        .is_some_and(|l| l.len() >= 6 && l[..6].eq_ignore_ascii_case("select"));
    if looks_like_sql {
        Ok(parse_sql(&text)?)
    } else {
        Ok(parse(&text)?)
    }
}

fn cmd_optimize(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage("optimize expects one query file".into()));
    };
    let mut algorithm = Algorithm::Auto;
    let mut model: Box<dyn CostModel> = Box::new(Cout);
    for (key, value) in options {
        match key {
            "algorithm" => {
                algorithm = Algorithm::parse(value).ok_or_else(|| {
                    CliError::Usage(format!("unknown algorithm `{value}`"))
                })?;
            }
            "cost-model" => model = parse_cost_model(value)?,
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }

    let q = load_query(path)?;
    let (name, result, elapsed) = match q.graph() {
        Some(graph) => {
            let orderer = algorithm.orderer(graph);
            let start = Instant::now();
            let result = orderer.optimize(graph, &q.catalog, model.as_ref())?;
            (orderer.name(), result, start.elapsed())
        }
        None => {
            // Complex (hyper) predicates: DPhyp is the only applicable
            // algorithm.
            if !matches!(algorithm, Algorithm::Auto) {
                return Err(CliError::Usage(
                    "this query has complex (multi-relation) predicates; only DPhyp                      applies — drop --algorithm"
                        .into(),
                ));
            }
            let start = Instant::now();
            let result = DpHyp.optimize(&q.hypergraph, &q.catalog, model.as_ref())?;
            (DpHyp.name(), result, start.elapsed())
        }
    };

    writeln!(out, "algorithm:   {name}")?;
    writeln!(out, "cost model:  {}", model.name())?;
    writeln!(out, "plan:        {}", q.render_tree(&result.tree))?;
    writeln!(out, "cost:        {:.6e}", result.cost)?;
    writeln!(out, "cardinality: {:.6e}", result.cardinality)?;
    writeln!(out, "counters:    {}", result.counters)?;
    writeln!(out, "time:        {elapsed:.2?}")?;
    writeln!(out)?;
    writeln!(out, "{}", result.tree.explain())?;
    Ok(())
}

fn cmd_compare(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage("compare expects one query file".into()));
    };
    let mut model: Box<dyn CostModel> = Box::new(Cout);
    for (key, value) in options {
        match key {
            "cost-model" => model = parse_cost_model(value)?,
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }
    let q = load_query(path)?;
    writeln!(
        out,
        "{:<10} {:>12} {:>14} {:>14} {:>14}",
        "algorithm", "time", "inner", "csg-cmp-pairs", "cost"
    )?;
    let mut print_row = |name: &str,
                         elapsed: std::time::Duration,
                         result: &joinopt_core::DpResult|
     -> Result<(), CliError> {
        writeln!(
            out,
            "{:<10} {:>12} {:>14} {:>14} {:>14.6e}",
            name,
            format!("{elapsed:.2?}"),
            result.counters.inner,
            result.counters.csg_cmp_pairs,
            result.cost
        )?;
        Ok(())
    };
    match q.graph() {
        Some(graph) => {
            let algorithms: [&dyn JoinOrderer; 4] = [&DpSize, &DpSub, &DpCcp, &Goo];
            for alg in algorithms {
                let start = Instant::now();
                let result = alg.optimize(graph, &q.catalog, model.as_ref())?;
                print_row(alg.name(), start.elapsed(), &result)?;
            }
        }
        None => {
            let start = Instant::now();
            let result = DpHyp.optimize(&q.hypergraph, &q.catalog, model.as_ref())?;
            print_row(DpHyp.name(), start.elapsed(), &result)?;
        }
    }
    Ok(())
}

fn cmd_generate(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    let [family, n_text] = positional.as_slice() else {
        return Err(CliError::Usage("generate expects a family and a size".into()));
    };
    let kind = parse_family(family)?;
    let n: usize = n_text
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid size `{n_text}`")))?;
    if n == 0 || n > 64 {
        return Err(CliError::Usage(format!("size {n} out of range 1..=64")));
    }
    let mut seed = 2006u64;
    for (key, value) in options {
        match key {
            "seed" => {
                seed = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid seed `{value}`")))?;
            }
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }
    let w = workload::family_workload(kind, n, seed);
    // Reuse the writer by going through the text format: name relations R0….
    use core::fmt::Write as _;
    let mut src = String::new();
    for i in 0..n {
        let _ = writeln!(src, "relation R{i} {}", w.catalog.cardinality(i));
    }
    for (edge_id, e) in w.graph.edges().iter().enumerate() {
        let _ = writeln!(src, "join R{} R{} {}", e.u, e.v, w.catalog.selectivity(edge_id));
    }
    let q = parse(&src).expect("generated workloads are valid");
    writeln!(out, "# {kind} query, n = {n}, seed = {seed}")?;
    write!(out, "{}", write_query(&q))?;
    Ok(())
}

fn cmd_counters(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, _) = split_options(args)?;
    let [family, max_text] = positional.as_slice() else {
        return Err(CliError::Usage("counters expects a family and a maximum size".into()));
    };
    let kind = parse_family(family)?;
    let max_n: u64 = max_text
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid size `{max_text}`")))?;
    if max_n == 0 || max_n > 40 {
        return Err(CliError::Usage(format!("size {max_n} out of range 1..=40")));
    }
    writeln!(
        out,
        "{:<4} {:>16} {:>16} {:>20} {:>20} {:>16}",
        "n", "#csg", "#ccp", "I_DPsize", "I_DPsub", "I_DPccp"
    )?;
    for n in 2..=max_n {
        writeln!(
            out,
            "{:<4} {:>16} {:>16} {:>20} {:>20} {:>16}",
            n,
            csg_count(kind, n),
            ccp_distinct(kind, n),
            dpsize_inner(kind, n),
            dpsub_inner(kind, n),
            dpccp_inner(kind, n)
        )?;
    }
    Ok(())
}
