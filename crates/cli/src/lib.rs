//! Implementation of the `joinopt` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin wrapper around [`run`], which
//! writes to any `io::Write` so the integration tests can drive every
//! command end-to-end without spawning processes.
//!
//! ```text
//! joinopt optimize <query-file> [--algorithm NAME] [--cost-model NAME]
//! joinopt compare  <query-file> [--cost-model NAME]
//! joinopt generate <family> <n> [--seed S]
//! joinopt counters <family> <max-n>
//! joinopt help
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::time::Instant;

use joinopt_bench::load::{run_chaos, run_load, run_load_observed, ChaosConfig, LoadConfig};
use joinopt_bench::perf::{run_matrix_observed, PerfBaseline, PerfConfig};
use joinopt_core::explain::{compare, Explanation};
use joinopt_core::formulas::{dpccp_inner, dpsize_inner, dpsub_inner};
use joinopt_core::greedy::Goo;
use joinopt_core::{Algorithm, DpCcp, DpConv, DpHyp, DpSize, DpSub, JoinOrderer};
use joinopt_cost::{
    workload, CostModel, Cout, HashJoin, MinOverPhysical, NestedLoopJoin, SortMergeJoin,
};
use joinopt_qgraph::formulas::{ccp_distinct, csg_count};
use joinopt_qgraph::GraphKind;
use joinopt_query::{parse, parse_sql, write as write_query, ParsedQuery};
use joinopt_service::server::{
    smoke, span_timeline_demo, LineClient, Listen, Server, ServerConfig,
};
use joinopt_service::{
    CacheConfig, CostModelId, OptimizerService, QuerySpec, ServiceConfig, ServiceRequest,
};
use joinopt_telemetry::json::JsonValue;
use joinopt_telemetry::{
    collapse_trace, Fanout, MetricsCollector, MetricsRegistry, NoopObserver, Observer,
    RegistryObserver, RunReport, SyncFanout, TraceWriter,
};

/// Errors surfaced to the CLI user (exit code 1 + message).
///
/// Everything past argument handling and file I/O funnels through the
/// unified [`joinopt_core::OptimizeError`]: query-DSL and SQL parse
/// failures convert into it (`OptimizeError::Parse` / `::Sql`), so the
/// CLI no longer mirrors each crate's error type.
#[derive(Debug)]
pub enum CliError {
    /// Wrong invocation (unknown command, missing/invalid arguments).
    Usage(String),
    /// A file could not be read.
    Io(std::io::Error),
    /// Parsing or optimization failed (bad query text, disconnected
    /// graph, exceeded budget, …).
    Optimize(joinopt_core::OptimizeError),
    /// `joinopt fuzz` found optimizer divergences (details were already
    /// printed to stdout; the variant carries the one-line summary).
    Conformance(String),
    /// An input data file (perf baseline, trace) was malformed.
    Data(String),
    /// `joinopt perf --check` found regressions against the committed
    /// baseline (diff lines were already printed to stdout; the variant
    /// carries the one-line summary).
    Regression(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Optimize(e) => write!(f, "optimization failed: {e}"),
            CliError::Conformance(msg) => write!(f, "conformance failure: {msg}"),
            CliError::Data(msg) => write!(f, "invalid input: {msg}"),
            CliError::Regression(msg) => write!(f, "performance regression: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<joinopt_query::ParseError> for CliError {
    fn from(e: joinopt_query::ParseError) -> Self {
        CliError::Optimize(e.into())
    }
}

impl From<joinopt_query::SqlError> for CliError {
    fn from(e: joinopt_query::SqlError) -> Self {
        CliError::Optimize(e.into())
    }
}

impl From<joinopt_core::OptimizeError> for CliError {
    fn from(e: joinopt_core::OptimizeError) -> Self {
        CliError::Optimize(e)
    }
}

/// The usage text printed by `joinopt help` and on usage errors.
pub const USAGE: &str = "\
joinopt — optimal bushy join trees without cross products (VLDB 2006)

USAGE:
  joinopt optimize <query-file> [--algorithm NAME] [--cost-model NAME]
                                [--threads N] [--metrics] [--trace-json PATH]
                                [--prom PATH] [--memory-budget BYTES]
                                [--degrade]
  joinopt optimize <query-file>... --batch [--algorithm NAME]
                                [--cost-model NAME] [--threads N]
                                [--trace-json PATH] [--prom PATH]
  joinopt compare  <query-file> [--cost-model NAME]
                                [--metrics] [--trace-json PATH] [--prom PATH]
  joinopt explain  <query-file> [--algorithm NAME] [--cost-model NAME]
                                [--threads N] [--format text|json|dot]
                                [--compare A,B]
  joinopt generate <family> <n> [--seed S]
  joinopt counters <family> <max-n> [--metrics] [--trace-json PATH]
                                [--prom PATH]
  joinopt fuzz     [--seed S] [--iters N] [--max-n N] [--minimize]
                   [--cache] [--metrics] [--trace-json PATH] [--prom PATH]
  joinopt perf     [--out PATH] [--n N] [--reps K] [--seed S]
                   [--threads LIST] [--noise F]
                   [--trace-json PATH] [--prom PATH]
  joinopt perf     --check PATH [--counters-only]
                   [--trace-json PATH] [--prom PATH]
  joinopt load     [--requests N] [--threads N] [--seed S]
                   [--repeat-rate F] [--max-n N] [--cache-bytes BYTES]
                   [--json PATH] [--min-hit-rate F] [--prom PATH]
  joinopt load     --chaos [--requests N] [--seed S] [--drivers N]
                   [--burst-faults N] [--recheck N] [--json PATH]
                   [--prom PATH]
  joinopt serve    [--addr HOST:PORT | --unix PATH] [--prom PATH]
                   [--drain-timeout-ms N] [--no-trace]
  joinopt serve    --smoke [--prom PATH] [--span-timeline PATH]
  joinopt top      [--addr HOST:PORT] [--interval-ms N] [--once]
  joinopt flame    <trace.jsonl> [--out PATH]
  joinopt help

ALGORITHMS:  dpsize, dpsub, dpccp, dpconv, goo, auto (default),
             dpsize-naive, dpsub-nofilter, dpsub-cp
             (dpconv is exact for the cout model only and refuses
             other models with a typed error)
COST MODELS: cout (default), nlj, hash, smj, min
FAMILIES:    chain, cycle, star, clique
PARALLELISM: --threads N runs the DPsub family on N worker threads
             (level-synchronous engine; results are bit-identical to
             sequential). 0 or omitted = the machine's parallelism.
             --batch optimizes many query files at once, spreading them
             across worker threads with pooled per-worker sessions.
ROBUSTNESS:  --memory-budget BYTES (suffixes k/m/g) aborts the run once
             DP tables and plan arenas outgrow the budget; with
             --degrade a tripped budget falls back down the ladder
             exact -> IDP -> GOO and reports the rung that produced the
             plan instead of failing (see docs/robustness.md).
TELEMETRY:   --metrics appends a run report (phase timings, DP-table and
             arena statistics); --trace-json streams every telemetry
             event to PATH as JSON lines; --prom aggregates every
             observed run into a metrics registry and writes a
             Prometheus text-exposition snapshot to PATH on exit. On
             `counters` (closed formulas) they additionally run
             DPsize/DPsub/DPccp on generated workloads, so max-n is
             capped at 12 there. --batch supports --trace-json/--prom
             (events from all workers, tagged thread_id) but not the
             per-run --metrics report. `flame` folds a --trace-json
             file into collapsed-stack lines (`stack count`) ready for
             a flamegraph renderer.
PERF:        perf runs the pinned baseline matrix (chain/star/clique ×
             DPsize, DPccp, DPconv, DPsub at --threads LIST, e.g.
             1,2,4) and
             writes BENCH_joinopt.json (override with --out). --check
             re-runs the matrix pinned in PATH and fails on any counter,
             table-size or cost-bit drift; full mode also gates arena
             bytes (exact) and wall time (baseline × (1 + noise)),
             while --counters-only skips both, making the check
             hardware-independent (the CI smoke gate).
EXPLAIN:     explain re-runs the optimizer with provenance collection:
             every DP decision (winning split, runner-up, cost delta,
             candidates considered, pruning) is recorded and rendered —
             as an annotated ASCII tree plus decision table (text), a
             stable JSON document (json), or a Graphviz digraph (dot).
             --compare A,B runs two algorithms and diffs their plans
             side-by-side, attributing the first divergent DP decision
             (equal-cost ties broken by enumeration order are called
             out). See docs/observability.md.
FUZZING:     fuzz generates random query-graph instances (seed S, iters
             N, up to --max-n relations each) and runs the differential
             conformance oracle on every one: all exact algorithms,
             the parallel engine at several thread counts, metamorphic
             properties, counter closed forms and the service layer's
             canonical-fingerprint invariance. --cache additionally
             replays each instance cold/warm through a plan cache and
             fails unless the warm hit is bit-identical to the cold
             run. --minimize shrinks each divergent instance to a
             minimal repro and prints it in the query DSL. Exit is
             nonzero on any divergence.
LOAD:        load replays a seeded mixed chain/star/clique request
             stream through the optimizer service (joinopt-service):
             each request repeats an earlier query with probability
             --repeat-rate, exercising the plan cache's warm path. It
             reports throughput, p50/p99 latency, the cache hit rate,
             a per-type error breakdown and the per-stage latency
             breakdown of the gateway lifecycle (shed-check, breaker,
             cache-lookup, optimize), writes the joinopt-load-v3 JSON
             report with --json (v2/v1 reports still parse), and with
             --min-hit-rate fails unless the run was error-free and the
             hit rate met the floor (the CI smoke gate). --chaos replays the stream through the server
             gateway with a seeded worker-panic burst mid-run (needs a
             --cfg failpoints build): warmup must be clean, the burst
             must open the per-tenant circuit breaker, recovery must
             restore the hit rate and p99, a sampled differential
             re-check against a sequential cold run must find zero
             wrong plans, and the final drain must complete. Exit is
             nonzero on any gate violation. See docs/service.md.
SERVE:       serve runs the optimizer as a long-lived server speaking
             newline-delimited JSON over TCP (--addr, default
             127.0.0.1:4006) or a unix socket (--unix). Verbs: health,
             ready, stats, optimize (inline DSL/SQL query text with
             optional tenant/priority/algorithm/cost_model/deadline_ms/
             trace_id fields), metrics (windowed per-tenant/verb/stage
             p50/p99/rate snapshot, JSON or Prometheus), trace (one
             request's span timeline by trace_id), slow (the worst-K
             slowest requests) and shutdown (graceful drain; --prom
             then writes the final Prometheus snapshot,
             --drain-timeout-ms bounds the wait). Every response echoes
             the client's id and the request's trace_id (client-
             supplied or server-minted). Requests pass watermark load
             shedding, per-tenant circuit breakers, deadline
             propagation and jittered retries; refusals and failures
             come back typed with Retry-After hints. --no-trace turns
             request tracing off entirely: zero extra clock reads,
             bit-identical plans, and the introspection verbs answer
             from empty stores. --smoke runs the
             self-check: a scripted client drives the protocol (plus
             injected faults in failpoints builds) and fails on any
             deviation; --span-timeline writes the deterministic
             manual-clock span-timeline document (the CI golden). `top`
             polls a running server's metrics verb and renders the live
             windowed latency table (--once prints one snapshot and
             exits). See docs/service.md.

Query files are either the native DSL:
  relation <name> <cardinality>
  join <name> <name> [<selectivity>]     # default selectivity 0.1
  join <a>,<b> <c> [<selectivity>]       # complex predicate -> DPhyp
or conjunctive SQL (detected by a leading SELECT):
  SELECT * FROM t /*+ rows=N */ a, ...
  WHERE a.x = b.y /*+ sel=F */ AND ...
";

/// Entry point shared by the binary and the tests.
///
/// `args` excludes the program name.
///
/// # Errors
///
/// Returns [`CliError`] for bad usage, unreadable files, parse failures
/// and optimizer rejections.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    match command.as_str() {
        "optimize" => cmd_optimize(&args[1..], out),
        "compare" => cmd_compare(&args[1..], out),
        "explain" => cmd_explain(&args[1..], out),
        "generate" => cmd_generate(&args[1..], out),
        "counters" => cmd_counters(&args[1..], out),
        "fuzz" => cmd_fuzz(&args[1..], out),
        "perf" => cmd_perf(&args[1..], out),
        "load" => cmd_load(&args[1..], out),
        "serve" => cmd_serve(&args[1..], out),
        "top" => cmd_top(&args[1..], out),
        "flame" => cmd_flame(&args[1..], out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn parse_cost_model(name: &str) -> Result<Box<dyn CostModel>, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "cout" => Ok(Box::new(Cout)),
        "nlj" => Ok(Box::new(NestedLoopJoin)),
        "hash" => Ok(Box::new(HashJoin)),
        "smj" => Ok(Box::new(SortMergeJoin)),
        "min" => Ok(Box::new(MinOverPhysical)),
        other => Err(CliError::Usage(format!("unknown cost model `{other}`"))),
    }
}

fn parse_family(name: &str) -> Result<GraphKind, CliError> {
    GraphKind::parse(name).ok_or_else(|| CliError::Usage(format!("unknown graph family `{name}`")))
}

/// Positional arguments and `--key value` option pairs.
type SplitArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Options that are boolean flags (no value argument).
const FLAG_OPTIONS: [&str; 10] = [
    "metrics",
    "batch",
    "degrade",
    "minimize",
    "counters-only",
    "cache",
    "chaos",
    "smoke",
    "once",
    "no-trace",
];

/// Splits `args` into positionals and `--key value` options.
/// Flags listed in [`FLAG_OPTIONS`] take no value and report `""`.
fn split_options(args: &[String]) -> Result<SplitArgs<'_>, CliError> {
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(key) = a.strip_prefix("--") {
            if FLAG_OPTIONS.contains(&key) {
                options.push((key, ""));
                i += 1;
                continue;
            }
            let Some(value) = args.get(i + 1) else {
                return Err(CliError::Usage(format!("option --{key} needs a value")));
            };
            options.push((key, value.as_str()));
            i += 2;
        } else {
            positional.push(a);
            i += 1;
        }
    }
    Ok((positional, options))
}

/// The telemetry sinks a command was asked for (`--metrics`,
/// `--trace-json PATH`, `--prom PATH`), bundled so each command can run
/// its optimizations observed and emit the report afterwards.
struct Telemetry {
    metrics: Option<MetricsCollector>,
    trace: Option<TraceWriter<BufWriter<File>>>,
    /// Registry aggregating every observed run, written as a Prometheus
    /// text-exposition file on [`Telemetry::close`].
    prom: Option<(MetricsRegistry, String)>,
}

impl Telemetry {
    fn new(
        metrics: bool,
        trace_path: Option<&str>,
        prom_path: Option<&str>,
    ) -> Result<Telemetry, CliError> {
        Ok(Telemetry {
            metrics: metrics.then(MetricsCollector::new),
            trace: match trace_path {
                Some(path) => Some(TraceWriter::new(BufWriter::new(File::create(path)?))),
                None => None,
            },
            prom: prom_path.map(|p| (MetricsRegistry::new(), p.to_string())),
        })
    }

    /// Runs `f` with the observer these sinks add up to ([`NoopObserver`]
    /// when no telemetry was requested, so unobserved invocations stay on
    /// the zero-overhead path).
    fn observe<R>(&self, f: impl FnOnce(&dyn Observer) -> R) -> R {
        let registry = self
            .prom
            .as_ref()
            .map(|(registry, _)| RegistryObserver::new(registry));
        let mut sinks: Vec<&dyn Observer> = Vec::new();
        if let Some(m) = &self.metrics {
            sinks.push(m);
        }
        if let Some(t) = &self.trace {
            sinks.push(t);
        }
        if let Some(r) = &registry {
            sinks.push(r);
        }
        match sinks.as_slice() {
            [] => f(&NoopObserver),
            [only] => f(*only),
            _ => f(&Fanout::new(sinks)),
        }
    }

    /// The metrics report of the most recent observed run, if `--metrics`
    /// was given. Call once per run when a command runs several
    /// algorithms — the collector resets on each `run_start`.
    fn report(&self) -> Option<RunReport> {
        self.metrics.as_ref().map(MetricsCollector::report)
    }

    /// Flushes the trace file and writes the Prometheus snapshot,
    /// surfacing deferred I/O errors.
    fn close(self) -> Result<(), CliError> {
        if let Some(trace) = self.trace {
            trace.finish()?.flush()?;
        }
        if let Some((registry, path)) = self.prom {
            std::fs::write(&path, registry.snapshot().to_prometheus())?;
        }
        Ok(())
    }
}

fn load_query(path: &str) -> Result<ParsedQuery, CliError> {
    let text = std::fs::read_to_string(path)?;
    // Dispatch on content: conjunctive SQL vs the native DSL. SQL files
    // may lead with `--` comments; DSL files with `#` comments.
    let looks_like_sql = text
        .lines()
        .map(str::trim_start)
        .find(|l| !l.is_empty() && !l.starts_with("--"))
        .is_some_and(|l| l.get(..6).is_some_and(|p| p.eq_ignore_ascii_case("select")));
    if looks_like_sql {
        Ok(parse_sql(&text)?)
    } else {
        Ok(parse(&text)?)
    }
}

/// Parses a byte count with an optional binary `k`/`m`/`g` suffix
/// (case-insensitive): `65536`, `64k`, `2m`, `1g`.
fn parse_bytes(value: &str) -> Option<usize> {
    let (digits, shift) = match value.chars().last().map(|c| c.to_ascii_lowercase()) {
        Some('k') => (&value[..value.len() - 1], 10u32),
        Some('m') => (&value[..value.len() - 1], 20),
        Some('g') => (&value[..value.len() - 1], 30),
        _ => (value, 0),
    };
    digits.parse::<usize>().ok()?.checked_shl(shift)
}

fn cmd_optimize(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    let mut algorithm = Algorithm::Auto;
    let mut model: Box<dyn CostModel> = Box::new(Cout);
    let mut model_id = CostModelId::Cout;
    let mut metrics = false;
    let mut trace_path = None;
    let mut prom_path = None;
    let mut threads: Option<usize> = None;
    let mut batch = false;
    let mut memory_budget: Option<usize> = None;
    let mut degrade = false;
    for (key, value) in options {
        match key {
            "algorithm" => {
                algorithm = Algorithm::parse(value)
                    .ok_or_else(|| CliError::Usage(format!("unknown algorithm `{value}`")))?;
            }
            "cost-model" => {
                model = parse_cost_model(value)?;
                model_id = CostModelId::parse(value)
                    .ok_or_else(|| CliError::Usage(format!("unknown cost model `{value}`")))?;
            }
            "metrics" => metrics = true,
            "trace-json" => trace_path = Some(value),
            "prom" => prom_path = Some(value),
            "threads" => {
                threads = Some(
                    value
                        .parse()
                        .map_err(|_| CliError::Usage(format!("invalid thread count `{value}`")))?,
                );
            }
            "batch" => batch = true,
            "memory-budget" => {
                memory_budget =
                    Some(parse_bytes(value).ok_or_else(|| {
                        CliError::Usage(format!("invalid memory budget `{value}`"))
                    })?);
            }
            "degrade" => degrade = true,
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }
    if batch {
        if metrics {
            return Err(CliError::Usage(
                "the per-run --metrics report is not available with --batch \
                 (use --trace-json or --prom, which aggregate across workers)"
                    .into(),
            ));
        }
        if memory_budget.is_some() || degrade {
            return Err(CliError::Usage(
                "--memory-budget/--degrade apply to single runs, not --batch".into(),
            ));
        }
        return cmd_optimize_batch(
            &positional,
            algorithm,
            model_id,
            threads.unwrap_or(0),
            trace_path,
            prom_path,
            out,
        );
    }
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage("optimize expects one query file".into()));
    };
    let telemetry = Telemetry::new(metrics, trace_path, prom_path)?;

    let q = load_query(path)?;
    let (name, result, used_threads, elapsed, degradation) = match q.graph() {
        Some(graph) => {
            let outcome = telemetry.observe(|obs| {
                let mut request = joinopt_core::OptimizeRequest::new(graph, &q.catalog)
                    .with_algorithm(algorithm)
                    .with_cost_model(model.as_ref())
                    .with_threads(threads.unwrap_or(0))
                    .with_observer(obs);
                if let Some(bytes) = memory_budget {
                    request = request.with_memory_budget(bytes);
                }
                if degrade {
                    request = request.on_budget_exceeded(joinopt_core::BudgetAction::Degrade);
                }
                request.run()
            })?;
            (
                outcome.algorithm.orderer(graph).name(),
                outcome.result,
                outcome.threads,
                outcome.elapsed,
                outcome.degradation,
            )
        }
        None => {
            // Complex (hyper) predicates: DPhyp is the only applicable
            // algorithm.
            if !matches!(algorithm, Algorithm::Auto) {
                return Err(CliError::Usage(
                    "this query has complex (multi-relation) predicates; only DPhyp                      applies — drop --algorithm"
                        .into(),
                ));
            }
            if memory_budget.is_some() || degrade {
                return Err(CliError::Usage(
                    "--memory-budget/--degrade are not supported for complex-predicate (DPhyp) queries".into(),
                ));
            }
            let start = Instant::now();
            let result = telemetry.observe(|obs| {
                DpHyp.optimize_observed(&q.hypergraph, &q.catalog, model.as_ref(), obs)
            })?;
            (DpHyp.name(), result, 1, start.elapsed(), None)
        }
    };

    writeln!(out, "algorithm:   {name}")?;
    writeln!(out, "cost model:  {}", model.name())?;
    writeln!(out, "plan:        {}", q.render_tree(&result.tree))?;
    writeln!(out, "cost:        {:.6e}", result.cost)?;
    writeln!(out, "cardinality: {:.6e}", result.cardinality)?;
    writeln!(out, "counters:    {}", result.counters)?;
    if threads.is_some() {
        // Only printed when requested, so default output is unchanged.
        writeln!(out, "threads:     {used_threads}")?;
    }
    if let Some(info) = &degradation {
        writeln!(
            out,
            "degraded:    {} plan after {} budget trip ({})",
            info.rung.as_str(),
            info.trigger.as_str(),
            info.detail
        )?;
    }
    writeln!(out, "time:        {elapsed:.2?}")?;
    writeln!(out)?;
    writeln!(out, "{}", result.tree.explain())?;
    if let Some(report) = telemetry.report() {
        writeln!(out)?;
        write!(out, "{report}")?;
    }
    telemetry.close()?;
    Ok(())
}

/// `optimize --batch`: loads every query file, captures each into an
/// owned [`QuerySpec`] and submits the whole set to an
/// [`OptimizerService`] batch — worker threads with pooled per-worker
/// sessions, plus a plan cache, so repeated query files inside one
/// batch are answered from the cache (their rows are marked `cached`).
/// Per-query failures (disconnected graphs, …) become rows, not a
/// command failure — a batch is useful precisely when some inputs are
/// suspect. Batch telemetry sinks must be `Sync` (workers report
/// concurrently, tagged by `thread_id`), which the trace writer and the
/// metrics registry are but the per-run collector is not.
fn cmd_optimize_batch(
    paths: &[&str],
    algorithm: Algorithm,
    model: CostModelId,
    threads: usize,
    trace_path: Option<&str>,
    prom_path: Option<&str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    if paths.is_empty() {
        return Err(CliError::Usage(
            "optimize --batch expects at least one query file".into(),
        ));
    }
    let mut requests = Vec::with_capacity(paths.len());
    for path in paths {
        let q = load_query(path)?;
        let Some(graph) = q.graph() else {
            return Err(CliError::Usage(format!(
                "{path}: queries with complex (multi-relation) predicates are not supported in --batch"
            )));
        };
        requests.push(
            ServiceRequest::new(QuerySpec::capture(graph, &q.catalog)?)
                .with_algorithm(algorithm)
                .with_cost_model(model)
                .with_tenant("cli"),
        );
    }
    let service = OptimizerService::new(ServiceConfig {
        worker_threads: threads,
        queue_capacity: requests.len(),
        tenant_limit: requests.len(),
        cache: Some(CacheConfig::default()),
    });
    let trace = match trace_path {
        Some(path) => Some(TraceWriter::new(BufWriter::new(File::create(path)?))),
        None => None,
    };
    let registry = prom_path.map(|_| MetricsRegistry::new());
    let registry_obs = registry.as_ref().map(RegistryObserver::new);
    let mut sinks: Vec<&(dyn Observer + Sync)> = Vec::new();
    if let Some(t) = &trace {
        sinks.push(t);
    }
    if let Some(r) = &registry_obs {
        sinks.push(r);
    }
    let fanout = SyncFanout::new(sinks);
    let start = Instant::now();
    let results = service.submit_batch_observed(&requests, &fanout);
    let elapsed = start.elapsed();
    drop(registry_obs);
    if let Some(t) = trace {
        t.finish()?.flush()?;
    }
    if let (Some(registry), Some(path)) = (registry, prom_path) {
        std::fs::write(path, registry.snapshot().to_prometheus())?;
    }
    writeln!(
        out,
        "{:<4} {:>14} {:>14}  query",
        "#", "cost", "cardinality"
    )?;
    let mut failures = 0usize;
    for (i, (path, result)) in paths.iter().zip(&results).enumerate() {
        match result {
            Ok(r) => {
                let cached = if r.cache_hit { " (cached)" } else { "" };
                writeln!(
                    out,
                    "{:<4} {:>14.6e} {:>14.6e}  {}{}",
                    i, r.result.cost, r.result.cardinality, path, cached
                )?;
            }
            Err(e) => {
                failures += 1;
                writeln!(out, "{:<4} {:>14} {:>14}  {}: {}", i, "-", "-", path, e)?;
            }
        }
    }
    writeln!(
        out,
        "\n{} queries ({} failed) in {:.2?}",
        paths.len(),
        failures,
        elapsed
    )?;
    Ok(())
}

fn cmd_compare(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage("compare expects one query file".into()));
    };
    let mut model: Box<dyn CostModel> = Box::new(Cout);
    let mut metrics = false;
    let mut trace_path = None;
    let mut prom_path = None;
    for (key, value) in options {
        match key {
            "cost-model" => model = parse_cost_model(value)?,
            "metrics" => metrics = true,
            "trace-json" => trace_path = Some(value),
            "prom" => prom_path = Some(value),
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }
    let telemetry = Telemetry::new(metrics, trace_path, prom_path)?;
    let q = load_query(path)?;
    writeln!(
        out,
        "{:<10} {:>12} {:>14} {:>14} {:>14}",
        "algorithm", "time", "inner", "csg-cmp-pairs", "cost"
    )?;
    // One report per algorithm run (the collector resets on `run_start`).
    let mut reports: Vec<RunReport> = Vec::new();
    let print_row = |out: &mut dyn Write,
                     name: &str,
                     elapsed: std::time::Duration,
                     result: &joinopt_core::DpResult|
     -> Result<(), CliError> {
        writeln!(
            out,
            "{:<10} {:>12} {:>14} {:>14} {:>14.6e}",
            name,
            format!("{elapsed:.2?}"),
            result.counters.inner,
            result.counters.csg_cmp_pairs,
            result.cost
        )?;
        Ok(())
    };
    match q.graph() {
        Some(graph) => {
            // DPconv only optimizes C_out-shaped models; comparing it
            // under e.g. `--model hash` would abort the whole table
            // with its typed refusal, so it joins the line-up only
            // when the selected model qualifies.
            let mut algorithms: Vec<&dyn JoinOrderer> = vec![&DpSize, &DpSub, &DpCcp];
            if model.is_cout_shaped() {
                algorithms.push(&DpConv);
            }
            algorithms.push(&Goo);
            for alg in algorithms {
                let start = Instant::now();
                let result = telemetry
                    .observe(|obs| alg.optimize_observed(graph, &q.catalog, model.as_ref(), obs))?;
                print_row(out, alg.name(), start.elapsed(), &result)?;
                reports.extend(telemetry.report());
            }
        }
        None => {
            let start = Instant::now();
            let result = telemetry.observe(|obs| {
                DpHyp.optimize_observed(&q.hypergraph, &q.catalog, model.as_ref(), obs)
            })?;
            print_row(out, DpHyp.name(), start.elapsed(), &result)?;
            reports.extend(telemetry.report());
        }
    }
    if !reports.is_empty() {
        writeln!(out)?;
        writeln!(out, "{}", RunReport::csv_header())?;
        for report in &reports {
            writeln!(out, "{}", report.to_csv_row())?;
        }
    }
    telemetry.close()?;
    Ok(())
}

/// `joinopt explain`: run the optimizer with provenance collection and
/// render the plan together with the per-set decision records — or,
/// with `--compare A,B`, diff two algorithms' search-space decisions.
///
/// All output is deterministic (no wall-clock anywhere), so both the
/// text and the JSON form are golden-gated in ci.sh.
fn cmd_explain(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage("explain expects one query file".into()));
    };
    let mut algorithm = Algorithm::Auto;
    let mut model: Box<dyn CostModel> = Box::new(Cout);
    let mut threads: usize = 1;
    let mut format = "text";
    let mut compare_pair: Option<(Algorithm, Algorithm)> = None;
    for (key, value) in options {
        match key {
            "algorithm" => {
                algorithm = Algorithm::parse(value)
                    .ok_or_else(|| CliError::Usage(format!("unknown algorithm `{value}`")))?;
            }
            "cost-model" => model = parse_cost_model(value)?,
            "threads" => {
                threads = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid thread count `{value}`")))?;
            }
            "format" => {
                format = match value {
                    "text" | "json" | "dot" => value,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown format `{other}` (expected text, json or dot)"
                        )))
                    }
                };
            }
            "compare" => {
                let Some((a, b)) = value.split_once(',') else {
                    return Err(CliError::Usage(format!(
                        "--compare expects two algorithms `A,B`, got `{value}`"
                    )));
                };
                let parse_alg = |name: &str| {
                    Algorithm::parse(name.trim())
                        .ok_or_else(|| CliError::Usage(format!("unknown algorithm `{name}`")))
                };
                compare_pair = Some((parse_alg(a)?, parse_alg(b)?));
            }
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }
    let q = load_query(path)?;
    let Some(graph) = q.graph() else {
        return Err(CliError::Usage(
            "explain supports simple (binary-predicate) queries only; \
             this query has complex predicates"
                .into(),
        ));
    };
    let names = q.names().to_vec();
    let name_of = move |r: joinopt_relset::RelIdx| names[r].clone();

    if let Some((a, b)) = compare_pair {
        if format == "dot" {
            return Err(CliError::Usage(
                "--format dot renders one plan; it does not combine with --compare".into(),
            ));
        }
        let ea = Explanation::capture(graph, &q.catalog, model.as_ref(), a, threads)?;
        let eb = Explanation::capture(graph, &q.catalog, model.as_ref(), b, threads)?;
        let diff = compare(&ea, &eb);
        match format {
            "json" => writeln!(out, "{}", diff.to_json(&name_of))?,
            _ => write!(out, "{}", diff.render_text_with(&name_of))?,
        }
        return Ok(());
    }

    let e = Explanation::capture(graph, &q.catalog, model.as_ref(), algorithm, threads)?;
    match format {
        "json" => writeln!(out, "{}", e.to_json(&name_of))?,
        "dot" => write!(out, "{}", e.render_dot(&name_of))?,
        _ => write!(out, "{}", e.render_text(&name_of))?,
    }
    Ok(())
}

fn cmd_generate(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    let [family, n_text] = positional.as_slice() else {
        return Err(CliError::Usage(
            "generate expects a family and a size".into(),
        ));
    };
    let kind = parse_family(family)?;
    let n: usize = n_text
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid size `{n_text}`")))?;
    if n == 0 || n > 64 {
        return Err(CliError::Usage(format!("size {n} out of range 1..=64")));
    }
    let mut seed = 2006u64;
    for (key, value) in options {
        match key {
            "seed" => {
                seed = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid seed `{value}`")))?;
            }
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }
    let w = workload::family_workload(kind, n, seed);
    // Reuse the writer by going through the text format: name relations R0….
    use core::fmt::Write as _;
    let mut src = String::new();
    for i in 0..n {
        let _ = writeln!(src, "relation R{i} {}", w.catalog.cardinality(i));
    }
    for (edge_id, e) in w.graph.edges().iter().enumerate() {
        let _ = writeln!(
            src,
            "join R{} R{} {}",
            e.u,
            e.v,
            w.catalog.selectivity(edge_id)
        );
    }
    let q = parse(&src).expect("generated workloads are valid");
    writeln!(out, "# {kind} query, n = {n}, seed = {seed}")?;
    write!(out, "{}", write_query(&q))?;
    Ok(())
}

/// `joinopt fuzz`: the differential conformance campaign as a CLI
/// command, for CI smoke runs and for reproducing reported seeds.
fn cmd_fuzz(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    if !positional.is_empty() {
        return Err(CliError::Usage(format!(
            "fuzz takes options only, got `{}`",
            positional.join(" ")
        )));
    }
    let mut config = joinopt_conformance::FuzzConfig {
        minimize: false,
        ..joinopt_conformance::FuzzConfig::default()
    };
    let mut metrics = false;
    let mut trace_path = None;
    let mut prom_path = None;
    for (key, value) in options {
        match key {
            "seed" => {
                config.seed = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid seed `{value}`")))?;
            }
            "iters" => {
                config.iters = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid iteration count `{value}`")))?;
            }
            "max-n" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid size `{value}`")))?;
                if !(2..=16).contains(&n) {
                    return Err(CliError::Usage(format!("--max-n {n} out of range 2..=16")));
                }
                config.max_n = n;
            }
            "minimize" => config.minimize = true,
            "cache" => config.cache = true,
            "metrics" => metrics = true,
            "trace-json" => trace_path = Some(value),
            "prom" => prom_path = Some(value),
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }
    // Campaign-scale telemetry: a registry aggregates every reference
    // run (the per-run collector would only ever show the last one), so
    // --metrics here prints the registry's text snapshot.
    let registry = (metrics || prom_path.is_some()).then(MetricsRegistry::new);
    let registry_obs = registry.as_ref().map(RegistryObserver::new);
    let trace = match trace_path {
        Some(path) => Some(TraceWriter::new(BufWriter::new(File::create(path)?))),
        None => None,
    };
    let mut sinks: Vec<&dyn Observer> = Vec::new();
    if let Some(t) = &trace {
        sinks.push(t);
    }
    if let Some(r) = &registry_obs {
        sinks.push(r);
    }
    let fanout = Fanout::new(sinks);
    let start = Instant::now();
    let report = joinopt_conformance::run_fuzz_observed(&config, &fanout);
    drop(registry_obs);
    if let Some(t) = trace {
        t.finish()?.flush()?;
    }
    if let Some(registry) = &registry {
        if metrics {
            writeln!(out, "{}", registry.snapshot().to_text())?;
        }
        if let Some(path) = prom_path {
            std::fs::write(path, registry.snapshot().to_prometheus())?;
        }
    }
    writeln!(
        out,
        "fuzz: seed {}, {} instances (n ≤ {}) in {:.2?}",
        config.seed,
        report.checked,
        config.max_n,
        start.elapsed()
    )?;
    if report.is_clean() {
        writeln!(out, "all instances conform")?;
        return Ok(());
    }
    for failure in &report.failures {
        writeln!(out)?;
        writeln!(
            out,
            "FAIL {}: {}",
            failure.instance.name, failure.divergence
        )?;
        let repro = failure.minimized.as_ref().unwrap_or(&failure.instance);
        if failure.minimized.is_some() {
            writeln!(
                out,
                "minimal repro ({} relations, {} edges):",
                repro.graph.num_relations(),
                repro.graph.num_edges()
            )?;
        }
        write!(out, "{}", repro.to_dsl())?;
        // Root-cause attribution: re-run the two sides of the failed
        // comparison with provenance collection and render the first
        // divergent DP decision (when the divergence is a plan diff).
        if let Some(explained) = joinopt_conformance::explain_failure(failure) {
            writeln!(out)?;
            write!(out, "{explained}")?;
        }
    }
    Err(CliError::Conformance(format!(
        "{} of {} instances diverged",
        report.failures.len(),
        report.checked
    )))
}

/// `joinopt perf`: run the pinned performance matrix and write a
/// baseline file, or (`--check`) re-run a committed baseline's matrix
/// and diff against it (the CI smoke gate uses `--counters-only`).
fn cmd_perf(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    if !positional.is_empty() {
        return Err(CliError::Usage(format!(
            "perf takes options only, got `{}`",
            positional.join(" ")
        )));
    }
    let mut config = PerfConfig::default();
    let mut out_path = "BENCH_joinopt.json".to_string();
    let mut check_path: Option<String> = None;
    let mut counters_only = false;
    let mut trace_path = None;
    let mut prom_path = None;
    for (key, value) in options {
        match key {
            "out" => out_path = value.to_string(),
            "check" => check_path = Some(value.to_string()),
            "counters-only" => counters_only = true,
            "trace-json" => trace_path = Some(value),
            "prom" => prom_path = Some(value),
            "n" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid size `{value}`")))?;
                if !(2..=14).contains(&n) {
                    return Err(CliError::Usage(format!("--n {n} out of range 2..=14")));
                }
                config.n = n;
            }
            "reps" => {
                config.reps = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid rep count `{value}`")))?;
            }
            "seed" => {
                config.seed = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid seed `{value}`")))?;
            }
            "threads" => {
                config.threads = value
                    .split(',')
                    .map(|t| t.trim().parse::<usize>().ok().filter(|&t| t >= 1))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| {
                        CliError::Usage(format!(
                            "invalid --threads `{value}` (expected e.g. 1,2,4)"
                        ))
                    })?;
            }
            "noise" => {
                config.noise = value
                    .parse::<f64>()
                    .ok()
                    .filter(|f| f.is_finite() && *f >= 0.0)
                    .ok_or_else(|| CliError::Usage(format!("invalid noise factor `{value}`")))?;
            }
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }
    // Matrix-scale telemetry: every cell run streams to --trace-json
    // and/or aggregates into a --prom registry snapshot.
    let telemetry = Telemetry::new(false, trace_path, prom_path)?;
    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)?;
        let baseline = PerfBaseline::parse(&text).map_err(CliError::Data)?;
        // Replay exactly the pinned matrix. In counters-only mode one
        // repetition suffices — the gated quantities are deterministic,
        // so extra reps only buy wall-time stability.
        let mut replay = baseline.config.clone();
        if counters_only {
            replay.reps = 1;
        }
        let current = telemetry
            .observe(|obs| run_matrix_observed(&replay, obs))
            .map_err(CliError::Conformance)?;
        telemetry.close()?;
        let mode = if counters_only {
            "counters-only"
        } else {
            "full"
        };
        match current.check(&baseline, counters_only) {
            Ok(()) => {
                writeln!(
                    out,
                    "perf check passed ({mode}): {} cells match {path}",
                    baseline.cells.len()
                )?;
                Ok(())
            }
            Err(diffs) => {
                for diff in &diffs {
                    writeln!(out, "FAIL {diff}")?;
                }
                Err(CliError::Regression(format!(
                    "{} of {} comparisons failed against {path}",
                    diffs.len(),
                    baseline.cells.len()
                )))
            }
        }
    } else {
        let start = Instant::now();
        let baseline = telemetry
            .observe(|obs| run_matrix_observed(&config, obs))
            .map_err(CliError::Conformance)?;
        telemetry.close()?;
        std::fs::write(&out_path, baseline.to_json())?;
        write!(out, "{}", baseline.render_table())?;
        writeln!(
            out,
            "\nwrote {} cells to {out_path} in {:.2?}",
            baseline.cells.len(),
            start.elapsed()
        )?;
        Ok(())
    }
}

/// `joinopt load`: replay a seeded mixed workload through the optimizer
/// service and report throughput, latency quantiles and the plan-cache
/// hit rate. `--min-hit-rate F` turns the run into a gate (the CI smoke
/// check): it fails unless every request completed and the hit rate met
/// the floor.
fn cmd_load(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    if !positional.is_empty() {
        return Err(CliError::Usage(format!(
            "load takes options only, got `{}`",
            positional.join(" ")
        )));
    }
    let mut config = LoadConfig::default();
    let mut json_path: Option<&str> = None;
    let mut prom_path: Option<&str> = None;
    let mut min_hit_rate: Option<f64> = None;
    let mut chaos = false;
    let mut chaos_tuned = false;
    let mut chaos_config = ChaosConfig::default();
    for (key, value) in options {
        match key {
            "chaos" => chaos = true,
            "drivers" => {
                chaos_tuned = true;
                chaos_config.drivers = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&d| d >= 1)
                    .ok_or_else(|| CliError::Usage(format!("invalid driver count `{value}`")))?;
            }
            "burst-faults" => {
                chaos_tuned = true;
                chaos_config.burst_faults = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&f| f >= 1)
                    .ok_or_else(|| CliError::Usage(format!("invalid fault count `{value}`")))?;
            }
            "recheck" => {
                chaos_tuned = true;
                chaos_config.recheck_samples = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&s| s >= 1)
                    .ok_or_else(|| CliError::Usage(format!("invalid sample count `{value}`")))?;
            }
            "requests" => {
                config.requests = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&r| r >= 1)
                    .ok_or_else(|| CliError::Usage(format!("invalid request count `{value}`")))?;
            }
            "threads" => {
                config.threads = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid thread count `{value}`")))?;
            }
            "seed" => {
                config.seed = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid seed `{value}`")))?;
            }
            "repeat-rate" => {
                config.repeat_rate = value
                    .parse::<f64>()
                    .ok()
                    .filter(|f| (0.0..=1.0).contains(f))
                    .ok_or_else(|| {
                        CliError::Usage(format!("invalid repeat rate `{value}` (expected 0..=1)"))
                    })?;
            }
            "max-n" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid size `{value}`")))?;
                if !(4..=12).contains(&n) {
                    return Err(CliError::Usage(format!("--max-n {n} out of range 4..=12")));
                }
                config.max_n = n;
            }
            "cache-bytes" => {
                config.cache_bytes = parse_bytes(value)
                    .ok_or_else(|| CliError::Usage(format!("invalid cache size `{value}`")))?;
            }
            "json" => json_path = Some(value),
            "prom" => prom_path = Some(value),
            "min-hit-rate" => {
                min_hit_rate = Some(
                    value
                        .parse::<f64>()
                        .ok()
                        .filter(|f| (0.0..=1.0).contains(f))
                        .ok_or_else(|| {
                            CliError::Usage(format!(
                                "invalid hit-rate floor `{value}` (expected 0..=1)"
                            ))
                        })?,
                );
            }
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }
    if !chaos && chaos_tuned {
        return Err(CliError::Usage(
            "--drivers/--burst-faults/--recheck require --chaos".into(),
        ));
    }
    let registry = prom_path.map(|_| MetricsRegistry::new());
    let registry_obs = registry.as_ref().map(RegistryObserver::new);
    if chaos {
        if min_hit_rate.is_some() {
            return Err(CliError::Usage(
                "--min-hit-rate applies to the plain load gate; --chaos has its own gates".into(),
            ));
        }
        chaos_config.load = config;
        let report = match &registry_obs {
            Some(obs) => run_chaos(&chaos_config, obs),
            None => run_chaos(&chaos_config, &NoopObserver),
        }
        .map_err(CliError::Regression)?;
        drop(registry_obs);
        if let (Some(registry), Some(path)) = (registry, prom_path) {
            std::fs::write(path, registry.snapshot().to_prometheus())?;
        }
        write!(out, "{}", report.render())?;
        if let Some(path) = json_path {
            std::fs::write(path, report.to_json())?;
            writeln!(out, "\nwrote {path}")?;
        }
        report.verify().map_err(CliError::Regression)?;
        writeln!(
            out,
            "\nchaos gates passed: breaker opened {}x and reclosed, {} answers re-checked, 0 wrong plans",
            report.breaker_opens, report.rechecked
        )?;
        return Ok(());
    }
    let report = match &registry_obs {
        Some(obs) => run_load_observed(&config, obs),
        None => run_load(&config),
    };
    drop(registry_obs);
    if let (Some(registry), Some(path)) = (registry, prom_path) {
        std::fs::write(path, registry.snapshot().to_prometheus())?;
    }
    write!(out, "{}", report.render())?;
    if let Some(path) = json_path {
        std::fs::write(path, report.to_json())?;
        writeln!(out, "\nwrote {path}")?;
    }
    if let Some(floor) = min_hit_rate {
        if report.errors > 0 {
            return Err(CliError::Regression(format!(
                "{} of {} load requests errored",
                report.errors, config.requests
            )));
        }
        if report.hit_rate < floor {
            return Err(CliError::Regression(format!(
                "cache hit rate {:.3} is below the {floor:.3} floor",
                report.hit_rate
            )));
        }
        writeln!(
            out,
            "\nload gate passed: {} requests, 0 errors, hit rate {:.3} >= {floor:.3}",
            report.completed, report.hit_rate
        )?;
    }
    Ok(())
}

/// `joinopt serve`: run the optimizer as a long-lived newline-JSON
/// server (TCP or unix socket) with the hardened gateway lifecycle —
/// load shedding, per-tenant breakers, deadline propagation, retries
/// and graceful drain. `--smoke` runs the scripted protocol self-check
/// instead and fails on any deviation.
fn cmd_serve(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    if !positional.is_empty() {
        return Err(CliError::Usage(format!(
            "serve takes options only, got `{}`",
            positional.join(" ")
        )));
    }
    let mut config = ServerConfig {
        listen: Listen::Tcp("127.0.0.1:4006".into()),
        ..ServerConfig::default()
    };
    let mut run_smoke = false;
    let mut listen_set = false;
    let mut span_timeline: Option<&str> = None;
    for (key, value) in options {
        match key {
            "smoke" => run_smoke = true,
            "span-timeline" => span_timeline = Some(value),
            "no-trace" => config.trace.enabled = false,
            "addr" => {
                if listen_set {
                    return Err(CliError::Usage("--addr and --unix are exclusive".into()));
                }
                config.listen = Listen::Tcp(value.to_string());
                listen_set = true;
            }
            "unix" => {
                if listen_set {
                    return Err(CliError::Usage("--addr and --unix are exclusive".into()));
                }
                config.listen = Listen::Unix(value.into());
                listen_set = true;
            }
            "prom" => config.prom_path = Some(value.into()),
            "drain-timeout-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid drain timeout `{value}`")))?;
                config.drain_timeout = std::time::Duration::from_millis(ms);
            }
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }

    // The deterministic span-timeline document (manual clock, seeded
    // minter): written before the smoke so CI can golden-diff it even
    // when the smoke itself is skipped.
    if let Some(path) = span_timeline {
        std::fs::write(path, span_timeline_demo())?;
        writeln!(out, "wrote span timeline to {path}")?;
        if !run_smoke {
            return Ok(());
        }
    }

    if run_smoke {
        if listen_set {
            return Err(CliError::Usage(
                "--smoke picks its own loopback port; drop --addr/--unix".into(),
            ));
        }
        let transcript = smoke(config.prom_path.as_deref()).map_err(CliError::Regression)?;
        for line in &transcript {
            writeln!(out, "smoke: {line}")?;
        }
        writeln!(out, "\nserve smoke passed: {} checks", transcript.len())?;
        return Ok(());
    }

    let listen_desc = match &config.listen {
        Listen::Tcp(addr) => addr.clone(),
        Listen::Unix(path) => path.display().to_string(),
    };
    let server = Server::bind(config).map_err(CliError::Io)?;
    match server.local_addr() {
        Some(addr) => writeln!(out, "listening on {addr} (newline-delimited JSON)")?,
        None => writeln!(out, "listening on {listen_desc} (newline-delimited JSON)")?,
    }
    out.flush()?;
    let summary = server.run().map_err(CliError::Io)?;
    writeln!(
        out,
        "serve done: {} connection(s), {} accepted, {} completed, {} failed, {} shed, \
         {} breaker-rejected, drained: {}",
        summary.connections,
        summary.stats.accepted,
        summary.stats.completed,
        summary.stats.failed,
        summary.stats.shed,
        summary.stats.breaker_rejected,
        summary.drained
    )?;
    Ok(())
}

/// `joinopt top`: poll a running server's `metrics` verb and render the
/// live windowed per-(tenant, verb, stage) latency table. `--once`
/// renders a single snapshot and exits (the testable/CI mode); without
/// it the screen refreshes every `--interval-ms`.
fn cmd_top(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    if !positional.is_empty() {
        return Err(CliError::Usage(format!(
            "top takes options only, got `{}`",
            positional.join(" ")
        )));
    }
    let mut addr = "127.0.0.1:4006".to_string();
    let mut interval = std::time::Duration::from_millis(2000);
    let mut once = false;
    for (key, value) in options {
        match key {
            "addr" => addr = value.to_string(),
            "interval-ms" => {
                let ms = value
                    .parse::<u64>()
                    .ok()
                    .filter(|&ms| ms >= 1)
                    .ok_or_else(|| CliError::Usage(format!("invalid interval `{value}`")))?;
                interval = std::time::Duration::from_millis(ms);
            }
            "once" => once = true,
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }
    let sock: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid address `{addr}`")))?;
    let mut client = LineClient::connect(sock).map_err(CliError::Io)?;
    loop {
        let resp = client
            .call("{\"verb\":\"metrics\"}")
            .map_err(CliError::Io)?;
        if resp.get("status").and_then(|v| v.as_str()) != Some("ok") {
            return Err(CliError::Data(format!("metrics verb failed: {resp:?}")));
        }
        if !once {
            // Clear + home, so the refresh reads like `top`.
            write!(out, "\x1b[2J\x1b[H")?;
        }
        write!(out, "{}", render_top(&resp, &addr))?;
        out.flush()?;
        if once {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// Renders one `metrics` response as the `joinopt top` table.
fn render_top(resp: &JsonValue, addr: &str) -> String {
    let tracing = resp
        .get("tracing")
        .and_then(|v| v.as_bool())
        .unwrap_or(false);
    let window = resp.get("window");
    let window_s = window
        .and_then(|w| w.get("window_ns"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0) as f64
        / 1e9;
    let mut out = format!("joinopt top — {addr} (window {window_s:.0}s, tracing {tracing})\n\n");
    let entries = window
        .and_then(|w| w.get("stages"))
        .and_then(JsonValue::as_array)
        .unwrap_or(&[]);
    if entries.is_empty() {
        out.push_str("no requests in the current window\n");
        return out;
    }
    let mut t = joinopt_bench::Table::new(vec![
        "tenant", "verb", "stage", "count", "rate/s", "p50", "p99", "max",
    ]);
    for e in entries {
        let s = |k: &str| e.get(k).and_then(|v| v.as_str()).unwrap_or("?").to_string();
        let n = |k: &str| e.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        t.row(vec![
            s("tenant"),
            s("verb"),
            s("stage"),
            n("count").to_string(),
            format!(
                "{:.1}",
                e.get("rate_per_sec")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0)
            ),
            joinopt_bench::format_seconds(n("p50_ns") as f64 / 1e9),
            joinopt_bench::format_seconds(n("p99_ns") as f64 / 1e9),
            joinopt_bench::format_seconds(n("max_ns") as f64 / 1e9),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// `joinopt flame`: fold a `--trace-json` file into collapsed-stack
/// lines (`frame;frame;frame count`), the input format of flamegraph
/// renderers.
fn cmd_flame(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    let [trace_path] = positional.as_slice() else {
        return Err(CliError::Usage("flame expects one trace file".into()));
    };
    let mut out_path: Option<&str> = None;
    for (key, value) in options {
        match key {
            "out" => out_path = Some(value),
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }
    let text = std::fs::read_to_string(trace_path)?;
    let folded = collapse_trace(&text).map_err(|e| CliError::Data(format!("{trace_path}: {e}")))?;
    match out_path {
        Some(path) => {
            std::fs::write(path, &folded)?;
            writeln!(out, "wrote {} stacks to {path}", folded.lines().count())?;
        }
        None => write!(out, "{folded}")?,
    }
    Ok(())
}

fn cmd_counters(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (positional, options) = split_options(args)?;
    let [family, max_text] = positional.as_slice() else {
        return Err(CliError::Usage(
            "counters expects a family and a maximum size".into(),
        ));
    };
    let mut metrics = false;
    let mut trace_path = None;
    let mut prom_path = None;
    for (key, value) in options {
        match key {
            "metrics" => metrics = true,
            "trace-json" => trace_path = Some(value),
            "prom" => prom_path = Some(value),
            other => return Err(CliError::Usage(format!("unknown option --{other}"))),
        }
    }
    let kind = parse_family(family)?;
    let max_n: u64 = max_text
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid size `{max_text}`")))?;
    if max_n == 0 || max_n > 40 {
        return Err(CliError::Usage(format!("size {max_n} out of range 1..=40")));
    }
    let telemetry_requested = metrics || trace_path.is_some() || prom_path.is_some();
    if telemetry_requested && max_n > 12 {
        return Err(CliError::Usage(format!(
            "--metrics/--trace-json/--prom run the real algorithms, which is only feasible up to n = 12 (got {max_n})"
        )));
    }
    writeln!(
        out,
        "{:<4} {:>16} {:>16} {:>20} {:>20} {:>16}",
        "n", "#csg", "#ccp", "I_DPsize", "I_DPsub", "I_DPccp"
    )?;
    for n in 2..=max_n {
        writeln!(
            out,
            "{:<4} {:>16} {:>16} {:>20} {:>20} {:>16}",
            n,
            csg_count(kind, n),
            ccp_distinct(kind, n),
            dpsize_inner(kind, n),
            dpsub_inner(kind, n),
            dpccp_inner(kind, n)
        )?;
    }
    if telemetry_requested {
        // The table above is closed formulas; with telemetry requested
        // the command also *measures*: each algorithm runs on a
        // seed-2006 workload per size, streamed to the trace file and
        // summarized as CSV rows (the `relations` column is n).
        let telemetry = Telemetry::new(metrics, trace_path, prom_path)?;
        let mut reports: Vec<RunReport> = Vec::new();
        for n in 2..=max_n {
            let w = workload::family_workload(kind, n as usize, 2006);
            let algorithms: [&dyn JoinOrderer; 4] = [&DpSize, &DpSub, &DpCcp, &DpConv];
            for alg in algorithms {
                telemetry.observe(|obs| alg.optimize_observed(&w.graph, &w.catalog, &Cout, obs))?;
                reports.extend(telemetry.report());
            }
        }
        if !reports.is_empty() {
            writeln!(out)?;
            writeln!(out, "measured (seed-2006 workloads):")?;
            writeln!(out, "{}", RunReport::csv_header())?;
            for report in &reports {
                writeln!(out, "{}", report.to_csv_row())?;
            }
        }
        telemetry.close()?;
    }
    Ok(())
}
