//! Property tests for the plan substrate: arena/tree extraction
//! roundtrips and structural invariants of random bushy trees.

use joinopt_cost::PlanStats;
use joinopt_plan::{PlanArena, PlanId};
use proptest::prelude::*;

/// A random bushy tree over relations `0..n`, built bottom-up in the
/// arena: repeatedly merge two random components.
fn random_tree(n: usize, picks: &[usize]) -> (PlanArena, PlanId) {
    let mut arena = PlanArena::new();
    let mut roots: Vec<PlanId> =
        (0..n).map(|i| arena.add_scan(i, (i as f64 + 1.0) * 10.0)).collect();
    let mut pick_iter = picks.iter().cycle();
    while roots.len() > 1 {
        let i = *pick_iter.next().expect("cycled") % roots.len();
        let a = roots.swap_remove(i);
        let j = *pick_iter.next().expect("cycled") % roots.len();
        let b = roots.swap_remove(j);
        let stats = PlanStats {
            cardinality: (arena.stats(a).cardinality * arena.stats(b).cardinality).sqrt(),
            cost: arena.stats(a).cost + arena.stats(b).cost + 1.0,
        };
        roots.push(arena.add_join(a, b, stats));
    }
    let root = roots[0];
    (arena, root)
}

fn arb_inputs() -> impl Strategy<Value = (usize, Vec<usize>)> {
    (2usize..=16).prop_flat_map(|n| {
        (Just(n), proptest::collection::vec(any::<usize>(), 2 * n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn extraction_preserves_structure((n, picks) in arb_inputs()) {
        let (arena, root) = random_tree(n, &picks);
        let tree = arena.extract(root);
        prop_assert_eq!(tree.num_relations(), n);
        prop_assert_eq!(tree.num_joins(), n - 1);
        prop_assert_eq!(tree.relations(), arena.set(root));
        prop_assert_eq!(tree.cardinality(), arena.stats(root).cardinality);
        prop_assert_eq!(tree.cost(), arena.stats(root).cost);
    }

    #[test]
    fn leaf_order_is_a_permutation((n, picks) in arb_inputs()) {
        let (arena, root) = random_tree(n, &picks);
        let tree = arena.extract(root);
        let mut leaves = tree.leaf_order();
        leaves.sort_unstable();
        prop_assert_eq!(leaves, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn depth_bounds((n, picks) in arb_inputs()) {
        let (arena, root) = random_tree(n, &picks);
        let tree = arena.extract(root);
        // Depth between ⌈log₂ n⌉ (perfectly balanced) and n − 1 (deep).
        let depth = tree.depth();
        prop_assert!(depth < n);
        prop_assert!((1usize << depth) >= n, "depth {} too small for {} leaves", depth, n);
    }

    #[test]
    fn shape_predicates_are_mutually_consistent((n, picks) in arb_inputs()) {
        let (arena, root) = random_tree(n, &picks);
        let tree = arena.extract(root);
        if tree.is_left_deep() && n > 2 {
            prop_assert!(!tree.is_properly_bushy());
            prop_assert_eq!(tree.depth(), n - 1);
        }
        if tree.is_properly_bushy() {
            prop_assert!(!tree.is_left_deep());
            prop_assert!(!tree.is_right_deep());
        }
    }

    #[test]
    fn display_and_explain_cover_all_relations((n, picks) in arb_inputs()) {
        let (arena, root) = random_tree(n, &picks);
        let tree = arena.extract(root);
        let display = tree.to_string();
        let explain = tree.explain();
        for i in 0..n {
            let label = format!("R{i}");
            prop_assert!(display.contains(&label), "{display}");
            prop_assert!(explain.contains(&format!("Scan {label}")), "{explain}");
        }
        // One ⋈ per join in the infix form.
        prop_assert_eq!(display.matches('⋈').count(), n - 1);
        // Explain has one line per node.
        prop_assert_eq!(explain.lines().count(), 2 * n - 1);
    }

    #[test]
    fn arena_accounts_every_node((n, picks) in arb_inputs()) {
        let (arena, _) = random_tree(n, &picks);
        prop_assert_eq!(arena.len(), 2 * n - 1);
        prop_assert!(!arena.is_empty());
    }
}

#[test]
fn join_tree_equality_is_structural() {
    let (arena, root) = random_tree(5, &[0, 1, 2]);
    let a = arena.extract(root);
    let b = arena.extract(root);
    assert_eq!(a, b);
    let (arena2, root2) = random_tree(5, &[2, 1, 0]);
    let c = arena2.extract(root2);
    // Different build order usually yields a different shape; equality
    // must not be fooled by equal relation sets alone.
    if c.leaf_order() != a.leaf_order() || c.depth() != a.depth() {
        assert_ne!(a, c);
    }
}
