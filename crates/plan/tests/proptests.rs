//! Randomized property tests for the plan substrate: arena/tree
//! extraction roundtrips and structural invariants of random bushy trees
//! (seeded, deterministic).

use joinopt_cost::PlanStats;
use joinopt_plan::{PlanArena, PlanId};
use joinopt_relset::XorShift64;

const CASES: usize = 128;

/// A random bushy tree over relations `0..n`, built bottom-up in the
/// arena: repeatedly merge two random components.
fn random_tree(n: usize, picks: &[usize]) -> (PlanArena, PlanId) {
    let mut arena = PlanArena::new();
    let mut roots: Vec<PlanId> = (0..n)
        .map(|i| arena.add_scan(i, (i as f64 + 1.0) * 10.0))
        .collect();
    let mut pick_iter = picks.iter().cycle();
    while roots.len() > 1 {
        let i = *pick_iter.next().expect("cycled") % roots.len();
        let a = roots.swap_remove(i);
        let j = *pick_iter.next().expect("cycled") % roots.len();
        let b = roots.swap_remove(j);
        let stats = PlanStats {
            cardinality: (arena.stats(a).cardinality * arena.stats(b).cardinality).sqrt(),
            cost: arena.stats(a).cost + arena.stats(b).cost + 1.0,
        };
        roots.push(arena.add_join(a, b, stats));
    }
    let root = roots[0];
    (arena, root)
}

/// Draws a random `(n, picks)` input pair.
fn arb_inputs(rng: &mut XorShift64) -> (usize, Vec<usize>) {
    let n = rng.gen_range(2..17);
    let picks = (0..2 * n).map(|_| rng.next_u64() as usize).collect();
    (n, picks)
}

#[test]
fn extraction_preserves_structure() {
    let mut rng = XorShift64::seed_from_u64(301);
    for _ in 0..CASES {
        let (n, picks) = arb_inputs(&mut rng);
        let (arena, root) = random_tree(n, &picks);
        let tree = arena.extract(root);
        assert_eq!(tree.num_relations(), n);
        assert_eq!(tree.num_joins(), n - 1);
        assert_eq!(tree.relations(), arena.set(root));
        assert_eq!(tree.cardinality(), arena.stats(root).cardinality);
        assert_eq!(tree.cost(), arena.stats(root).cost);
    }
}

#[test]
fn leaf_order_is_a_permutation() {
    let mut rng = XorShift64::seed_from_u64(302);
    for _ in 0..CASES {
        let (n, picks) = arb_inputs(&mut rng);
        let (arena, root) = random_tree(n, &picks);
        let tree = arena.extract(root);
        let mut leaves = tree.leaf_order();
        leaves.sort_unstable();
        assert_eq!(leaves, (0..n).collect::<Vec<_>>());
    }
}

#[test]
fn depth_bounds() {
    let mut rng = XorShift64::seed_from_u64(303);
    for _ in 0..CASES {
        let (n, picks) = arb_inputs(&mut rng);
        let (arena, root) = random_tree(n, &picks);
        let tree = arena.extract(root);
        // Depth between ⌈log₂ n⌉ (perfectly balanced) and n − 1 (deep).
        let depth = tree.depth();
        assert!(depth < n);
        assert!(
            (1usize << depth) >= n,
            "depth {depth} too small for {n} leaves"
        );
    }
}

#[test]
fn shape_predicates_are_mutually_consistent() {
    let mut rng = XorShift64::seed_from_u64(304);
    for _ in 0..CASES {
        let (n, picks) = arb_inputs(&mut rng);
        let (arena, root) = random_tree(n, &picks);
        let tree = arena.extract(root);
        if tree.is_left_deep() && n > 2 {
            assert!(!tree.is_properly_bushy());
            assert_eq!(tree.depth(), n - 1);
        }
        if tree.is_properly_bushy() {
            assert!(!tree.is_left_deep());
            assert!(!tree.is_right_deep());
        }
    }
}

#[test]
fn display_and_explain_cover_all_relations() {
    let mut rng = XorShift64::seed_from_u64(305);
    for _ in 0..CASES {
        let (n, picks) = arb_inputs(&mut rng);
        let (arena, root) = random_tree(n, &picks);
        let tree = arena.extract(root);
        let display = tree.to_string();
        let explain = tree.explain();
        for i in 0..n {
            let label = format!("R{i}");
            assert!(display.contains(&label), "{display}");
            assert!(explain.contains(&format!("Scan {label}")), "{explain}");
        }
        // One ⋈ per join in the infix form.
        assert_eq!(display.matches('⋈').count(), n - 1);
        // Explain has one line per node.
        assert_eq!(explain.lines().count(), 2 * n - 1);
    }
}

#[test]
fn arena_accounts_every_node() {
    let mut rng = XorShift64::seed_from_u64(306);
    for _ in 0..CASES {
        let (n, picks) = arb_inputs(&mut rng);
        let (arena, _) = random_tree(n, &picks);
        assert_eq!(arena.len(), 2 * n - 1);
        assert!(!arena.is_empty());
    }
}

#[test]
fn join_tree_equality_is_structural() {
    let (arena, root) = random_tree(5, &[0, 1, 2]);
    let a = arena.extract(root);
    let b = arena.extract(root);
    assert_eq!(a, b);
    let (arena2, root2) = random_tree(5, &[2, 1, 0]);
    let c = arena2.extract(root2);
    // Different build order usually yields a different shape; equality
    // must not be fooled by equal relation sets alone.
    if c.leaf_order() != a.leaf_order() || c.depth() != a.depth() {
        assert_ne!(a, c);
    }
}
