//! Append-only plan storage: [`PlanArena`].

use joinopt_cost::PlanStats;
use joinopt_relset::{RelIdx, RelSet};

use crate::tree::JoinTree;

/// Index of a plan node inside a [`PlanArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanId(u32);

impl PlanId {
    /// Sentinel id for "no plan yet" slots in direct-addressed DP
    /// tables. Never valid to dereference; arenas panic long before
    /// `u32::MAX` nodes.
    pub const SENTINEL: PlanId = PlanId(u32::MAX);

    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The operator at a plan node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanNodeKind {
    /// A base-table scan of one relation.
    Scan(RelIdx),
    /// A join of two previously built sub-plans.
    Join(PlanId, PlanId),
}

#[derive(Debug, Clone)]
struct Node {
    kind: PlanNodeKind,
    set: RelSet,
    stats: PlanStats,
}

/// Append-only storage of plan nodes.
///
/// `CreateJoinTree(p1, p2)` from the paper is [`PlanArena::add_join`];
/// it costs one `Vec` push. Discarded candidates simply stay in the arena
/// unreferenced — for the DP algorithms in this workspace the arena size
/// is bounded by the number of *accepted* plans plus one in-flight
/// candidate, because the enumerators only materialize a node once it is
/// known to improve the table (they compute the candidate's cost first).
#[derive(Debug, Clone, Default)]
pub struct PlanArena {
    nodes: Vec<Node>,
}

impl PlanArena {
    /// Creates an empty arena.
    pub fn new() -> PlanArena {
        PlanArena { nodes: Vec::new() }
    }

    /// Creates an arena pre-sized for `cap` nodes.
    pub fn with_capacity(cap: usize) -> PlanArena {
        PlanArena {
            nodes: Vec::with_capacity(cap),
        }
    }

    /// Number of stored nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff no node has been stored.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Bytes of node storage currently allocated (capacity, not just the
    /// occupied prefix) — the arena's memory footprint for telemetry.
    pub fn bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
    }

    /// Drops every node while keeping the allocation, so a pooled arena
    /// (an optimizer session reused across queries) pays the node
    /// storage only once. Previously issued [`PlanId`]s are invalidated.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Adds a base-table scan of `relation` with the given cardinality.
    pub fn add_scan(&mut self, relation: RelIdx, cardinality: f64) -> PlanId {
        self.push(Node {
            kind: PlanNodeKind::Scan(relation),
            set: RelSet::single(relation),
            stats: PlanStats::base(cardinality),
        })
    }

    /// Adds a join of two existing sub-plans (`CreateJoinTree`).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the operands' relation sets overlap —
    /// a join tree must contain every relation once.
    pub fn add_join(&mut self, left: PlanId, right: PlanId, stats: PlanStats) -> PlanId {
        let set = {
            let (l, r) = (&self.nodes[left.index()], &self.nodes[right.index()]);
            debug_assert!(
                l.set.is_disjoint(r.set),
                "join operands overlap: {} vs {}",
                l.set,
                r.set
            );
            l.set | r.set
        };
        self.push(Node {
            kind: PlanNodeKind::Join(left, right),
            set,
            stats,
        })
    }

    fn push(&mut self, node: Node) -> PlanId {
        assert!(
            self.nodes.len() < u32::MAX as usize,
            "plan arena overflow: {} nodes",
            self.nodes.len()
        );
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        PlanId(id)
    }

    /// The operator at `id`.
    pub fn kind(&self, id: PlanId) -> PlanNodeKind {
        self.nodes[id.index()].kind
    }

    /// The set of relations covered by the sub-plan at `id`.
    pub fn set(&self, id: PlanId) -> RelSet {
        self.nodes[id.index()].set
    }

    /// Cardinality and cost of the sub-plan at `id`.
    pub fn stats(&self, id: PlanId) -> PlanStats {
        self.nodes[id.index()].stats
    }

    /// Extracts the sub-plan rooted at `id` as an owned [`JoinTree`].
    pub fn extract(&self, id: PlanId) -> JoinTree {
        let node = &self.nodes[id.index()];
        match node.kind {
            PlanNodeKind::Scan(rel) => JoinTree::Scan {
                relation: rel,
                cardinality: node.stats.cardinality,
            },
            PlanNodeKind::Join(l, r) => JoinTree::Join {
                left: Box::new(self.extract(l)),
                right: Box::new(self.extract(r)),
                cardinality: node.stats.cardinality,
                cost: node.stats.cost,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_nodes() {
        let mut a = PlanArena::new();
        assert!(a.is_empty());
        let id = a.add_scan(3, 123.0);
        assert_eq!(a.len(), 1);
        assert_eq!(a.kind(id), PlanNodeKind::Scan(3));
        assert_eq!(a.set(id), RelSet::single(3));
        assert_eq!(a.stats(id).cardinality, 123.0);
        assert_eq!(a.stats(id).cost, 0.0);
    }

    #[test]
    fn join_nodes_union_sets() {
        let mut a = PlanArena::with_capacity(8);
        let r0 = a.add_scan(0, 10.0);
        let r1 = a.add_scan(1, 20.0);
        let j = a.add_join(
            r0,
            r1,
            PlanStats {
                cardinality: 15.0,
                cost: 15.0,
            },
        );
        assert_eq!(a.set(j), RelSet::from_indices([0, 1]));
        assert_eq!(a.kind(j), PlanNodeKind::Join(r0, r1));
        assert_eq!(a.stats(j).cost, 15.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overlap")]
    fn overlapping_join_panics_in_debug() {
        let mut a = PlanArena::new();
        let r0 = a.add_scan(0, 10.0);
        let r0b = a.add_scan(0, 10.0);
        let _ = a.add_join(
            r0,
            r0b,
            PlanStats {
                cardinality: 1.0,
                cost: 1.0,
            },
        );
    }

    #[test]
    fn extract_builds_recursive_tree() {
        let mut a = PlanArena::new();
        let r0 = a.add_scan(0, 10.0);
        let r1 = a.add_scan(1, 20.0);
        let r2 = a.add_scan(2, 30.0);
        let j01 = a.add_join(
            r0,
            r1,
            PlanStats {
                cardinality: 5.0,
                cost: 5.0,
            },
        );
        let top = a.add_join(
            j01,
            r2,
            PlanStats {
                cardinality: 2.0,
                cost: 7.0,
            },
        );
        let tree = a.extract(top);
        assert_eq!(tree.num_joins(), 2);
        assert_eq!(tree.relations(), RelSet::full(3));
        assert_eq!(tree.cost(), 7.0);
        assert_eq!(tree.cardinality(), 2.0);
    }
}
