//! Join-tree (plan) representation.
//!
//! Dynamic programming builds millions of candidate sub-plans; allocating
//! a boxed tree per candidate would dominate runtime. This crate
//! therefore separates:
//!
//! * [`PlanArena`] — append-only storage of plan nodes (`CreateJoinTree`
//!   in the paper is [`PlanArena::add_join`]); a sub-plan is just a
//!   [`PlanId`], and DP tables map relation sets to ids;
//! * [`JoinTree`] — an owned recursive tree extracted from the arena once
//!   optimization finishes, with shape predicates (left-deep / bushy),
//!   traversal helpers and human-readable [`JoinTree::explain`] output.
//!
//! # Example
//!
//! ```
//! use joinopt_plan::PlanArena;
//! use joinopt_cost::PlanStats;
//!
//! let mut arena = PlanArena::new();
//! let r0 = arena.add_scan(0, 1000.0);
//! let r1 = arena.add_scan(1, 200.0);
//! let top = arena.add_join(r0, r1, PlanStats { cardinality: 500.0, cost: 500.0 });
//! let tree = arena.extract(top);
//! assert_eq!(tree.num_joins(), 1);
//! assert_eq!(tree.to_string(), "(R0 ⋈ R1)");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod arena;
mod tree;

pub use arena::{PlanArena, PlanId, PlanNodeKind};
pub use tree::JoinTree;
