//! Owned [`JoinTree`] values and their inspection helpers.

use core::fmt;

use joinopt_relset::{RelIdx, RelSet};

/// An owned bushy join tree with per-node estimates.
///
/// Extracted from a [`PlanArena`](crate::PlanArena) after optimization;
/// the in-flight representation used by the DP algorithms is the arena.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinTree {
    /// A base-table scan.
    Scan {
        /// The scanned relation.
        relation: RelIdx,
        /// Estimated base cardinality.
        cardinality: f64,
    },
    /// A binary join.
    Join {
        /// Left operand.
        left: Box<JoinTree>,
        /// Right operand.
        right: Box<JoinTree>,
        /// Estimated output cardinality.
        cardinality: f64,
        /// Accumulated cost up to and including this join.
        cost: f64,
    },
}

impl JoinTree {
    /// The set of relations joined by this (sub-)tree.
    pub fn relations(&self) -> RelSet {
        match self {
            JoinTree::Scan { relation, .. } => RelSet::single(*relation),
            JoinTree::Join { left, right, .. } => left.relations() | right.relations(),
        }
    }

    /// Number of relations (leaves).
    pub fn num_relations(&self) -> usize {
        match self {
            JoinTree::Scan { .. } => 1,
            JoinTree::Join { left, right, .. } => left.num_relations() + right.num_relations(),
        }
    }

    /// Number of join operators (inner nodes); always `leaves − 1`.
    pub fn num_joins(&self) -> usize {
        match self {
            JoinTree::Scan { .. } => 0,
            JoinTree::Join { left, right, .. } => 1 + left.num_joins() + right.num_joins(),
        }
    }

    /// Height of the tree (a single scan has depth 0).
    pub fn depth(&self) -> usize {
        match self {
            JoinTree::Scan { .. } => 0,
            JoinTree::Join { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    /// Estimated output cardinality at the root.
    pub fn cardinality(&self) -> f64 {
        match self {
            JoinTree::Scan { cardinality, .. } | JoinTree::Join { cardinality, .. } => *cardinality,
        }
    }

    /// Total accumulated cost (0 for a bare scan, by the C_out
    /// convention that scans are free).
    pub fn cost(&self) -> f64 {
        match self {
            JoinTree::Scan { .. } => 0.0,
            JoinTree::Join { cost, .. } => *cost,
        }
    }

    /// `true` iff every join's right operand is a base relation — the
    /// classical System-R "left-deep" shape.
    pub fn is_left_deep(&self) -> bool {
        match self {
            JoinTree::Scan { .. } => true,
            JoinTree::Join { left, right, .. } => {
                matches!(**right, JoinTree::Scan { .. }) && left.is_left_deep()
            }
        }
    }

    /// `true` iff every join's left operand is a base relation.
    pub fn is_right_deep(&self) -> bool {
        match self {
            JoinTree::Scan { .. } => true,
            JoinTree::Join { left, right, .. } => {
                matches!(**left, JoinTree::Scan { .. }) && right.is_right_deep()
            }
        }
    }

    /// `true` iff some join has two composite operands — a properly
    /// bushy tree, the shape only bushy enumeration can produce.
    pub fn is_properly_bushy(&self) -> bool {
        match self {
            JoinTree::Scan { .. } => false,
            JoinTree::Join { left, right, .. } => {
                (matches!(**left, JoinTree::Join { .. })
                    && matches!(**right, JoinTree::Join { .. }))
                    || left.is_properly_bushy()
                    || right.is_properly_bushy()
            }
        }
    }

    /// The leaves in left-to-right order.
    pub fn leaf_order(&self) -> Vec<RelIdx> {
        let mut out = Vec::with_capacity(self.num_relations());
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<RelIdx>) {
        match self {
            JoinTree::Scan { relation, .. } => out.push(*relation),
            JoinTree::Join { left, right, .. } => {
                left.collect_leaves(out);
                right.collect_leaves(out);
            }
        }
    }

    /// Multi-line tree rendering with box-drawing connectors, one node
    /// per line with its cardinality (and, for joins, accumulated
    /// cost). Relations render as `R<idx>`; use
    /// [`JoinTree::render_ascii_with`] to substitute real names.
    ///
    /// ```text
    /// Join  card=2e0 cost=7e0
    /// ├── Join  card=5e0 cost=5e0
    /// │   ├── Scan R0  card=1e1
    /// │   └── Scan R1  card=2e1
    /// └── Scan R2  card=3e1
    /// ```
    pub fn render_ascii(&self) -> String {
        self.render_ascii_with(&|r| format!("R{r}"))
    }

    /// [`JoinTree::render_ascii`] with a caller-supplied relation namer.
    pub fn render_ascii_with(&self, name_of: &dyn Fn(RelIdx) -> String) -> String {
        let mut out = String::new();
        self.ascii_into(&mut out, "", "", name_of);
        out
    }

    fn ascii_into(
        &self,
        out: &mut String,
        prefix: &str,
        child_prefix: &str,
        name_of: &dyn Fn(RelIdx) -> String,
    ) {
        use core::fmt::Write as _;
        match self {
            JoinTree::Scan {
                relation,
                cardinality,
            } => {
                let _ = writeln!(
                    out,
                    "{prefix}Scan {}  card={cardinality:e}",
                    name_of(*relation)
                );
            }
            JoinTree::Join {
                left,
                right,
                cardinality,
                cost,
            } => {
                let _ = writeln!(out, "{prefix}Join  card={cardinality:e} cost={cost:e}");
                left.ascii_into(
                    out,
                    &format!("{child_prefix}├── "),
                    &format!("{child_prefix}│   "),
                    name_of,
                );
                right.ascii_into(
                    out,
                    &format!("{child_prefix}└── "),
                    &format!("{child_prefix}    "),
                    name_of,
                );
            }
        }
    }

    /// Graphviz DOT rendering: a `digraph` with one record-shaped node
    /// per operator (preorder ids `n0`, `n1`, …), edges from each join
    /// to its operands. Deterministic for a given tree, so the output
    /// can be golden-tested. Relations render as `R<idx>`; use
    /// [`JoinTree::render_dot_with`] to substitute real names.
    pub fn render_dot(&self) -> String {
        self.render_dot_with(&|r| format!("R{r}"))
    }

    /// [`JoinTree::render_dot`] with a caller-supplied relation namer.
    pub fn render_dot_with(&self, name_of: &dyn Fn(RelIdx) -> String) -> String {
        let mut out = String::from("digraph plan {\n  node [shape=record];\n");
        let mut next = 0usize;
        self.dot_into(&mut out, &mut next, name_of);
        out.push_str("}\n");
        out
    }

    fn dot_into(
        &self,
        out: &mut String,
        next: &mut usize,
        name_of: &dyn Fn(RelIdx) -> String,
    ) -> usize {
        use core::fmt::Write as _;
        let id = *next;
        *next += 1;
        match self {
            JoinTree::Scan {
                relation,
                cardinality,
            } => {
                let _ = writeln!(
                    out,
                    "  n{id} [label=\"{{{}|card={cardinality:e}}}\"];",
                    name_of(*relation)
                );
            }
            JoinTree::Join {
                left,
                right,
                cardinality,
                cost,
            } => {
                let _ = writeln!(
                    out,
                    "  n{id} [label=\"{{⋈|card={cardinality:e}|cost={cost:e}}}\"];"
                );
                let l = left.dot_into(out, next, name_of);
                let _ = writeln!(out, "  n{id} -> n{l};");
                let r = right.dot_into(out, next, name_of);
                let _ = writeln!(out, "  n{id} -> n{r};");
            }
        }
        id
    }

    /// Multi-line `EXPLAIN`-style rendering with cardinalities and costs.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, indent: usize) {
        use core::fmt::Write as _;
        for _ in 0..indent {
            out.push_str("  ");
        }
        match self {
            JoinTree::Scan {
                relation,
                cardinality,
            } => {
                let _ = writeln!(out, "Scan R{relation}  (card={cardinality:.0})");
            }
            JoinTree::Join {
                left,
                right,
                cardinality,
                cost,
            } => {
                let _ = writeln!(out, "Join  (card={cardinality:.0}, cost={cost:.0})");
                left.explain_into(out, indent + 1);
                right.explain_into(out, indent + 1);
            }
        }
    }
}

impl fmt::Display for JoinTree {
    /// One-line infix rendering, e.g. `((R0 ⋈ R1) ⋈ R2)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinTree::Scan { relation, .. } => write!(f, "R{relation}"),
            JoinTree::Join { left, right, .. } => write!(f, "({left} ⋈ {right})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(r: RelIdx, card: f64) -> JoinTree {
        JoinTree::Scan {
            relation: r,
            cardinality: card,
        }
    }

    fn join(l: JoinTree, r: JoinTree, card: f64, cost: f64) -> JoinTree {
        JoinTree::Join {
            left: Box::new(l),
            right: Box::new(r),
            cardinality: card,
            cost,
        }
    }

    fn left_deep3() -> JoinTree {
        join(
            join(scan(0, 10.0), scan(1, 20.0), 5.0, 5.0),
            scan(2, 30.0),
            2.0,
            7.0,
        )
    }

    fn bushy4() -> JoinTree {
        join(
            join(scan(0, 10.0), scan(1, 20.0), 5.0, 5.0),
            join(scan(2, 30.0), scan(3, 40.0), 6.0, 6.0),
            3.0,
            14.0,
        )
    }

    #[test]
    fn counting_helpers() {
        let t = bushy4();
        assert_eq!(t.num_relations(), 4);
        assert_eq!(t.num_joins(), 3);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.relations(), RelSet::full(4));
        assert_eq!(t.leaf_order(), vec![0, 1, 2, 3]);
        assert_eq!(t.cardinality(), 3.0);
        assert_eq!(t.cost(), 14.0);
    }

    #[test]
    fn shape_predicates() {
        let ld = left_deep3();
        assert!(ld.is_left_deep());
        assert!(!ld.is_right_deep());
        assert!(!ld.is_properly_bushy());

        let b = bushy4();
        assert!(!b.is_left_deep());
        assert!(!b.is_right_deep());
        assert!(b.is_properly_bushy());

        let s = scan(0, 1.0);
        assert!(s.is_left_deep() && s.is_right_deep() && !s.is_properly_bushy());
        assert_eq!(s.cost(), 0.0);
    }

    #[test]
    fn display_infix() {
        assert_eq!(left_deep3().to_string(), "((R0 ⋈ R1) ⋈ R2)");
        assert_eq!(bushy4().to_string(), "((R0 ⋈ R1) ⋈ (R2 ⋈ R3))");
    }

    #[test]
    fn ascii_tree_connectors_and_names() {
        let got = left_deep3().render_ascii();
        let want = "\
Join  card=2e0 cost=7e0
├── Join  card=5e0 cost=5e0
│   ├── Scan R0  card=1e1
│   └── Scan R1  card=2e1
└── Scan R2  card=3e1
";
        assert_eq!(got, want);
        let named = bushy4().render_ascii_with(&|r| format!("t{}", (b'a' + r as u8) as char));
        assert!(named.contains("Scan ta"), "{named}");
        assert!(named.contains("└── Scan td"), "{named}");
    }

    #[test]
    fn dot_is_a_deterministic_digraph() {
        let dot = bushy4().render_dot();
        assert!(dot.starts_with("digraph plan {\n"), "{dot}");
        assert!(dot.ends_with("}\n"), "{dot}");
        // 7 nodes (3 joins + 4 scans), 6 edges, preorder ids.
        assert_eq!(dot.matches("[label=").count(), 7, "{dot}");
        assert_eq!(dot.matches(" -> ").count(), 6, "{dot}");
        assert!(
            dot.contains("n0 -> n1;") && dot.contains("n0 -> n4;"),
            "{dot}"
        );
        assert!(dot.contains("card=5e0"), "{dot}");
        assert_eq!(dot, bushy4().render_dot());
    }

    #[test]
    fn explain_structure() {
        let e = left_deep3().explain();
        let lines: Vec<&str> = e.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("Join"));
        assert!(lines[1].trim_start().starts_with("Join"));
        assert!(lines[4].trim_start().starts_with("Scan R2"));
        assert!(e.contains("cost=7"));
    }
}
