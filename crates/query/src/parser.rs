//! Parser for the query-description format.

use std::collections::HashMap;

use joinopt_cost::Catalog;
use joinopt_plan::JoinTree;
use joinopt_qgraph::hypergraph::Hypergraph;
use joinopt_qgraph::QueryGraph;
use joinopt_relset::{RelIdx, RelSet};

use crate::error::ParseError;

/// Default selectivity when a `join` line omits it.
pub const DEFAULT_SELECTIVITY: f64 = 0.1;

/// A parsed query: graph, statistics and the name↔index mapping.
///
/// Every query parses to a [`Hypergraph`]; when all predicates are
/// binary, an equivalent [`QueryGraph`] is also available (and the
/// simple-graph algorithms apply). `join` endpoints may be
/// comma-separated lists for complex predicates:
///
/// ```text
/// join r1,r2 r3 0.05      # R1.a + R2.b = R3.c
/// ```
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// The query hypergraph (relation `i` is `names()[i]`).
    pub hypergraph: Hypergraph,
    /// Statistics (one cardinality per relation, one selectivity per
    /// predicate, indexed by declaration order).
    pub catalog: Catalog,
    graph: Option<QueryGraph>,
    names: Vec<String>,
    index: HashMap<String, RelIdx>,
}

impl ParsedQuery {
    /// Crate-internal constructor used by the SQL frontend.
    pub(crate) fn from_parts(
        hypergraph: Hypergraph,
        graph: Option<QueryGraph>,
        catalog: Catalog,
        names: Vec<String>,
    ) -> ParsedQuery {
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        ParsedQuery {
            hypergraph,
            graph,
            catalog,
            names,
            index,
        }
    }

    /// The simple query graph — `Some` iff every predicate is binary.
    pub fn graph(&self) -> Option<&QueryGraph> {
        self.graph.as_ref()
    }

    /// `true` iff every predicate is binary (no hyperedges).
    pub fn is_simple(&self) -> bool {
        self.graph.is_some()
    }

    /// Relation names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The name of relation `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn name_of(&self, i: RelIdx) -> &str {
        &self.names[i]
    }

    /// Looks up a relation index by name.
    pub fn index_of(&self, name: &str) -> Option<RelIdx> {
        self.index.get(name).copied()
    }

    /// Renders a join tree with the original relation names, e.g.
    /// `((customer ⋈ orders) ⋈ lineitem)`.
    pub fn render_tree(&self, tree: &JoinTree) -> String {
        match tree {
            JoinTree::Scan { relation, .. } => self.names[*relation].clone(),
            JoinTree::Join { left, right, .. } => {
                format!("({} ⋈ {})", self.render_tree(left), self.render_tree(right))
            }
        }
    }
}

/// Parses the query-description format (see the crate docs for the
/// grammar).
///
/// # Errors
///
/// Returns a line-numbered [`ParseError`] on the first problem found.
pub fn parse(input: &str) -> Result<ParsedQuery, ParseError> {
    let mut names: Vec<String> = Vec::new();
    let mut cards: Vec<(usize, f64)> = Vec::new(); // (line, cardinality)
    let mut index: HashMap<String, RelIdx> = HashMap::new();
    let mut joins: Vec<(usize, RelSet, RelSet, f64)> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let line = lineno + 1;
        let text = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let mut words = text.split_whitespace();
        let Some(directive) = words.next() else {
            continue; // blank or comment-only line
        };
        match directive {
            "relation" => {
                let (Some(name), Some(card_text), None) =
                    (words.next(), words.next(), words.next())
                else {
                    return Err(ParseError::WrongArity {
                        line,
                        directive: "relation",
                        expected: "a name and a cardinality",
                    });
                };
                let card: f64 = card_text.parse().map_err(|_| ParseError::BadNumber {
                    line,
                    what: "cardinality",
                    text: card_text.to_string(),
                })?;
                // `,` separates relation lists on `join` lines, so a
                // name containing it would parse at declaration yet be
                // unreferencable (and break the print→parse round trip).
                if name.contains(',') {
                    return Err(ParseError::InvalidName {
                        line,
                        name: name.to_string(),
                    });
                }
                if index.contains_key(name) {
                    return Err(ParseError::DuplicateRelation {
                        line,
                        name: name.to_string(),
                    });
                }
                index.insert(name.to_string(), names.len());
                names.push(name.to_string());
                cards.push((line, card));
            }
            "join" => {
                let (Some(left), Some(right)) = (words.next(), words.next()) else {
                    return Err(ParseError::WrongArity {
                        line,
                        directive: "join",
                        expected:
                            "two (comma-separated) relation lists and an optional selectivity",
                    });
                };
                let sel = match words.next() {
                    None => DEFAULT_SELECTIVITY,
                    Some(sel_text) => {
                        if words.next().is_some() {
                            return Err(ParseError::WrongArity {
                                line,
                                directive: "join",
                                expected: "two (comma-separated) relation lists and an optional selectivity",
                            });
                        }
                        sel_text.parse().map_err(|_| ParseError::BadNumber {
                            line,
                            what: "selectivity",
                            text: sel_text.to_string(),
                        })?
                    }
                };
                let resolve = |token: &str| -> Result<RelSet, ParseError> {
                    let mut side = RelSet::EMPTY;
                    for name in token.split(',') {
                        let i = *index.get(name).ok_or_else(|| ParseError::UnknownRelation {
                            line,
                            name: name.to_string(),
                        })?;
                        side.insert(i);
                    }
                    Ok(side)
                };
                let ls = resolve(left)?;
                let rs = resolve(right)?;
                if ls.overlaps(rs) {
                    let shared = (ls & rs).min_index().expect("overlap is non-empty");
                    return Err(ParseError::SelfJoin {
                        line,
                        name: names[shared].clone(),
                    });
                }
                joins.push((line, ls, rs, sel));
            }
            other => {
                return Err(ParseError::UnknownDirective {
                    line,
                    word: other.to_string(),
                })
            }
        }
    }

    if names.is_empty() {
        return Err(ParseError::EmptyQuery);
    }
    if names.len() > 64 {
        return Err(ParseError::TooManyRelations { n: names.len() });
    }

    let mut hypergraph = Hypergraph::new(names.len())
        .map_err(|_| ParseError::TooManyRelations { n: names.len() })?;
    for &(line, ls, rs, _) in &joins {
        hypergraph
            .add_edge(ls, rs)
            .map_err(|_| ParseError::DuplicateJoin {
                line,
                left: render_side(ls, &names),
                right: render_side(rs, &names),
            })?;
    }
    // A parallel simple graph when every predicate is binary.
    let graph = if hypergraph.num_complex_edges() == 0 {
        let mut g = QueryGraph::new(names.len()).expect("size already validated");
        for e in hypergraph.edges() {
            let (u, v) = (
                e.u.min_index().expect("non-empty"),
                e.v.min_index().expect("non-empty"),
            );
            g.add_edge(u, v).expect("hypergraph already deduplicated");
        }
        Some(g)
    } else {
        None
    };

    let mut catalog = Catalog::with_shape(names.len(), hypergraph.num_edges());
    for (i, &(line, card)) in cards.iter().enumerate() {
        catalog
            .set_cardinality(i, card)
            .map_err(|e| ParseError::InvalidStatistic {
                line,
                message: e.to_string(),
            })?;
    }
    for (edge_id, &(line, _, _, sel)) in joins.iter().enumerate() {
        catalog
            .set_selectivity(edge_id, sel)
            .map_err(|e| ParseError::InvalidStatistic {
                line,
                message: e.to_string(),
            })?;
    }

    Ok(ParsedQuery {
        hypergraph,
        graph,
        catalog,
        names,
        index,
    })
}

/// Renders one hyperedge side as the comma-joined relation names.
fn render_side(side: RelSet, names: &[String]) -> String {
    side.iter()
        .map(|i| names[i].as_str())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHAIN: &str = "\
# TPC-H-ish chain
relation customer 150000
relation orders   1500000
relation lineitem 6000000

join customer orders   6.67e-6
join orders   lineitem 6.67e-7   # key join
";

    #[test]
    fn parses_valid_query() {
        let q = parse(CHAIN).unwrap();
        assert_eq!(q.names(), &["customer", "orders", "lineitem"]);
        assert!(q.is_simple());
        let g = q.graph().unwrap();
        assert_eq!(g.num_relations(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(q.hypergraph.num_edges(), 2);
        assert_eq!(q.catalog.cardinality(1), 1_500_000.0);
        assert!((q.catalog.selectivity(0) - 6.67e-6).abs() < 1e-12);
        assert_eq!(q.index_of("lineitem"), Some(2));
        assert_eq!(q.index_of("nation"), None);
        assert_eq!(q.name_of(0), "customer");
    }

    #[test]
    fn default_selectivity_applies() {
        let q = parse("relation a 10\nrelation b 20\njoin a b\n").unwrap();
        assert_eq!(q.catalog.selectivity(0), DEFAULT_SELECTIVITY);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let q = parse("\n# hi\nrelation a 10\n   # indented comment\n").unwrap();
        assert_eq!(q.names(), &["a"]);
    }

    #[test]
    fn error_unknown_directive() {
        let e = parse("table a 10\n").unwrap_err();
        assert!(matches!(e, ParseError::UnknownDirective { line: 1, .. }));
    }

    #[test]
    fn error_wrong_arity() {
        assert!(matches!(
            parse("relation a\n").unwrap_err(),
            ParseError::WrongArity {
                directive: "relation",
                ..
            }
        ));
        assert!(matches!(
            parse("relation a 10 extra\n").unwrap_err(),
            ParseError::WrongArity { .. }
        ));
        assert!(matches!(
            parse("relation a 10\nrelation b 10\njoin a\n").unwrap_err(),
            ParseError::WrongArity {
                directive: "join",
                line: 3,
                ..
            }
        ));
        assert!(matches!(
            parse("relation a 10\nrelation b 10\njoin a b 0.5 extra\n").unwrap_err(),
            ParseError::WrongArity { .. }
        ));
    }

    #[test]
    fn error_bad_numbers() {
        assert!(matches!(
            parse("relation a ten\n").unwrap_err(),
            ParseError::BadNumber {
                what: "cardinality",
                ..
            }
        ));
        assert!(matches!(
            parse("relation a 10\nrelation b 10\njoin a b half\n").unwrap_err(),
            ParseError::BadNumber {
                what: "selectivity",
                ..
            }
        ));
    }

    #[test]
    fn error_duplicate_relation() {
        let e = parse("relation a 10\nrelation a 20\n").unwrap_err();
        assert!(matches!(e, ParseError::DuplicateRelation { line: 2, .. }));
    }

    #[test]
    fn error_comma_in_relation_name() {
        // Before the `InvalidName` check such a name was accepted at
        // declaration but could never be referenced (join-side tokens
        // split on `,`), so printed queries failed to re-parse.
        let e = parse("relation a,b 10\n").unwrap_err();
        assert!(matches!(e, ParseError::InvalidName { line: 1, .. }));
        assert!(e.to_string().contains("a,b"), "{e}");
        assert_eq!(e.line(), Some(1));
    }

    #[test]
    fn error_unknown_relation_in_join() {
        let e = parse("relation a 10\njoin a ghost 0.1\n").unwrap_err();
        assert!(matches!(e, ParseError::UnknownRelation { line: 2, .. }));
    }

    #[test]
    fn error_self_join() {
        let e = parse("relation a 10\njoin a a 0.1\n").unwrap_err();
        assert!(matches!(e, ParseError::SelfJoin { .. }));
    }

    #[test]
    fn error_duplicate_join_either_order() {
        let src = "relation a 10\nrelation b 10\njoin a b 0.1\njoin b a 0.2\n";
        let e = parse(src).unwrap_err();
        assert!(matches!(e, ParseError::DuplicateJoin { line: 4, .. }));
    }

    #[test]
    fn error_empty() {
        assert_eq!(
            parse("# nothing here\n").unwrap_err(),
            ParseError::EmptyQuery
        );
    }

    #[test]
    fn error_invalid_statistics() {
        assert!(matches!(
            parse("relation a 0.5\n").unwrap_err(),
            ParseError::InvalidStatistic { line: 1, .. }
        ));
        assert!(matches!(
            parse("relation a 10\nrelation b 10\njoin a b 1.5\n").unwrap_err(),
            ParseError::InvalidStatistic { line: 3, .. }
        ));
    }

    #[test]
    fn error_too_many_relations() {
        let mut src = String::new();
        for i in 0..65 {
            src.push_str(&format!("relation r{i} 10\n"));
        }
        assert_eq!(
            parse(&src).unwrap_err(),
            ParseError::TooManyRelations { n: 65 }
        );
    }

    #[test]
    fn parses_hyperedges() {
        let src = "\
relation r1 100
relation r2 200
relation r3 50
join r1 r2 0.01
join r1,r2 r3 0.05
";
        let q = parse(src).unwrap();
        assert!(!q.is_simple());
        assert!(q.graph().is_none());
        assert_eq!(q.hypergraph.num_edges(), 2);
        assert_eq!(q.hypergraph.num_complex_edges(), 1);
        assert_eq!(q.catalog.selectivity(1), 0.05);
    }

    #[test]
    fn hyperedge_overlap_rejected() {
        let src = "relation a 10\nrelation b 10\njoin a,b b 0.1\n";
        assert!(matches!(
            parse(src).unwrap_err(),
            ParseError::SelfJoin { .. }
        ));
    }

    #[test]
    fn hyperedge_unknown_member_rejected() {
        let src = "relation a 10\nrelation b 10\njoin a,ghost b 0.1\n";
        assert!(matches!(
            parse(src).unwrap_err(),
            ParseError::UnknownRelation { .. }
        ));
    }

    #[test]
    fn duplicate_hyperedge_rejected() {
        let src = "relation a 10\nrelation b 10\nrelation c 10\n\
join a,b c 0.1\njoin c a,b 0.2\n";
        let e = parse(src).unwrap_err();
        assert!(
            matches!(e, ParseError::DuplicateJoin { line: 5, .. }),
            "{e:?}"
        );
    }

    #[test]
    fn render_tree_uses_names() {
        use joinopt_core::{DpCcp, JoinOrderer};
        use joinopt_cost::Cout;
        let q = parse(CHAIN).unwrap();
        let r = DpCcp
            .optimize(q.graph().unwrap(), &q.catalog, &Cout)
            .unwrap();
        let rendered = q.render_tree(&r.tree);
        for name in q.names() {
            assert!(rendered.contains(name.as_str()), "{rendered}");
        }
        assert!(rendered.contains('⋈'));
    }
}
