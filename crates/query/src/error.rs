//! Line-numbered parse errors.

use core::fmt;

/// An error produced while parsing the query-description format.
///
/// Every variant carries the 1-based source line for tooling-friendly
/// messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A line did not start with a known directive.
    UnknownDirective {
        /// Source line.
        line: usize,
        /// The offending first word.
        word: String,
    },
    /// A directive had the wrong number of arguments.
    WrongArity {
        /// Source line.
        line: usize,
        /// The directive.
        directive: &'static str,
        /// What the directive expects.
        expected: &'static str,
    },
    /// A numeric field did not parse or was out of domain.
    BadNumber {
        /// Source line.
        line: usize,
        /// Which field.
        what: &'static str,
        /// The rejected text.
        text: String,
    },
    /// The same relation name was declared twice.
    DuplicateRelation {
        /// Source line.
        line: usize,
        /// The duplicated name.
        name: String,
    },
    /// A relation name contains a character the format reserves.
    InvalidName {
        /// Source line.
        line: usize,
        /// The rejected name.
        name: String,
    },
    /// A join referenced an undeclared relation.
    UnknownRelation {
        /// Source line.
        line: usize,
        /// The unknown name.
        name: String,
    },
    /// The same join was declared twice (in either order).
    DuplicateJoin {
        /// Source line.
        line: usize,
        /// One endpoint.
        left: String,
        /// Other endpoint.
        right: String,
    },
    /// A join's endpoints were the same relation.
    SelfJoin {
        /// Source line.
        line: usize,
        /// The relation name.
        name: String,
    },
    /// No relations were declared.
    EmptyQuery,
    /// More than 64 relations were declared.
    TooManyRelations {
        /// How many were declared.
        n: usize,
    },
    /// A cardinality or selectivity failed catalog validation.
    InvalidStatistic {
        /// Source line.
        line: usize,
        /// The underlying catalog error, as text.
        message: String,
    },
}

impl ParseError {
    /// The 1-based source line the error refers to, when applicable.
    pub fn line(&self) -> Option<usize> {
        match self {
            ParseError::UnknownDirective { line, .. }
            | ParseError::WrongArity { line, .. }
            | ParseError::BadNumber { line, .. }
            | ParseError::DuplicateRelation { line, .. }
            | ParseError::InvalidName { line, .. }
            | ParseError::UnknownRelation { line, .. }
            | ParseError::DuplicateJoin { line, .. }
            | ParseError::SelfJoin { line, .. }
            | ParseError::InvalidStatistic { line, .. } => Some(*line),
            ParseError::EmptyQuery | ParseError::TooManyRelations { .. } => None,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnknownDirective { line, word } => {
                write!(
                    f,
                    "line {line}: unknown directive `{word}` (expected `relation` or `join`)"
                )
            }
            ParseError::WrongArity {
                line,
                directive,
                expected,
            } => {
                write!(f, "line {line}: `{directive}` expects {expected}")
            }
            ParseError::BadNumber { line, what, text } => {
                write!(f, "line {line}: invalid {what} `{text}`")
            }
            ParseError::DuplicateRelation { line, name } => {
                write!(f, "line {line}: relation `{name}` declared twice")
            }
            ParseError::InvalidName { line, name } => {
                write!(
                    f,
                    "line {line}: relation name `{name}` contains `,`, which separates \
                     join-side relation lists"
                )
            }
            ParseError::UnknownRelation { line, name } => {
                write!(f, "line {line}: unknown relation `{name}`")
            }
            ParseError::DuplicateJoin { line, left, right } => {
                write!(
                    f,
                    "line {line}: duplicate join between `{left}` and `{right}`"
                )
            }
            ParseError::SelfJoin { line, name } => {
                write!(
                    f,
                    "line {line}: self-join on `{name}` is not a join predicate"
                )
            }
            ParseError::EmptyQuery => write!(f, "query declares no relations"),
            ParseError::TooManyRelations { n } => {
                write!(f, "{n} relations exceed the supported maximum of 64")
            }
            ParseError::InvalidStatistic { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction() {
        assert_eq!(
            ParseError::UnknownDirective {
                line: 3,
                word: "x".into()
            }
            .line(),
            Some(3)
        );
        assert_eq!(ParseError::EmptyQuery.line(), None);
    }

    #[test]
    fn display_contains_context() {
        let e = ParseError::DuplicateJoin {
            line: 9,
            left: "a".into(),
            right: "b".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 9") && s.contains('a') && s.contains('b'));
    }
}
