//! Serializer for the query-description format (inverse of
//! [`crate::parse`]).

use core::fmt::Write as _;

use crate::parser::ParsedQuery;

/// Serializes a parsed query back to the textual format.
///
/// The output parses back to an equivalent query (same graph shape,
/// names and statistics); the round trip is covered by property tests.
pub fn write(query: &ParsedQuery) -> String {
    let mut out = String::new();
    for (i, name) in query.names().iter().enumerate() {
        let _ = writeln!(
            out,
            "relation {name} {}",
            fmt_f64(query.catalog.cardinality(i))
        );
    }
    if query.hypergraph.num_edges() > 0 {
        out.push('\n');
    }
    for (edge_id, e) in query.hypergraph.edges().iter().enumerate() {
        let side = |s: joinopt_relset::RelSet| {
            s.iter()
                .map(|i| query.name_of(i))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(
            out,
            "join {} {} {}",
            side(e.u),
            side(e.v),
            fmt_f64(query.catalog.selectivity(edge_id))
        );
    }
    out
}

/// Formats an `f64` so it parses back exactly (shortest round-trip repr).
fn fmt_f64(x: f64) -> String {
    let mut s = format!("{x}");
    if !s.contains(['.', 'e', 'E', 'i', 'n']) {
        // Keep integers readable; "150000" parses fine as f64.
        return s;
    }
    // `{}` on f64 is already the shortest round-trippable form.
    if s == "inf" || s == "NaN" {
        s = "0".to_string(); // unreachable for validated catalogs
    }
    s
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    #[test]
    fn round_trip_preserves_everything() {
        let src = "\
relation customer 150000
relation orders 1500000

join customer orders 6.67e-6
";
        let q1 = parse(src).unwrap();
        let written = super::write(&q1);
        let q2 = parse(&written).unwrap();
        assert_eq!(q1.names(), q2.names());
        assert_eq!(q1.hypergraph, q2.hypergraph);
        assert_eq!(q1.catalog, q2.catalog);
    }

    #[test]
    fn output_contains_all_directives() {
        let q = parse("relation a 10\nrelation b 20\njoin a b 0.25\n").unwrap();
        let out = super::write(&q);
        assert!(out.contains("relation a 10"));
        assert!(out.contains("relation b 20"));
        assert!(out.contains("join a b 0.25"));
    }

    #[test]
    fn edgeless_query_round_trips() {
        let q = parse("relation lonely 42\n").unwrap();
        let q2 = parse(&super::write(&q)).unwrap();
        assert_eq!(q2.names(), &["lonely"]);
        assert_eq!(q2.hypergraph.num_edges(), 0);
    }
}
