//! A SQL-subset frontend: conjunctive `SELECT … FROM … WHERE` queries.
//!
//! The paper's algorithms order joins for *conjunctive queries*; this
//! module accepts them in their natural syntax and lowers them to the
//! same [`ParsedQuery`] the rest of the workspace consumes:
//!
//! ```sql
//! SELECT *
//! FROM customer /*+ rows=150000 */ c,
//!      orders   /*+ rows=1500000 */ o,
//!      lineitem /*+ rows=6000000 */ l
//! WHERE c.ck = o.ck        /*+ sel=6.7e-6 */
//!   AND o.ok = l.ok        /*+ sel=6.7e-7 */
//!   AND l.tax + o.rate = c.bracket   -- complex predicate → hyperedge
//!   AND c.region = 4       /*+ sel=0.25 */  -- filter: scales |customer|
//! ```
//!
//! Supported surface:
//!
//! * `SELECT *` (projection does not affect join ordering);
//! * `FROM table [alias]` list, with optional `/*+ rows=N */` hints
//!   (default 1 000 rows);
//! * `WHERE` as an `AND`-conjunction of equality predicates, each with
//!   an optional `/*+ sel=F */` hint (default 0.1);
//! * predicate sides are arbitrary `+ - * /` expressions over
//!   `alias.column` references and literals:
//!   * two disjoint, non-empty relation sets → a join predicate (a
//!     hyperedge when more than two relations are involved);
//!   * exactly one relation overall → a *filter*, folded into that
//!     relation's cardinality;
//! * `--` line comments and `/* … */` block comments.
//!
//! The lowering is deliberately lossy (column identity is discarded):
//! join ordering only needs the relation sets and the statistics.

use joinopt_cost::Catalog;
use joinopt_qgraph::hypergraph::Hypergraph;
use joinopt_qgraph::QueryGraph;
use joinopt_relset::RelSet;

use crate::parser::ParsedQuery;

/// Errors produced by the SQL frontend, with byte offsets into the
/// source for tooling.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical problem (unterminated comment, stray character).
    Lex {
        /// Byte offset.
        at: usize,
        /// Description.
        message: String,
    },
    /// Structural problem (missing keyword, unexpected token).
    Syntax {
        /// Byte offset of the offending token.
        at: usize,
        /// Description.
        message: String,
    },
    /// An `alias.column` referenced an undeclared alias.
    UnknownAlias {
        /// Byte offset.
        at: usize,
        /// The alias.
        alias: String,
    },
    /// The same table alias was declared twice.
    DuplicateAlias {
        /// Byte offset.
        at: usize,
        /// The alias.
        alias: String,
    },
    /// A predicate references no relation at all, or the same relations
    /// on both sides.
    UnusablePredicate {
        /// Byte offset.
        at: usize,
        /// Description.
        message: String,
    },
    /// A hint value was malformed or out of domain.
    BadHint {
        /// Byte offset.
        at: usize,
        /// Description.
        message: String,
    },
    /// More than 64 relations.
    TooManyRelations {
        /// Number declared.
        n: usize,
    },
}

impl core::fmt::Display for SqlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SqlError::Lex { at, message } => write!(f, "byte {at}: {message}"),
            SqlError::Syntax { at, message } => write!(f, "byte {at}: {message}"),
            SqlError::UnknownAlias { at, alias } => {
                write!(f, "byte {at}: unknown table alias `{alias}`")
            }
            SqlError::DuplicateAlias { at, alias } => {
                write!(f, "byte {at}: duplicate table alias `{alias}`")
            }
            SqlError::UnusablePredicate { at, message } => write!(f, "byte {at}: {message}"),
            SqlError::BadHint { at, message } => write!(f, "byte {at}: {message}"),
            SqlError::TooManyRelations { n } => {
                write!(f, "{n} relations exceed the supported maximum of 64")
            }
        }
    }
}

impl std::error::Error for SqlError {}

/// Default base cardinality when a table carries no `rows` hint.
pub const DEFAULT_ROWS: f64 = 1_000.0;
/// Default predicate selectivity when no `sel` hint is given.
pub const DEFAULT_SEL: f64 = 0.1;

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Punct(char),
    /// `/*+ key=value … */`
    Hint(Vec<(String, f64)>),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    at: usize,
}

fn lex(src: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            let is_hint = bytes.get(i + 2) == Some(&b'+');
            let body_start = if is_hint { i + 3 } else { i + 2 };
            let Some(end) = src[body_start..].find("*/").map(|p| p + body_start) else {
                return Err(SqlError::Lex {
                    at: start,
                    message: "unterminated comment".into(),
                });
            };
            if is_hint {
                out.push(Token {
                    tok: Tok::Hint(parse_hint(&src[body_start..end], start)?),
                    at: start,
                });
            }
            i = end + 2;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Ident(src[start..i].to_string()),
                at: start,
            });
        } else if c.is_ascii_digit()
            || (c == '.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()))
        {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_digit()
                    || bytes[i] == b'.'
                    || bytes[i] == b'e'
                    || bytes[i] == b'E'
                    || ((bytes[i] == b'+' || bytes[i] == b'-')
                        && matches!(bytes.get(i - 1), Some(b'e') | Some(b'E'))))
            {
                i += 1;
            }
            let text = &src[start..i];
            let value: f64 = text.parse().map_err(|_| SqlError::Lex {
                at: start,
                message: format!("invalid number `{text}`"),
            })?;
            out.push(Token {
                tok: Tok::Number(value),
                at: start,
            });
        } else if "*,.=+-/();<>".contains(c) {
            out.push(Token {
                tok: Tok::Punct(c),
                at: i,
            });
            i += 1;
        } else {
            return Err(SqlError::Lex {
                at: i,
                message: format!("unexpected character `{c}`"),
            });
        }
    }
    Ok(out)
}

fn parse_hint(body: &str, at: usize) -> Result<Vec<(String, f64)>, SqlError> {
    let mut out = Vec::new();
    for piece in body.split_whitespace() {
        let Some((key, value)) = piece.split_once('=') else {
            return Err(SqlError::BadHint {
                at,
                message: format!("hint `{piece}` is not key=value"),
            });
        };
        let value: f64 = value.parse().map_err(|_| SqlError::BadHint {
            at,
            message: format!("hint `{key}` has non-numeric value `{value}`"),
        })?;
        out.push((key.to_ascii_lowercase(), value));
    }
    Ok(out)
}

// --------------------------------------------------------------- parser

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at(&self) -> usize {
        self.peek().map_or(usize::MAX, |t| t.at)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(Token {
                tok: Tok::Ident(w), ..
            }) if w.eq_ignore_ascii_case(kw) => Ok(()),
            Some(Token { at, .. }) => Err(SqlError::Syntax {
                at,
                message: format!("expected `{kw}`"),
            }),
            None => Err(SqlError::Syntax {
                at: usize::MAX,
                message: format!("expected `{kw}`, found end of input"),
            }),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token { tok: Tok::Ident(w), .. }) if w.eq_ignore_ascii_case(kw))
    }

    fn take_hint(&mut self) -> Option<Vec<(String, f64)>> {
        if let Some(Token {
            tok: Tok::Hint(h), ..
        }) = self.peek()
        {
            let h = h.clone();
            self.pos += 1;
            Some(h)
        } else {
            None
        }
    }
}

struct TableDecl {
    alias: String,
    rows: f64,
    at: usize,
}

/// Parses a conjunctive SQL query into a [`ParsedQuery`].
///
/// # Errors
///
/// Returns [`SqlError`] with a byte offset for lexical, syntactic and
/// semantic problems (unknown aliases, unusable predicates, bad hints).
pub fn parse_sql(src: &str) -> Result<ParsedQuery, SqlError> {
    let mut p = Parser {
        tokens: lex(src)?,
        pos: 0,
    };

    p.keyword("select")?;
    match p.next() {
        Some(Token {
            tok: Tok::Punct('*'),
            ..
        }) => {}
        Some(Token { at, .. }) => {
            return Err(SqlError::Syntax {
                at,
                message: "only `SELECT *` is supported (projection does not affect join order)"
                    .into(),
            })
        }
        None => {
            return Err(SqlError::Syntax {
                at: usize::MAX,
                message: "truncated query".into(),
            })
        }
    }
    p.keyword("from")?;

    // FROM list.
    let mut tables: Vec<TableDecl> = Vec::new();
    loop {
        let at = p.at();
        let Some(Token {
            tok: Tok::Ident(name),
            ..
        }) = p.next()
        else {
            return Err(SqlError::Syntax {
                at,
                message: "expected a table name".into(),
            });
        };
        let mut rows = DEFAULT_ROWS;
        if let Some(hints) = p.take_hint() {
            for (key, value) in hints {
                match key.as_str() {
                    "rows" if value >= 1.0 && value.is_finite() => rows = value,
                    "rows" => {
                        return Err(SqlError::BadHint {
                            at,
                            message: format!("rows={value} must be finite and ≥ 1"),
                        })
                    }
                    other => {
                        return Err(SqlError::BadHint {
                            at,
                            message: format!("unknown table hint `{other}`"),
                        })
                    }
                }
            }
        }
        // Optional alias (an identifier that is not a clause keyword).
        let alias = if matches!(p.peek(), Some(Token { tok: Tok::Ident(w), .. })
            if !w.eq_ignore_ascii_case("where"))
        {
            let Some(Token {
                tok: Tok::Ident(a), ..
            }) = p.next()
            else {
                unreachable!("peeked an identifier")
            };
            a
        } else {
            name.clone()
        };
        if tables.iter().any(|t| t.alias == alias) {
            return Err(SqlError::DuplicateAlias { at, alias });
        }
        tables.push(TableDecl { alias, rows, at });
        match p.peek() {
            Some(Token {
                tok: Tok::Punct(','),
                ..
            }) => {
                p.pos += 1;
            }
            _ => break,
        }
    }
    if tables.len() > 64 {
        return Err(SqlError::TooManyRelations { n: tables.len() });
    }

    let alias_index = |alias: &str| tables.iter().position(|t| t.alias == alias);

    // WHERE clause (optional — a pure cross product is rejected later by
    // the optimizer, but single-table queries are fine).
    let mut joins: Vec<(RelSet, RelSet, f64, usize)> = Vec::new();
    let mut filters: Vec<(usize, f64)> = Vec::new(); // (relation, selectivity)
    if p.is_keyword("where") {
        p.pos += 1;
        loop {
            let pred_at = p.at();
            let left = parse_expr_side(&mut p, &alias_index)?;
            match p.next() {
                Some(Token {
                    tok: Tok::Punct('='),
                    ..
                }) => {}
                Some(Token { at, .. }) => {
                    return Err(SqlError::Syntax {
                        at,
                        message: "only equality predicates are supported".into(),
                    })
                }
                None => {
                    return Err(SqlError::Syntax {
                        at: usize::MAX,
                        message: "truncated predicate".into(),
                    })
                }
            }
            let right = parse_expr_side(&mut p, &alias_index)?;
            let mut sel = DEFAULT_SEL;
            if let Some(hints) = p.take_hint() {
                for (key, value) in hints {
                    match key.as_str() {
                        "sel" if value > 0.0 && value <= 1.0 => sel = value,
                        "sel" => {
                            return Err(SqlError::BadHint {
                                at: pred_at,
                                message: format!("sel={value} must be in (0, 1]"),
                            })
                        }
                        other => {
                            return Err(SqlError::BadHint {
                                at: pred_at,
                                message: format!("unknown predicate hint `{other}`"),
                            })
                        }
                    }
                }
            }
            let all = left | right;
            if all.is_empty() {
                return Err(SqlError::UnusablePredicate {
                    at: pred_at,
                    message: "predicate references no relation".into(),
                });
            } else if all.is_singleton() {
                filters.push((all.min_index().expect("singleton"), sel));
            } else if left.is_empty() || right.is_empty() || left.overlaps(right) {
                return Err(SqlError::UnusablePredicate {
                    at: pred_at,
                    message: "join predicate must reference disjoint, non-empty relation sets on \
                         each side of `=`"
                        .into(),
                });
            } else {
                joins.push((left, right, sel, pred_at));
            }
            if p.is_keyword("and") {
                p.pos += 1;
            } else {
                break;
            }
        }
    }

    // Optional trailing semicolon, then end of input.
    if matches!(
        p.peek(),
        Some(Token {
            tok: Tok::Punct(';'),
            ..
        })
    ) {
        p.pos += 1;
    }
    if let Some(t) = p.peek() {
        return Err(SqlError::Syntax {
            at: t.at,
            message: "unexpected trailing input".into(),
        });
    }

    // Lower to hypergraph + catalog.
    let n = tables.len();
    let mut hypergraph = Hypergraph::new(n).map_err(|_| SqlError::TooManyRelations { n })?;
    let mut selectivities = Vec::with_capacity(joins.len());
    for &(l, r, sel, at) in &joins {
        match hypergraph.add_edge(l, r) {
            Ok(_) => selectivities.push(sel),
            Err(_) => {
                // Duplicate predicate over the same relation sets: fold
                // its selectivity into the existing edge (conjunction).
                let edge = joinopt_qgraph::Hyperedge::new(l, r);
                let id = hypergraph.edges().iter().position(|e| *e == edge).ok_or(
                    SqlError::UnusablePredicate {
                        at,
                        message: "unsupported duplicate predicate".into(),
                    },
                )?;
                selectivities[id] *= sel;
            }
        }
    }
    let graph = if hypergraph.num_complex_edges() == 0 {
        let mut g = QueryGraph::new(n).expect("size validated");
        for e in hypergraph.edges() {
            g.add_edge(
                e.u.min_index().expect("non-empty"),
                e.v.min_index().expect("non-empty"),
            )
            .expect("deduplicated");
        }
        Some(g)
    } else {
        None
    };

    let mut catalog = Catalog::with_shape(n, hypergraph.num_edges());
    for (i, t) in tables.iter().enumerate() {
        let mut rows = t.rows;
        for &(rel, sel) in &filters {
            if rel == i {
                rows *= sel;
            }
        }
        catalog
            .set_cardinality(i, rows.max(1.0))
            .map_err(|e| SqlError::BadHint {
                at: t.at,
                message: e.to_string(),
            })?;
    }
    for (id, &sel) in selectivities.iter().enumerate() {
        catalog
            .set_selectivity(id, sel.max(f64::MIN_POSITIVE))
            .map_err(|e| SqlError::BadHint {
                at: 0,
                message: e.to_string(),
            })?;
    }

    let names = tables.into_iter().map(|t| t.alias).collect();
    Ok(ParsedQuery::from_parts(hypergraph, graph, catalog, names))
}

/// Parses one side of an equality predicate: a `+ - * /` expression over
/// `alias.column` references and numeric literals. Returns the set of
/// referenced relations.
fn parse_expr_side(
    p: &mut Parser,
    alias_index: &dyn Fn(&str) -> Option<usize>,
) -> Result<RelSet, SqlError> {
    let mut rels = RelSet::EMPTY;
    let mut expect_operand = true;
    loop {
        if expect_operand {
            let at = p.at();
            match p.next() {
                Some(Token {
                    tok: Tok::Ident(alias),
                    at,
                }) => {
                    // Must be alias.column.
                    match p.next() {
                        Some(Token {
                            tok: Tok::Punct('.'),
                            ..
                        }) => {}
                        _ => {
                            return Err(SqlError::Syntax {
                                at,
                                message: format!(
                                    "expected `.column` after `{alias}` (bare identifiers \
                                     are not valid operands)"
                                ),
                            })
                        }
                    }
                    match p.next() {
                        Some(Token {
                            tok: Tok::Ident(_), ..
                        }) => {}
                        _ => {
                            return Err(SqlError::Syntax {
                                at,
                                message: "expected a column name after `.`".into(),
                            })
                        }
                    }
                    let Some(i) = alias_index(&alias) else {
                        return Err(SqlError::UnknownAlias { at, alias });
                    };
                    rels.insert(i);
                }
                Some(Token {
                    tok: Tok::Number(_),
                    ..
                }) => {}
                Some(Token {
                    tok: Tok::Punct('('),
                    ..
                }) => {
                    // Parenthesized sub-expression.
                    rels |= parse_expr_side(p, alias_index)?;
                    match p.next() {
                        Some(Token {
                            tok: Tok::Punct(')'),
                            ..
                        }) => {}
                        _ => {
                            return Err(SqlError::Syntax {
                                at,
                                message: "expected `)`".into(),
                            })
                        }
                    }
                }
                _ => {
                    return Err(SqlError::Syntax {
                        at,
                        message: "expected an operand (alias.column or literal)".into(),
                    })
                }
            }
            expect_operand = false;
        } else {
            match p.peek() {
                Some(Token {
                    tok: Tok::Punct(op),
                    ..
                }) if "+-*/".contains(*op) => {
                    p.pos += 1;
                    expect_operand = true;
                }
                _ => return Ok(rels),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TPCH_ISH: &str = "
        SELECT *
        FROM customer /*+ rows=150000 */ c,
             orders   /*+ rows=1500000 */ o,
             lineitem /*+ rows=6000000 */ l
        WHERE c.ck = o.ck /*+ sel=6.7e-6 */
          AND o.ok = l.ok /*+ sel=6.7e-7 */
    ";

    #[test]
    fn parses_simple_join_query() {
        let q = parse_sql(TPCH_ISH).unwrap();
        assert!(q.is_simple());
        assert_eq!(q.names(), &["c", "o", "l"]);
        assert_eq!(q.catalog.cardinality(0), 150_000.0);
        assert!((q.catalog.selectivity(1) - 6.7e-7).abs() < 1e-18);
        let g = q.graph().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.edge_between(0, 1).is_some());
        assert!(g.edge_between(1, 2).is_some());
    }

    #[test]
    fn optimizes_end_to_end() {
        use joinopt_core::{DpCcp, JoinOrderer};
        use joinopt_cost::Cout;
        let q = parse_sql(TPCH_ISH).unwrap();
        let r = DpCcp
            .optimize(q.graph().unwrap(), &q.catalog, &Cout)
            .unwrap();
        assert_eq!(r.tree.num_relations(), 3);
        assert!(q.render_tree(&r.tree).contains('⋈'));
    }

    #[test]
    fn table_without_alias_uses_its_name() {
        let q = parse_sql("SELECT * FROM nation, region WHERE nation.rk = region.rk").unwrap();
        assert_eq!(q.names(), &["nation", "region"]);
        assert_eq!(q.catalog.cardinality(0), DEFAULT_ROWS);
        assert_eq!(q.catalog.selectivity(0), DEFAULT_SEL);
    }

    #[test]
    fn complex_predicate_becomes_hyperedge() {
        let q =
            parse_sql("SELECT * FROM a, b, c WHERE a.x = b.x AND a.u + b.v = c.w /*+ sel=0.05 */")
                .unwrap();
        assert!(!q.is_simple());
        assert_eq!(q.hypergraph.num_complex_edges(), 1);
        assert_eq!(q.catalog.selectivity(1), 0.05);
    }

    #[test]
    fn filters_scale_cardinality() {
        let q = parse_sql(
            "SELECT * FROM a /*+ rows=1000 */, b WHERE a.x = b.x AND a.age = 42 /*+ sel=0.2 */",
        )
        .unwrap();
        assert_eq!(q.catalog.cardinality(0), 200.0);
        assert_eq!(q.catalog.cardinality(1), DEFAULT_ROWS);
        // Filter with an expression on both sides but one relation.
        let q2 = parse_sql("SELECT * FROM a WHERE a.x = a.y + 1 /*+ sel=0.5 */").unwrap();
        assert_eq!(q2.catalog.cardinality(0), 500.0);
    }

    #[test]
    fn duplicate_predicates_fold_selectivities() {
        let q = parse_sql(
            "SELECT * FROM a, b WHERE a.x = b.x /*+ sel=0.1 */ AND a.y = b.y /*+ sel=0.5 */",
        )
        .unwrap();
        assert_eq!(q.hypergraph.num_edges(), 1);
        assert!((q.catalog.selectivity(0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn comments_and_semicolon_ok() {
        let q =
            parse_sql("-- leading comment\nSELECT * FROM t /* block */ WHERE t.a = 1; ").unwrap();
        assert_eq!(q.names(), &["t"]);
    }

    #[test]
    fn parenthesized_expressions() {
        let q = parse_sql("SELECT * FROM a, b, c WHERE (a.x + b.y) * 2 = c.z").unwrap();
        assert_eq!(q.hypergraph.num_complex_edges(), 1);
    }

    #[test]
    fn error_unknown_alias() {
        let e = parse_sql("SELECT * FROM a WHERE ghost.x = a.y").unwrap_err();
        assert!(matches!(e, SqlError::UnknownAlias { alias, .. } if alias == "ghost"));
    }

    #[test]
    fn error_duplicate_alias() {
        let e = parse_sql("SELECT * FROM a t, b t").unwrap_err();
        assert!(matches!(e, SqlError::DuplicateAlias { .. }));
    }

    #[test]
    fn error_non_equality_predicate() {
        let e = parse_sql("SELECT * FROM a, b WHERE a.x < b.y").unwrap_err();
        assert!(matches!(e, SqlError::Syntax { .. }), "{e:?}");
    }

    #[test]
    fn error_overlapping_sides() {
        let e = parse_sql("SELECT * FROM a, b WHERE a.x + b.y = b.z").unwrap_err();
        assert!(matches!(e, SqlError::UnusablePredicate { .. }));
    }

    #[test]
    fn error_constant_predicate() {
        let e = parse_sql("SELECT * FROM a WHERE 1 = 2").unwrap_err();
        assert!(matches!(e, SqlError::UnusablePredicate { .. }));
    }

    #[test]
    fn error_projection_list() {
        let e = parse_sql("SELECT a.x FROM a").unwrap_err();
        assert!(matches!(e, SqlError::Syntax { .. }));
    }

    #[test]
    fn error_bad_hints() {
        assert!(matches!(
            parse_sql("SELECT * FROM a /*+ rows=0 */").unwrap_err(),
            SqlError::BadHint { .. }
        ));
        assert!(matches!(
            parse_sql("SELECT * FROM a, b WHERE a.x = b.y /*+ sel=2 */").unwrap_err(),
            SqlError::BadHint { .. }
        ));
        assert!(matches!(
            parse_sql("SELECT * FROM a /*+ rows */").unwrap_err(),
            SqlError::BadHint { .. }
        ));
        assert!(matches!(
            parse_sql("SELECT * FROM a /*+ pages=3 */").unwrap_err(),
            SqlError::BadHint { .. }
        ));
    }

    #[test]
    fn error_lexical() {
        assert!(matches!(
            parse_sql("SELECT * FROM a /* unterminated").unwrap_err(),
            SqlError::Lex { .. }
        ));
        assert!(matches!(
            parse_sql("SELECT * FROM a WHERE a.x = 1 ~ 2").unwrap_err(),
            SqlError::Lex { .. } | SqlError::Syntax { .. }
        ));
    }

    #[test]
    fn error_trailing_input() {
        let e = parse_sql("SELECT * FROM a; SELECT * FROM b").unwrap_err();
        assert!(matches!(e, SqlError::Syntax { .. }));
    }

    #[test]
    fn byte_offsets_are_meaningful() {
        let src = "SELECT * FROM a WHERE ghost.x = a.y";
        let e = parse_sql(src).unwrap_err();
        let SqlError::UnknownAlias { at, .. } = e else {
            panic!("wrong error kind");
        };
        assert_eq!(&src[at..at + 5], "ghost");
    }
}
