//! Seeded byte-mangling fuzz tests: both frontends must reject garbage
//! with a typed error, never a panic.
//!
//! Deterministic by construction (fixed seeds, no wall clock): every
//! run exercises the same inputs, so a failure here reproduces locally
//! with nothing but the printed case number.

use std::panic::{catch_unwind, AssertUnwindSafe};

use joinopt_query::{parse, parse_sql};
use joinopt_relset::XorShift64;

const MANGLE_CASES: usize = 400;
const SOUP_CASES: usize = 200;

const QUERY_CORPUS: &[&str] = &[
    "relation r0 1000\nrelation r1 500\njoin r0 r1 0.1\n",
    "relation a 10\nrelation b 20\nrelation c 30\njoin a b 0.5\njoin b c 0.25\njoin a,b c 0.01\n",
    "# comment\nrelation x 1\n",
    "",
];

const SQL_CORPUS: &[&str] = &[
    "SELECT * FROM customer /*+ rows=150000 */ c, orders /*+ rows=1500000 */ o \
     WHERE c.ck = o.ck /*+ sel=6.7e-6 */",
    "SELECT * FROM a, b, c WHERE a.x = b.y AND b.z = c.w AND a.k + b.k = c.k",
    "SELECT * FROM t /*+ rows=5 */ WHERE t.flag = 1 /*+ sel=0.25 */ -- filter only",
    "select*from a,b where a.x=b.x",
];

/// Flips, inserts, deletes or splices bytes of `src`, `edits` times.
/// The result is arbitrary bytes; lossy-decoded to stay a `&str` input.
fn mangle(src: &str, rng: &mut XorShift64, edits: usize) -> String {
    let mut bytes = src.as_bytes().to_vec();
    for _ in 0..edits {
        match rng.gen_range(0..4) {
            0 if !bytes.is_empty() => {
                // Flip a byte to anything, including non-ASCII and NUL.
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = (rng.next_u64() & 0xff) as u8;
            }
            1 => {
                let i = rng.gen_range(0..bytes.len() + 1);
                bytes.insert(i, (rng.next_u64() & 0xff) as u8);
            }
            2 if !bytes.is_empty() => {
                bytes.remove(rng.gen_range(0..bytes.len()));
            }
            _ if bytes.len() >= 2 => {
                // Splice: duplicate a random slice somewhere else.
                let a = rng.gen_range(0..bytes.len());
                let b = rng.gen_range(0..bytes.len());
                let (lo, hi) = (a.min(b), a.max(b));
                let slice: Vec<u8> = bytes[lo..hi].to_vec();
                let at = rng.gen_range(0..bytes.len() + 1);
                bytes.splice(at..at, slice);
            }
            _ => {}
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn assert_no_panic(what: &str, case: usize, input: &str, f: impl FnOnce() -> bool) {
    let ok = catch_unwind(AssertUnwindSafe(f));
    assert!(
        ok.is_ok(),
        "{what} panicked on case {case}; input:\n{input:?}"
    );
}

#[test]
fn query_parser_never_panics_on_mangled_input() {
    let mut rng = XorShift64::seed_from_u64(0x5eed_0001);
    for case in 0..MANGLE_CASES {
        let base = QUERY_CORPUS[case % QUERY_CORPUS.len()];
        let edits = 1 + case % 17;
        let input = mangle(base, &mut rng, edits);
        assert_no_panic("parse", case, &input, || parse(&input).is_ok());
    }
}

#[test]
fn sql_parser_never_panics_on_mangled_input() {
    let mut rng = XorShift64::seed_from_u64(0x5eed_0002);
    for case in 0..MANGLE_CASES {
        let base = SQL_CORPUS[case % SQL_CORPUS.len()];
        let edits = 1 + case % 17;
        let input = mangle(base, &mut rng, edits);
        assert_no_panic("parse_sql", case, &input, || parse_sql(&input).is_ok());
    }
}

#[test]
fn both_parsers_survive_random_byte_soup() {
    let mut rng = XorShift64::seed_from_u64(0x5eed_0003);
    for case in 0..SOUP_CASES {
        let len = rng.gen_range(0..256);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        let input = String::from_utf8_lossy(&bytes).into_owned();
        assert_no_panic("parse", case, &input, || parse(&input).is_ok());
        assert_no_panic("parse_sql", case, &input, || parse_sql(&input).is_ok());
    }
}

#[test]
fn mangled_inputs_that_still_parse_yield_coherent_queries() {
    // Survivors of light mangling must uphold the ParsedQuery
    // invariants, not just avoid a panic.
    let mut rng = XorShift64::seed_from_u64(0x5eed_0004);
    let mut survivors = 0usize;
    for case in 0..MANGLE_CASES {
        let base = QUERY_CORPUS[case % QUERY_CORPUS.len()];
        let input = mangle(base, &mut rng, 1);
        if let Ok(q) = parse(&input) {
            survivors += 1;
            assert_eq!(q.names().len(), q.hypergraph.num_relations());
            if let Some(g) = q.graph() {
                assert_eq!(g.num_relations(), q.names().len());
            }
        }
    }
    assert!(
        survivors > 0,
        "single-edit mangling should not kill every input"
    );
}
