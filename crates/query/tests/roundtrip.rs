//! Property tests: write ∘ parse is the identity on query structure, and
//! parsed random workloads optimize identically to their in-memory
//! originals.

use joinopt_core::{DpCcp, JoinOrderer};
use joinopt_cost::{workload, Cout};
use joinopt_query::{parse, write};
use proptest::prelude::*;

/// Builds source text for a random connected workload, naming relations
/// `r0…r{n-1}`.
fn workload_to_source(w: &workload::Workload) -> String {
    use core::fmt::Write as _;
    let mut src = String::new();
    for i in 0..w.graph.num_relations() {
        let _ = writeln!(src, "relation r{i} {}", w.catalog.cardinality(i));
    }
    for (edge_id, e) in w.graph.edges().iter().enumerate() {
        let _ = writeln!(src, "join r{} r{} {}", e.u, e.v, w.catalog.selectivity(edge_id));
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_write_parse_is_stable(n in 2usize..=10, density in 0u8..=10, seed in any::<u64>()) {
        let w = workload::random_workload(n, f64::from(density) / 10.0, seed);
        let q1 = parse(&workload_to_source(&w)).unwrap();
        let q2 = parse(&write(&q1)).unwrap();
        prop_assert_eq!(q1.names(), q2.names());
        prop_assert_eq!(&q1.hypergraph, &q2.hypergraph);
        prop_assert_eq!(q1.graph(), q2.graph());
        prop_assert_eq!(&q1.catalog, &q2.catalog);
    }

    #[test]
    fn parsed_query_optimizes_identically(n in 2usize..=9, seed in any::<u64>()) {
        let w = workload::random_workload(n, 0.3, seed);
        let q = parse(&workload_to_source(&w)).unwrap();
        let direct = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        let parsed = DpCcp.optimize(q.graph().unwrap(), &q.catalog, &Cout).unwrap();
        let tol = 1e-9 * direct.cost.abs().max(1.0);
        prop_assert!((direct.cost - parsed.cost).abs() <= tol);
        prop_assert_eq!(direct.counters, parsed.counters);
    }

    #[test]
    fn weird_whitespace_is_tolerated(extra_spaces in 0usize..5) {
        let pad = " ".repeat(extra_spaces);
        let src = format!(
            "relation{pad} a {pad}10\r\nrelation b 20\n{pad}join a{pad} b 0.5{pad}# tail\n"
        );
        let q = parse(&src).unwrap();
        prop_assert_eq!(q.names().len(), 2);
        prop_assert_eq!(q.catalog.selectivity(0), 0.5);
    }
}
