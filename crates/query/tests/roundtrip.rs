//! Randomized tests: write ∘ parse is the identity on query structure,
//! and parsed random workloads optimize identically to their in-memory
//! originals (seeded, deterministic).

use joinopt_core::{DpCcp, JoinOrderer};
use joinopt_cost::{workload, Cout};
use joinopt_query::{parse, write};
use joinopt_relset::XorShift64;

const CASES: usize = 64;

/// Builds source text for a random connected workload, naming relations
/// `r0…r{n-1}`.
fn workload_to_source(w: &workload::Workload) -> String {
    use core::fmt::Write as _;
    let mut src = String::new();
    for i in 0..w.graph.num_relations() {
        let _ = writeln!(src, "relation r{i} {}", w.catalog.cardinality(i));
    }
    for (edge_id, e) in w.graph.edges().iter().enumerate() {
        let _ = writeln!(
            src,
            "join r{} r{} {}",
            e.u,
            e.v,
            w.catalog.selectivity(edge_id)
        );
    }
    src
}

#[test]
fn parse_write_parse_is_stable() {
    let mut rng = XorShift64::seed_from_u64(501);
    for _ in 0..CASES {
        let n = rng.gen_range(2..11);
        let density = rng.gen_range(0..11) as f64 / 10.0;
        let w = workload::random_workload(n, density, rng.next_u64());
        let q1 = parse(&workload_to_source(&w)).unwrap();
        let q2 = parse(&write(&q1)).unwrap();
        assert_eq!(q1.names(), q2.names());
        assert_eq!(&q1.hypergraph, &q2.hypergraph);
        assert_eq!(q1.graph(), q2.graph());
        assert_eq!(&q1.catalog, &q2.catalog);
    }
}

#[test]
fn parsed_query_optimizes_identically() {
    let mut rng = XorShift64::seed_from_u64(502);
    for _ in 0..CASES {
        let n = rng.gen_range(2..10);
        let w = workload::random_workload(n, 0.3, rng.next_u64());
        let q = parse(&workload_to_source(&w)).unwrap();
        let direct = DpCcp.optimize(&w.graph, &w.catalog, &Cout).unwrap();
        let parsed = DpCcp
            .optimize(q.graph().unwrap(), &q.catalog, &Cout)
            .unwrap();
        let tol = 1e-9 * direct.cost.abs().max(1.0);
        assert!((direct.cost - parsed.cost).abs() <= tol);
        assert_eq!(direct.counters, parsed.counters);
    }
}

#[test]
fn weird_whitespace_is_tolerated() {
    for extra_spaces in 0..5 {
        let pad = " ".repeat(extra_spaces);
        let src = format!(
            "relation{pad} a {pad}10\r\nrelation b 20\n{pad}join a{pad} b 0.5{pad}# tail\n"
        );
        let q = parse(&src).unwrap();
        assert_eq!(q.names().len(), 2);
        assert_eq!(q.catalog.selectivity(0), 0.5);
    }
}

#[test]
fn exotic_names_round_trip_or_are_rejected_up_front() {
    // Names are free-form tokens: anything without whitespace or `#`
    // survives tokenization, and everything except `,` round-trips.
    let src = "relation α.β-γ_δ 10\nrelation x;y|z! 20\njoin α.β-γ_δ x;y|z! 0.5\n";
    let q1 = parse(src).unwrap();
    let q2 = parse(&write(&q1)).unwrap();
    assert_eq!(q1.names(), q2.names());
    assert_eq!(&q1.hypergraph, &q2.hypergraph);
    assert_eq!(&q1.catalog, &q2.catalog);
    // A `,` in a name would make the printed join line ambiguous; the
    // parser rejects it at declaration instead of accepting a query
    // that cannot be re-parsed from its own serialization.
    assert!(matches!(
        parse("relation a,b 10\n"),
        Err(joinopt_query::ParseError::InvalidName { line: 1, .. })
    ));
}

#[test]
fn hyperedge_queries_round_trip() {
    // Random mixes of binary and complex predicates: the comma-list
    // syntax must survive write ∘ parse unchanged.
    let mut rng = XorShift64::seed_from_u64(503);
    for _ in 0..32 {
        let n = rng.gen_range(3..9);
        let mut src = String::new();
        use core::fmt::Write as _;
        for i in 0..n {
            let _ = writeln!(src, "relation r{i} {}", rng.gen_range(1..1000));
        }
        let _ = writeln!(src, "join r0 r1 0.5");
        for i in 2..n {
            if rng.gen_bool(0.5) {
                let _ = writeln!(src, "join r{},r{} r{} 0.25", i - 2, i - 1, i);
            } else {
                let _ = writeln!(src, "join r{} r{} 0.125", i - 1, i);
            }
        }
        let q1 = parse(&src).unwrap();
        let q2 = parse(&write(&q1)).unwrap();
        assert_eq!(q1.names(), q2.names());
        assert_eq!(&q1.hypergraph, &q2.hypergraph);
        assert_eq!(q1.graph(), q2.graph());
        assert_eq!(&q1.catalog, &q2.catalog);
    }
}
