//! The statistics [`Catalog`]: base cardinalities and join selectivities.

use joinopt_qgraph::{EdgeId, QueryGraph};
use joinopt_relset::RelIdx;

use crate::error::CostError;

/// Base-table cardinalities and per-join-predicate selectivities for a
/// query graph.
///
/// A catalog is created *for* a specific graph shape and indexes
/// selectivities by the graph's [`EdgeId`]s. Defaults are a cardinality
/// of 1 000 rows per relation and a selectivity of 0.1 per predicate, so
/// a freshly created catalog is immediately usable.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    cardinalities: Vec<f64>,
    selectivities: Vec<f64>,
}

/// Default base-table cardinality.
pub const DEFAULT_CARDINALITY: f64 = 1_000.0;
/// Default join-predicate selectivity.
pub const DEFAULT_SELECTIVITY: f64 = 0.1;

impl Catalog {
    /// Creates a catalog matching `g`'s shape, with default statistics.
    pub fn new(g: &QueryGraph) -> Catalog {
        Catalog::with_shape(g.num_relations(), g.num_edges())
    }

    /// Creates a catalog for an explicit shape (`n` relations, `m` join
    /// predicates) — used for hypergraph workloads, whose edges are not
    /// [`QueryGraph`] edges.
    pub fn with_shape(n: usize, m: usize) -> Catalog {
        Catalog {
            cardinalities: vec![DEFAULT_CARDINALITY; n],
            selectivities: vec![DEFAULT_SELECTIVITY; m],
        }
    }

    /// Number of relations covered.
    pub fn num_relations(&self) -> usize {
        self.cardinalities.len()
    }

    /// Number of join predicates covered.
    pub fn num_edges(&self) -> usize {
        self.selectivities.len()
    }

    /// Sets the base cardinality of relation `i`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range relations and non-finite or `< 1` values.
    pub fn set_cardinality(&mut self, i: RelIdx, value: f64) -> Result<(), CostError> {
        if i >= self.cardinalities.len() {
            return Err(CostError::RelationOutOfRange {
                relation: i,
                n: self.cardinalities.len(),
            });
        }
        if !value.is_finite() || value < 1.0 {
            return Err(CostError::InvalidCardinality { relation: i, value });
        }
        self.cardinalities[i] = value;
        Ok(())
    }

    /// Sets the selectivity of join predicate `e`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range edges and values outside `(0, 1]`.
    pub fn set_selectivity(&mut self, e: EdgeId, value: f64) -> Result<(), CostError> {
        if e >= self.selectivities.len() {
            return Err(CostError::EdgeOutOfRange {
                edge: e,
                m: self.selectivities.len(),
            });
        }
        if !value.is_finite() || value <= 0.0 || value > 1.0 {
            return Err(CostError::InvalidSelectivity { edge: e, value });
        }
        self.selectivities[e] = value;
        Ok(())
    }

    /// The base cardinality of relation `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cardinality(&self, i: RelIdx) -> f64 {
        self.cardinalities[i]
    }

    /// The selectivity of join predicate `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn selectivity(&self, e: EdgeId) -> f64 {
        self.selectivities[e]
    }

    /// All cardinalities, indexable by relation.
    pub fn cardinalities(&self) -> &[f64] {
        &self.cardinalities
    }

    /// All selectivities, indexable by edge id.
    pub fn selectivities(&self) -> &[f64] {
        &self.selectivities
    }

    /// Validates that this catalog matches `g`'s shape.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::ShapeMismatch`] otherwise.
    pub fn check_shape(&self, g: &QueryGraph) -> Result<(), CostError> {
        let catalog = (self.num_relations(), self.num_edges());
        let graph = (g.num_relations(), g.num_edges());
        if catalog == graph {
            Ok(())
        } else {
            Err(CostError::ShapeMismatch { catalog, graph })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_qgraph::generators;

    #[test]
    fn defaults_are_usable() {
        let g = generators::chain(4).unwrap();
        let cat = Catalog::new(&g);
        assert_eq!(cat.num_relations(), 4);
        assert_eq!(cat.num_edges(), 3);
        assert_eq!(cat.cardinality(2), DEFAULT_CARDINALITY);
        assert_eq!(cat.selectivity(0), DEFAULT_SELECTIVITY);
        assert!(cat.check_shape(&g).is_ok());
    }

    #[test]
    fn set_and_get() {
        let g = generators::chain(3).unwrap();
        let mut cat = Catalog::new(&g);
        cat.set_cardinality(1, 42.0).unwrap();
        cat.set_selectivity(0, 0.25).unwrap();
        assert_eq!(cat.cardinality(1), 42.0);
        assert_eq!(cat.selectivity(0), 0.25);
        assert_eq!(cat.cardinalities()[1], 42.0);
        assert_eq!(cat.selectivities()[0], 0.25);
    }

    #[test]
    fn rejects_bad_cardinalities() {
        let g = generators::chain(2).unwrap();
        let mut cat = Catalog::new(&g);
        assert!(matches!(
            cat.set_cardinality(5, 10.0),
            Err(CostError::RelationOutOfRange { relation: 5, n: 2 })
        ));
        for bad in [0.5, 0.0, -3.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    cat.set_cardinality(0, bad),
                    Err(CostError::InvalidCardinality { .. })
                ),
                "accepted {bad}"
            );
        }
        assert!(cat.set_cardinality(0, 1.0).is_ok());
    }

    #[test]
    fn rejects_bad_selectivities() {
        let g = generators::chain(2).unwrap();
        let mut cat = Catalog::new(&g);
        assert!(matches!(
            cat.set_selectivity(3, 0.5),
            Err(CostError::EdgeOutOfRange { edge: 3, m: 1 })
        ));
        for bad in [0.0, -0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    cat.set_selectivity(0, bad),
                    Err(CostError::InvalidSelectivity { .. })
                ),
                "accepted {bad}"
            );
        }
        assert!(cat.set_selectivity(0, 1.0).is_ok()); // cross-product-like predicate allowed
    }

    #[test]
    fn shape_mismatch_detected() {
        let g3 = generators::chain(3).unwrap();
        let g4 = generators::chain(4).unwrap();
        let cat = Catalog::new(&g3);
        assert!(matches!(
            cat.check_shape(&g4),
            Err(CostError::ShapeMismatch { .. })
        ));
    }
}
