//! Cost models for join operators.
//!
//! The enumeration algorithms are cost-model agnostic: anything
//! implementing [`CostModel`] can drive them. [`Cout`] — the sum of
//! intermediate result sizes — is the standard model of the join-ordering
//! literature and the default throughout this workspace; the physical
//! models ([`NestedLoopJoin`], [`HashJoin`], [`SortMergeJoin`],
//! [`MinOverPhysical`]) exist so plan-quality experiments can show that
//! optimality transfers across models and that commutativity matters
//! (hash join is asymmetric in build/probe roles).

/// Cardinality and accumulated cost of a (sub-)plan — the inputs a cost
/// model sees for each side of a join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanStats {
    /// Estimated output cardinality of the sub-plan.
    pub cardinality: f64,
    /// Accumulated cost of producing the sub-plan.
    pub cost: f64,
}

impl PlanStats {
    /// Stats of a base-table scan: its cardinality, at zero cost (the
    /// convention of the C_out model, where scans are free).
    pub fn base(cardinality: f64) -> PlanStats {
        PlanStats {
            cardinality,
            cost: 0.0,
        }
    }
}

/// A cost model assigns a total cost to joining two sub-plans.
///
/// Implementations receive the output cardinality pre-computed by the
/// cardinality estimator, and must include the children's accumulated
/// costs in the figure they return (costs are totals, not increments).
pub trait CostModel: Send + Sync {
    /// Total cost of the join `left ⋈ right` with output size `out_card`.
    fn join_cost(&self, left: &PlanStats, right: &PlanStats, out_card: f64) -> f64;

    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;

    /// Whether `join_cost` is symmetric in its arguments. Symmetric
    /// models let enumerators skip the commutative partner probe.
    fn is_symmetric(&self) -> bool {
        false
    }

    /// Whether the model is `C_out`-shaped: the cost of a join is the
    /// output cardinality plus the children's costs, and therefore a
    /// function of the relation *set* alone. This is the structural
    /// property that lets the join-ordering DP collapse to subset
    /// convolution over the ranked lattice (DPconv): the per-set term
    /// `|S|` can be added once per set instead of once per split.
    /// Models whose cost depends on the operand decomposition (input
    /// cardinalities, build/probe roles, sort costs) must leave this
    /// `false`; enumerators that rely on it refuse such models with a
    /// typed error rather than silently optimizing the wrong function.
    fn is_cout_shaped(&self) -> bool {
        false
    }
}

/// Boxed models are models: lets call sites that select a model at
/// runtime (`Box<dyn CostModel>`) hand it to APIs taking
/// `impl CostModel` without an adapter.
impl<M: CostModel + ?Sized> CostModel for Box<M> {
    #[inline]
    fn join_cost(&self, left: &PlanStats, right: &PlanStats, out_card: f64) -> f64 {
        (**self).join_cost(left, right, out_card)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn is_symmetric(&self) -> bool {
        (**self).is_symmetric()
    }

    fn is_cout_shaped(&self) -> bool {
        (**self).is_cout_shaped()
    }
}

/// `C_out`: the sum of the sizes of all intermediate results.
///
/// `cost(p1 ⋈ p2) = |p1 ⋈ p2| + cost(p1) + cost(p2)`, base tables free.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cout;

impl CostModel for Cout {
    #[inline]
    fn join_cost(&self, left: &PlanStats, right: &PlanStats, out_card: f64) -> f64 {
        out_card + left.cost + right.cost
    }

    fn name(&self) -> &'static str {
        "Cout"
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn is_cout_shaped(&self) -> bool {
        true
    }
}

/// Tuple-at-a-time nested-loop join: `|L| · |R|` probe work.
#[derive(Debug, Clone, Copy, Default)]
pub struct NestedLoopJoin;

impl CostModel for NestedLoopJoin {
    #[inline]
    fn join_cost(&self, left: &PlanStats, right: &PlanStats, _out_card: f64) -> f64 {
        left.cardinality * right.cardinality + left.cost + right.cost
    }

    fn name(&self) -> &'static str {
        "NestedLoopJoin"
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

/// Hash join: build on the left input, probe with the right.
///
/// `1.2·|L| + |R|` plus output materialization. Deliberately asymmetric:
/// the enumerators must consider both operand orders (the paper's DPccp
/// explicitly joins both `(p1, p2)` and `(p2, p1)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct HashJoin;

impl CostModel for HashJoin {
    #[inline]
    fn join_cost(&self, left: &PlanStats, right: &PlanStats, out_card: f64) -> f64 {
        1.2 * left.cardinality + right.cardinality + out_card + left.cost + right.cost
    }

    fn name(&self) -> &'static str {
        "HashJoin"
    }
}

/// Sort-merge join: both inputs sorted (`x·log₂x` each), then merged.
#[derive(Debug, Clone, Copy, Default)]
pub struct SortMergeJoin;

#[inline]
fn nlogn(x: f64) -> f64 {
    if x <= 1.0 {
        x
    } else {
        x * x.log2()
    }
}

impl CostModel for SortMergeJoin {
    #[inline]
    fn join_cost(&self, left: &PlanStats, right: &PlanStats, out_card: f64) -> f64 {
        nlogn(left.cardinality) + nlogn(right.cardinality) + out_card + left.cost + right.cost
    }

    fn name(&self) -> &'static str {
        "SortMergeJoin"
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

/// Physical-operator choice: the cheapest of nested-loop, hash and
/// sort-merge for each join.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinOverPhysical;

impl CostModel for MinOverPhysical {
    #[inline]
    fn join_cost(&self, left: &PlanStats, right: &PlanStats, out_card: f64) -> f64 {
        let nl = NestedLoopJoin.join_cost(left, right, out_card);
        let hj = HashJoin.join_cost(left, right, out_card);
        let sm = SortMergeJoin.join_cost(left, right, out_card);
        nl.min(hj).min(sm)
    }

    fn name(&self) -> &'static str {
        "MinOverPhysical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(card: f64, cost: f64) -> PlanStats {
        PlanStats {
            cardinality: card,
            cost,
        }
    }

    #[test]
    fn base_stats_are_free() {
        let b = PlanStats::base(500.0);
        assert_eq!(b.cardinality, 500.0);
        assert_eq!(b.cost, 0.0);
    }

    #[test]
    fn cout_sums_intermediates() {
        let c = Cout.join_cost(&stats(10.0, 100.0), &stats(20.0, 200.0), 50.0);
        assert_eq!(c, 350.0);
        assert!(Cout.is_symmetric());
        assert_eq!(Cout.name(), "Cout");
    }

    #[test]
    fn only_cout_is_cout_shaped() {
        assert!(Cout.is_cout_shaped());
        let physical: [&dyn CostModel; 4] =
            [&NestedLoopJoin, &HashJoin, &SortMergeJoin, &MinOverPhysical];
        for m in physical {
            assert!(
                !m.is_cout_shaped(),
                "{} depends on operand cardinalities, not the set alone",
                m.name()
            );
        }
        // The boxed forwarder preserves the flag.
        let boxed: Box<dyn CostModel> = Box::new(Cout);
        assert!(boxed.is_cout_shaped());
        let boxed_hash: Box<dyn CostModel> = Box::new(HashJoin);
        assert!(!boxed_hash.is_cout_shaped());
    }

    #[test]
    fn nested_loop_is_product() {
        let c = NestedLoopJoin.join_cost(&stats(10.0, 5.0), &stats(20.0, 7.0), 999.0);
        assert_eq!(c, 212.0);
    }

    #[test]
    fn hash_join_is_asymmetric() {
        let l = stats(1000.0, 0.0);
        let r = stats(10.0, 0.0);
        let lr = HashJoin.join_cost(&l, &r, 100.0);
        let rl = HashJoin.join_cost(&r, &l, 100.0);
        assert!(lr != rl, "hash join must distinguish build and probe sides");
        assert!(rl < lr, "building on the small side must be cheaper");
        assert!(!HashJoin.is_symmetric());
    }

    #[test]
    fn sort_merge_handles_tiny_inputs() {
        // No negative/NaN costs for cardinalities ≤ 1.
        let c = SortMergeJoin.join_cost(&stats(1.0, 0.0), &stats(0.5, 0.0), 1.0);
        assert!(c.is_finite() && c > 0.0);
    }

    #[test]
    fn min_over_physical_lower_bounds_components() {
        let l = stats(300.0, 40.0);
        let r = stats(700.0, 60.0);
        let out = 420.0;
        let min = MinOverPhysical.join_cost(&l, &r, out);
        assert!(min <= NestedLoopJoin.join_cost(&l, &r, out));
        assert!(min <= HashJoin.join_cost(&l, &r, out));
        assert!(min <= SortMergeJoin.join_cost(&l, &r, out));
    }

    #[test]
    fn costs_are_monotone_in_child_cost() {
        // Bellman's optimality principle requires that a cheaper sub-plan
        // never makes the total more expensive.
        let cheap = stats(100.0, 10.0);
        let dear = stats(100.0, 99.0);
        let other = stats(50.0, 0.0);
        let models: [&dyn CostModel; 4] = [&Cout, &NestedLoopJoin, &HashJoin, &SortMergeJoin];
        for m in models {
            assert!(
                m.join_cost(&cheap, &other, 25.0) < m.join_cost(&dear, &other, 25.0),
                "{} is not monotone",
                m.name()
            );
        }
    }
}
