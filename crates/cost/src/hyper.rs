//! Cardinality estimation over hypergraphs (complex join predicates).
//!
//! A complex predicate `(u, w)` — e.g. `R1.a + R2.b = R3.c` as
//! `({R1,R2}, {R3})` — can only be evaluated once **all** relations it
//! references are joined. Under the independence assumption its
//! selectivity therefore applies at the first join whose result covers
//! `u ∪ w`, which makes the estimate a pure set function:
//!
//! ```text
//! |S| = ∏_{R ∈ S} |R| · ∏ { f_e : e.as_set() ⊆ S }
//! ```
//!
//! exactly as in the simple-graph case (where `e.as_set()` has two
//! elements). The incremental form used in the DP hot path multiplies
//! the selectivities of the predicates that become covered by the union
//! but were covered by neither operand.

use joinopt_qgraph::hypergraph::Hypergraph;
use joinopt_relset::{RelIdx, RelSet};

use crate::catalog::Catalog;
use crate::error::CostError;

/// Independence-assumption estimator for hypergraph workloads.
#[derive(Debug, Clone)]
pub struct HyperCardinalityEstimator {
    cards: Vec<f64>,
    /// Per edge: (all referenced relations, selectivity).
    edges: Vec<(RelSet, f64)>,
}

impl HyperCardinalityEstimator {
    /// Builds an estimator for `h` with statistics from `cat`.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::ShapeMismatch`] if `cat`'s shape does not
    /// match `h` (one cardinality per relation, one selectivity per
    /// hyperedge).
    pub fn new(h: &Hypergraph, cat: &Catalog) -> Result<HyperCardinalityEstimator, CostError> {
        let catalog = (cat.num_relations(), cat.num_edges());
        let graph = (h.num_relations(), h.num_edges());
        if catalog != graph {
            return Err(CostError::ShapeMismatch { catalog, graph });
        }
        let edges = h
            .edges()
            .iter()
            .enumerate()
            .map(|(id, e)| (e.as_set(), cat.selectivity(id)))
            .collect();
        Ok(HyperCardinalityEstimator {
            cards: cat.cardinalities().to_vec(),
            edges,
        })
    }

    /// Number of relations covered.
    pub fn num_relations(&self) -> usize {
        self.cards.len()
    }

    /// Base cardinality of a single relation.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn base_cardinality(&self, i: RelIdx) -> f64 {
        self.cards[i]
    }

    /// Estimated cardinality of the join of two disjoint sets with known
    /// cardinalities: applies the selectivity of every predicate newly
    /// covered by the union.
    #[inline]
    pub fn join_cardinality(&self, card1: f64, card2: f64, s1: RelSet, s2: RelSet) -> f64 {
        let union = s1 | s2;
        let mut card = card1 * card2;
        for &(refs, sel) in &self.edges {
            if refs.is_subset(union) && !refs.is_subset(s1) && !refs.is_subset(s2) {
                card *= sel;
            }
        }
        card
    }

    /// Estimated cardinality of an arbitrary set from scratch.
    pub fn set_cardinality(&self, s: RelSet) -> f64 {
        let mut card = 1.0;
        for v in s.iter() {
            card *= self.cards[v];
        }
        for &(refs, sel) in &self.edges {
            if refs.is_subset(s) {
                card *= sel;
            }
        }
        card
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ix: impl IntoIterator<Item = usize>) -> RelSet {
        RelSet::from_indices(ix)
    }

    fn sample() -> (Hypergraph, Catalog) {
        let mut h = Hypergraph::new(3).unwrap();
        h.add_edge(set([0]), set([1])).unwrap(); // simple
        h.add_edge(set([0, 1]), set([2])).unwrap(); // complex
        let mut cat = Catalog::with_shape(3, 2);
        cat.set_cardinality(0, 100.0).unwrap();
        cat.set_cardinality(1, 200.0).unwrap();
        cat.set_cardinality(2, 50.0).unwrap();
        cat.set_selectivity(0, 0.01).unwrap();
        cat.set_selectivity(1, 0.1).unwrap();
        (h, cat)
    }

    #[test]
    fn set_cardinalities() {
        let (h, cat) = sample();
        let est = HyperCardinalityEstimator::new(&h, &cat).unwrap();
        assert_eq!(est.base_cardinality(2), 50.0);
        // {0,1}: 100·200·0.01 = 200
        assert_eq!(est.set_cardinality(set([0, 1])), 200.0);
        // {1,2}: no fully-covered predicate → cross-product style 10000
        assert_eq!(est.set_cardinality(set([1, 2])), 10_000.0);
        // Full: 100·200·50·0.01·0.1 = 1000
        assert_eq!(est.set_cardinality(set([0, 1, 2])), 1_000.0);
    }

    #[test]
    fn join_matches_set_function() {
        let (h, cat) = sample();
        let est = HyperCardinalityEstimator::new(&h, &cat).unwrap();
        let full = set([0, 1, 2]);
        for s1 in full.non_empty_proper_subsets() {
            let s2 = full - s1;
            let via =
                est.join_cardinality(est.set_cardinality(s1), est.set_cardinality(s2), s1, s2);
            let direct = est.set_cardinality(full);
            assert!(
                (via - direct).abs() <= 1e-9 * direct,
                "split {s1}/{s2}: {via} vs {direct}"
            );
        }
    }

    #[test]
    fn complex_predicate_applies_only_when_covered() {
        let (h, cat) = sample();
        let est = HyperCardinalityEstimator::new(&h, &cat).unwrap();
        // Joining {0} with {2} covers neither predicate fully.
        let c = est.join_cardinality(100.0, 50.0, set([0]), set([2]));
        assert_eq!(c, 5_000.0);
        // Joining {0,1} with {2} covers the complex predicate.
        let c = est.join_cardinality(200.0, 50.0, set([0, 1]), set([2]));
        assert_eq!(c, 1_000.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (h, _) = sample();
        let bad = Catalog::with_shape(3, 1);
        assert!(matches!(
            HyperCardinalityEstimator::new(&h, &bad),
            Err(CostError::ShapeMismatch { .. })
        ));
    }
}
