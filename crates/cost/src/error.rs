//! Error type for catalog and estimator construction.

use core::fmt;

use joinopt_qgraph::EdgeId;
use joinopt_relset::RelIdx;

/// Errors produced by catalog validation and estimator construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostError {
    /// A relation index does not exist in the catalog.
    RelationOutOfRange {
        /// The offending relation index.
        relation: RelIdx,
        /// Number of relations in the catalog.
        n: usize,
    },
    /// An edge id does not exist in the catalog.
    EdgeOutOfRange {
        /// The offending edge id.
        edge: EdgeId,
        /// Number of edges in the catalog.
        m: usize,
    },
    /// A cardinality was not a finite value ≥ 1.
    InvalidCardinality {
        /// The offending relation.
        relation: RelIdx,
        /// The rejected value.
        value: f64,
    },
    /// A selectivity was not a finite value in `(0, 1]`.
    InvalidSelectivity {
        /// The offending edge.
        edge: EdgeId,
        /// The rejected value.
        value: f64,
    },
    /// The catalog was built against a graph of a different shape.
    ShapeMismatch {
        /// Relations/edges expected by the catalog.
        catalog: (usize, usize),
        /// Relations/edges of the supplied graph.
        graph: (usize, usize),
    },
    /// A derived estimate overflowed to a non-finite value (infinity
    /// from repeated multiplication, or NaN). Surfaced eagerly because
    /// a NaN cost silently breaks `<` plan pruning.
    NonFiniteEstimate {
        /// What was being derived: `"cardinality"` or `"cost"`.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CostError::RelationOutOfRange { relation, n } => {
                write!(
                    f,
                    "relation R{relation} out of range (catalog has {n} relations)"
                )
            }
            CostError::EdgeOutOfRange { edge, m } => {
                write!(f, "edge {edge} out of range (catalog has {m} edges)")
            }
            CostError::InvalidCardinality { relation, value } => {
                write!(
                    f,
                    "cardinality {value} for R{relation} must be finite and ≥ 1"
                )
            }
            CostError::InvalidSelectivity { edge, value } => {
                write!(
                    f,
                    "selectivity {value} for edge {edge} must be finite and in (0, 1]"
                )
            }
            CostError::ShapeMismatch { catalog, graph } => {
                write!(
                    f,
                    "catalog shape (n={}, m={}) does not match graph (n={}, m={})",
                    catalog.0, catalog.1, graph.0, graph.1
                )
            }
            CostError::NonFiniteEstimate { what, value } => {
                write!(f, "derived {what} estimate {value} is not finite")
            }
        }
    }
}

impl std::error::Error for CostError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CostError::RelationOutOfRange { relation: 7, n: 3 }
            .to_string()
            .contains("R7"));
        assert!(CostError::EdgeOutOfRange { edge: 9, m: 2 }
            .to_string()
            .contains('9'));
        assert!(CostError::InvalidCardinality {
            relation: 0,
            value: -1.0
        }
        .to_string()
        .contains("-1"));
        assert!(CostError::InvalidSelectivity {
            edge: 1,
            value: 2.0
        }
        .to_string()
        .contains('2'));
        assert!(CostError::ShapeMismatch {
            catalog: (3, 2),
            graph: (4, 3)
        }
        .to_string()
        .contains("n=4"));
        assert!(CostError::NonFiniteEstimate {
            what: "cost",
            value: f64::INFINITY
        }
        .to_string()
        .contains("not finite"));
    }
}
