//! Seeded random workload generation.
//!
//! The paper's experiments time the *enumeration*, so any statistics do;
//! but plan-quality comparisons (and the test suite's optimality
//! cross-checks) need realistic, reproducible inputs. Cardinalities are
//! drawn log-uniformly from `[10, 10⁶]` and selectivities log-uniformly
//! from `[10⁻⁴, 1]`, the conventional ranges in the join-ordering
//! literature.

use joinopt_qgraph::{generators, GraphKind, QueryGraph};
use joinopt_relset::XorShift64;

use crate::catalog::Catalog;

/// A query graph together with its statistics — everything an optimizer
/// run needs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The query graph.
    pub graph: QueryGraph,
    /// Statistics for `graph`.
    pub catalog: Catalog,
}

/// Bounds for random statistics generation.
#[derive(Debug, Clone, Copy)]
pub struct StatsRanges {
    /// Inclusive log-uniform cardinality range.
    pub cardinality: (f64, f64),
    /// Inclusive log-uniform selectivity range.
    pub selectivity: (f64, f64),
}

impl Default for StatsRanges {
    fn default() -> Self {
        StatsRanges {
            cardinality: (10.0, 1e6),
            selectivity: (1e-4, 1.0),
        }
    }
}

/// Draws a log-uniform sample from `[lo, hi]`.
fn log_uniform(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    assert!(
        lo > 0.0 && hi >= lo,
        "log-uniform bounds must satisfy 0 < lo ≤ hi"
    );
    rng.gen_range_f64(lo.ln(), hi.ln()).exp()
}

/// Fills a catalog for `g` with random statistics.
pub fn random_catalog(g: &QueryGraph, ranges: StatsRanges, rng: &mut XorShift64) -> Catalog {
    let mut cat = Catalog::new(g);
    for i in 0..g.num_relations() {
        let (lo, hi) = ranges.cardinality;
        cat.set_cardinality(i, log_uniform(rng, lo, hi).max(1.0))
            .expect("generated cardinality in range");
    }
    for e in 0..g.num_edges() {
        let (lo, hi) = ranges.selectivity;
        cat.set_selectivity(e, log_uniform(rng, lo, hi).min(1.0))
            .expect("generated selectivity in range");
    }
    cat
}

/// A reproducible workload for one of the paper's graph families.
pub fn family_workload(kind: GraphKind, n: usize, seed: u64) -> Workload {
    let graph = generators::generate(kind, n);
    let mut rng = XorShift64::seed_from_u64(seed);
    let catalog = random_catalog(&graph, StatsRanges::default(), &mut rng);
    Workload { graph, catalog }
}

/// A reproducible workload over a random connected graph.
pub fn random_workload(n: usize, extra_edge_prob: f64, seed: u64) -> Workload {
    let mut rng = XorShift64::seed_from_u64(seed);
    let graph = generators::random_connected(n, extra_edge_prob, &mut rng)
        .expect("valid size for random graph");
    let catalog = random_catalog(&graph, StatsRanges::default(), &mut rng);
    Workload { graph, catalog }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_uniform_stays_in_bounds() {
        let mut rng = XorShift64::seed_from_u64(1);
        for _ in 0..1000 {
            let x = log_uniform(&mut rng, 10.0, 1e6);
            assert!((10.0..=1e6).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bounds")]
    fn log_uniform_rejects_zero_lower_bound() {
        let mut rng = XorShift64::seed_from_u64(1);
        let _ = log_uniform(&mut rng, 0.0, 1.0);
    }

    #[test]
    fn family_workload_is_deterministic() {
        let w1 = family_workload(GraphKind::Star, 6, 99);
        let w2 = family_workload(GraphKind::Star, 6, 99);
        assert_eq!(w1.graph, w2.graph);
        assert_eq!(w1.catalog, w2.catalog);
        let w3 = family_workload(GraphKind::Star, 6, 100);
        assert_ne!(w1.catalog, w3.catalog);
    }

    #[test]
    fn random_workload_valid() {
        let w = random_workload(10, 0.3, 7);
        assert!(w.graph.is_connected());
        assert!(w.catalog.check_shape(&w.graph).is_ok());
        for &c in w.catalog.cardinalities() {
            assert!((1.0..=1e6).contains(&c));
        }
        for &f in w.catalog.selectivities() {
            assert!(f > 0.0 && f <= 1.0);
        }
    }

    #[test]
    fn catalog_covers_custom_ranges() {
        let g = generators::clique(5).unwrap();
        let ranges = StatsRanges {
            cardinality: (100.0, 100.0),
            selectivity: (0.5, 0.5),
        };
        let mut rng = XorShift64::seed_from_u64(0);
        let cat = random_catalog(&g, ranges, &mut rng);
        assert!(cat
            .cardinalities()
            .iter()
            .all(|&c| (c - 100.0).abs() < 1e-9));
        assert!(cat.selectivities().iter().all(|&f| (f - 0.5).abs() < 1e-9));
    }
}
