//! Independence-assumption cardinality estimation.

use joinopt_qgraph::QueryGraph;
use joinopt_relset::{RelIdx, RelSet};

use crate::catalog::Catalog;
use crate::error::CostError;

/// Guards a derived estimate at the estimator/optimizer boundary:
/// finite values pass through, overflowed or NaN values become a typed
/// [`CostError::NonFiniteEstimate`] instead of silently poisoning `<`
/// plan comparison downstream.
#[inline]
pub fn ensure_finite(what: &'static str, value: f64) -> Result<f64, CostError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(CostError::NonFiniteEstimate { what, value })
    }
}

/// The classical System-R cardinality estimator.
///
/// Under the independence assumption the cardinality of a join result is
///
/// ```text
/// |S₁ ⋈ S₂| = |S₁| · |S₂| · ∏ { f_e : e crosses the (S₁, S₂) cut }
/// ```
///
/// which makes the estimate for a set `S` well-defined (independent of
/// the join order used to build it): it is the product of base
/// cardinalities of `S`'s members and the selectivities of all predicates
/// internal to `S`.
///
/// The estimator pre-groups each relation's incident predicates so the
/// per-DP-step cut product costs `O(|smaller side| · degree)` bitset
/// probes and no allocation.
#[derive(Debug, Clone)]
pub struct CardinalityEstimator {
    cards: Vec<f64>,
    /// Per relation: incident predicates as `(other endpoint, selectivity)`.
    incident: Vec<Vec<(RelIdx, f64)>>,
}

impl CardinalityEstimator {
    /// Builds an estimator for `g` with statistics from `cat`.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::ShapeMismatch`] if `cat` was built for a
    /// different graph shape.
    pub fn new(g: &QueryGraph, cat: &Catalog) -> Result<CardinalityEstimator, CostError> {
        cat.check_shape(g)?;
        let n = g.num_relations();
        let mut incident: Vec<Vec<(RelIdx, f64)>> = vec![Vec::new(); n];
        for (id, e) in g.edges().iter().enumerate() {
            let f = cat.selectivity(id);
            incident[e.u].push((e.v, f));
            incident[e.v].push((e.u, f));
        }
        Ok(CardinalityEstimator {
            cards: cat.cardinalities().to_vec(),
            incident,
        })
    }

    /// Number of relations covered.
    pub fn num_relations(&self) -> usize {
        self.cards.len()
    }

    /// Base cardinality of a single relation.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn base_cardinality(&self, i: RelIdx) -> f64 {
        self.cards[i]
    }

    /// Estimated cardinality of the join of two disjoint sets whose own
    /// cardinalities are already known — the hot path of every DP step.
    ///
    /// `s1`/`s2` are only used to locate the cut predicates; the caller
    /// supplies `card1`/`card2` (from its DP table) to avoid recomputing
    /// set cardinalities from scratch.
    #[inline]
    pub fn join_cardinality(&self, card1: f64, card2: f64, s1: RelSet, s2: RelSet) -> f64 {
        card1 * card2 * self.cut_selectivity(s1, s2)
    }

    /// Product of the selectivities of all predicates crossing the
    /// `(s1, s2)` cut; 1.0 when no predicate crosses (a cross product).
    pub fn cut_selectivity(&self, s1: RelSet, s2: RelSet) -> f64 {
        // Iterate the smaller side.
        let (small, big) = if s1.len() <= s2.len() {
            (s1, s2)
        } else {
            (s2, s1)
        };
        let mut factor = 1.0;
        for v in small.iter() {
            for &(u, f) in &self.incident[v] {
                if big.contains(u) {
                    factor *= f;
                }
            }
        }
        factor
    }

    /// Estimated cardinality of an arbitrary set, from scratch: product
    /// of base cardinalities and internal predicate selectivities.
    ///
    /// Useful for validation and for seeding DP tables; the DP hot path
    /// uses [`CardinalityEstimator::join_cardinality`] instead.
    pub fn set_cardinality(&self, s: RelSet) -> f64 {
        let mut card = 1.0;
        for v in s.iter() {
            card *= self.cards[v];
            for &(u, f) in &self.incident[v] {
                // Count each internal predicate once (at its smaller endpoint).
                if u > v && s.contains(u) {
                    card *= f;
                }
            }
        }
        card
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_qgraph::generators;

    fn chain3() -> (QueryGraph, Catalog) {
        let g = generators::chain(3).unwrap();
        let mut cat = Catalog::new(&g);
        cat.set_cardinality(0, 1000.0).unwrap();
        cat.set_cardinality(1, 100.0).unwrap();
        cat.set_cardinality(2, 10.0).unwrap();
        cat.set_selectivity(0, 0.01).unwrap();
        cat.set_selectivity(1, 0.5).unwrap();
        (g, cat)
    }

    #[test]
    fn base_and_set_cardinalities() {
        let (g, cat) = chain3();
        let est = CardinalityEstimator::new(&g, &cat).unwrap();
        assert_eq!(est.base_cardinality(0), 1000.0);
        assert_eq!(est.set_cardinality(RelSet::single(1)), 100.0);
        // {0,1}: 1000·100·0.01 = 1000
        assert_eq!(est.set_cardinality(RelSet::from_indices([0, 1])), 1000.0);
        // {0,1,2}: 1000·100·10·0.01·0.5 = 5000
        assert_eq!(est.set_cardinality(RelSet::full(3)), 5000.0);
        // {0,2}: no predicate between them → cross product 10000
        assert_eq!(est.set_cardinality(RelSet::from_indices([0, 2])), 10_000.0);
    }

    #[test]
    fn join_cardinality_matches_set_cardinality() {
        let (g, cat) = chain3();
        let est = CardinalityEstimator::new(&g, &cat).unwrap();
        let s1 = RelSet::from_indices([0, 1]);
        let s2 = RelSet::single(2);
        let joined = est.join_cardinality(est.set_cardinality(s1), est.set_cardinality(s2), s1, s2);
        assert_eq!(joined, est.set_cardinality(s1 | s2));
    }

    #[test]
    fn cut_selectivity_values() {
        let (g, cat) = chain3();
        let est = CardinalityEstimator::new(&g, &cat).unwrap();
        assert_eq!(
            est.cut_selectivity(RelSet::single(0), RelSet::single(1)),
            0.01
        );
        assert_eq!(
            est.cut_selectivity(RelSet::single(0), RelSet::single(2)),
            1.0
        );
        // Cut {1} vs {0,2} crosses both predicates: 0.01 · 0.5
        let f = est.cut_selectivity(RelSet::single(1), RelSet::from_indices([0, 2]));
        assert!((f - 0.005).abs() < 1e-12);
    }

    #[test]
    fn estimator_is_order_independent() {
        // Cardinality of the full set is the same no matter how it is
        // decomposed — the property that makes BestPlan(S) well-defined.
        let g = generators::cycle(5).unwrap();
        let mut cat = Catalog::new(&g);
        for i in 0..5 {
            cat.set_cardinality(i, (i as f64 + 2.0) * 37.0).unwrap();
        }
        for e in 0..g.num_edges() {
            cat.set_selectivity(e, 0.1 / (e as f64 + 1.0)).unwrap();
        }
        let est = CardinalityEstimator::new(&g, &cat).unwrap();
        let full = g.all_relations();
        let direct = est.set_cardinality(full);
        for s1 in full.non_empty_proper_subsets() {
            let s2 = full - s1;
            let via_join =
                est.join_cardinality(est.set_cardinality(s1), est.set_cardinality(s2), s1, s2);
            assert!(
                (via_join - direct).abs() <= 1e-9 * direct.abs(),
                "decomposition {s1} / {s2}: {via_join} vs {direct}"
            );
        }
    }

    #[test]
    fn ensure_finite_guards_overflow_and_nan() {
        assert_eq!(ensure_finite("cost", 1.5), Ok(1.5));
        assert_eq!(
            ensure_finite("cardinality", f64::INFINITY),
            Err(CostError::NonFiniteEstimate {
                what: "cardinality",
                value: f64::INFINITY
            })
        );
        assert!(ensure_finite("cost", f64::NAN).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g3 = generators::chain(3).unwrap();
        let g4 = generators::chain(4).unwrap();
        let cat = Catalog::new(&g3);
        assert!(CardinalityEstimator::new(&g4, &cat).is_err());
    }
}
