//! Statistics, cardinality estimation and cost models.
//!
//! The dynamic-programming algorithms of the paper are *enumeration*
//! strategies; to turn an enumerated csg-cmp-pair into a plan decision
//! they need `cost(CreateJoinTree(p1, p2))`, which in turn needs
//! cardinalities. This crate supplies that substrate:
//!
//! * [`Catalog`] — base-table cardinalities and per-join-predicate
//!   selectivities, validated on construction;
//! * [`CardinalityEstimator`] — the classical independence-assumption
//!   estimator: `|S₁ ⋈ S₂| = |S₁| · |S₂| · ∏ f_e` over the predicates
//!   `e` crossing the cut, computed incrementally so a DP step is O(cut);
//! * [`CostModel`] implementations — [`Cout`] (sum of intermediate result
//!   sizes, the standard model in the join-ordering literature),
//!   [`NestedLoopJoin`], [`HashJoin`], [`SortMergeJoin`] and
//!   [`MinOverPhysical`] (cheapest physical operator per join);
//! * [`workload`] — seeded random workload generation so experiments are
//!   reproducible.
//!
//! # Example
//!
//! ```
//! use joinopt_qgraph::generators;
//! use joinopt_cost::{Catalog, CardinalityEstimator, CostModel, Cout, PlanStats};
//! use joinopt_relset::RelSet;
//!
//! let g = generators::chain(3).unwrap();
//! let mut cat = Catalog::new(&g);
//! cat.set_cardinality(0, 1000.0).unwrap();
//! cat.set_cardinality(1, 100.0).unwrap();
//! cat.set_cardinality(2, 10.0).unwrap();
//! cat.set_selectivity(0, 0.01).unwrap(); // R0 ⋈ R1
//! cat.set_selectivity(1, 0.5).unwrap();  // R1 ⋈ R2
//!
//! let est = CardinalityEstimator::new(&g, &cat).unwrap();
//! let s01 = est.join_cardinality(
//!     1000.0, 100.0, RelSet::single(0), RelSet::single(1));
//! assert_eq!(s01, 1000.0); // 1000 · 100 · 0.01
//! let cost = Cout.join_cost(
//!     &PlanStats { cardinality: 1000.0, cost: 0.0 },
//!     &PlanStats { cardinality: 10.0, cost: 0.0 },
//!     5000.0,
//! );
//! assert_eq!(cost, 5000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod error;
mod estimator;
pub mod hyper;
mod models;
pub mod workload;

pub use catalog::Catalog;
pub use error::CostError;
pub use estimator::{ensure_finite, CardinalityEstimator};
pub use hyper::HyperCardinalityEstimator;
pub use models::{
    CostModel, Cout, HashJoin, MinOverPhysical, NestedLoopJoin, PlanStats, SortMergeJoin,
};
