//! Randomized property tests for the statistics substrate: estimator
//! consistency and cost-model laws on seeded random workloads.

use joinopt_cost::{
    workload, CardinalityEstimator, CostModel, Cout, HashJoin, MinOverPhysical, NestedLoopJoin,
    PlanStats, SortMergeJoin,
};
use joinopt_relset::{RelSet, XorShift64};

const CASES: usize = 64;

fn models() -> [&'static dyn CostModel; 5] {
    [
        &Cout,
        &NestedLoopJoin,
        &HashJoin,
        &SortMergeJoin,
        &MinOverPhysical,
    ]
}

#[test]
fn estimates_are_positive_and_finite() {
    let mut rng = XorShift64::seed_from_u64(401);
    for _ in 0..CASES {
        let n = rng.gen_range(2..11);
        let d = rng.gen_range(0..11) as f64 / 10.0;
        let w = workload::random_workload(n, d, rng.next_u64());
        let est = CardinalityEstimator::new(&w.graph, &w.catalog).unwrap();
        for bits in 1..(1u64 << n) {
            let s = RelSet::from_bits(bits);
            let card = est.set_cardinality(s);
            assert!(card.is_finite() && card > 0.0, "card({s}) = {card}");
        }
    }
}

#[test]
fn estimator_is_decomposition_invariant() {
    let mut rng = XorShift64::seed_from_u64(402);
    for _ in 0..CASES {
        let n = rng.gen_range(2..9);
        let w = workload::random_workload(n, 0.4, rng.next_u64());
        let est = CardinalityEstimator::new(&w.graph, &w.catalog).unwrap();
        let full = w.graph.all_relations();
        let direct = est.set_cardinality(full);
        for s1 in full.non_empty_proper_subsets() {
            let s2 = full - s1;
            let via =
                est.join_cardinality(est.set_cardinality(s1), est.set_cardinality(s2), s1, s2);
            assert!(
                (via - direct).abs() <= 1e-6 * direct.abs(),
                "split {s1}/{s2}: {via} vs {direct}"
            );
        }
    }
}

#[test]
fn adding_a_relation_multiplies_cardinality_correctly() {
    // card(S ∪ {v}) = card(S) · |v| · ∏ selectivities of v's edges into S
    let mut rng = XorShift64::seed_from_u64(403);
    for _ in 0..CASES {
        let n = rng.gen_range(3..10);
        let w = workload::random_workload(n, 0.4, rng.next_u64());
        let est = CardinalityEstimator::new(&w.graph, &w.catalog).unwrap();
        let s = RelSet::full(n - 1);
        let v = n - 1;
        let mut expected = est.set_cardinality(s) * est.base_cardinality(v);
        for (id, e) in w.graph.edges().iter().enumerate() {
            if (e.u == v && s.contains(e.v)) || (e.v == v && s.contains(e.u)) {
                expected *= w.catalog.selectivity(id);
            }
        }
        let got = est.set_cardinality(RelSet::full(n));
        assert!((got - expected).abs() <= 1e-6 * expected.abs());
    }
}

#[test]
fn cost_models_are_finite_positive_and_monotone() {
    let mut rng = XorShift64::seed_from_u64(404);
    for _ in 0..CASES {
        let lc = rng.gen_range_f64(1.0, 1e6);
        let rc = rng.gen_range_f64(1.0, 1e6);
        let out = rng.gen_range_f64(1.0, 1e9);
        let lcost = rng.gen_range_f64(0.0, 1e9);
        let rcost = rng.gen_range_f64(0.0, 1e9);
        let l = PlanStats {
            cardinality: lc,
            cost: lcost,
        };
        let r = PlanStats {
            cardinality: rc,
            cost: rcost,
        };
        for m in models() {
            let c = m.join_cost(&l, &r, out);
            assert!(c.is_finite() && c >= 0.0, "{}: {c}", m.name());
            // Monotone in both children's accumulated cost.
            let dearer = PlanStats {
                cost: lcost + 100.0,
                ..l
            };
            assert!(
                m.join_cost(&dearer, &r, out) >= c,
                "{} not monotone in left cost",
                m.name()
            );
            let dearer_r = PlanStats {
                cost: rcost + 100.0,
                ..r
            };
            assert!(
                m.join_cost(&l, &dearer_r, out) >= c,
                "{} not monotone in right cost",
                m.name()
            );
        }
    }
}

#[test]
fn symmetric_models_really_are_symmetric() {
    let mut rng = XorShift64::seed_from_u64(405);
    for _ in 0..CASES {
        let lc = rng.gen_range_f64(1.0, 1e6);
        let rc = rng.gen_range_f64(1.0, 1e6);
        let out = rng.gen_range_f64(1.0, 1e9);
        let l = PlanStats {
            cardinality: lc,
            cost: 17.0,
        };
        let r = PlanStats {
            cardinality: rc,
            cost: 39.0,
        };
        for m in models() {
            if m.is_symmetric() {
                assert_eq!(
                    m.join_cost(&l, &r, out),
                    m.join_cost(&r, &l, out),
                    "{} claims symmetry but differs",
                    m.name()
                );
            }
        }
    }
}

#[test]
fn min_over_physical_is_the_lower_envelope() {
    let mut rng = XorShift64::seed_from_u64(406);
    for _ in 0..CASES {
        let lc = rng.gen_range_f64(1.0, 1e6);
        let rc = rng.gen_range_f64(1.0, 1e6);
        let out = rng.gen_range_f64(1.0, 1e9);
        let l = PlanStats {
            cardinality: lc,
            cost: 0.0,
        };
        let r = PlanStats {
            cardinality: rc,
            cost: 0.0,
        };
        let min = MinOverPhysical.join_cost(&l, &r, out);
        assert!(min <= NestedLoopJoin.join_cost(&l, &r, out));
        assert!(min <= HashJoin.join_cost(&l, &r, out));
        assert!(min <= SortMergeJoin.join_cost(&l, &r, out));
        let reachable = [
            NestedLoopJoin.join_cost(&l, &r, out),
            HashJoin.join_cost(&l, &r, out),
            SortMergeJoin.join_cost(&l, &r, out),
        ];
        assert!(reachable.iter().any(|&c| (c - min).abs() < 1e-9));
    }
}

#[test]
fn workload_statistics_are_always_valid() {
    let mut rng = XorShift64::seed_from_u64(407);
    for _ in 0..CASES {
        let n = rng.gen_range(1..13);
        let d = rng.gen_range(0..11) as f64 / 10.0;
        let w = workload::random_workload(n, d, rng.next_u64());
        for i in 0..w.graph.num_relations() {
            let c = w.catalog.cardinality(i);
            assert!(c >= 1.0 && c.is_finite());
        }
        for e in 0..w.graph.num_edges() {
            let f = w.catalog.selectivity(e);
            assert!(f > 0.0 && f <= 1.0);
        }
        assert!(w.graph.is_connected());
    }
}
