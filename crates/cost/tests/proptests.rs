//! Property tests for the statistics substrate: estimator consistency
//! and cost-model laws on randomized workloads.

use joinopt_cost::{
    workload, CardinalityEstimator, CostModel, Cout, HashJoin, MinOverPhysical,
    NestedLoopJoin, PlanStats, SortMergeJoin,
};
use joinopt_relset::RelSet;
use proptest::prelude::*;

fn models() -> [&'static dyn CostModel; 5] {
    [&Cout, &NestedLoopJoin, &HashJoin, &SortMergeJoin, &MinOverPhysical]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn estimates_are_positive_and_finite(n in 2usize..=10, d in 0u8..=10, seed in any::<u64>()) {
        let w = workload::random_workload(n, f64::from(d) / 10.0, seed);
        let est = CardinalityEstimator::new(&w.graph, &w.catalog).unwrap();
        for bits in 1..(1u64 << n) {
            let s = RelSet::from_bits(bits);
            let card = est.set_cardinality(s);
            prop_assert!(card.is_finite() && card > 0.0, "card({s}) = {card}");
        }
    }

    #[test]
    fn estimator_is_decomposition_invariant(n in 2usize..=8, seed in any::<u64>()) {
        let w = workload::random_workload(n, 0.4, seed);
        let est = CardinalityEstimator::new(&w.graph, &w.catalog).unwrap();
        let full = w.graph.all_relations();
        let direct = est.set_cardinality(full);
        for s1 in full.non_empty_proper_subsets() {
            let s2 = full - s1;
            let via = est.join_cardinality(
                est.set_cardinality(s1),
                est.set_cardinality(s2),
                s1,
                s2,
            );
            prop_assert!((via - direct).abs() <= 1e-6 * direct.abs(),
                "split {}/{}: {} vs {}", s1, s2, via, direct);
        }
    }

    #[test]
    fn adding_a_relation_multiplies_cardinality_correctly(
        n in 3usize..=9, seed in any::<u64>()
    ) {
        // card(S ∪ {v}) = card(S) · |v| · ∏ selectivities of v's edges into S
        let w = workload::random_workload(n, 0.4, seed);
        let est = CardinalityEstimator::new(&w.graph, &w.catalog).unwrap();
        let s = RelSet::full(n - 1);
        let v = n - 1;
        let mut expected = est.set_cardinality(s) * est.base_cardinality(v);
        for (id, e) in w.graph.edges().iter().enumerate() {
            if (e.u == v && s.contains(e.v)) || (e.v == v && s.contains(e.u)) {
                expected *= w.catalog.selectivity(id);
            }
        }
        let got = est.set_cardinality(RelSet::full(n));
        prop_assert!((got - expected).abs() <= 1e-6 * expected.abs());
    }

    #[test]
    fn cost_models_are_finite_positive_and_monotone(
        lc in 1.0f64..1e6, rc in 1.0f64..1e6, out in 1.0f64..1e9,
        lcost in 0.0f64..1e9, rcost in 0.0f64..1e9
    ) {
        let l = PlanStats { cardinality: lc, cost: lcost };
        let r = PlanStats { cardinality: rc, cost: rcost };
        for m in models() {
            let c = m.join_cost(&l, &r, out);
            prop_assert!(c.is_finite() && c >= 0.0, "{}: {c}", m.name());
            // Monotone in both children's accumulated cost.
            let dearer = PlanStats { cost: lcost + 100.0, ..l };
            prop_assert!(
                m.join_cost(&dearer, &r, out) >= c,
                "{} not monotone in left cost", m.name()
            );
            let dearer_r = PlanStats { cost: rcost + 100.0, ..r };
            prop_assert!(
                m.join_cost(&l, &dearer_r, out) >= c,
                "{} not monotone in right cost", m.name()
            );
        }
    }

    #[test]
    fn symmetric_models_really_are_symmetric(
        lc in 1.0f64..1e6, rc in 1.0f64..1e6, out in 1.0f64..1e9
    ) {
        let l = PlanStats { cardinality: lc, cost: 17.0 };
        let r = PlanStats { cardinality: rc, cost: 39.0 };
        for m in models() {
            if m.is_symmetric() {
                prop_assert_eq!(
                    m.join_cost(&l, &r, out),
                    m.join_cost(&r, &l, out),
                    "{} claims symmetry but differs", m.name()
                );
            }
        }
    }

    #[test]
    fn min_over_physical_is_the_lower_envelope(
        lc in 1.0f64..1e6, rc in 1.0f64..1e6, out in 1.0f64..1e9
    ) {
        let l = PlanStats { cardinality: lc, cost: 0.0 };
        let r = PlanStats { cardinality: rc, cost: 0.0 };
        let min = MinOverPhysical.join_cost(&l, &r, out);
        prop_assert!(min <= NestedLoopJoin.join_cost(&l, &r, out));
        prop_assert!(min <= HashJoin.join_cost(&l, &r, out));
        prop_assert!(min <= SortMergeJoin.join_cost(&l, &r, out));
        let reachable = [
            NestedLoopJoin.join_cost(&l, &r, out),
            HashJoin.join_cost(&l, &r, out),
            SortMergeJoin.join_cost(&l, &r, out),
        ];
        prop_assert!(reachable.iter().any(|&c| (c - min).abs() < 1e-9));
    }

    #[test]
    fn workload_statistics_are_always_valid(n in 1usize..=12, d in 0u8..=10, seed in any::<u64>()) {
        let w = workload::random_workload(n.max(1), f64::from(d) / 10.0, seed);
        for i in 0..w.graph.num_relations() {
            let c = w.catalog.cardinality(i);
            prop_assert!(c >= 1.0 && c.is_finite());
        }
        for e in 0..w.graph.num_edges() {
            let f = w.catalog.selectivity(e);
            prop_assert!(f > 0.0 && f <= 1.0);
        }
        prop_assert!(w.graph.is_connected());
    }
}
