//! End-to-end validation: the optimizer's estimates are unbiased on
//! synthesized data, and DP-optimal plans beat alternatives on *measured*
//! cost — closing the loop from statistics through enumeration to
//! execution.

use joinopt_core::greedy::Goo;
use joinopt_core::{DpCcp, JoinOrderer};
use joinopt_cost::{workload, CardinalityEstimator, Catalog, Cout};
use joinopt_exec::{execute, Database};
use joinopt_qgraph::{generators, GraphKind, QueryGraph};
use joinopt_relset::XorShift64;

/// A small workload whose data we can synthesize (rows ≤ ~100).
fn small_workload(kind: GraphKind, n: usize, seed: u64) -> (QueryGraph, Catalog) {
    let graph = generators::generate(kind, n);
    let mut rng = XorShift64::seed_from_u64(seed);
    let ranges = workload::StatsRanges {
        cardinality: (20.0, 120.0),
        selectivity: (0.02, 0.5),
    };
    let catalog = workload::random_catalog(&graph, ranges, &mut rng);
    (graph, catalog)
}

#[test]
fn estimator_is_unbiased_on_synthesized_data() {
    // Average the measured/estimated ratio of the full join over many
    // seeds: it must hover around 1 (the synthesis realizes exactly the
    // estimator's independence assumptions).
    let mut ratios = Vec::new();
    for seed in 0..40 {
        let (g, cat) = small_workload(GraphKind::Chain, 4, seed);
        let est = CardinalityEstimator::new(&g, &cat).unwrap();
        let estimated = est.set_cardinality(g.all_relations());
        if estimated < 5.0 {
            continue; // too few expected rows for a stable ratio
        }
        let db = Database::synthesize(&g, &cat, &mut XorShift64::seed_from_u64(seed ^ 99)).unwrap();
        let plan = DpCcp.optimize(&g, &cat, &Cout).unwrap().tree;
        let run = execute(&g, &db, &plan).unwrap();
        ratios.push(run.result_rows as f64 / estimated);
    }
    assert!(ratios.len() >= 10, "only {} usable seeds", ratios.len());
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (0.5..=2.0).contains(&mean),
        "estimator bias: mean measured/estimated = {mean:.3} over {} runs",
        ratios.len()
    );
}

#[test]
fn measured_cardinality_is_plan_invariant() {
    // The final result size must not depend on the join order — a
    // correctness property of the executor.
    for seed in 0..10 {
        let (g, cat) = small_workload(GraphKind::Cycle, 5, seed);
        let db = Database::synthesize(&g, &cat, &mut XorShift64::seed_from_u64(seed)).unwrap();
        let optimal = DpCcp.optimize(&g, &cat, &Cout).unwrap().tree;
        let greedy = Goo.optimize(&g, &cat, &Cout).unwrap().tree;
        let a = execute(&g, &db, &optimal).unwrap();
        let b = execute(&g, &db, &greedy).unwrap();
        assert_eq!(a.result_rows, b.result_rows, "seed {seed}");
    }
}

#[test]
fn optimal_plans_win_on_measured_cost_in_aggregate() {
    // Per-seed noise can flip individual comparisons (the estimator is
    // unbiased, not clairvoyant), but across seeds the DP plan must not
    // lose to a deliberately bad plan: join the two largest relations
    // first, then attach the rest greedily by *largest* result.
    let mut optimal_total = 0.0;
    let mut bad_total = 0.0;
    let mut optimal_wins = 0usize;
    let mut comparisons = 0usize;
    for seed in 0..30 {
        let (g, cat) = small_workload(GraphKind::Star, 5, seed);
        let db = Database::synthesize(&g, &cat, &mut XorShift64::seed_from_u64(seed * 3)).unwrap();
        let optimal = DpCcp.optimize(&g, &cat, &Cout).unwrap().tree;
        let bad = pessimal_left_deep(&g, &cat);
        let run_opt = execute(&g, &db, &optimal).unwrap();
        let run_bad = execute(&g, &db, &bad).unwrap();
        optimal_total += run_opt.measured_cout();
        bad_total += run_bad.measured_cout();
        comparisons += 1;
        if run_opt.measured_cout() <= run_bad.measured_cout() {
            optimal_wins += 1;
        }
    }
    assert!(
        optimal_total <= bad_total,
        "optimal plans measured worse in aggregate: {optimal_total} vs {bad_total}"
    );
    assert!(
        optimal_wins * 2 >= comparisons,
        "optimal won only {optimal_wins}/{comparisons} measured comparisons"
    );
}

/// The anti-optimizer: left-deep order choosing the largest feasible
/// extension at each step.
fn pessimal_left_deep(g: &QueryGraph, cat: &Catalog) -> joinopt_plan::JoinTree {
    use joinopt_cost::PlanStats;
    use joinopt_plan::PlanArena;
    use joinopt_relset::RelSet;

    let est = CardinalityEstimator::new(g, cat).unwrap();
    let n = g.num_relations();
    // Start from the largest relation.
    let start = (0..n)
        .max_by(|&a, &b| {
            est.base_cardinality(a)
                .partial_cmp(&est.base_cardinality(b))
                .expect("finite")
        })
        .expect("non-empty");
    let mut arena = PlanArena::new();
    let mut set = RelSet::single(start);
    let mut plan = arena.add_scan(start, est.base_cardinality(start));
    let mut stats = PlanStats::base(est.base_cardinality(start));
    while set != g.all_relations() {
        let candidate = (0..n)
            .filter(|&r| !set.contains(r) && g.sets_connected(set, RelSet::single(r)))
            .max_by(|&a, &b| {
                let ca = est.join_cardinality(
                    stats.cardinality,
                    est.base_cardinality(a),
                    set,
                    RelSet::single(a),
                );
                let cb = est.join_cardinality(
                    stats.cardinality,
                    est.base_cardinality(b),
                    set,
                    RelSet::single(b),
                );
                ca.partial_cmp(&cb).expect("finite")
            })
            .expect("connected graph always extends");
        let right = arena.add_scan(candidate, est.base_cardinality(candidate));
        let out = est.join_cardinality(
            stats.cardinality,
            est.base_cardinality(candidate),
            set,
            RelSet::single(candidate),
        );
        use joinopt_cost::CostModel as _;
        let cost = Cout.join_cost(
            &stats,
            &PlanStats::base(est.base_cardinality(candidate)),
            out,
        );
        stats = PlanStats {
            cardinality: out,
            cost,
        };
        plan = arena.add_join(plan, right, stats);
        set.insert(candidate);
    }
    arena.extract(plan)
}

#[test]
fn per_node_estimates_track_measurements() {
    // Walk the optimal plan and compare every intermediate's estimate to
    // its measurement in aggregate (log-scale mean within a factor 2).
    let mut log_ratios = Vec::new();
    for seed in 0..20 {
        let (g, cat) = small_workload(GraphKind::Chain, 4, seed + 500);
        let est = CardinalityEstimator::new(&g, &cat).unwrap();
        let db = Database::synthesize(&g, &cat, &mut XorShift64::seed_from_u64(seed)).unwrap();
        let plan = DpCcp.optimize(&g, &cat, &Cout).unwrap().tree;
        let run = execute(&g, &db, &plan).unwrap();
        for &(rels, measured) in &run.node_cards {
            if rels.len() < 2 {
                continue;
            }
            let estimated = est.set_cardinality(rels);
            if estimated >= 5.0 && measured > 0 {
                log_ratios.push((measured as f64 / estimated).ln());
            }
        }
    }
    assert!(log_ratios.len() >= 10);
    let mean = log_ratios.iter().sum::<f64>() / log_ratios.len() as f64;
    assert!(
        mean.abs() < std::f64::consts::LN_2,
        "per-node log-bias {mean:.3} over {} nodes",
        log_ratios.len()
    );
}
