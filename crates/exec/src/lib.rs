//! A toy columnar execution engine for end-to-end plan validation.
//!
//! The optimizer crates reason about *estimated* cardinalities; this
//! crate closes the loop by synthesizing concrete data whose statistics
//! match a catalog and actually executing join trees over it:
//!
//! * [`Database::synthesize`] — for every join predicate with
//!   selectivity `f`, both endpoint relations get a key column drawn
//!   uniformly from a domain of size `⌈1/f⌉`, so a random row pair
//!   matches with probability ≈ `f` (the independence assumption made
//!   physical);
//! * [`execute`] — hash-join evaluation of a [`JoinTree`](joinopt_plan::JoinTree) bottom-up,
//!   joining on the composite key of all predicates that cross each
//!   join's cut, returning per-node *measured* cardinalities;
//! * [`Execution::measured_cout`] — the real `C_out` of a plan (the sum
//!   of the intermediate result sizes that actually materialized).
//!
//! The crate exists for validation and demonstration, not performance:
//! tuples are `Vec<u32>` row-id vectors and joins materialize eagerly.
//! The test suites use it to check that the estimator is unbiased on
//! synthesized data and that DP-optimal plans really do beat bad plans
//! on measured cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod database;
mod executor;

pub use database::{Database, SynthesisError, MAX_SYNTH_ROWS};
pub use executor::{execute, ExecError, Execution};
