//! Synthetic data generation matching a statistics catalog.

use core::fmt;

use joinopt_cost::Catalog;
use joinopt_qgraph::{EdgeId, QueryGraph};
use joinopt_relset::{RelIdx, XorShift64};

/// Safety cap on synthesized rows per relation (this is a validation
/// engine, not a warehouse).
pub const MAX_SYNTH_ROWS: usize = 100_000;

/// Errors from data synthesis.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// A relation's catalog cardinality exceeds [`MAX_SYNTH_ROWS`].
    TooManyRows {
        /// The relation.
        relation: RelIdx,
        /// Its catalog cardinality.
        cardinality: f64,
    },
    /// Catalog and graph shapes differ.
    ShapeMismatch,
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::TooManyRows {
                relation,
                cardinality,
            } => write!(
                f,
                "relation R{relation} has {cardinality} rows; synthesis is capped at \
                 {MAX_SYNTH_ROWS}"
            ),
            SynthesisError::ShapeMismatch => {
                write!(f, "catalog shape does not match the query graph")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// A synthesized database: one key column per (relation, incident
/// predicate) pair.
#[derive(Debug, Clone)]
pub struct Database {
    rows: Vec<usize>,
    /// `keys[edge_id]` = (keys of the edge's `u` relation, keys of `v`).
    keys: Vec<(Vec<u32>, Vec<u32>)>,
    /// Domain size used per edge (`⌈1/selectivity⌉`).
    domains: Vec<u32>,
}

impl Database {
    /// Synthesizes data for `g` whose join statistics match `cat` in
    /// expectation: each predicate's two key columns are uniform over a
    /// domain of size `⌈1/f⌉`.
    ///
    /// # Errors
    ///
    /// Rejects mismatched shapes and cardinalities above
    /// [`MAX_SYNTH_ROWS`].
    pub fn synthesize(
        g: &QueryGraph,
        cat: &Catalog,
        rng: &mut XorShift64,
    ) -> Result<Database, SynthesisError> {
        if cat.num_relations() != g.num_relations() || cat.num_edges() != g.num_edges() {
            return Err(SynthesisError::ShapeMismatch);
        }
        let mut rows = Vec::with_capacity(g.num_relations());
        for i in 0..g.num_relations() {
            let card = cat.cardinality(i);
            if card > MAX_SYNTH_ROWS as f64 {
                return Err(SynthesisError::TooManyRows {
                    relation: i,
                    cardinality: card,
                });
            }
            rows.push(card.round().max(1.0) as usize);
        }
        let mut keys = Vec::with_capacity(g.num_edges());
        let mut domains = Vec::with_capacity(g.num_edges());
        for (id, e) in g.edges().iter().enumerate() {
            let f = cat.selectivity(id);
            let domain = (1.0 / f).round().max(1.0).min(u32::MAX as f64) as u32;
            let u_keys = (0..rows[e.u]).map(|_| rng.gen_range_u32(domain)).collect();
            let v_keys = (0..rows[e.v]).map(|_| rng.gen_range_u32(domain)).collect();
            keys.push((u_keys, v_keys));
            domains.push(domain);
        }
        Ok(Database {
            rows,
            keys,
            domains,
        })
    }

    /// Number of rows in relation `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn rows(&self, i: RelIdx) -> usize {
        self.rows[i]
    }

    /// The key of `row` of the given endpoint (`u` side iff `u_side`) of
    /// predicate `edge`.
    pub(crate) fn key(&self, edge: EdgeId, u_side: bool, row: usize) -> u32 {
        let (u, v) = &self.keys[edge];
        if u_side {
            u[row]
        } else {
            v[row]
        }
    }

    /// The key domain size of predicate `edge` (`⌈1/selectivity⌉`).
    pub fn domain(&self, edge: EdgeId) -> u32 {
        self.domains[edge]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_qgraph::generators;

    #[test]
    fn synthesis_respects_catalog() {
        let g = generators::chain(3).unwrap();
        let mut cat = Catalog::new(&g);
        cat.set_cardinality(0, 100.0).unwrap();
        cat.set_cardinality(1, 50.0).unwrap();
        cat.set_cardinality(2, 10.0).unwrap();
        cat.set_selectivity(0, 0.02).unwrap();
        cat.set_selectivity(1, 1.0).unwrap();
        let db = Database::synthesize(&g, &cat, &mut XorShift64::seed_from_u64(1)).unwrap();
        assert_eq!(db.rows(0), 100);
        assert_eq!(db.rows(2), 10);
        assert_eq!(db.domain(0), 50); // 1/0.02
        assert_eq!(db.domain(1), 1); // selectivity 1 → always matches
                                     // Keys are within the domain.
        for row in 0..100 {
            assert!(db.key(0, true, row) < 50);
        }
    }

    #[test]
    fn rejects_oversized_relations() {
        let g = generators::chain(2).unwrap();
        let mut cat = Catalog::new(&g);
        cat.set_cardinality(0, 1e9).unwrap();
        let err = Database::synthesize(&g, &cat, &mut XorShift64::seed_from_u64(1)).unwrap_err();
        assert!(matches!(
            err,
            SynthesisError::TooManyRows { relation: 0, .. }
        ));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let g2 = generators::chain(2).unwrap();
        let g3 = generators::chain(3).unwrap();
        let cat = Catalog::new(&g2);
        assert_eq!(
            Database::synthesize(&g3, &cat, &mut XorShift64::seed_from_u64(1)).unwrap_err(),
            SynthesisError::ShapeMismatch
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::star(4).unwrap();
        let cat = Catalog::new(&g);
        let a = Database::synthesize(&g, &cat, &mut XorShift64::seed_from_u64(9)).unwrap();
        let b = Database::synthesize(&g, &cat, &mut XorShift64::seed_from_u64(9)).unwrap();
        for e in 0..g.num_edges() {
            for row in 0..a.rows(0) {
                assert_eq!(a.key(e, true, row), b.key(e, true, row));
            }
        }
    }
}
