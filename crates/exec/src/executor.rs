//! Hash-join execution of [`JoinTree`]s over a synthesized [`Database`].

use core::fmt;
use std::collections::HashMap;

use joinopt_plan::JoinTree;
use joinopt_qgraph::QueryGraph;
use joinopt_relset::RelSet;

use crate::database::Database;

/// Safety cap on materialized tuples per operator.
const MAX_RESULT_ROWS: usize = 5_000_000;

/// Errors during plan execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The plan references a relation the graph does not have.
    PlanOutsideGraph {
        /// The offending relations.
        relations: RelSet,
    },
    /// An intermediate result exceeded the safety cap.
    ResultTooLarge {
        /// Relations of the offending operator.
        relations: RelSet,
        /// Cap that was hit.
        cap: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PlanOutsideGraph { relations } => {
                write!(f, "plan references {relations}, outside the query graph")
            }
            ExecError::ResultTooLarge { relations, cap } => {
                write!(
                    f,
                    "intermediate result for {relations} exceeded {cap} tuples"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// The outcome of executing a plan: measured cardinalities per node.
#[derive(Debug, Clone)]
pub struct Execution {
    /// `(relations, measured rows)` per plan node, post-order; join
    /// nodes only carry the interesting numbers but scans are included
    /// for completeness.
    pub node_cards: Vec<(RelSet, usize)>,
    /// Rows of the final result.
    pub result_rows: usize,
    measured_cout: f64,
}

impl Execution {
    /// The measured `C_out`: sum of all *join* output sizes (scans are
    /// free, matching the cost model's convention).
    pub fn measured_cout(&self) -> f64 {
        self.measured_cout
    }
}

/// A materialized intermediate: which relations are bound, and one row
/// id per relation (indexed by relation id; unbound slots unused).
struct Intermediate {
    rels: RelSet,
    tuples: Vec<Vec<u32>>,
}

/// Executes `tree` over `db`, joining on every predicate of `g` that
/// crosses each join's cut.
///
/// # Errors
///
/// Fails when the plan references unknown relations or an intermediate
/// exceeds the safety cap.
pub fn execute(g: &QueryGraph, db: &Database, tree: &JoinTree) -> Result<Execution, ExecError> {
    if !tree.relations().is_subset(g.all_relations()) {
        return Err(ExecError::PlanOutsideGraph {
            relations: tree.relations(),
        });
    }
    let mut exec = Execution {
        node_cards: Vec::new(),
        result_rows: 0,
        measured_cout: 0.0,
    };
    let top = eval(g, db, tree, &mut exec)?;
    exec.result_rows = top.tuples.len();
    Ok(exec)
}

fn eval(
    g: &QueryGraph,
    db: &Database,
    tree: &JoinTree,
    exec: &mut Execution,
) -> Result<Intermediate, ExecError> {
    let n = g.num_relations();
    match tree {
        JoinTree::Scan { relation, .. } => {
            let rels = RelSet::single(*relation);
            let tuples: Vec<Vec<u32>> = (0..db.rows(*relation))
                .map(|row| {
                    let mut t = vec![0u32; n];
                    t[*relation] = u32::try_from(row).expect("row fits u32");
                    t
                })
                .collect();
            exec.node_cards.push((rels, tuples.len()));
            Ok(Intermediate { rels, tuples })
        }
        JoinTree::Join { left, right, .. } => {
            let l = eval(g, db, left, exec)?;
            let r = eval(g, db, right, exec)?;
            let joined = hash_join(g, db, &l, &r)?;
            exec.measured_cout += joined.tuples.len() as f64;
            exec.node_cards.push((joined.rels, joined.tuples.len()));
            Ok(joined)
        }
    }
}

/// Joins two intermediates on the composite key of all crossing
/// predicates (an empty key degenerates to a cross product).
fn hash_join(
    g: &QueryGraph,
    db: &Database,
    l: &Intermediate,
    r: &Intermediate,
) -> Result<Intermediate, ExecError> {
    let rels = l.rels | r.rels;
    // Crossing predicates: (edge id, left side is the edge's u side?).
    let crossing: Vec<(usize, bool)> = g
        .edges_between_sets(l.rels, r.rels)
        .map(|id| {
            let e = g.edges()[id];
            (id, l.rels.contains(e.u))
        })
        .collect();

    let key_of = |side_left: bool, tuple: &[u32]| -> Vec<u32> {
        crossing
            .iter()
            .map(|&(id, left_is_u)| {
                let e = g.edges()[id];
                let u_side = side_left == left_is_u;
                let rel = if u_side { e.u } else { e.v };
                db.key(id, u_side, tuple[rel] as usize)
            })
            .collect()
    };

    // Build on the smaller input.
    let (build, probe, build_is_left) = if l.tuples.len() <= r.tuples.len() {
        (l, r, true)
    } else {
        (r, l, false)
    };
    let mut table: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
    for (idx, t) in build.tuples.iter().enumerate() {
        table.entry(key_of(build_is_left, t)).or_default().push(idx);
    }

    let mut out = Vec::new();
    for probe_tuple in &probe.tuples {
        if let Some(matches) = table.get(&key_of(!build_is_left, probe_tuple)) {
            for &b in matches {
                let build_tuple = &build.tuples[b];
                let mut merged = probe_tuple.clone();
                for rel in build.rels.iter() {
                    merged[rel] = build_tuple[rel];
                }
                out.push(merged);
                if out.len() > MAX_RESULT_ROWS {
                    return Err(ExecError::ResultTooLarge {
                        relations: rels,
                        cap: MAX_RESULT_ROWS,
                    });
                }
            }
        }
    }
    Ok(Intermediate { rels, tuples: out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinopt_cost::Catalog;
    use joinopt_qgraph::generators;
    use joinopt_relset::XorShift64;

    /// Brute-force reference: filter the full cross product.
    fn brute_force_count(g: &QueryGraph, db: &Database, rels: RelSet) -> usize {
        let members: Vec<usize> = rels.iter().collect();
        let mut count = 0usize;
        let mut assignment = vec![0usize; members.len()];
        loop {
            // Check all internal predicates.
            let ok = g.edges_within(rels).all(|id| {
                let e = g.edges()[id];
                let urow = assignment[members.iter().position(|&m| m == e.u).expect("member")];
                let vrow = assignment[members.iter().position(|&m| m == e.v).expect("member")];
                db.key(id, true, urow) == db.key(id, false, vrow)
            });
            if ok {
                count += 1;
            }
            // Advance the odometer.
            let mut i = 0;
            loop {
                if i == members.len() {
                    return count;
                }
                assignment[i] += 1;
                if assignment[i] < db.rows(members[i]) {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }

    fn small_db(seed: u64) -> (QueryGraph, Catalog, Database) {
        let g = generators::chain(3).unwrap();
        let mut cat = Catalog::new(&g);
        cat.set_cardinality(0, 30.0).unwrap();
        cat.set_cardinality(1, 20.0).unwrap();
        cat.set_cardinality(2, 10.0).unwrap();
        cat.set_selectivity(0, 0.1).unwrap();
        cat.set_selectivity(1, 0.25).unwrap();
        let db = Database::synthesize(&g, &cat, &mut XorShift64::seed_from_u64(seed)).unwrap();
        (g, cat, db)
    }

    fn scan(rel: usize) -> JoinTree {
        JoinTree::Scan {
            relation: rel,
            cardinality: 0.0,
        }
    }

    fn join(l: JoinTree, r: JoinTree) -> JoinTree {
        JoinTree::Join {
            left: Box::new(l),
            right: Box::new(r),
            cardinality: 0.0,
            cost: 0.0,
        }
    }

    #[test]
    fn single_scan_executes() {
        let (g, _, db) = small_db(1);
        let e = execute(&g, &db, &scan(1)).unwrap();
        assert_eq!(e.result_rows, 20);
        assert_eq!(e.measured_cout(), 0.0);
    }

    #[test]
    fn two_way_join_matches_brute_force() {
        for seed in 0..10 {
            let (g, _, db) = small_db(seed);
            let plan = join(scan(0), scan(1));
            let e = execute(&g, &db, &plan).unwrap();
            let want = brute_force_count(&g, &db, RelSet::from_indices([0, 1]));
            assert_eq!(e.result_rows, want, "seed {seed}");
        }
    }

    #[test]
    fn three_way_join_matches_brute_force_and_is_order_independent() {
        for seed in 0..10 {
            let (g, _, db) = small_db(seed);
            let want = brute_force_count(&g, &db, RelSet::full(3));
            let plans = [
                join(join(scan(0), scan(1)), scan(2)),
                join(scan(0), join(scan(1), scan(2))),
                join(join(scan(2), scan(1)), scan(0)),
            ];
            for plan in plans {
                let e = execute(&g, &db, &plan).unwrap();
                assert_eq!(e.result_rows, want, "seed {seed}, plan {plan}");
            }
        }
    }

    #[test]
    fn cross_product_join_is_supported() {
        // Joining {0} with {2} first has no crossing predicate.
        let (g, _, db) = small_db(3);
        let plan = join(join(scan(0), scan(2)), scan(1));
        let e = execute(&g, &db, &plan).unwrap();
        let want = brute_force_count(&g, &db, RelSet::full(3));
        assert_eq!(e.result_rows, want);
        // The first intermediate really was a cross product: 30·10 rows.
        assert!(e
            .node_cards
            .iter()
            .any(|&(s, c)| { s == RelSet::from_indices([0, 2]) && c == 300 }));
    }

    #[test]
    fn measured_cout_sums_join_outputs() {
        let (g, _, db) = small_db(5);
        let plan = join(join(scan(0), scan(1)), scan(2));
        let e = execute(&g, &db, &plan).unwrap();
        let joins: f64 = e
            .node_cards
            .iter()
            .filter(|(s, _)| s.len() > 1)
            .map(|&(_, c)| c as f64)
            .sum();
        assert_eq!(e.measured_cout(), joins);
    }

    #[test]
    fn plan_outside_graph_rejected() {
        let (g, _, db) = small_db(1);
        let plan = scan(7);
        // scan(7) panics inside RelSet::single? No — relation 7 is a valid
        // RelSet index; the guard must fire on graph membership.
        assert!(matches!(
            execute(&g, &db, &plan),
            Err(ExecError::PlanOutsideGraph { .. })
        ));
    }

    #[test]
    fn selectivity_one_behaves_like_full_match() {
        let g = generators::chain(2).unwrap();
        let mut cat = Catalog::new(&g);
        cat.set_cardinality(0, 12.0).unwrap();
        cat.set_cardinality(1, 7.0).unwrap();
        cat.set_selectivity(0, 1.0).unwrap();
        let db = Database::synthesize(&g, &cat, &mut XorShift64::seed_from_u64(2)).unwrap();
        let e = execute(&g, &db, &join(scan(0), scan(1))).unwrap();
        assert_eq!(e.result_rows, 84); // full cross product: domain size 1
    }
}
