//! The sustained-load harness behind `joinopt load`.
//!
//! Replays a mixed chain/star/clique workload through one
//! [`OptimizerService`]: a seeded request stream where each request is,
//! with probability `repeat_rate`, an exact repeat of an earlier query
//! (the warm path the plan cache exists for) and otherwise a fresh
//! query. The run reports throughput (requests/sec), latency quantiles
//! (p50/p99 from the workspace's log-linear
//! [`Histogram`](joinopt_telemetry::Histogram)) and the cache hit rate,
//! and serializes to the same JSON conventions as the perf baseline
//! (schema `joinopt-load-v1`, `cost_bits`-style exactness is not needed
//! here — latency is noise, hit counts are deterministic at one worker).
//!
//! The CI smoke gate runs a small single-worker stream and fails when
//! the hit rate drops below a floor (`joinopt load --min-hit-rate`): a
//! cold cache, a broken fingerprint or a lookup that stopped matching
//! all surface as a hit rate of zero.

use std::time::Instant;

use joinopt_cost::workload::family_workload;
use joinopt_qgraph::GraphKind;
use joinopt_relset::XorShift64;
use joinopt_service::{CacheConfig, OptimizerService, QuerySpec, ServiceConfig, ServiceRequest};
use joinopt_telemetry::json::{write_escaped, write_f64};
use joinopt_telemetry::Histogram;

/// The families the load mix draws from (the paper's structural
/// extremes, same as the perf matrix).
pub const LOAD_FAMILIES: [GraphKind; 3] = [GraphKind::Chain, GraphKind::Star, GraphKind::Clique];

/// Report schema identifier.
pub const SCHEMA: &str = "joinopt-load-v1";

/// Configuration of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Requests in the stream.
    pub requests: usize,
    /// Service worker threads (1 keeps hit accounting deterministic:
    /// every repeat of an already-answered query hits).
    pub threads: usize,
    /// Stream seed; the whole request mix is a pure function of it.
    pub seed: u64,
    /// Probability in `[0, 1]` that a request repeats an earlier query.
    pub repeat_rate: f64,
    /// Largest relation count in the mix (inclusive; fresh queries
    /// cycle n through `4..=max_n`).
    pub max_n: usize,
    /// Plan-cache byte budget.
    pub cache_bytes: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            requests: 200,
            threads: 1,
            seed: 2006,
            repeat_rate: 0.5,
            max_n: 9,
            cache_bytes: 8 << 20,
        }
    }
}

/// Results of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// The configuration that produced the run.
    pub config: LoadConfig,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests that came back as errors (0 in a healthy run).
    pub errors: usize,
    /// Requests answered from the plan cache.
    pub hits: usize,
    /// Cache hit rate over completed requests (0 when none completed).
    pub hit_rate: f64,
    /// Total wall time of the batch, nanoseconds.
    pub wall_ns: u64,
    /// Throughput over the whole stream, requests per second.
    pub rps: f64,
    /// Median per-request latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile per-request latency, nanoseconds.
    pub p99_ns: u64,
}

/// Builds the seeded request mix for `config`: fresh queries cycle
/// through family × size, repeats re-issue a uniformly chosen earlier
/// spec. Exposed so the CLI can print the mix and tests can pin it.
pub fn build_stream(config: &LoadConfig) -> Vec<ServiceRequest> {
    let mut rng = XorShift64::seed_from_u64(config.seed ^ 0x4c6f_6164_4d69_7821); // "LoadMix!"
    let sizes = 4..=config.max_n.max(4);
    let mut fresh = 0u64;
    let mut specs: Vec<QuerySpec> = Vec::new();
    let mut stream = Vec::with_capacity(config.requests);
    for _ in 0..config.requests {
        let repeat = !specs.is_empty() && rng.next_f64() < config.repeat_rate;
        let spec = if repeat {
            specs[rng.gen_range(0..specs.len())].clone()
        } else {
            let kind = LOAD_FAMILIES[fresh as usize % LOAD_FAMILIES.len()];
            let n = sizes.clone().nth(fresh as usize % sizes.clone().count());
            let w = family_workload(kind, n.unwrap_or(4), config.seed.wrapping_add(fresh));
            fresh += 1;
            let spec =
                QuerySpec::capture(&w.graph, &w.catalog).expect("family workloads capture cleanly");
            specs.push(spec.clone());
            spec
        };
        stream.push(ServiceRequest::new(spec).with_tenant("load"));
    }
    stream
}

/// Runs the configured load stream and returns the report.
pub fn run_load(config: &LoadConfig) -> LoadReport {
    run_load_observed(config, &joinopt_telemetry::NoopObserver)
}

/// [`run_load`] with telemetry: every optimizer run and cache event of
/// the stream reports to `obs` (e.g. a
/// [`RegistryObserver`](joinopt_telemetry::RegistryObserver), so the
/// `joinopt_cache_*` series cover the whole run).
pub fn run_load_observed(
    config: &LoadConfig,
    obs: &(dyn joinopt_telemetry::Observer + Sync),
) -> LoadReport {
    let stream = build_stream(config);
    let service = OptimizerService::new(ServiceConfig {
        worker_threads: config.threads.max(1),
        queue_capacity: stream.len().max(1),
        tenant_limit: stream.len().max(1),
        cache: Some(CacheConfig {
            byte_budget: config.cache_bytes,
            ..CacheConfig::default()
        }),
    });
    let start = Instant::now();
    let results = service.submit_batch_observed(&stream, obs);
    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let mut latencies = Histogram::default();
    let mut completed = 0usize;
    let mut errors = 0usize;
    let mut hits = 0usize;
    for r in &results {
        match r {
            Ok(outcome) => {
                completed += 1;
                hits += usize::from(outcome.cache_hit);
                latencies.record(u64::try_from(outcome.elapsed.as_nanos()).unwrap_or(u64::MAX));
            }
            Err(_) => errors += 1,
        }
    }
    LoadReport {
        config: config.clone(),
        completed,
        errors,
        hits,
        hit_rate: if completed == 0 {
            0.0
        } else {
            hits as f64 / completed as f64
        },
        wall_ns,
        rps: if wall_ns == 0 {
            0.0
        } else {
            completed as f64 / (wall_ns as f64 / 1e9)
        },
        p50_ns: latencies.quantile(0.5),
        p99_ns: latencies.quantile(0.99),
    }
}

impl LoadReport {
    /// Serializes the report in the perf-baseline JSON conventions.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut s = String::from("{\n  \"schema\": ");
        write_escaped(&mut s, SCHEMA);
        s.push_str(&format!(
            ",\n  \"config\": {{\"requests\": {}, \"threads\": {}, \"seed\": {}, \
             \"max_n\": {}, \"cache_bytes\": {}, \"repeat_rate\": ",
            c.requests, c.threads, c.seed, c.max_n, c.cache_bytes
        ));
        write_f64(&mut s, c.repeat_rate);
        s.push_str(&format!(
            "}},\n  \"completed\": {}, \"errors\": {}, \"hits\": {}, \"hit_rate\": ",
            self.completed, self.errors, self.hits
        ));
        write_f64(&mut s, self.hit_rate);
        s.push_str(&format!(
            ",\n  \"wall_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"rps\": ",
            self.wall_ns, self.p50_ns, self.p99_ns
        ));
        write_f64(&mut s, self.rps);
        s.push_str("\n}\n");
        s
    }

    /// A rendered summary for human consumption.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new(vec![
            "requests",
            "threads",
            "completed",
            "errors",
            "hits",
            "hit_rate",
            "rps",
            "p50",
            "p99",
        ]);
        t.row(vec![
            self.config.requests.to_string(),
            self.config.threads.to_string(),
            self.completed.to_string(),
            self.errors.to_string(),
            self.hits.to_string(),
            format!("{:.3}", self.hit_rate),
            format!("{:.0}", self.rps),
            crate::format_seconds(self.p50_ns as f64 / 1e9),
            crate::format_seconds(self.p99_ns as f64 / 1e9),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> LoadConfig {
        LoadConfig {
            requests: 40,
            threads: 1,
            seed: 7,
            repeat_rate: 0.5,
            max_n: 6,
            cache_bytes: 8 << 20,
        }
    }

    #[test]
    fn stream_is_deterministic_and_mixed() {
        let config = small_config();
        let a = build_stream(&config);
        let b = build_stream(&config);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
        }
        // Some (but not all) requests repeat an earlier spec.
        let repeats = a
            .iter()
            .enumerate()
            .filter(|(i, r)| a[..*i].iter().any(|p| p.spec == r.spec))
            .count();
        assert!(repeats > 0 && repeats < a.len(), "repeats={repeats}");
    }

    #[test]
    fn single_worker_run_hits_on_every_repeat() {
        let config = small_config();
        let report = run_load(&config);
        assert_eq!(report.completed, 40);
        assert_eq!(report.errors, 0);
        // At one worker, requests execute in arrival order, so every
        // repeated spec is already cached when its repeat arrives.
        let stream = build_stream(&config);
        let repeats = stream
            .iter()
            .enumerate()
            .filter(|(i, r)| stream[..*i].iter().any(|p| p.spec == r.spec))
            .count();
        assert_eq!(report.hits, repeats);
        assert!(report.hit_rate > 0.0);
    }

    #[test]
    fn multi_worker_run_completes_cleanly() {
        let report = run_load(&LoadConfig {
            threads: 4,
            ..small_config()
        });
        assert_eq!(report.completed, 40);
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn report_json_parses_and_carries_the_headline_numbers() {
        use joinopt_telemetry::json::JsonValue;
        let report = run_load(&small_config());
        let v = JsonValue::parse(&report.to_json()).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(v.get("completed").unwrap().as_u64(), Some(40));
        assert_eq!(v.get("hits").unwrap().as_u64(), Some(report.hits as u64));
        assert!(v.get("rps").unwrap().as_f64().unwrap() > 0.0);
        assert!(v.get("p99_ns").unwrap().as_u64().is_some());
        let rendered = report.render();
        assert!(rendered.contains("hit_rate"));
    }
}
